"""P4 — shuffle data planes: relay vs direct vs direct+fused.

The driver-bypass rework moves shuffle payloads out of the driver: map
tasks spill NPB1-framed partition files into the job's shuffle directory
and return only manifests; reduce tasks stream the spill files directly.
On a two-job chain whose second map phase is identity-shaped, the first
job's reducers additionally write the second job's spill files at source
(fused chaining), so the intermediate stage never materialises on the
driver at all.

This bench runs the same two-job byte-heavy chain on all three planes
with ≥4 workers, checks the outputs are bit-identical, and quantifies:

- ``EngineStats.driver_bytes``: relay moves the full shuffle volume
  through the driver; direct moves only manifests (≥10x smaller —
  asserted in full mode).
- two-job wall-clock: direct (fused) must beat relay in full mode.

Writes ``results/shuffle_dataplane.txt`` and the repo-root
``BENCH_shuffle_dataplane.json`` consumed by CI.

``--guard`` replays the quick workload and asserts the direct plane's
counters against the committed ceilings in
``benchmarks/baselines/shuffle_counters.json`` — a cheap, deterministic
regression tripwire for "someone routed payloads back through the
driver".  Refresh the baseline with ``--write-baseline`` after an
intentional data-plane change.

Run standalone (``--quick`` for the fast, assertion-free CI variant):

    PYTHONPATH=src python benchmarks/bench_shuffle_dataplane.py [--quick|--guard]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from harness import format_table, machine_info, write_report

from repro.mapreduce import MultiprocessEngine, SerialEngine
from repro.mapreduce.counters import FRAMEWORK_GROUP, SHUFFLE_BYTES
from repro.mapreduce.job import Job, Mapper, Reducer

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_shuffle_dataplane.json"
BASELINE_PATH = Path(__file__).parent / "baselines" / "shuffle_counters.json"

# Byte-heavy by construction: payloads are real bytes objects, so
# driver_bytes meters what physically crossed the driver link.
NUM_RECORDS = 600
PAYLOAD_BYTES = 8_000
FAN_OUT = 4
NUM_KEYS = 48
NUM_MAP_TASKS = 12
NUM_REDUCERS = 8
MAX_WORKERS = 4
REPEATS = 3

QUICK_NUM_RECORDS = 120
QUICK_PAYLOAD_BYTES = 2_000
QUICK_REPEATS = 1

DRIVER_BYPASS_MIN_RATIO = 10.0


class FanOutMapper(Mapper):
    def map(self, key, value, context):
        for offset in range(FAN_OUT):
            context.emit((key + offset) % NUM_KEYS, value)


class KeepLargestReducer(Reducer):
    """Stage 1: keep one payload per key, so stage 2 still moves bytes."""

    def reduce(self, key, values, context):
        context.emit(key, max(values, key=len))


class ByteLenReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sum(len(v) for v in values))


def make_records(num_records: int, payload_bytes: int) -> list:
    return [(i, bytes([i % 251]) * payload_bytes) for i in range(num_records)]


def make_chain(config: dict | None = None) -> list[Job]:
    return [
        Job(
            name="spread",
            mapper=FanOutMapper,
            reducer=KeepLargestReducer,
            num_reducers=NUM_REDUCERS,
            config=dict(config or {}),
        ),
        # Default identity mapper, no combiner: fusable shape.
        Job(
            name="tally",
            reducer=ByteLenReducer,
            num_reducers=NUM_REDUCERS // 2,
            config=dict(config or {}),
        ),
    ]


def run_plane(records, *, shuffle_mode: str, fuse, repeats: int) -> dict:
    best = float("inf")
    stats = None
    results = None
    for _ in range(repeats):
        with MultiprocessEngine(
            max_workers=MAX_WORKERS, shuffle_mode=shuffle_mode
        ) as engine:
            start = time.perf_counter()
            results = engine.run_chain(
                make_chain(), records, num_map_tasks=NUM_MAP_TASKS, fuse=fuse
            )
            best = min(best, time.perf_counter() - start)
            stats = engine.stats
    return {
        "seconds": best,
        "driver_bytes": stats.driver_bytes,
        "spill_files_written": stats.spill_files_written,
        "spill_bytes_written": stats.spill_bytes_written,
        "fused_stages": stats.fused_stages,
        "bytes_copied": stats.bytes_copied,
        "mmap_reads": stats.mmap_reads,
        "stage1_shuffle_bytes": results[0].counters.get(
            FRAMEWORK_GROUP, SHUFFLE_BYTES
        ),
        "_final_records": results[-1].records,
    }


def run_comparison(quick: bool = False) -> dict:
    if quick:
        num_records, payload_bytes = QUICK_NUM_RECORDS, QUICK_PAYLOAD_BYTES
        repeats = QUICK_REPEATS
    else:
        num_records, payload_bytes = NUM_RECORDS, PAYLOAD_BYTES
        repeats = REPEATS
    records = make_records(num_records, payload_bytes)

    reference = SerialEngine().run_chain(
        make_chain(), records, num_map_tasks=NUM_MAP_TASKS
    )[-1].records

    planes = {
        "relay": run_plane(records, shuffle_mode="relay", fuse=None, repeats=repeats),
        "direct": run_plane(
            records, shuffle_mode="direct", fuse=False, repeats=repeats
        ),
        "direct_fused": run_plane(
            records, shuffle_mode="direct", fuse=None, repeats=repeats
        ),
    }

    # Honesty guard: every plane must produce the serial engine's records.
    for name, plane in planes.items():
        assert plane.pop("_final_records") == reference, (
            f"{name} plane diverged from the serial reference"
        )
    assert planes["relay"]["fused_stages"] == 0
    assert planes["direct"]["fused_stages"] == 0
    assert planes["direct_fused"]["fused_stages"] == 1

    bypass_ratio = planes["relay"]["driver_bytes"] / planes["direct"]["driver_bytes"]
    wallclock_improvement = planes["relay"]["seconds"] / planes["direct_fused"]["seconds"]
    metrics = {
        "machine": machine_info(repeats=repeats),
        "workload": {
            "num_records": num_records,
            "payload_bytes": payload_bytes,
            "fan_out": FAN_OUT,
            "num_keys": NUM_KEYS,
            "num_map_tasks": NUM_MAP_TASKS,
            "num_reducers": NUM_REDUCERS,
            "max_workers": MAX_WORKERS,
            "repeats": repeats,
            "quick": quick,
        },
        "planes": planes,
        "driver_bypass_ratio": bypass_ratio,
        "wallclock_improvement_fused_vs_relay": wallclock_improvement,
    }

    rows = [
        [
            name,
            f"{plane['seconds']:.3f}",
            plane["driver_bytes"],
            plane["spill_files_written"],
            plane["fused_stages"],
        ]
        for name, plane in planes.items()
    ]
    write_report(
        "shuffle_dataplane",
        f"P4 — shuffle data planes on a two-job chain "
        f"({num_records} records x {payload_bytes}B, fan-out {FAN_OUT}, "
        f"{MAX_WORKERS} workers, best of {repeats}); driver bytes reduced "
        f"{bypass_ratio:.1f}x, wall-clock {wallclock_improvement:.2f}x vs relay",
        format_table(
            ["plane", "seconds", "driver bytes", "spill files", "fused stages"],
            rows,
        ),
    )
    JSON_PATH.write_text(json.dumps(metrics, indent=2) + "\n")

    if not quick:
        assert bypass_ratio >= DRIVER_BYPASS_MIN_RATIO, (
            f"direct plane only bypassed {bypass_ratio:.1f}x of relay's "
            "driver bytes"
        )
        assert wallclock_improvement > 1.0, (
            f"fused direct chain not faster than relay "
            f"({planes['direct_fused']['seconds']:.3f}s vs "
            f"{planes['relay']['seconds']:.3f}s)"
        )
    return metrics


# ---------------------------------------------------------------------------
# Counter-regression guard (CI lane).
# ---------------------------------------------------------------------------


def guard_measurements() -> dict:
    """Deterministic quick-workload counters for the regression guard."""
    records = make_records(QUICK_NUM_RECORDS, QUICK_PAYLOAD_BYTES)
    plane = run_plane(records, shuffle_mode="direct", fuse=False, repeats=1)
    relay = run_plane(records, shuffle_mode="relay", fuse=None, repeats=1)
    plane.pop("_final_records")
    relay.pop("_final_records")
    return {
        "direct_driver_bytes": plane["driver_bytes"],
        "relay_driver_bytes": relay["driver_bytes"],
        "shuffle_bytes": plane["stage1_shuffle_bytes"],
        "direct_bytes_copied": plane["bytes_copied"],
    }


CRC_OVERHEAD_CEILING = 1.05
CRC_REPEATS = 5


def crc_overhead_measurements(repeats: int = CRC_REPEATS) -> dict:
    """Warm-engine best-of-``repeats`` wall clock: CRC verify on vs off.

    The spill-integrity work checksums every spill payload (CRC32C when
    available).  This measures the end-to-end toll on the quick chain
    with a single warm pool so neither arm pays startup costs; the guard
    holds the on/off ratio under ``crc_overhead`` in the baseline.
    """
    records = make_records(QUICK_NUM_RECORDS, QUICK_PAYLOAD_BYTES)
    timings = {True: float("inf"), False: float("inf")}
    with MultiprocessEngine(
        max_workers=MAX_WORKERS, shuffle_mode="direct"
    ) as engine:
        # Warm the worker pool before either arm is timed.
        engine.run_chain(
            make_chain(), records, num_map_tasks=NUM_MAP_TASKS, fuse=False
        )
        for _ in range(repeats):
            for verify in (True, False):
                chain = make_chain({"verify_spill_integrity": verify})
                start = time.perf_counter()
                engine.run_chain(
                    chain, records, num_map_tasks=NUM_MAP_TASKS, fuse=False
                )
                timings[verify] = min(
                    timings[verify], time.perf_counter() - start
                )
    return {
        "crc_on_seconds": timings[True],
        "crc_off_seconds": timings[False],
        "crc_overhead": timings[True] / timings[False],
    }


def write_baseline() -> dict:
    measured = guard_measurements()
    baseline = {
        "workload": {
            "num_records": QUICK_NUM_RECORDS,
            "payload_bytes": QUICK_PAYLOAD_BYTES,
            "num_map_tasks": NUM_MAP_TASKS,
            "num_reducers": NUM_REDUCERS,
        },
        "measured": measured,
        # Ceilings leave headroom for environment noise (tmpdir path
        # lengths leak into manifest pickles) but trip on any change that
        # routes payloads back through the driver.
        "ceilings": {
            "direct_driver_bytes": int(measured["direct_driver_bytes"] * 1.5),
            "shuffle_bytes": int(measured["shuffle_bytes"] * 1.05),
            "min_bypass_ratio": DRIVER_BYPASS_MIN_RATIO,
            # Read-path copies on the direct plane are broadcast
            # localizations only — spill reads are mmapped.  A jump here
            # means someone reintroduced an eager chunk read.
            "direct_bytes_copied": int(measured["direct_bytes_copied"] * 1.5),
            # End-to-end CRC verification must stay within 5% of the
            # unverified wall clock (warm pool, best-of-N per arm).
            "crc_overhead": CRC_OVERHEAD_CEILING,
        },
    }
    BASELINE_PATH.parent.mkdir(exist_ok=True)
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    return baseline


def run_guard() -> dict:
    baseline = json.loads(BASELINE_PATH.read_text())
    ceilings = baseline["ceilings"]
    measured = guard_measurements()
    bypass_ratio = measured["relay_driver_bytes"] / measured["direct_driver_bytes"]
    failures = []
    if measured["direct_driver_bytes"] > ceilings["direct_driver_bytes"]:
        failures.append(
            f"direct driver_bytes {measured['direct_driver_bytes']} exceeds "
            f"ceiling {ceilings['direct_driver_bytes']}"
        )
    if measured["shuffle_bytes"] > ceilings["shuffle_bytes"]:
        failures.append(
            f"shuffle_bytes {measured['shuffle_bytes']} exceeds ceiling "
            f"{ceilings['shuffle_bytes']}"
        )
    if measured["direct_bytes_copied"] > ceilings.get(
        "direct_bytes_copied", float("inf")
    ):
        failures.append(
            f"direct bytes_copied {measured['direct_bytes_copied']} exceeds "
            f"ceiling {ceilings['direct_bytes_copied']}"
        )
    if bypass_ratio < ceilings["min_bypass_ratio"]:
        failures.append(
            f"driver-bypass ratio {bypass_ratio:.1f}x below floor "
            f"{ceilings['min_bypass_ratio']}x"
        )
    crc = crc_overhead_measurements()
    if crc["crc_overhead"] > ceilings.get("crc_overhead", float("inf")):
        failures.append(
            f"CRC verification overhead {crc['crc_overhead']:.3f}x exceeds "
            f"ceiling {ceilings['crc_overhead']}x "
            f"({crc['crc_on_seconds']:.3f}s on vs "
            f"{crc['crc_off_seconds']:.3f}s off)"
        )
    measured.update(crc)
    assert not failures, "; ".join(failures)
    return {"measured": measured, "bypass_ratio": bypass_ratio, "ceilings": ceilings}


def test_shuffle_dataplane(benchmark):
    metrics = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    assert metrics["driver_bypass_ratio"] >= DRIVER_BYPASS_MIN_RATIO
    assert metrics["wallclock_improvement_fused_vs_relay"] > 1.0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workload, single repeat, no perf assertions (CI artifact mode)",
    )
    parser.add_argument(
        "--guard",
        action="store_true",
        help="assert counters against baselines/shuffle_counters.json ceilings",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="re-measure and rewrite the guard baseline",
    )
    arguments = parser.parse_args()
    if arguments.write_baseline:
        print(json.dumps(write_baseline(), indent=2))
    elif arguments.guard:
        print(json.dumps(run_guard(), indent=2))
    else:
        print(json.dumps(run_comparison(quick=arguments.quick), indent=2))
