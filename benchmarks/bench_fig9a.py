"""F9a — Figure 9(a): lower and upper bounds on h for the block approach.

Regenerates: the valid blocking-factor interval
``2vs/maxws ≤ h ≤ maxis/vs`` over dataset sizes vs ∈ 10⁰…10² GB, for all
combinations of maxws ∈ {200 MB, 400 MB, 1 GB} (rising lower-bound lines)
and maxis ∈ {100 GB, 1 TB, 10 TB} (falling upper-bound lines).

Shape asserted: rising × falling bounds intersect at
``vs* = sqrt(maxws·maxis/2)``; beyond vs* no h exists.  Paper anchor: a
4 GB dataset at (200 MB, 1 TB) admits h roughly in [39, 263] — decimal
units give exactly [40, 250] (the paper read values off a log chart).
"""

from __future__ import annotations

from harness import format_table, write_report

from repro._util import GB, MB, TB
from repro.core.cost_model import (
    block_h_bounds,
    log_spaced_sizes,
    max_dataset_bytes_block,
)

MAXWS_VALUES = [200 * MB, 400 * MB, 1 * GB]
MAXIS_VALUES = [100 * GB, 1 * TB, 10 * TB]
DATASETS = log_spaced_sizes(1 * GB, 100 * GB, per_decade=3)


def compute_bounds():
    table = {}
    for maxws in MAXWS_VALUES:
        for maxis in MAXIS_VALUES:
            table[(maxws, maxis)] = [
                block_h_bounds(vs, maxws, maxis) for vs in DATASETS
            ]
    return table


def test_fig9a_block_factor_bounds(benchmark):
    table = benchmark(compute_bounds)

    for (maxws, maxis), bounds in table.items():
        lows = [b.h_min for b in bounds]
        highs = [b.h_max for b in bounds]
        # Lower bound rises with vs, upper bound falls (the chart's X shape).
        assert lows == sorted(lows)
        assert highs == sorted(highs, reverse=True)
        # Feasibility flips exactly at the intersection.
        crossover = max_dataset_bytes_block(maxws, maxis)
        for vs, b in zip(DATASETS, bounds):
            assert b.feasible == (vs <= crossover), (vs, crossover)

    # Paper anchor: 4 GB dataset, default limits.
    anchor = block_h_bounds(4 * GB, 200 * MB, 1 * TB)
    assert anchor.h_min == 40 and anchor.h_max == 250  # paper: ~39..263

    # Larger maxws lowers the lower bound; larger maxis raises the upper.
    base = table[(200 * MB, 1 * TB)]
    more_mem = table[(1 * GB, 1 * TB)]
    more_disk = table[(200 * MB, 10 * TB)]
    for b0, b1 in zip(base, more_mem):
        assert b1.h_min <= b0.h_min
    for b0, b1 in zip(base, more_disk):
        assert b1.h_max >= b0.h_max

    rows = []
    for vs, b in zip(DATASETS, table[(200 * MB, 1 * TB)]):
        rows.append([round(vs / GB, 2), b.h_min, b.h_max, "yes" if b.feasible else "no"])
    from repro.report import loglog_chart

    base_bounds = table[(200 * MB, 1 * TB)]
    chart = loglog_chart(
        {
            "h_min (maxws)": [(vs, b.h_min) for vs, b in zip(DATASETS, base_bounds)],
            "h_max (maxis)": [(vs, b.h_max) for vs, b in zip(DATASETS, base_bounds)],
        },
        x_label="dataset bytes",
        y_label="blocking factor h",
    )
    write_report(
        "fig9a",
        "Fig 9a — valid h range for the block approach (maxws=200MB, maxis=1TB)",
        format_table(["vs_GB", "h_min", "h_max", "feasible"], rows) + "\n\n" + chart,
    )
