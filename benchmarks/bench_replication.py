"""P9 — quorum scheme replication vs the Afrati/Ullman lower bound.

The design scheme (§5.3) is replication-optimal only at projective-plane
sizes ``v = q² + q + 1``; elsewhere it pads to the next plane and pays
the padded ``q + 1`` replication.  The quorum scheme
(``repro.core.quorum``, DESIGN.md §3.1.8) replicates ``|D| ≈ √v`` for
arbitrary v via a cyclic difference cover.  This bench quantifies, per v
in a sweep mixing plane and off-plane sizes:

- achieved replication vs the ``(v−1)/(capacity−1)`` lower bound
  (``optimality_ratio`` — exactly 1.0 at perfect-difference-cover v's);
- end-to-end replicas emitted and framework shuffle bytes, quorum vs the
  padded design, through the real two-job pipeline;
- the skew headline: heavy-tailed element sizes at the off-plane v=58,
  where the skew-aware packing keeps the worst task at the 2-heavy floor
  while the padded design stacks three heavies in one block — measured
  both analytically (exact working-set bytes) and end-to-end via the
  ``max_working_set_bytes`` counter.

Writes ``results/replication.txt`` and the repo-root
``BENCH_replication.json`` consumed by CI.

``--guard`` asserts against ``benchmarks/baselines/replication.json``:
optimality ratio ≤ 1.15 at every perfect-cover v, committed per-v ratio
ceilings for greedy covers, the ≥ 30% skew working-set reduction floor,
and a shuffle-bytes ceiling vs design at v=58.  Everything guarded is
seed-deterministic (covers, packings, pickle sizes).  Refresh with
``--write-baseline`` after an intentional cover/packing change.

Run standalone (``--quick`` for the fast CI variant):

    PYTHONPATH=src python benchmarks/bench_replication.py [--quick|--guard]
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path

from harness import format_table, machine_info, write_report

from repro.core.design import DesignScheme
from repro.core.pairwise import (
    MAX_WORKING_SET_BYTES,
    PAIRWISE_GROUP,
    REPLICAS_EMITTED,
    PairwiseComputation,
)
from repro.core.quorum import QuorumScheme, measure_task_bytes
from repro.designs.difference_covers import difference_cover
from repro.mapreduce.counters import FRAMEWORK_GROUP, SHUFFLE_BYTES

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_replication.json"
BASELINE_PATH = Path(__file__).parent / "baselines" / "replication.json"

#: plane sizes (57, 73, 91, 133 — perfect covers) interleaved with
#: off-plane v's (58, 120 — greedy covers, where design must pad).
V_SWEEP = (57, 58, 73, 91, 120, 133)
QUICK_V_SWEEP = (57, 58, 91)

# Skew headline workload (off-plane v=58): 6 heavy elements force 15
# pairwise meetings — they fit in 58 quorums at ≤ 2 heavies per task,
# while the padded design stacks ≥ 3 heavies in one block.
SKEW_V = 58
HEAVY_COUNT = 6
HEAVY_BYTES = 65536
LIGHT_BYTES = 1024
SKEW_SEED = 17

# Acceptance: perfect covers must sit essentially on the bound; the skew
# packing must cut ≥ 30% of the worst task's working-set bytes vs design.
PERFECT_RATIO_CEILING = 1.15
MIN_SKEW_REDUCTION = 0.30


def skew_sizes() -> list[int]:
    sizes = [HEAVY_BYTES] * HEAVY_COUNT + [LIGHT_BYTES] * (SKEW_V - HEAVY_COUNT)
    random.Random(SKEW_SEED).shuffle(sizes)
    return sizes


def length_product(a: bytes, b: bytes) -> int:
    return len(a) + len(b)


def float_sum(a: float, b: float) -> float:
    return a + b


def run_pipeline(scheme, data, comparator) -> dict:
    """One two-job run; returns the counters the meter is built on."""
    computation = PairwiseComputation(scheme, comparator)
    start = time.perf_counter()
    _merged, pipeline = computation.run(list(data), return_pipeline=True)
    seconds = time.perf_counter() - start
    report = scheme.replication_report()
    return {
        "seconds": seconds,
        "replicas_emitted": pipeline.counters.get(PAIRWISE_GROUP, REPLICAS_EMITTED),
        "shuffle_bytes": pipeline.counters.get(FRAMEWORK_GROUP, SHUFFLE_BYTES),
        "max_working_set_bytes": pipeline.counters.get(
            PAIRWISE_GROUP, MAX_WORKING_SET_BYTES
        ),
        "replication_achieved": report.replication_achieved,
        "replication_lower_bound": report.replication_lower_bound,
        "optimality_ratio": report.optimality_ratio,
    }


def sweep_entry(v: int) -> dict:
    """Uniform-payload comparison at one v: quorum vs the padded design."""
    cover = difference_cover(v)
    data = [float(i * 7 % 97) for i in range(v)]
    quorum = run_pipeline(QuorumScheme(v, cover=cover), data, float_sum)
    design = run_pipeline(DesignScheme(v), data, float_sum)
    return {
        "v": v,
        "cover_kind": cover.kind,
        "cover_size": cover.size,
        # The chooser only picks quorum when |D| beats the padded q+1;
        # v=120 stays in the sweep as the honest losing case (greedy
        # cover 14 vs design's 12 after padding to the q=11 plane).
        "quorum_competitive": cover.size < design["replication_achieved"],
        "design_replication": design["replication_achieved"],
        "quorum": quorum,
        "design": design,
        "replication_reduction": 1.0
        - quorum["replication_achieved"] / design["replication_achieved"],
        "shuffle_reduction": 1.0
        - quorum["shuffle_bytes"] / design["shuffle_bytes"],
    }


def skew_headline() -> dict:
    """Heavy-tailed sizes at v=58: skew-aware quorum vs padded design.

    The analytic numbers materialize every working set exactly (byte
    sums, no pickling) — these drive the guard.  The end-to-end numbers
    run the real pipeline on byte payloads of those sizes and read the
    ``max_working_set_bytes`` counter, confirming the analytic win
    survives serialization overheads.
    """
    sizes = skew_sizes()
    skew_quorum = QuorumScheme(SKEW_V, element_sizes=sizes)
    plain_quorum = QuorumScheme(SKEW_V)
    design = DesignScheme(SKEW_V)

    analytic = {}
    for name, scheme in (
        ("quorum_skew_aware", skew_quorum),
        ("quorum_identity", plain_quorum),
        ("design", design),
    ):
        max_bytes, mean_bytes = measure_task_bytes(scheme, sizes)
        analytic[name] = {"max_task_bytes": max_bytes, "mean_task_bytes": mean_bytes}
    analytic_reduction = (
        1.0
        - analytic["quorum_skew_aware"]["max_task_bytes"]
        / analytic["design"]["max_task_bytes"]
    )

    data = [b"x" * size for size in sizes]
    end_to_end = {
        "quorum_skew_aware": run_pipeline(skew_quorum, data, length_product),
        "design": run_pipeline(design, data, length_product),
    }
    measured_reduction = 1.0 - (
        end_to_end["quorum_skew_aware"]["max_working_set_bytes"]
        / end_to_end["design"]["max_working_set_bytes"]
    )
    report = skew_quorum.replication_report()
    return {
        "v": SKEW_V,
        "sizes": {
            "heavy_count": HEAVY_COUNT,
            "heavy_bytes": HEAVY_BYTES,
            "light_bytes": LIGHT_BYTES,
            "seed": SKEW_SEED,
        },
        "analytic": analytic,
        "analytic_ws_reduction": analytic_reduction,
        "end_to_end": end_to_end,
        "end_to_end_ws_reduction": measured_reduction,
        "bytes_skew": report.bytes_skew,
    }


def run_sweep(quick: bool = False) -> dict:
    vs = QUICK_V_SWEEP if quick else V_SWEEP
    sweep = [sweep_entry(v) for v in vs]
    headline = skew_headline()

    for entry in sweep:
        if entry["cover_kind"] == "perfect":
            assert entry["quorum"]["optimality_ratio"] <= PERFECT_RATIO_CEILING, (
                f"v={entry['v']}: perfect cover ratio "
                f"{entry['quorum']['optimality_ratio']:.3f} > {PERFECT_RATIO_CEILING}"
            )
        elif entry["quorum_competitive"]:
            # Where the chooser would pick quorum it must actually win:
            # strictly less replication and fewer shuffle bytes end to end.
            assert entry["replication_reduction"] > 0, entry
            assert entry["shuffle_reduction"] > 0, entry
    assert headline["analytic_ws_reduction"] >= MIN_SKEW_REDUCTION, (
        f"skew packing cut only {headline['analytic_ws_reduction']:.1%} of the "
        f"worst task's bytes vs design (floor {MIN_SKEW_REDUCTION:.0%})"
    )

    metrics = {
        "machine": machine_info(),
        "workload": {"v_sweep": list(vs), "quick": quick},
        "sweep": sweep,
        "skew_headline": headline,
    }

    rows = [
        [
            entry["v"],
            entry["cover_kind"],
            entry["cover_size"],
            f"{entry['design_replication']:.0f}",
            f"{entry['quorum']['replication_lower_bound']:.2f}",
            f"{entry['quorum']['optimality_ratio']:.3f}",
            f"{entry['replication_reduction']:.1%}",
            f"{entry['shuffle_reduction']:.1%}",
        ]
        for entry in sweep
    ]
    body = format_table(
        [
            "v",
            "cover",
            "|D|",
            "design repl",
            "bound",
            "quorum ratio",
            "repl cut",
            "shuffle cut",
        ],
        rows,
    )
    body += (
        f"\n\nskew headline (v={SKEW_V}, {HEAVY_COUNT}×{HEAVY_BYTES}B heavy): "
        f"max task bytes {headline['analytic']['quorum_skew_aware']['max_task_bytes']}"
        f" (skew-aware quorum) vs {headline['analytic']['design']['max_task_bytes']}"
        f" (design) — {headline['analytic_ws_reduction']:.1%} analytic reduction, "
        f"{headline['end_to_end_ws_reduction']:.1%} end-to-end"
    )
    write_report(
        "replication",
        "P9 — quorum replication vs the (v−1)/(capacity−1) lower bound; "
        "perfect covers meet it exactly, off-plane v's beat the padded design",
        body,
    )
    JSON_PATH.write_text(json.dumps(metrics, indent=2) + "\n")
    return metrics


# ---------------------------------------------------------------------------
# Deterministic regression guard (CI lane).
# ---------------------------------------------------------------------------


def guard_measurements() -> dict:
    """Everything the guard compares is seed/pickle-deterministic."""
    ratios = {}
    for v in V_SWEEP:
        cover = difference_cover(v)
        report = QuorumScheme(v, cover=cover).replication_report()
        ratios[str(v)] = {
            "cover_kind": cover.kind,
            "cover_size": cover.size,
            "optimality_ratio": report.optimality_ratio,
        }
    headline = skew_headline()
    return {
        "ratios": ratios,
        "analytic_ws_reduction": headline["analytic_ws_reduction"],
        "quorum_shuffle_bytes": headline["end_to_end"]["quorum_skew_aware"][
            "shuffle_bytes"
        ],
        "design_shuffle_bytes": headline["end_to_end"]["design"]["shuffle_bytes"],
    }


def write_baseline() -> dict:
    measured = guard_measurements()
    ratio_ceilings = {}
    for v, entry in measured["ratios"].items():
        if entry["cover_kind"] == "perfect":
            ratio_ceilings[v] = PERFECT_RATIO_CEILING
        else:
            # Greedy covers are deterministic; a 2% margin still trips on
            # any construction regression (one extra member moves the
            # ratio by ≥ 10%).
            ratio_ceilings[v] = round(entry["optimality_ratio"] * 1.02, 3)
    baseline = {
        "workload": {
            "v_sweep": list(V_SWEEP),
            "skew": {
                "v": SKEW_V,
                "heavy_count": HEAVY_COUNT,
                "heavy_bytes": HEAVY_BYTES,
                "light_bytes": LIGHT_BYTES,
                "seed": SKEW_SEED,
            },
        },
        "measured": measured,
        "ceilings": {
            "optimality_ratio": ratio_ceilings,
            "min_skew_reduction": MIN_SKEW_REDUCTION,
            "shuffle_bytes_vs_design": round(
                measured["quorum_shuffle_bytes"]
                / measured["design_shuffle_bytes"]
                * 1.05,
                3,
            ),
        },
    }
    BASELINE_PATH.parent.mkdir(exist_ok=True)
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    return baseline


def run_guard() -> dict:
    baseline = json.loads(BASELINE_PATH.read_text())
    ceilings = baseline["ceilings"]
    measured = guard_measurements()
    failures = []
    for v, ceiling in ceilings["optimality_ratio"].items():
        got = measured["ratios"][v]["optimality_ratio"]
        if got > ceiling:
            failures.append(
                f"v={v}: optimality ratio {got:.3f} exceeds ceiling {ceiling}"
            )
    for v, entry in measured["ratios"].items():
        if entry["cover_kind"] == "perfect" and entry["optimality_ratio"] > PERFECT_RATIO_CEILING:
            failures.append(
                f"v={v}: perfect cover drifted off the bound "
                f"({entry['optimality_ratio']:.3f} > {PERFECT_RATIO_CEILING})"
            )
    if measured["analytic_ws_reduction"] < ceilings["min_skew_reduction"]:
        failures.append(
            f"skew working-set reduction {measured['analytic_ws_reduction']:.1%} "
            f"below the {ceilings['min_skew_reduction']:.0%} floor"
        )
    shuffle_ratio = (
        measured["quorum_shuffle_bytes"] / measured["design_shuffle_bytes"]
    )
    if shuffle_ratio > ceilings["shuffle_bytes_vs_design"]:
        failures.append(
            f"quorum/design shuffle-bytes ratio {shuffle_ratio:.3f} exceeds "
            f"ceiling {ceilings['shuffle_bytes_vs_design']}"
        )
    assert not failures, "; ".join(failures)
    return {"measured": measured, "ceilings": ceilings}


def test_replication(benchmark):
    metrics = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    assert metrics["skew_headline"]["analytic_ws_reduction"] >= MIN_SKEW_REDUCTION
    perfect = [e for e in metrics["sweep"] if e["cover_kind"] == "perfect"]
    assert all(
        e["quorum"]["optimality_ratio"] <= PERFECT_RATIO_CEILING for e in perfect
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorter v sweep (CI artifact mode)",
    )
    parser.add_argument(
        "--guard",
        action="store_true",
        help="assert ratios/reductions against baselines/replication.json",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="re-measure and rewrite the guard baseline",
    )
    arguments = parser.parse_args()
    if arguments.write_baseline:
        print(json.dumps(write_baseline(), indent=2))
    elif arguments.guard:
        print(json.dumps(run_guard(), indent=2))
    else:
        print(json.dumps(run_sweep(quick=arguments.quick), indent=2))
