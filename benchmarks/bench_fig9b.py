"""F9b — Figure 9(b): base-set size limits, all approaches compared.

Regenerates the head-to-head chart at the paper's fixed limits
(maxws = 200 MB, maxis = 1 TB): the maximum dataset cardinality per
scheme over element sizes 10¹…10⁴ KB.

Shape asserted (the paper's two observations):
1. "the broadcast approach is only reasonable for smaller datasets" —
   lowest curve everywhere;
2. "the design and block approach have a cross-over point and for large
   elements (> 1 MB) the design approach allows a few more elements" —
   block wins below 1 MB, design above, crossing exactly at 1 MB.
"""

from __future__ import annotations

from harness import format_table, write_report

from repro._util import KB, MB
from repro.core.cost_model import (
    PAPER_MAXIS,
    PAPER_MAXWS,
    design_block_crossover,
    fig9b_curves,
    log_spaced_sizes,
)

SIZES = log_spaced_sizes(10 * KB, 10_000 * KB, per_decade=3)


def compute():
    return fig9b_curves(SIZES, PAPER_MAXWS, PAPER_MAXIS)


def test_fig9b_scheme_comparison(benchmark):
    points = benchmark(compute)

    crossover = design_block_crossover(PAPER_MAXWS, PAPER_MAXIS)
    assert abs(crossover - 1 * MB) < 1  # the paper's 1 MB crossover

    for point in points:
        # Observation 1: broadcast admits the fewest elements everywhere.
        assert point.broadcast <= point.block
        assert point.broadcast <= point.design
        # Observation 2: block vs design flips at the crossover.
        if point.element_size < crossover * 0.99:
            assert point.block > point.design, point
        elif point.element_size > crossover * 1.01:
            assert point.design > point.block, point

    # "a few more elements": the win above the crossover is a modest factor,
    # not an order of magnitude, at 10 MB elements.
    at_10mb = next(p for p in points if p.element_size == 10_000 * KB)
    assert 1 < at_10mb.design / at_10mb.block < 5

    rows = [
        [p.element_size // KB, p.broadcast, p.block, p.design, p.design_strict]
        for p in points
    ]
    from repro.report import loglog_chart

    chart = loglog_chart(
        {
            "broadcast": [(p.element_size, p.broadcast) for p in points],
            "block": [(p.element_size, p.block) for p in points],
            "design": [(p.element_size, p.design) for p in points],
        },
        x_label="element size (bytes)",
        y_label="max v",
    )
    write_report(
        "fig9b",
        "Fig 9b — max(v) per scheme (maxws=200MB, maxis=1TB); "
        "design_strict additionally applies the unplotted design maxws bound",
        format_table(
            ["elem_KB", "broadcast", "block", "design", "design_strict"], rows
        )
        + "\n\n" + chart,
    )
