"""T1 — Table 1: comparison of distribution schemes.

Regenerates the paper's Table 1 for concrete parameterizations: the three
schemes' number of tasks, communication costs, replication factor, working
set size, and evaluations per task — both the closed forms and the values
measured on actually-constructed schemes (they must agree).

Paper's qualitative shape asserted below:
- broadcast: arbitrary tasks (✓), comm 2vp (✗ scales with p), repl p (✓
  small), ws v (✗), evals T/p (✓);
- block: comm 2vh (✓), repl h (✓ tunable), ws 2⌈v/h⌉ (✓), evals ⌈v/h⌉² (✓);
- design: tasks ≥ v (✗ not tunable), comm ≈ 2v√v (✗), repl ≈ √v (✗),
  ws ≈ √v (✓), evals ≈ (v−1)/2 (✓).
"""

from __future__ import annotations

import math

from harness import format_table, write_report

from repro._util import KB
from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.cost_model import block_row, broadcast_row, design_row
from repro.core.design import DesignScheme

V = 2_000
P = 16  # broadcast tasks (nodes)
H = 20  # blocking factor
ELEMENT_SIZE = 100 * KB


def build_table1() -> list:
    """All three Table-1 rows, from the real constructed schemes."""
    return [
        BroadcastScheme(V, P).metrics(),
        BlockScheme(V, H).metrics(),
        DesignScheme(V, num_nodes=P).metrics(),
    ]


def test_table1_closed_forms_match_constructions(benchmark):
    rows = benchmark(build_table1)
    broadcast, block, design = rows

    # Closed forms agree with constructed schemes (broadcast/block exactly;
    # the default padded design row tracks the real padded construction to
    # within the truncation loss, not the old √v approximation).
    assert broadcast == broadcast_row(V, P)
    assert block == block_row(V, H)
    approx = design_row(V, num_nodes=P)
    assert math.isclose(design.replication_factor, approx.replication_factor, rel_tol=0.01)
    assert design.working_set_elements == approx.working_set_elements

    # --- the paper's Table-1 shape ------------------------------------------
    # Communication: broadcast 2vp, block 2vh, design ≈ 2v√v capped at 2vn.
    assert broadcast.communication_records == 2 * V * P
    assert block.communication_records == 2 * V * H
    assert design.communication_records <= 2 * V * P  # the 2vn cap

    # Replication: block's h is tunable and modest; design's ≈ √v is large.
    assert block.replication_factor == H
    assert design.replication_factor > 2 * block.replication_factor / 2

    # Working set: broadcast holds everything; design ≈ √v is the smallest.
    assert broadcast.working_set_elements == V
    assert design.working_set_elements < block.working_set_elements < V

    # Balance: every scheme's evals/task times tasks covers the triangle.
    total = V * (V - 1) / 2
    for row in rows:
        assert row.evaluations_per_task * row.num_tasks >= total * 0.99

    table = format_table(
        ["metric", "broadcast", "block", "design"],
        [
            ["tasks (p)", broadcast.num_tasks, block.num_tasks, design.num_tasks],
            [
                "communication (records)",
                broadcast.communication_records,
                block.communication_records,
                design.communication_records,
            ],
            [
                "replication factor",
                broadcast.replication_factor,
                block.replication_factor,
                round(design.replication_factor, 2),
            ],
            [
                "working set (elements)",
                broadcast.working_set_elements,
                block.working_set_elements,
                design.working_set_elements,
            ],
            [
                "evaluations per task",
                round(broadcast.evaluations_per_task, 1),
                round(block.evaluations_per_task, 1),
                round(design.evaluations_per_task, 1),
            ],
            [
                "working set (bytes)",
                broadcast.working_set_bytes(ELEMENT_SIZE),
                block.working_set_bytes(ELEMENT_SIZE),
                design.working_set_bytes(ELEMENT_SIZE),
            ],
            [
                "intermediate (bytes)",
                broadcast.intermediate_bytes(ELEMENT_SIZE),
                block.intermediate_bytes(ELEMENT_SIZE),
                design.intermediate_bytes(ELEMENT_SIZE),
            ],
        ],
    )
    # Distance from the replication lower bound, per scheme, at each
    # scheme's own working-set capacity (Afrati/Ullman (v−1)/(q−1)).
    bound_lines = "\n".join(
        scheme.replication_report().summary()
        for scheme in (BroadcastScheme(V, P), BlockScheme(V, H), DesignScheme(V, num_nodes=P))
    )
    write_report(
        "table1",
        f"Table 1 — scheme comparison at v={V}, p={P}, h={H}, s={ELEMENT_SIZE}B",
        table + "\n\nreplication vs lower bound:\n" + bound_lines,
    )


def test_table1_symbolic_formulas(benchmark):
    """The closed-form generators themselves, across a parameter sweep."""

    def sweep():
        rows = []
        for v in (100, 1_000, 10_000, 100_000):
            rows.append(
                (
                    v,
                    broadcast_row(v, 16),
                    block_row(v, 20),
                    # padded=False: the paper's symbolic √v form, so the
                    # scaling-shape asserts below stay exact.
                    design_row(v, num_nodes=16, padded=False),
                )
            )
        return rows

    rows = benchmark(sweep)
    # Scaling shape: design replication grows as √v, block's stays constant.
    reps = [design.replication_factor for _v, _b, _bl, design in rows]
    assert math.isclose(reps[1] / reps[0], 10**0.5, rel_tol=1e-12)
    assert all(block.replication_factor == 20 for _v, _b, block, _d in rows)
