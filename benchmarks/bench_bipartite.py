"""A4 — extension bench: two-set (R × S) pairwise computation.

The paper's §1 notes its approaches generalize to pairing elements of one
set with another; this bench exercises that generalization: coverage of
the full rectangle, the block grid's replication trade-off (h_r, h_s),
and the broadcast variant's asymmetric shipping (R everywhere, S
sliced).
"""

from __future__ import annotations

from harness import format_table, write_report

from repro.core.bipartite import (
    BipartiteBlockScheme,
    BipartiteBroadcastScheme,
    brute_force_bipartite,
    check_bipartite_exactly_once,
    run_bipartite,
)

VR, VS = 40, 90


def inner(a, b):
    return a * b


def run_all():
    r = [float(i + 1) for i in range(VR)]
    s = [float(2 * j + 1) for j in range(VS)]
    reference = brute_force_bipartite(r, s, inner)
    rows = []
    for scheme in (
        BipartiteBroadcastScheme(VR, VS, 8),
        BipartiteBlockScheme(VR, VS, 4, 6),
        BipartiteBlockScheme(VR, VS, 8, 3),
    ):
        ok, msg = check_bipartite_exactly_once(scheme)
        assert ok, msg
        assert run_bipartite(r, s, inner, scheme) == reference
        m = scheme.metrics()
        rows.append(
            [
                scheme.describe(),
                m.num_tasks,
                m.communication_records,
                round(m.replication_r, 2),
                round(m.replication_s, 2),
                m.working_set_elements,
                round(m.evaluations_per_task, 1),
            ]
        )
    return rows


def test_bipartite_schemes(benchmark):
    rows = benchmark(run_all)

    # Grid trade-off: swapping (h_r, h_s) swaps the two replication factors.
    grid46 = rows[1]
    grid83 = rows[2]
    assert grid46[3] == 6 and grid46[4] == 4
    assert grid83[3] == 3 and grid83[4] == 8

    write_report(
        "bipartite",
        f"A4 — two-set pairwise (vr={VR}, vs={VS}): scheme comparison",
        format_table(
            ["scheme", "tasks", "comm", "repl_R", "repl_S", "ws", "evals/task"],
            rows,
        ),
    )


def test_bipartite_block_balance(benchmark):
    """Every grid task does exactly e_r·e_s evaluations — perfect balance
    when the factors divide evenly."""

    def profile():
        scheme = BipartiteBlockScheme(40, 90, 4, 6)
        return [len(scheme.get_pairs(t)) for t in range(scheme.num_tasks)]

    evals = benchmark(profile)
    assert max(evals) == min(evals) == 10 * 15
