"""P1 — persistent worker pool vs. the seed's per-phase pools.

The execution-layer rework keeps one ``ProcessPoolExecutor`` alive across
map/reduce phases and chained jobs, broadcasts each job's statics (mapper
factories, config, distributed cache) to every worker exactly once, and
streams pre-encoded shuffle chunks instead of re-measuring every record
on the driver.  This bench quantifies that rework against a faithful
replica of the seed engine on a cache-resident design-scheme document
similarity workload (≥8 input splits, two chained jobs):

- ``SeedMultiprocessEngine`` (defined below) reproduces the seed's
  dispatch semantics exactly: a fresh process pool per phase, the full
  ``Job`` — distributed cache included — pickled into every task spec,
  and the driver re-computing ``record_size`` over all gathered shuffle
  records.  Spec payloads are pre-pickled so bytes-pickled is metered at
  zero extra cost (the executor no longer has to pickle them itself).
- ``MultiprocessEngine`` is the reworked engine; its ``EngineStats``
  meters broadcast + spec bytes the same way.

Asserts the PR's acceptance bar: the pooled engine is ≥2× faster and
pickles ≥5× fewer bytes per pipeline run.  Writes
``results/engine_scaling.txt`` and the repo-root
``BENCH_engine_scaling.json`` consumed by CI.

Run standalone (``--quick`` for the fast, assertion-free CI variant):

    PYTHONPATH=src python benchmarks/bench_engine_scaling.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from harness import format_table, machine_info, write_report

from repro.apps.docsim import build_tfidf, cosine_similarity
from repro.core.design import DesignScheme
from repro.core.element import results_matrix
from repro.core.pairwise import PairwiseComputation
from repro.mapreduce import AUTO_SERIAL_MAX_RECORDS, MultiprocessEngine, SerialEngine
from repro.mapreduce.counters import (
    COMBINE_INPUT_RECORDS,
    COMBINE_OUTPUT_RECORDS,
    FRAMEWORK_GROUP,
    MAP_INPUT_RECORDS,
    MAP_OUTPUT_BYTES,
    MAP_OUTPUT_RECORDS,
    REDUCE_INPUT_GROUPS,
    REDUCE_INPUT_RECORDS,
    REDUCE_OUTPUT_RECORDS,
    SHUFFLE_BYTES,
    SHUFFLE_RECORDS,
    Counters,
)
from repro.mapreduce.job import Context, Job, JobResult, KeyValue, TaskFailedError
from repro.mapreduce.serialization import record_size
from repro.mapreduce.shuffle import partition_records, sort_and_group
from repro.mapreduce.splits import split_by_count
from repro.workloads.generator import make_documents

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_engine_scaling.json"

# Cache-heavy by construction: few elements with fat tf-idf vectors, split
# finely.  The seed engine ships one cache copy per task spec, so its cost
# scales with (splits + reducers) x cache size; the pooled engine broadcasts
# the cache once per worker per job.
V = 60
VOCABULARY = 20_000
DOC_LENGTH = 1500
NUM_MAP_TASKS = 24
NUM_REDUCE_TASKS = 8
REPEATS = 3
MAX_WORKERS = 2

QUICK_V = 40
QUICK_VOCABULARY = 2_000
QUICK_DOC_LENGTH = 200
QUICK_REPEATS = 1


# ---------------------------------------------------------------------------
# Seed-engine replica (pre-rework dispatch semantics, byte-metered).
#
# Copied from the seed revision of ``repro/mapreduce/runtime.py`` with two
# deliberate deviations, neither of which changes what is being measured:
# task specs are pre-pickled on the driver (the executor would otherwise do
# the identical pickling internally — doing it ourselves meters the bytes
# for free), and map/reduce dispatch goes through one worker entry point.
# ---------------------------------------------------------------------------


@dataclass
class _SeedMapSpec:
    job: Job
    records: list[KeyValue]
    num_partitions: int


@dataclass
class _SeedReduceSpec:
    job: Job
    records: list[KeyValue]


def _seed_map_attempt(spec: _SeedMapSpec) -> tuple[list[list[KeyValue]], dict]:
    job = spec.job
    counters = Counters()
    context = Context(counters, cache=job.cache, config=job.config)
    mapper = job.mapper()
    mapper.setup(context)
    for key, value in spec.records:
        counters.increment(FRAMEWORK_GROUP, MAP_INPUT_RECORDS)
        mapper.map(key, value, context)
    mapper.cleanup(context)
    output = context.drain()
    counters.increment(FRAMEWORK_GROUP, MAP_OUTPUT_RECORDS, len(output))
    counters.increment(
        FRAMEWORK_GROUP, MAP_OUTPUT_BYTES, sum(record_size(k, v) for k, v in output)
    )
    if job.combiner is not None:
        counters.increment(FRAMEWORK_GROUP, COMBINE_INPUT_RECORDS, len(output))
        combiner = job.combiner()
        combine_context = Context(counters, cache=job.cache, config=job.config)
        combiner.setup(combine_context)
        for key, values in sort_and_group(output, job.sort_key):
            combiner.reduce(key, values, combine_context)
        combiner.cleanup(combine_context)
        output = combine_context.drain()
        counters.increment(FRAMEWORK_GROUP, COMBINE_OUTPUT_RECORDS, len(output))
    if spec.num_partitions == 0:
        return [output], counters.as_dict()
    partitions = partition_records(output, spec.num_partitions, job.partitioner)
    return partitions, counters.as_dict()


def _seed_reduce_attempt(spec: _SeedReduceSpec) -> tuple[list[KeyValue], dict]:
    job = spec.job
    counters = Counters()
    context = Context(counters, cache=job.cache, config=job.config)
    reducer = job.reducer()
    reducer.setup(context)
    counters.increment(FRAMEWORK_GROUP, REDUCE_INPUT_RECORDS, len(spec.records))
    for key, values in sort_and_group(spec.records, job.sort_key):
        counters.increment(FRAMEWORK_GROUP, REDUCE_INPUT_GROUPS)
        if job.value_sort_key is not None:
            values = iter(sorted(values, key=job.value_sort_key))
        reducer.reduce(key, values, context)
    reducer.cleanup(context)
    output = context.drain()
    counters.increment(FRAMEWORK_GROUP, REDUCE_OUTPUT_RECORDS, len(output))
    return output, counters.as_dict()


def _seed_with_retries(kind: str, job: Job, attempt: Callable[[], Any]) -> Any:
    last_error: BaseException | None = None
    for attempt_number in range(1, job.max_attempts + 1):
        try:
            result, counters = attempt()
        except Exception as exc:  # noqa: BLE001 - task code may raise anything
            last_error = exc
            continue
        if attempt_number > 1:
            counters.setdefault(FRAMEWORK_GROUP, {})
            counters[FRAMEWORK_GROUP]["task_retries"] = (
                counters[FRAMEWORK_GROUP].get("task_retries", 0) + attempt_number - 1
            )
        return result, counters
    assert last_error is not None
    raise TaskFailedError(kind, job.max_attempts, last_error)


def _seed_run_spec(spec: _SeedMapSpec | _SeedReduceSpec) -> Any:
    if isinstance(spec, _SeedMapSpec):
        return _seed_with_retries("map", spec.job, lambda: _seed_map_attempt(spec))
    return _seed_with_retries("reduce", spec.job, lambda: _seed_reduce_attempt(spec))


def _seed_run_pickled(payload: bytes) -> Any:
    return _seed_run_spec(pickle.loads(payload))


class SeedMultiprocessEngine:
    """The seed's multiprocess engine: per-phase pools, fat task specs."""

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers
        self.bytes_pickled = 0
        self.pools_created = 0

    def close(self) -> None:  # Pipeline compatibility; nothing persistent
        pass

    def run(
        self,
        job: Job,
        input_records: Sequence[KeyValue] | None = None,
        *,
        splits=None,
        num_map_tasks: int | None = None,
    ) -> JobResult:
        if (input_records is None) == (splits is None):
            raise ValueError("provide exactly one of input_records or splits")
        if splits is None:
            if num_map_tasks is None:
                num_map_tasks = max(1, len(input_records) // 5000)
            splits = split_by_count(input_records, num_map_tasks)

        num_partitions = job.num_reducers if job.reducer is not None else 0
        map_specs = [
            _SeedMapSpec(job=job, records=split.records, num_partitions=num_partitions)
            for split in splits
        ]
        map_outputs = self._run_tasks(map_specs)

        counters = Counters()
        gathered: list[list[KeyValue]] = [[] for _ in range(max(1, num_partitions))]
        for partitions, counter_dict in map_outputs:
            counters.merge(Counters.from_dict(counter_dict))
            for index, part in enumerate(partitions):
                gathered[index].extend(part)

        if job.reducer is None:
            records = [record for part in gathered for record in part]
            return JobResult(
                records=records,
                counters=counters,
                num_map_tasks=len(splits),
                num_reduce_tasks=0,
            )

        # The seed's double accounting: the driver re-pickles every gathered
        # record to size the shuffle, although map tasks already measured it.
        shuffle_records = sum(len(part) for part in gathered)
        shuffle_bytes = sum(record_size(k, v) for part in gathered for k, v in part)
        counters.increment(FRAMEWORK_GROUP, SHUFFLE_RECORDS, shuffle_records)
        counters.increment(FRAMEWORK_GROUP, SHUFFLE_BYTES, shuffle_bytes)

        reduce_specs = [_SeedReduceSpec(job=job, records=part) for part in gathered]
        reduce_outputs = self._run_tasks(reduce_specs)
        records = []
        for output, counter_dict in reduce_outputs:
            counters.merge(Counters.from_dict(counter_dict))
            records.extend(output)
        return JobResult(
            records=records,
            counters=counters,
            num_map_tasks=len(splits),
            num_reduce_tasks=num_partitions,
        )

    def _run_tasks(self, specs: list[Any]) -> list[Any]:
        if len(specs) <= 1:
            return [_seed_run_spec(spec) for spec in specs]
        payloads = [
            pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL) for spec in specs
        ]
        self.bytes_pickled += sum(len(payload) for payload in payloads)
        self.pools_created += 1
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(_seed_run_pickled, payloads))


# ---------------------------------------------------------------------------
# Workload: cache-resident design-scheme document similarity.
# ---------------------------------------------------------------------------


def make_vectors(v: int, vocabulary: int, length: int) -> list[dict[str, float]]:
    return build_tfidf(
        make_documents(v, vocabulary=vocabulary, length=length, seed=7)
    )


def run_pipeline(engine, vectors):
    computation = PairwiseComputation(
        DesignScheme(len(vectors)),
        cosine_similarity,
        engine=engine,
        num_reduce_tasks=NUM_REDUCE_TASKS,
    )
    return computation.run_cached(vectors, num_map_tasks=NUM_MAP_TASKS)


def _bench_serial(vectors, repeats):
    best = float("inf")
    merged = None
    for _ in range(repeats):
        engine = SerialEngine()
        start = time.perf_counter()
        merged = run_pipeline(engine, vectors)
        best = min(best, time.perf_counter() - start)
    return best, 0, merged


def _bench_seed(vectors, repeats):
    best = float("inf")
    bytes_per_run = 0
    merged = None
    for _ in range(repeats):
        engine = SeedMultiprocessEngine(max_workers=MAX_WORKERS)
        start = time.perf_counter()
        merged = run_pipeline(engine, vectors)
        best = min(best, time.perf_counter() - start)
        bytes_per_run = engine.bytes_pickled
    return best, bytes_per_run, merged


def _bench_pooled(vectors, repeats):
    best = float("inf")
    bytes_per_run = 0
    merged = None
    for _ in range(repeats):
        # A fresh engine per repeat charges the pooled engine its full
        # startup cost (one pool + per-job broadcasts) on every run.
        engine = MultiprocessEngine(max_workers=MAX_WORKERS)
        start = time.perf_counter()
        merged = run_pipeline(engine, vectors)
        engine.close()
        best = min(best, time.perf_counter() - start)
        bytes_per_run = engine.stats.bytes_pickled
    return best, bytes_per_run, merged


def run_comparison(quick: bool = False) -> dict:
    if quick:
        v, vocabulary, length = QUICK_V, QUICK_VOCABULARY, QUICK_DOC_LENGTH
        repeats = QUICK_REPEATS
    else:
        v, vocabulary, length = V, VOCABULARY, DOC_LENGTH
        repeats = REPEATS
    vectors = make_vectors(v, vocabulary, length)

    serial_s, _, serial_merged = _bench_serial(vectors, repeats)
    seed_s, seed_bytes, seed_merged = _bench_seed(vectors, repeats)
    pooled_s, pooled_bytes, pooled_merged = _bench_pooled(vectors, repeats)

    # Honesty guard: all engines must produce the same pair results.
    reference = results_matrix(serial_merged)
    assert results_matrix(seed_merged) == reference
    assert results_matrix(pooled_merged) == reference

    speedup = seed_s / pooled_s
    bytes_reduction = seed_bytes / pooled_bytes
    metrics = {
        "machine": machine_info(repeats=repeats),
        "workload": {
            "scheme": "design",
            "pair_function": "cosine_similarity",
            "v": v,
            "vocabulary": vocabulary,
            "doc_length": length,
            "num_map_tasks": NUM_MAP_TASKS,
            "num_reduce_tasks": NUM_REDUCE_TASKS,
            "max_workers": MAX_WORKERS,
            "repeats": repeats,
            "quick": quick,
        },
        "engines": {
            "serial": {"seconds": serial_s},
            "seed_multiprocess": {
                "seconds": seed_s,
                "bytes_pickled_per_run": seed_bytes,
            },
            "pooled_multiprocess": {
                "seconds": pooled_s,
                "bytes_pickled_per_run": pooled_bytes,
            },
        },
        "speedup_pooled_vs_seed": speedup,
        "bytes_pickled_reduction": bytes_reduction,
        # The small-scale crossover: at this workload size even the pooled
        # engine loses to plain serial execution — process startup, job
        # broadcasts and record codecs cost more than the parallel compute
        # saves.  Engine.auto() picks serial below this record threshold.
        "serial_beats_pooled": serial_s < pooled_s,
        "speedup_pooled_vs_serial": serial_s / pooled_s,
        "auto_serial_max_records": AUTO_SERIAL_MAX_RECORDS,
    }

    rows = [
        ["serial", f"{serial_s:.3f}", "-", "-"],
        ["seed multiprocess", f"{seed_s:.3f}", seed_bytes, "1.00"],
        [
            "pooled multiprocess",
            f"{pooled_s:.3f}",
            pooled_bytes,
            f"{speedup:.2f}",
        ],
    ]
    crossover_note = (
        f"serial still beats pooled at this scale ({serial_s:.2f}s vs "
        f"{pooled_s:.2f}s) — Engine.auto() picks serial below "
        f"{AUTO_SERIAL_MAX_RECORDS} records"
        if serial_s < pooled_s
        else f"pooled beats serial at this scale ({pooled_s:.2f}s vs {serial_s:.2f}s)"
    )
    write_report(
        "engine_scaling",
        f"P1 — persistent pool vs per-phase pools "
        f"(design scheme, v={v}, {NUM_MAP_TASKS} splits, "
        f"{MAX_WORKERS} workers, best of {repeats}); "
        f"bytes pickled per run reduced {bytes_reduction:.1f}x; "
        f"{crossover_note}",
        format_table(["engine", "seconds", "bytes pickled/run", "speedup vs seed"], rows),
    )
    JSON_PATH.write_text(json.dumps(metrics, indent=2) + "\n")

    if not quick:
        assert speedup >= 2.0, f"pooled engine only {speedup:.2f}x faster than seed"
        assert bytes_reduction >= 5.0, (
            f"bytes pickled only reduced {bytes_reduction:.2f}x"
        )
    return metrics


def test_engine_scaling(benchmark):
    metrics = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    assert metrics["speedup_pooled_vs_seed"] >= 2.0
    assert metrics["bytes_pickled_reduction"] >= 5.0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workload, single repeat, no perf assertions (CI artifact mode)",
    )
    arguments = parser.parse_args()
    results = run_comparison(quick=arguments.quick)
    print(json.dumps(results, indent=2))
