"""F8a — Figure 8(a): base-set size limit for the broadcast approach.

Regenerates the paper's chart: the maximum dataset cardinality ``max(v)``
before a broadcast working set (the whole dataset) exceeds per-task memory
``maxws``, as a function of element size (10¹…10⁴ KB, log-log), for
maxws ∈ {200 MB, 400 MB, 1 GB}.

Shape asserted: each curve is max(v) = maxws/s — a straight line of slope
−1 on the log-log chart — and doubling maxws doubles max(v) everywhere.
"""

from __future__ import annotations

from harness import format_table, write_report

from repro._util import GB, KB, MB
from repro.core.cost_model import log_spaced_sizes, max_v_broadcast

MAXWS_VALUES = [200 * MB, 400 * MB, 1 * GB]
SIZES = log_spaced_sizes(10 * KB, 10_000 * KB, per_decade=3)


def compute_curves():
    return {
        maxws: [max_v_broadcast(s, maxws) for s in SIZES] for maxws in MAXWS_VALUES
    }


def test_fig8a_broadcast_working_set_limit(benchmark):
    curves = benchmark(compute_curves)

    for maxws, values in curves.items():
        # Monotone decreasing in element size; exact hyperbola maxws/s.
        assert values == sorted(values, reverse=True)
        for s, v in zip(SIZES, values):
            assert v == maxws // s

    # Doubling memory doubles capacity (the chart's parallel lines).
    for v200, v400 in zip(curves[200 * MB], curves[400 * MB]):
        assert abs(v400 - 2 * v200) <= 1

    # Paper-scale anchor: 500 KB elements on a 200 MB slot → only 400
    # elements; broadcast is "only reasonable for smaller datasets".
    assert max_v_broadcast(500 * KB, 200 * MB) == 400

    rows = [
        [s // KB] + [curves[m][i] for m in MAXWS_VALUES]
        for i, s in enumerate(SIZES)
    ]
    from repro.report import loglog_chart

    chart = loglog_chart(
        {
            "200MB": list(zip(SIZES, curves[200 * MB])),
            "400MB": list(zip(SIZES, curves[400 * MB])),
            "1GB": list(zip(SIZES, curves[1 * GB])),
        },
        x_label="element size (bytes)",
        y_label="max v (broadcast)",
    )
    write_report(
        "fig8a",
        "Fig 8a — max(v) before broadcast hits maxws (element size in KB)",
        format_table(
            ["elem_KB", "maxws=200MB", "maxws=400MB", "maxws=1GB"], rows
        )
        + "\n\n" + chart,
    )
