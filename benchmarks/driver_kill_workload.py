"""Journaled workload for the driver-kill recovery benchmark.

The benchmark SIGKILLs a real driver subprocess mid-map-phase and then
resumes the journal in the parent.  The job spec pickle written by the
killed driver references these classes, so they must be importable under
the same stable module path (``driver_kill_workload``) in both
processes — the parent adds ``benchmarks/`` to ``sys.path`` implicitly
by running the bench script; the child runs with ``cwd=benchmarks/``.

Usable standalone:

    PYTHONPATH=src python benchmarks/driver_kill_workload.py JOURNAL_DIR [PACE]
"""

from __future__ import annotations

import json
import sys
import time

from repro.mapreduce import Job, Mapper, MultiprocessEngine, Reducer

NUM_RECORDS = 128
NUM_MAP_TASKS = 8
NUM_REDUCERS = 4


class PacedMapper(Mapper):
    """Spread each map task's work over ``config["seconds_per_task"]``.

    Pacing gives the parent a wide, deterministic window to kill the
    driver after a chosen fraction of map results are durable.
    """

    def map(self, key, value, context):
        pace = context.config.get("seconds_per_task", 0.0)
        if pace:
            time.sleep(pace / max(1, NUM_RECORDS // NUM_MAP_TASKS))
        context.emit(key % 16, value * 7 + 3)


class StatsReducer(Reducer):
    def reduce(self, key, values, context):
        values = list(values)
        context.emit(key, (len(values), sum(values)))


def make_records():
    return [(i, i) for i in range(NUM_RECORDS)]


def make_job(seconds_per_task: float = 0.0) -> Job:
    config = {"seconds_per_task": seconds_per_task} if seconds_per_task else {}
    return Job(
        name="driver-kill",
        mapper=PacedMapper,
        reducer=StatsReducer,
        num_reducers=NUM_REDUCERS,
        config=config,
    )


def main(argv):
    """Subprocess entry: run one journaled job, print the sorted records."""
    journal_dir = argv[0]
    pace = float(argv[1]) if len(argv) > 1 else 0.0
    engine = MultiprocessEngine(max_workers=2, journal_dir=journal_dir)
    try:
        result = engine.run(
            make_job(pace), make_records(), num_map_tasks=NUM_MAP_TASKS
        )
        print(json.dumps(sorted(result.records)))
    finally:
        engine.close()


if __name__ == "__main__":  # pragma: no cover - subprocess helper
    main(sys.argv[1:])
