"""A9 — scalability: model-predicted speedup vs the discrete simulator.

The paper's "no node should ever be idle" claim (§6, Number of Tasks)
made quantitative: speedup curves S(n) for the three schemes from the
closed-form model, cross-checked against the LPT simulator, with the
per-scheme parallelism ceilings (task counts) visible as saturation.
"""

from __future__ import annotations

from harness import format_table, write_report

from repro._util import KB, MB
from repro.cluster import ClusterSimulator, ClusterSpec, NodeSpec
from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.design import DesignScheme
from repro.core.speedup import MachineModel, max_useful_nodes, speedup_curve

V = 1_000
S = 50 * KB
NODES = [1, 2, 4, 8, 16, 32]
MACHINE = MachineModel(eval_seconds=1e-4, bandwidth=100 * MB, slots_per_node=2)


def model_curves():
    schemes = {
        "broadcast(p=16)": BroadcastScheme(V, 16),
        "block(h=20)": BlockScheme(V, 20),
        "design": DesignScheme(V),
    }
    return {
        label: (scheme, speedup_curve(scheme.metrics(), S, NODES, MACHINE))
        for label, scheme in schemes.items()
    }


def test_model_speedup_shapes(benchmark):
    curves = benchmark(model_curves)

    rows = []
    for label, (scheme, points) in curves.items():
        ceiling = max_useful_nodes(scheme.metrics(), MACHINE.slots_per_node)
        for point in points:
            rows.append(
                [label, point.nodes, round(point.speedup, 2),
                 f"{point.efficiency:.0%}", ceiling]
            )
        # Sub-linear, monotone speedup everywhere.
        speedups = [p.speedup for p in points]
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
        assert all(p.speedup <= p.nodes + 1e-9 for p in points)

    # Broadcast (16 tasks) saturates by 8 nodes; block/design keep going.
    broadcast_points = curves["broadcast(p=16)"][1]
    s8 = next(p.speedup for p in broadcast_points if p.nodes == 8)
    s32 = next(p.speedup for p in broadcast_points if p.nodes == 32)
    assert s32 / s8 < 1.6  # nearly flat past its task count
    design_points = curves["design"][1]
    d8 = next(p.speedup for p in design_points if p.nodes == 8)
    d32 = next(p.speedup for p in design_points if p.nodes == 32)
    assert d32 / d8 > 2.0  # still scaling: tasks ≫ slots

    write_report(
        "speedup",
        f"A9 — model speedup curves (v={V}, s={S}B)",
        format_table(["scheme", "nodes", "speedup", "efficiency", "task ceiling"], rows),
    )


def test_simulator_agrees_with_model_trend(benchmark):
    """The discrete LPT simulator shows the same saturation ordering."""

    def simulate():
        out = {}
        for label, scheme in (
            ("broadcast", BroadcastScheme(V, 16)),
            ("design", DesignScheme(V)),
        ):
            times = {}
            for nodes in (2, 16):
                cluster = ClusterSpec.homogeneous(
                    nodes, NodeSpec(slots=2, eval_rate=1e4)
                )
                sim = ClusterSimulator(cluster)
                times[nodes] = sim.simulate(scheme, S).measured.makespan_seconds
            out[label] = times[2] / times[16]  # realized 2→16 speedup
        return out

    gains = benchmark(simulate)
    # Design (many small tasks) gains close to 8× from 2→16 nodes;
    # broadcast (16 tasks) gains far less.
    assert gains["design"] > gains["broadcast"]
    assert gains["design"] > 4.0
