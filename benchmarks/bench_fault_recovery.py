"""P2 — fault recovery: injected failures vs fault-free wall clock.

The fault-tolerance PR threads a deterministic :class:`FaultPlan` through
both engines, absorbs first-attempt failures inside the ``max_attempts``
retry budget, and races speculative backups against injected stragglers.
This bench runs the paper's design-scheme document-similarity workload on
the pooled engine at injected failure rates {0%, 5%, 15%} (each selected
task's first attempt crashes *and* stalls; retries and backups run clean)
and reports:

- wall-clock overhead relative to the fault-free run,
- recovery work actually performed (task retries, total attempts,
  speculative backups launched and wasted, pool restarts),
- an honesty guard: every faulty run must produce the bit-identical
  pair matrix of a fault-free ``SerialEngine`` reference.

``--driver-kill`` runs the journal PR's headline scenario instead:
SIGKILL a real journaled driver subprocess after 25/50/75% of its map
results are durable, resume from the journal in-process, and report the
fraction of map work salvaged (never re-run) at each kill point — with
the same bit-identical honesty guard against an uninterrupted run.

Writes ``results/fault_recovery.txt`` and the repo-root
``BENCH_fault_recovery.json`` consumed by CI (``--driver-kill`` merges a
``driver_kill`` section into the same JSON).

Run standalone (``--quick`` for the fast CI variant):

    PYTHONPATH=src python benchmarks/bench_fault_recovery.py [--quick|--driver-kill]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from harness import format_table, machine_info, write_report

from repro.apps.docsim import build_tfidf, cosine_similarity
from repro.core.design import DesignScheme
from repro.core.element import results_matrix
from repro.core.pairwise import PairwiseComputation
from repro.mapreduce import FaultPlan, MultiprocessEngine, SerialEngine
from repro.mapreduce.counters import FRAMEWORK_GROUP
from repro.mapreduce.runtime import TASK_ATTEMPTS, TASK_RETRIES
from repro.workloads.generator import make_documents

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_fault_recovery.json"

FAILURE_RATES = (0.0, 0.05, 0.15)
# Chosen so both rates draw at least one crash and one slow fault across
# the 12 map + 4 reduce task indexes (5%: map 11 slow+crash; 15% adds
# crashes on map 1/9 and a slow map 4).
SEED = 5
MAX_ATTEMPTS = 3
MAX_WORKERS = 2

V = 40
VOCABULARY = 2_000
DOC_LENGTH = 300
NUM_MAP_TASKS = 12
NUM_REDUCE_TASKS = 4
REPEATS = 3
SLOW_SECONDS = 0.25

QUICK_V = 24
QUICK_VOCABULARY = 500
QUICK_DOC_LENGTH = 100
QUICK_REPEATS = 1
QUICK_SLOW_SECONDS = 0.15


def make_vectors(v: int, vocabulary: int, length: int) -> list[dict[str, float]]:
    """Deterministic tf-idf vectors for the design-scheme workload."""
    return build_tfidf(
        make_documents(v, vocabulary=vocabulary, length=length, seed=7)
    )


def fault_plan(rate: float, slow_seconds: float) -> FaultPlan | None:
    """Seeded plan: each selected task's first attempt crashes and stalls."""
    if rate == 0.0:
        return None
    return FaultPlan(
        seed=SEED,
        crash_rate=rate,
        slow_rate=rate,
        slow_seconds=slow_seconds,
    )


def run_once(engine, vectors, plan: FaultPlan | None):
    """One pipeline run; returns (elements, merged_framework_counters)."""
    config = {
        "speculative_execution": True,
        "speculative_multiplier": 2.0,
        "speculative_fraction": 1.0,
    }
    if plan is not None:
        config["fault_plan"] = plan
    computation = PairwiseComputation(
        DesignScheme(len(vectors)),
        cosine_similarity,
        engine=engine,
        num_reduce_tasks=NUM_REDUCE_TASKS,
        runtime_config=config,
        max_attempts=MAX_ATTEMPTS,
    )
    elements, pipeline = computation.run_cached(
        vectors, num_map_tasks=NUM_MAP_TASKS, return_pipeline=True
    )
    framework = pipeline.counters.as_dict().get(FRAMEWORK_GROUP, {})
    return elements, framework


def bench_rate(vectors, rate: float, repeats: int, slow_seconds: float) -> dict:
    """Best-of-``repeats`` timing for one injected failure rate."""
    plan = fault_plan(rate, slow_seconds)
    best = float("inf")
    elements = framework = stats = None
    for _ in range(repeats):
        # A fresh engine per repeat so pool startup and recovery costs are
        # charged identically at every rate.
        engine = MultiprocessEngine(max_workers=MAX_WORKERS)
        start = time.perf_counter()
        elements, framework = run_once(engine, vectors, plan)
        engine.close()
        best = min(best, time.perf_counter() - start)
        stats = engine.stats
    return {
        "failure_rate": rate,
        "fault_plan": plan.describe() if plan is not None else "none",
        "seconds": best,
        "task_retries": framework.get(TASK_RETRIES, 0),
        "task_attempts": framework.get(TASK_ATTEMPTS, 0),
        "speculative_launched": stats.speculative_launched,
        "speculative_wasted": stats.speculative_wasted,
        "pool_restarts": stats.pool_restarts,
        "_elements": elements,
    }


def run_comparison(quick: bool = False) -> dict:
    """Run the sweep, enforce the honesty guard, persist the artifacts."""
    if quick:
        v, vocabulary, length = QUICK_V, QUICK_VOCABULARY, QUICK_DOC_LENGTH
        repeats, slow_seconds = QUICK_REPEATS, QUICK_SLOW_SECONDS
    else:
        v, vocabulary, length = V, VOCABULARY, DOC_LENGTH
        repeats, slow_seconds = REPEATS, SLOW_SECONDS
    vectors = make_vectors(v, vocabulary, length)

    # Fault-free serial reference: every faulty run must reproduce it.
    serial_elements, _ = run_once(SerialEngine(), vectors, None)
    reference = results_matrix(serial_elements)

    runs = []
    for rate in FAILURE_RATES:
        run = bench_rate(vectors, rate, repeats, slow_seconds)
        assert results_matrix(run.pop("_elements")) == reference, (
            f"faulty run at rate {rate:.0%} diverged from the fault-free "
            "serial reference"
        )
        runs.append(run)

    baseline = runs[0]["seconds"]
    for run in runs:
        run["overhead_vs_fault_free"] = run["seconds"] / baseline

    metrics = {
        "machine": machine_info(repeats=repeats),
        "workload": {
            "scheme": "design",
            "pair_function": "cosine_similarity",
            "v": v,
            "vocabulary": vocabulary,
            "doc_length": length,
            "num_map_tasks": NUM_MAP_TASKS,
            "num_reduce_tasks": NUM_REDUCE_TASKS,
            "max_workers": MAX_WORKERS,
            "max_attempts": MAX_ATTEMPTS,
            "slow_seconds": slow_seconds,
            "seed": SEED,
            "repeats": repeats,
            "quick": quick,
        },
        "runs": runs,
    }

    rows = [
        [
            f"{run['failure_rate']:.0%}",
            f"{run['seconds']:.3f}",
            f"{run['overhead_vs_fault_free']:.2f}x",
            run["task_retries"],
            run["speculative_launched"],
            run["speculative_wasted"],
            run["pool_restarts"],
        ]
        for run in runs
    ]
    write_report(
        "fault_recovery",
        f"P2 — fault recovery overhead (design scheme, v={v}, "
        f"{NUM_MAP_TASKS} splits, {MAX_WORKERS} workers, "
        f"max_attempts={MAX_ATTEMPTS}, best of {repeats}); all runs "
        "bit-identical to the fault-free serial reference",
        format_table(
            [
                "failure rate",
                "seconds",
                "overhead",
                "retries",
                "spec launched",
                "spec wasted",
                "pool restarts",
            ],
            rows,
        ),
    )
    JSON_PATH.write_text(json.dumps(metrics, indent=2) + "\n")

    # Shape assertions: injected faults must actually exercise recovery.
    faulty = runs[-1]
    assert faulty["task_retries"] > 0, "15% rate injected no failures"
    assert faulty["task_attempts"] > runs[0]["task_attempts"]
    return metrics


# ---------------------------------------------------------------------------
# Driver-kill recovery scenario (journal PR).
# ---------------------------------------------------------------------------

KILL_FRACTIONS = (0.25, 0.5, 0.75)
DRIVER_KILL_PACE = 0.5
QUICK_DRIVER_KILL_PACE = 0.3


def _kill_driver_at(journal_dir: Path, target_map_results: int, pace: float):
    """Launch a journaled driver subprocess; SIGKILL it once the journal
    holds ``target_map_results`` durable map results."""
    from repro.mapreduce.journal import JOURNAL_NAME, read_journal

    bench_dir = Path(__file__).resolve().parent
    child = subprocess.Popen(
        [
            sys.executable,
            "-c",
            "import sys; import driver_kill_workload as w; w.main(sys.argv[1:])",
            str(journal_dir),
            str(pace),
        ],
        cwd=bench_dir,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        journal_path = journal_dir / JOURNAL_NAME
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if child.poll() is not None:
                raise RuntimeError("driver finished before the kill point")
            done = 0
            if journal_path.exists():
                done = sum(
                    1
                    for record in read_journal(journal_path)
                    if record["type"] == "map_result"
                )
            if done >= target_map_results:
                break
            time.sleep(0.02)
        else:
            raise RuntimeError("driver never reached the kill point")
        os.kill(child.pid, signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()


def run_driver_kill(quick: bool = False) -> dict:
    """SIGKILL a journaled driver at each kill fraction, resume, report."""
    import driver_kill_workload as workload  # benchmarks/ is on sys.path

    from repro.mapreduce import resume_job

    pace = QUICK_DRIVER_KILL_PACE if quick else DRIVER_KILL_PACE
    reference = SerialEngine().run(
        workload.make_job(),
        workload.make_records(),
        num_map_tasks=workload.NUM_MAP_TASKS,
    )

    scenarios = []
    for fraction in KILL_FRACTIONS:
        target = max(1, int(workload.NUM_MAP_TASKS * fraction))
        scratch = Path(tempfile.mkdtemp(prefix="repro-driver-kill-"))
        try:
            journal_dir = scratch / "journal"
            _kill_driver_at(journal_dir, target, pace)
            start = time.perf_counter()
            outcome = resume_job(journal_dir, max_workers=MAX_WORKERS)
            resume_seconds = time.perf_counter() - start
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        assert sorted(outcome.result.records) == sorted(reference.records), (
            f"resume after kill at {fraction:.0%} diverged from the "
            "uninterrupted reference"
        )
        counters = outcome.result.counters.as_dict()
        assert counters == reference.counters.as_dict(), (
            f"resume after kill at {fraction:.0%} drifted job counters"
        )
        assert outcome.tasks_resumed >= 1, "no map work salvaged"
        scenarios.append(
            {
                "kill_after_fraction": fraction,
                "killed_after_map_results": target,
                "tasks_resumed": outcome.tasks_resumed,
                "tasks_replayed": outcome.tasks_replayed,
                "salvaged_fraction": outcome.tasks_resumed
                / workload.NUM_MAP_TASKS,
                "resume_seconds": resume_seconds,
            }
        )

    metrics = {
        "machine": machine_info(repeats=1),
        "workload": {
            "num_records": workload.NUM_RECORDS,
            "num_map_tasks": workload.NUM_MAP_TASKS,
            "num_reducers": workload.NUM_REDUCERS,
            "seconds_per_map_task": pace,
            "max_workers": MAX_WORKERS,
            "quick": quick,
        },
        "scenarios": scenarios,
    }

    rows = [
        [
            f"{run['kill_after_fraction']:.0%}",
            run["killed_after_map_results"],
            run["tasks_resumed"],
            run["tasks_replayed"],
            f"{run['salvaged_fraction']:.0%}",
            f"{run['resume_seconds']:.3f}",
        ]
        for run in scenarios
    ]
    write_report(
        "fault_recovery_driver_kill",
        f"P7 — driver-kill resume (journaled, {workload.NUM_MAP_TASKS} map "
        f"tasks, pace {pace}s/task); every resume bit-identical to the "
        "uninterrupted reference",
        format_table(
            [
                "kill point",
                "durable maps",
                "resumed",
                "replayed",
                "salvaged",
                "resume s",
            ],
            rows,
        ),
    )
    merged = json.loads(JSON_PATH.read_text()) if JSON_PATH.exists() else {}
    merged["driver_kill"] = metrics
    JSON_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    return metrics


def test_fault_recovery(benchmark):
    metrics = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    assert metrics["runs"][-1]["task_retries"] > 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workload, single repeat (CI artifact mode)",
    )
    parser.add_argument(
        "--driver-kill",
        action="store_true",
        help="SIGKILL a journaled driver at 25/50/75%% map completion and "
        "measure resume salvage instead of the failure-rate sweep",
    )
    arguments = parser.parse_args()
    if arguments.driver_kill:
        results = run_driver_kill(quick=arguments.quick)
    else:
        results = run_comparison(quick=arguments.quick)
    print(json.dumps(results, indent=2))
