"""A1 — ablation: §7 hierarchical schemes vs the flat schemes.

The paper's outlook claims the two-level block scheme and sequential
design rounds "ease both limits: the one on the working set size and the
other one on the intermediate storage".  This bench quantifies the easing
on the cluster simulator and regenerates the max-dataset-size extension
of Fig 9a's intersection bound.
"""

from __future__ import annotations

from harness import format_table, write_report

from repro._util import GB, MB, TB
from repro.cluster import ClusterSimulator, ClusterSpec, NodeSpec
from repro.core.block import BlockScheme
from repro.core.design import DesignScheme
from repro.core.hierarchical import (
    HierarchicalBlockScheme,
    SequentialDesignSchedule,
    hierarchical_max_dataset_bytes,
)

V = 1_000
ELEMENT_SIZE = 1 * MB


def run_comparison():
    cluster = ClusterSpec.homogeneous(8, NodeSpec(slot_memory=200 * MB, slots=2))
    sim = ClusterSimulator(cluster, maxis=1 * TB)
    flat_block = sim.simulate(BlockScheme(V, 4), ELEMENT_SIZE)
    hier_block = sim.simulate_schedule(HierarchicalBlockScheme(V, 4, 4), ELEMENT_SIZE)
    design = DesignScheme(V)
    flat_design = sim.simulate(design, ELEMENT_SIZE)
    seq_design = sim.simulate_schedule(
        SequentialDesignSchedule(design, 16), ELEMENT_SIZE
    )
    return flat_block, hier_block, flat_design, seq_design


def test_hierarchical_eases_limits(benchmark):
    flat_block, hier_block, flat_design, seq_design = benchmark(run_comparison)

    # Two-level block: both peak intermediate and working set shrink.
    assert hier_block.measured.intermediate_bytes < flat_block.measured.intermediate_bytes
    assert (
        hier_block.measured.max_working_set_bytes
        <= flat_block.measured.max_working_set_bytes
    )
    # Sequential design: peak intermediate drops ≈ ×rounds; ws unchanged.
    assert (
        seq_design.measured.intermediate_bytes
        < flat_design.measured.intermediate_bytes / 8
    )
    assert (
        seq_design.measured.max_working_set_bytes
        == flat_design.measured.max_working_set_bytes
    )
    # The price: sequential rounds serialize, so makespan grows.
    assert (
        hier_block.measured.makespan_seconds
        >= flat_block.measured.makespan_seconds * 0.9
    )

    rows = [
        [
            name,
            report.measured.max_working_set_bytes,
            report.measured.intermediate_bytes,
            round(report.measured.makespan_seconds, 1),
            "yes" if report.feasible else "no",
        ]
        for name, report in [
            ("block (flat, h=4)", flat_block),
            ("block (2-level, H=4, f=4)", hier_block),
            ("design (flat)", flat_design),
            ("design (16 seq. rounds)", seq_design),
        ]
    ]
    write_report(
        "hierarchical",
        f"A1 — §7 hierarchical vs flat (v={V}, s={ELEMENT_SIZE}B)",
        format_table(
            ["configuration", "max_ws_bytes", "intermediate_bytes", "makespan_s", "feasible"],
            rows,
        ),
    )


def test_hierarchical_extends_feasible_dataset(benchmark):
    """The coarse factor multiplies the Fig 9a intersection bound by H/2."""

    def curve():
        return [
            (H, hierarchical_max_dataset_bytes(200 * MB, 1 * TB, H))
            for H in (1, 2, 4, 8, 16)
        ]

    points = benchmark(curve)
    flat = points[0][1]
    assert flat == 10 * GB  # the flat Fig 9a bound
    for H, bound in points[1:]:
        assert bound == flat * H / 2
