"""P6 — zero-copy shared-memory data plane: bytes copied per pair.

The cached pairwise pipeline broadcasts the whole payload store to every
worker; on the default data plane each worker unpickles its own private
copy per job, so the read-path copy volume scales as ``workers x jobs x
store bytes``.  The shm plane materializes the store **once per machine**
into a ``multiprocessing.shared_memory`` segment and workers decode it as
read-only views — the broadcast head shrinks to a :class:`SegmentRef` and
the ``bytes_copied`` meter collapses toward zero.

This bench runs the same cached pairwise workload (dense float64 rows,
BlockScheme) on both planes with 4 workers, checks the merged results are
identical to the serial engine's, and quantifies:

- ``EngineStats.bytes_copied`` per pair: the headline number — reduced
  ≥10x on the shm plane (asserted in full mode);
- ``shm_segments == 1``: one materialization per machine for the cache
  the two jobs share (the default plane localizes it per worker per job);
- two-plane wall-clock, reported (not asserted — the win grows with
  worker count and payload size, and small CI boxes sit near parity).

Writes ``results/zero_copy.txt`` and the repo-root ``BENCH_zero_copy.json``
consumed by CI.

Run standalone (``--quick`` for the fast, assertion-free CI variant):

    PYTHONPATH=src python benchmarks/bench_zero_copy.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from harness import format_table, machine_info, write_report

from repro.core.block import BlockScheme
from repro.core.element import results_matrix
from repro.core.pairwise import PairwiseComputation
from repro.mapreduce import MultiprocessEngine, SerialEngine
from repro.mapreduce.shm import shm_available

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_zero_copy.json"

NUM_ELEMENTS = 96
DIMENSIONS = 512
GROUP_COUNT = 8
NUM_MAP_TASKS = 8
NUM_REDUCE_TASKS = 8
MAX_WORKERS = 4
REPEATS = 3

QUICK_NUM_ELEMENTS = 24
QUICK_DIMENSIONS = 64
QUICK_GROUP_COUNT = 4
QUICK_REPEATS = 1

COPY_REDUCTION_MIN_RATIO = 10.0


def dot(left, right):
    return float(np.dot(left, right))


def make_dataset(num_elements: int, dimensions: int) -> list:
    rng = np.random.default_rng(20100621)
    return [rng.standard_normal(dimensions) for _ in range(num_elements)]


def run_plane(
    dataset, *, data_plane: str, group_count: int, repeats: int
) -> dict:
    best = float("inf")
    stats = None
    merged = None
    scheme = BlockScheme(len(dataset), group_count)
    for _ in range(repeats):
        with MultiprocessEngine(max_workers=MAX_WORKERS, data_plane=data_plane) as engine:
            assert engine.data_plane == data_plane
            computation = PairwiseComputation(
                scheme, dot, engine=engine, num_reduce_tasks=NUM_REDUCE_TASKS
            )
            start = time.perf_counter()
            merged = computation.run_cached(dataset, num_map_tasks=NUM_MAP_TASKS)
            best = min(best, time.perf_counter() - start)
            stats = engine.stats
    num_pairs = len(dataset) * (len(dataset) - 1) // 2
    return {
        "seconds": best,
        "bytes_copied": stats.bytes_copied,
        "bytes_copied_per_pair": stats.bytes_copied / num_pairs,
        "mmap_reads": stats.mmap_reads,
        "shm_segments": stats.shm_segments,
        "shm_bytes": stats.shm_bytes,
        "broadcast_loads": stats.broadcast_loads,
        "broadcast_bytes": stats.broadcast_bytes,
        "_merged": merged,
    }


def run_comparison(quick: bool = False) -> dict:
    if quick:
        num_elements, dimensions = QUICK_NUM_ELEMENTS, QUICK_DIMENSIONS
        group_count, repeats = QUICK_GROUP_COUNT, QUICK_REPEATS
    else:
        num_elements, dimensions = NUM_ELEMENTS, DIMENSIONS
        group_count, repeats = GROUP_COUNT, REPEATS
    dataset = make_dataset(num_elements, dimensions)
    num_pairs = num_elements * (num_elements - 1) // 2

    scheme = BlockScheme(num_elements, group_count)
    reference = PairwiseComputation(
        scheme, dot, engine=SerialEngine(), num_reduce_tasks=NUM_REDUCE_TASKS
    ).run_cached(dataset, num_map_tasks=NUM_MAP_TASKS)

    planes = {
        "default": run_plane(
            dataset, data_plane="default", group_count=group_count, repeats=repeats
        ),
    }
    if shm_available():
        planes["shm"] = run_plane(
            dataset, data_plane="shm", group_count=group_count, repeats=repeats
        )

    # Honesty guard: every plane must reproduce the serial engine's matrix.
    reference_matrix = results_matrix(reference)
    for name, plane in planes.items():
        assert results_matrix(plane.pop("_merged")) == reference_matrix, (
            f"{name} plane diverged from the serial reference"
        )
    assert planes["default"]["shm_segments"] == 0

    metrics = {
        "machine": machine_info(repeats=repeats),
        "workload": {
            "num_elements": num_elements,
            "dimensions": dimensions,
            "num_pairs": num_pairs,
            "group_count": group_count,
            "num_map_tasks": NUM_MAP_TASKS,
            "num_reduce_tasks": NUM_REDUCE_TASKS,
            "max_workers": MAX_WORKERS,
            "repeats": repeats,
            "quick": quick,
        },
        "planes": planes,
    }
    if "shm" in planes:
        shm, default = planes["shm"], planes["default"]
        ratio = default["bytes_copied"] / max(1, shm["bytes_copied"])
        metrics["copy_reduction_ratio"] = ratio
        metrics["wallclock_ratio_default_vs_shm"] = (
            default["seconds"] / shm["seconds"]
        )
        # One materialization per machine — not per worker, not per job —
        # even though both jobs of the cached pipeline broadcast the store.
        assert shm["shm_segments"] == 1
        assert shm["shm_bytes"] > 0

    rows = [
        [
            name,
            f"{plane['seconds']:.3f}",
            plane["bytes_copied"],
            f"{plane['bytes_copied_per_pair']:.1f}",
            plane["mmap_reads"],
            plane["shm_segments"],
        ]
        for name, plane in planes.items()
    ]
    summary = (
        f"P6 — zero-copy data plane on cached pairwise "
        f"({num_elements} x {dimensions}-dim float64 rows, {num_pairs} pairs, "
        f"{MAX_WORKERS} workers, best of {repeats})"
    )
    if "shm" in planes:
        summary += (
            f"; bytes copied reduced {metrics['copy_reduction_ratio']:.1f}x, "
            f"wall-clock {metrics['wallclock_ratio_default_vs_shm']:.2f}x"
        )
    write_report(
        "zero_copy",
        summary,
        format_table(
            [
                "plane",
                "seconds",
                "bytes copied",
                "bytes/pair",
                "mmap reads",
                "shm segments",
            ],
            rows,
        ),
    )
    JSON_PATH.write_text(json.dumps(metrics, indent=2) + "\n")

    if not quick and "shm" in planes:
        assert metrics["copy_reduction_ratio"] >= COPY_REDUCTION_MIN_RATIO, (
            f"shm plane only cut copies {metrics['copy_reduction_ratio']:.1f}x "
            f"({planes['shm']['bytes_copied']} vs "
            f"{planes['default']['bytes_copied']} bytes)"
        )
    return metrics


def test_zero_copy(benchmark):
    metrics = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    if "shm" in metrics["planes"]:
        assert metrics["copy_reduction_ratio"] >= COPY_REDUCTION_MIN_RATIO


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workload, single repeat, no perf assertions (CI artifact mode)",
    )
    arguments = parser.parse_args()
    print(json.dumps(run_comparison(quick=arguments.quick), indent=2))
