"""E2 — §4/§5 correctness: exactly-once coverage and balance, swept.

The paper's formal demands — (a) balanced work, (b) every pair evaluated
exactly once — are verified here over a parameter sweep, and the balance
statistics are reported as the series behind the "Evaluations per Task"
row of Table 1 ("all approaches are well-balanced ... work is spread
evenly among all nodes").
"""

from __future__ import annotations

from harness import format_table, write_report

from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.design import DesignScheme
from repro.core.validate import balance_report, check_exactly_once

# (label, factory, imbalance bound): diagonal blocks do half work unless
# paired (2×); *truncated* planes add block-size variance on top (the first
# q+1 working sets keep q+1 points while later ones lose some), so
# design-on-non-plane-v gets a looser bound — the paper's balance claim is
# for v ≈ q̂, where blocks are uniform.
SWEEP = [
    ("broadcast", lambda: BroadcastScheme(60, 8), 2.01),
    ("broadcast", lambda: BroadcastScheme(97, 16), 2.01),
    ("block", lambda: BlockScheme(60, 6), 2.01),
    ("block", lambda: BlockScheme(97, 10), 2.01),
    ("block+diag", lambda: BlockScheme(96, 8, pair_diagonals=True), 1.25),
    ("design", lambda: DesignScheme(57), 1.01),
    ("design(trunc)", lambda: DesignScheme(91), 3.0),
    ("design(pp)", lambda: DesignScheme(73, allow_prime_powers=True), 1.01),
]


def run_sweep():
    out = []
    for label, factory, bound in SWEEP:
        scheme = factory()
        coverage = check_exactly_once(scheme)
        balance = balance_report(scheme)
        out.append((label, scheme, coverage, balance, bound))
    return out


def test_coverage_and_balance_sweep(benchmark):
    results = benchmark(run_sweep)

    rows = []
    for label, scheme, coverage, balance, bound in results:
        # Demand (b): exactly once, across every configuration.
        assert coverage.ok, (label, coverage)
        # Demand (a): max/mean evaluations within the per-config bound.
        assert balance.eval_imbalance <= bound, (label, balance)
        rows.append(
            [
                label,
                scheme.v,
                balance.num_tasks,
                balance.evals_min,
                round(balance.evals_mean, 1),
                balance.evals_max,
                round(balance.eval_imbalance, 3),
                balance.ws_max,
                round(balance.replication_mean, 2),
            ]
        )

    write_report(
        "coverage",
        "E2 — exactly-once coverage + balance sweep (all schemes)",
        format_table(
            [
                "scheme", "v", "tasks", "evals_min", "evals_mean", "evals_max",
                "imbalance", "ws_max", "repl_mean",
            ],
            rows,
        ),
    )


def test_paired_diagonals_improve_balance(benchmark):
    """Ablation inside E2: the §5.2 diagonal pairing narrows the spread."""

    def measure():
        plain = balance_report(BlockScheme(96, 8))
        paired = balance_report(BlockScheme(96, 8, pair_diagonals=True))
        return plain, paired

    plain, paired = benchmark(measure)
    assert paired.eval_imbalance < plain.eval_imbalance
    assert paired.evals_min > plain.evals_min  # no half-empty tasks left
