"""A8 — extension bench: incremental maintenance vs full recompute.

When w new elements join v existing ones, the incremental path does
``v·w + w(w−1)/2`` evaluations against the full triangle's
``(v+w)(v+w−1)/2`` — quantified here across arrival patterns, with the
results verified identical to a from-scratch run.
"""

from __future__ import annotations

from harness import format_table, write_report

from repro.core.incremental import IncrementalPairwise
from repro.core.pairwise import brute_force_results
from repro._util import triangle_count


def scalar_distance(a, b):
    return abs(a - b)


DATA = [float((x * 17 + 3) % 211) for x in range(160)]


def run_growth(batch_size: int):
    inc = IncrementalPairwise(scalar_distance)
    reports = []
    for start in range(0, len(DATA), batch_size):
        reports.append(inc.add_batch(DATA[start : start + batch_size]))
    return inc, reports


def test_incremental_savings(benchmark):
    inc, reports = benchmark(run_growth, 20)
    assert inc.results() == brute_force_results(DATA, scalar_distance)

    total_incremental = sum(report.evaluations for report in reports)
    assert total_incremental == triangle_count(len(DATA))  # nothing skipped overall

    # But the *last* batch alone cost far less than a recompute would.
    final = reports[-1]
    recompute = triangle_count(final.total_elements)
    assert final.evaluations < recompute / 3

    rows = [
        [
            index,
            report.new_elements,
            report.cross_evaluations,
            report.fresh_evaluations,
            report.total_elements,
            f"{report.savings_vs_recompute():.1%}",
        ]
        for index, report in enumerate(reports)
    ]
    write_report(
        "incremental",
        f"A8 — incremental growth of v={len(DATA)} in batches of 20",
        format_table(
            ["batch", "new", "cross evals", "fresh evals", "v after", "saved vs recompute"],
            rows,
        ),
    )


def test_batch_size_sweep(benchmark):
    """Smaller batches ⇒ larger cumulative savings on the final batch."""

    def sweep():
        out = {}
        for batch_size in (80, 40, 10):
            _inc, reports = run_growth(batch_size)
            out[batch_size] = reports[-1].savings_vs_recompute()
        return out

    savings = benchmark(sweep)
    assert savings[10] > savings[40] > savings[80]
