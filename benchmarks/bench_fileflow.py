"""E1b — on-disk intermediate storage vs the Table-1 prediction.

The simulator checks maxis against a *model*; this bench materializes
job 1's output on a real filesystem (the deployment shape of §3) and
compares measured on-disk replication with each scheme's predicted
replication factor — record-exact for broadcast/block, structural for
the design scheme.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from harness import format_table, write_report

from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.design import CyclicDesignScheme, DesignScheme
from repro.core.fileflow import run_pairwise_on_files, write_element_files
from repro.core.pairwise import PairwiseComputation

V = 60
DATA = [float((x * 13 + 5) % 47) for x in range(V)]


def scalar_distance(a, b):
    return abs(a - b)


def run_all_schemes():
    rows = []
    for scheme in (
        BroadcastScheme(V, 6),
        BlockScheme(V, 5),
        DesignScheme(V),
        CyclicDesignScheme(V),
    ):
        with tempfile.TemporaryDirectory() as tmp:
            tmp_path = Path(tmp)
            inputs = write_element_files(tmp_path / "in", DATA, files=3)
            computation = PairwiseComputation(scheme, scalar_distance)
            _out, report = run_pairwise_on_files(
                computation, inputs, tmp_path / "work"
            )
            rows.append((scheme, report))
    return rows


def test_disk_replication_matches_theory(benchmark):
    rows = benchmark(run_all_schemes)

    table = []
    for scheme, report in rows:
        predicted = scheme.metrics().replication_factor
        measured = report.disk_replication_factor
        # Record counts are exact: v·p, v·h, Σ|block|/v respectively.
        assert measured == predicted, scheme.describe()
        # And the materialized bytes dominate the input by ≈ replication
        # (result maps add a little on top).
        assert report.intermediate_bytes >= report.input_bytes
        table.append(
            [
                scheme.describe(),
                predicted,
                measured,
                report.input_bytes,
                report.intermediate_bytes,
                round(report.intermediate_bytes / report.input_bytes, 2),
            ]
        )

    write_report(
        "fileflow",
        f"E1b — measured on-disk intermediate vs Table-1 replication (v={V})",
        format_table(
            [
                "scheme", "predicted repl", "measured repl (records)",
                "input bytes", "intermediate bytes", "bytes ratio",
            ],
            table,
        ),
    )
