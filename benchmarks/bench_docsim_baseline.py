"""A3 — §2 related-work baseline: Elsayed inverted index vs generic pairwise.

The paper positions itself against Elsayed et al.: their inverted-index
method shrinks the comparison space when the application allows it, while
the paper's schemes handle the general case where "the quadratic
complexity ... cannot be reduced".  This bench measures both on the same
document workload: the baseline's evaluation count (per-term partial
products) collapses far below the full triangle when documents share few
terms, while the generic pairwise always pays v(v−1)/2 — but the generic
method also returns the zero-similarity pairs the baseline cannot see.
"""

from __future__ import annotations

from harness import format_table, write_report

from repro.apps.docsim import build_tfidf, cosine_similarity, elsayed_similarity
from repro.core.design import DesignScheme
from repro.core.pairwise import EVALUATIONS, PAIRWISE_GROUP, PairwiseComputation
from repro.workloads import make_documents

V = 60
DOCS = make_documents(V, vocabulary=2000, length=25, num_topics=6, seed=13)
VECTORS = build_tfidf(DOCS)


def run_generic():
    computation = PairwiseComputation(DesignScheme(V), cosine_similarity)
    merged, pipeline = computation.run(VECTORS, return_pipeline=True)
    return merged, pipeline


def run_baseline():
    return elsayed_similarity(VECTORS, threshold=1e-12)


def test_generic_pairwise(benchmark):
    merged, pipeline = benchmark(run_generic)
    evals = pipeline.counters.get(PAIRWISE_GROUP, EVALUATIONS)
    assert evals == V * (V - 1) // 2  # the irreducible quadratic cost


def test_elsayed_baseline(benchmark):
    sims, result = benchmark(run_baseline)
    products = result.counters.get("docsim", "partial_products")
    assert products > 0
    assert len(sims) <= V * (V - 1) // 2


def test_baseline_vs_generic_report(benchmark):
    def both():
        merged, pipeline = run_generic()
        sims, result = run_baseline()
        return pipeline, sims, result

    pipeline, sims, result = benchmark(both)
    generic_evals = pipeline.counters.get(PAIRWISE_GROUP, EVALUATIONS)
    baseline_products = result.counters.get("docsim", "partial_products")
    triangle = V * (V - 1) // 2

    # Agreement on every pair the baseline produced.
    from repro.core.element import results_matrix

    merged, _ = run_generic()
    generic = results_matrix(merged)
    for pair, sim in sims.items():
        assert abs(generic[pair] - sim) < 1e-9

    # The baseline touches only sharing pairs: with a 2000-term vocabulary
    # and 25-token documents, nonzero pairs are a strict subset.
    assert len(sims) < triangle

    write_report(
        "docsim_baseline",
        f"A3 — generic pairwise vs Elsayed baseline (v={V} documents)",
        format_table(
            ["method", "evaluations / partial products", "pairs reported"],
            [
                ["generic pairwise (design scheme)", generic_evals, triangle],
                ["Elsayed inverted index", baseline_products, len(sims)],
            ],
        )
        + "\n\nThe baseline reports only pairs sharing >= 1 term; the "
        "generic method pays the full triangle but needs no structural "
        "assumption (the paper's target regime).",
    )
