"""A7 — ablation: broadcast two-job vs one-job (distributed cache, §5.1).

The paper reduces the broadcast scheme to a single MR job by shipping
the dataset through Hadoop's distributed cache and evaluating pairs in
the map phase.  This bench quantifies the trade on both substrates:

- on the **MR engine**: shuffle bytes per form (element copies vs 16-byte
  result records) — measured with real payload sizes;
- on the **cluster simulator**: intermediate storage and makespan with a
  broadcast tree vs a per-task shuffle.
"""

from __future__ import annotations

from harness import format_table, write_report

from repro._util import KB, MB, TB
from repro.cluster import ClusterSimulator, ClusterSpec, NodeSpec
from repro.core.broadcast import BroadcastScheme
from repro.core.pairwise import PairwiseComputation
from repro.mapreduce import SizedPayload
from repro.mapreduce.counters import FRAMEWORK_GROUP, SHUFFLE_BYTES

V = 80
TASKS = 8


def sized_distance(a: SizedPayload, b: SizedPayload) -> int:
    """Pair function over size-declared payloads (tag arithmetic only)."""
    return abs(a.tag - b.tag)


def run_engine_comparison():
    payloads = [SizedPayload(size_bytes=50 * KB, tag=i) for i in range(V)]
    scheme = BroadcastScheme(V, TASKS)
    computation = PairwiseComputation(scheme, sized_distance)
    _merged, pipeline = computation.run(payloads, return_pipeline=True)
    two_job_bytes = pipeline.counters.get(FRAMEWORK_GROUP, SHUFFLE_BYTES)
    _merged2, result = computation.run_broadcast_job(payloads, return_result=True)
    one_job_bytes = result.counters.get(FRAMEWORK_GROUP, SHUFFLE_BYTES)
    return two_job_bytes, one_job_bytes


def test_engine_shuffle_bytes(benchmark):
    two_job, one_job = benchmark(run_engine_comparison)
    # Two-job shuffles v·p element copies twice (50 KB each); one-job
    # shuffles only v(v−1) result records (~16 B each).
    assert two_job > 2 * V * TASKS * 50 * KB * 0.9
    assert one_job < two_job / 10

    write_report(
        "one_job_engine",
        f"A7a — broadcast forms on the MR engine (v={V}, p={TASKS}, s=50KB)",
        format_table(
            ["form", "shuffle bytes"],
            [["two-job (generic)", two_job], ["one-job (distributed cache)", one_job]],
        ),
    )


def test_simulator_comparison(benchmark):
    def run():
        cluster = ClusterSpec.homogeneous(8, NodeSpec(slot_memory=400 * MB, slots=2))
        sim = ClusterSimulator(cluster, maxis=1 * TB)
        scheme = BroadcastScheme(2_000, 16)
        return (
            sim.simulate(scheme, 100 * KB),
            sim.simulate_broadcast_one_job(scheme, 100 * KB),
        )

    two_job, one_job = benchmark(run)
    # Cache replication = n nodes < p tasks when tasks exceed nodes...
    # here p=16 = slots; the structural win is intermediate volume:
    assert one_job.measured.intermediate_bytes < two_job.measured.intermediate_bytes
    assert one_job.measured.total_evaluations == two_job.measured.total_evaluations

    rows = [
        [
            label,
            report.measured.replication_factor,
            report.measured.intermediate_bytes,
            round(report.measured.makespan_seconds, 2),
        ]
        for label, report in [("two-job", two_job), ("one-job", one_job)]
    ]
    write_report(
        "one_job_simulator",
        "A7b — broadcast forms on the cluster simulator (v=2000, s=100KB)",
        format_table(["form", "replication", "intermediate bytes", "makespan s"], rows),
    )
