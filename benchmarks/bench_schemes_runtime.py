"""A2 — ablation: end-to-end runtime of the three schemes on the MR engine.

Times the full two-job pipeline (and broadcast's one-job form) on the
local engine with a real pair function, and cross-checks the measured
framework counters against Table 1's communication predictions: job 1's
shuffled records must equal the scheme's replica count exactly, and the
whole round trip ≈ the 2·(replicas) of Table 1's communication row.
"""

from __future__ import annotations

from harness import format_table, write_report

from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.design import DesignScheme
from repro.core.pairwise import PairwiseComputation
from repro.core.quorum import QuorumScheme
from repro.mapreduce.counters import FRAMEWORK_GROUP, SHUFFLE_RECORDS

V = 120
DATA = [float((x * 31 + 7) % V) for x in range(V)]


def scalar_distance(a, b):
    return abs(a - b)


def run_pipeline(scheme):
    computation = PairwiseComputation(scheme, scalar_distance)
    merged, pipeline = computation.run(DATA, return_pipeline=True)
    return merged, pipeline


def _check(merged, pipeline, scheme, expected_replicas, rows):
    # Correctness: every element ends with all v−1 results.
    assert all(len(e.results) == V - 1 for e in merged.values())
    job1_shuffle = pipeline.stages[0].counters.get(FRAMEWORK_GROUP, SHUFFLE_RECORDS)
    job2_shuffle = pipeline.stages[1].counters.get(FRAMEWORK_GROUP, SHUFFLE_RECORDS)
    # Table 1's communication: replicas once per job leg.
    assert job1_shuffle == expected_replicas, scheme.describe()
    assert job2_shuffle == expected_replicas, scheme.describe()
    rows.append(
        [scheme.describe(), expected_replicas, job1_shuffle + job2_shuffle,
         scheme.metrics().communication_records]
    )


def test_runtime_broadcast(benchmark):
    scheme = BroadcastScheme(V, 8)
    merged, pipeline = benchmark(run_pipeline, scheme)
    rows: list = []
    _check(merged, pipeline, scheme, V * 8, rows)


def test_runtime_block(benchmark):
    scheme = BlockScheme(V, 8)
    merged, pipeline = benchmark(run_pipeline, scheme)
    rows: list = []
    _check(merged, pipeline, scheme, V * scheme.h, rows)


def test_runtime_design(benchmark):
    scheme = DesignScheme(V)
    merged, pipeline = benchmark(run_pipeline, scheme)
    expected = sum(len(b) for b in scheme.blocks)
    rows: list = []
    _check(merged, pipeline, scheme, expected, rows)


def test_runtime_quorum(benchmark):
    # v=120 is off-plane, so this is also the honest losing case: the
    # greedy cover (|D|=14) replicates more than the padded design (12).
    scheme = QuorumScheme(V)
    merged, pipeline = benchmark(run_pipeline, scheme)
    rows: list = []
    _check(merged, pipeline, scheme, V * scheme.cover.size, rows)


def test_runtime_broadcast_one_job(benchmark):
    """The §5.1 one-job optimization must beat the generic two-job form on
    shuffle volume: results-only records instead of element replicas."""
    scheme = BroadcastScheme(V, 8)
    computation = PairwiseComputation(scheme, scalar_distance)

    def run():
        return computation.run_broadcast_job(DATA, return_result=True)

    merged, result = benchmark(run)
    assert all(len(e.results) == V - 1 for e in merged.values())
    one_job_shuffle = result.counters.get(FRAMEWORK_GROUP, SHUFFLE_RECORDS)
    # The shuffle carries only (partner, result) pairs — 2 per evaluation —
    # instead of element replicas: the dataset itself travels once via the
    # distributed cache, which is the point of the §5.1 one-job form.
    assert one_job_shuffle == V * (V - 1)
    from repro.mapreduce.counters import SHUFFLE_BYTES

    # Result records are small (16 B each per §3), so the shuffled volume
    # stays tiny even though the record count exceeds 2·v·p.
    assert result.counters.get(FRAMEWORK_GROUP, SHUFFLE_BYTES) < V * (V - 1) * 64


def test_write_runtime_report(benchmark):
    """Aggregate report across all schemes (single benchmarked pass)."""

    def run_all():
        rows = []
        reports = []
        for scheme, expected in [
            (BroadcastScheme(V, 8), V * 8),
            (BlockScheme(V, 8), V * 8),
            (DesignScheme(V), sum(len(b) for b in DesignScheme(V).blocks)),
            (QuorumScheme(V), V * QuorumScheme(V).cover.size),
        ]:
            merged, pipeline = run_pipeline(scheme)
            _check(merged, pipeline, scheme, expected, rows)
            reports.append(scheme.replication_report().summary())
        return rows, reports

    rows, reports = benchmark(run_all)
    write_report(
        "schemes_runtime",
        f"A2 — two-job pipeline on the MR engine (v={V}); shuffle records "
        "measured vs Table-1 communication",
        format_table(
            ["scheme", "replicas/leg", "measured 2-leg shuffle", "Table-1 comm"],
            rows,
        )
        + "\n\nreplication vs lower bound:\n"
        + "\n".join(reports),
    )
