"""Benchmark-suite configuration: make the repo's harness importable."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
