"""P5 — scheduling policy: fifo vs LPT vs round-robin on skewed tasks.

The control-plane refactor makes task placement a pluggable
:class:`~repro.mapreduce.controlplane.policy.SchedulingPolicy` shared by
the real engines and the :class:`~repro.cluster.ClusterSimulator`.  This
bench drives the simulator's cost model over a block-scheme workload
whose per-task working sets are genuinely skewed (diagonal block tasks
carry one block of elements and half the pair count of the off-diagonal
tasks — the |D_l|/|P_l| skew of §5), places the same task costs under
each policy, and reports makespan and slot imbalance.

Asserted shape (the PR's acceptance criterion): LPT's makespan is never
worse than fifo's on this skewed workload, and both beat round-robin.

Writes ``results/scheduling_policy.txt`` and the repo-root
``BENCH_scheduling_policy.json`` consumed by CI.

Run standalone (``--quick`` for the fast CI variant):

    PYTHONPATH=src python benchmarks/bench_scheduling_policy.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from harness import format_table, machine_info, write_report

from repro.cluster.node import ClusterSpec, NodeSpec
from repro.cluster.simulator import ClusterSimulator
from repro.core.block import BlockScheme

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_scheduling_policy.json"

POLICIES = ("fifo", "lpt", "round_robin")

V = 240
H = 9  # 45 tasks: 9 diagonal (light) + 36 off-diagonal (heavy)
ELEMENT_SIZE = 64 * 1024
NUM_NODES = 5
SLOTS_PER_NODE = 2

QUICK_V = 96
QUICK_H = 9


def simulate_policy(policy: str, v: int, h: int) -> dict:
    """One simulator pass of the skewed block workload under ``policy``."""
    cluster = ClusterSpec.homogeneous(NUM_NODES, NodeSpec(slots=SLOTS_PER_NODE))
    simulator = ClusterSimulator(cluster, scheduling_policy=policy)
    scheme = BlockScheme(v, h)
    started = time.perf_counter()
    report = simulator.simulate(scheme, ELEMENT_SIZE)
    elapsed = time.perf_counter() - started
    return {
        "policy": policy,
        "num_tasks": scheme.num_tasks,
        "makespan_seconds": report.measured.makespan_seconds,
        "imbalance": report.assignment.imbalance,
        "simulate_seconds": elapsed,
    }


def run_comparison(quick: bool = False) -> dict:
    v, h = (QUICK_V, QUICK_H) if quick else (V, H)
    runs = [simulate_policy(policy, v, h) for policy in POLICIES]
    by_policy = {run["policy"]: run for run in runs}

    # The acceptance shape: cost-aware LPT never loses to cost-blind fifo
    # dispatch on a skewed workload, and both beat naive round-robin.
    assert (
        by_policy["lpt"]["makespan_seconds"]
        <= by_policy["fifo"]["makespan_seconds"]
    ), "LPT regressed behind fifo on the skewed block workload"
    assert (
        by_policy["lpt"]["makespan_seconds"]
        <= by_policy["round_robin"]["makespan_seconds"]
    ), "LPT regressed behind round-robin"

    for run in runs:
        run["makespan_vs_lpt"] = (
            run["makespan_seconds"] / by_policy["lpt"]["makespan_seconds"]
        )

    metrics = {
        "machine": machine_info(),
        "workload": {
            "scheme": "block",
            "v": v,
            "h": h,
            "num_tasks": by_policy["lpt"]["num_tasks"],
            "element_size": ELEMENT_SIZE,
            "num_nodes": NUM_NODES,
            "slots_per_node": SLOTS_PER_NODE,
            "quick": quick,
        },
        "runs": runs,
    }

    rows = [
        [
            run["policy"],
            f"{run['makespan_seconds']:.3f}",
            f"{run['makespan_vs_lpt']:.3f}x",
            f"{run['imbalance']:.3f}",
        ]
        for run in runs
    ]
    table = format_table(
        ["policy", "makespan (s)", "vs LPT", "imbalance"], rows
    )
    write_report(
        "scheduling_policy",
        f"P5 — scheduling policies on skewed block workload (v={v}, h={h}, "
        f"{NUM_NODES}x{SLOTS_PER_NODE} slots)",
        table,
    )
    JSON_PATH.write_text(json.dumps(metrics, indent=2) + "\n", encoding="utf-8")
    print(table)
    return metrics


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small CI-sized workload"
    )
    args = parser.parse_args()
    run_comparison(quick=args.quick)


if __name__ == "__main__":
    main()
