"""F8b — Figure 8(b): intermediate-storage limit for the design approach.

Regenerates: max(v) before the design scheme's materialized intermediate
data (replication ≈ √v ⇒ bytes ≈ v^{3/2}·s) exceeds ``maxis``, over
element sizes 10¹…10⁴ KB for maxis ∈ {100 GB, 1 TB, 10 TB}.

Shape asserted: max(v) = (maxis/s)^{2/3} — log-log slope −2/3 (flatter
than Fig 8a's −1) — and a 10× maxis raises max(v) by 10^{2/3} ≈ 4.64×.
"""

from __future__ import annotations

import math

from harness import format_table, write_report

from repro._util import GB, KB, TB
from repro.core.cost_model import log_spaced_sizes, max_v_design_storage

MAXIS_VALUES = [100 * GB, 1 * TB, 10 * TB]
SIZES = log_spaced_sizes(10 * KB, 10_000 * KB, per_decade=3)


def compute_curves():
    return {
        maxis: [max_v_design_storage(s, maxis) for s in SIZES]
        for maxis in MAXIS_VALUES
    }


def test_fig8b_design_storage_limit(benchmark):
    curves = benchmark(compute_curves)

    for maxis, values in curves.items():
        assert values == sorted(values, reverse=True)
        # The -2/3 log-log slope: a 100× element size costs 100^(2/3) ≈
        # 21.5× in capacity (checked directly, not via grid indices).
        ratio = max_v_design_storage(10 * KB, maxis) / max_v_design_storage(
            1000 * KB, maxis
        )
        assert math.isclose(ratio, 100 ** (2 / 3), rel_tol=0.02)

    # 10× storage → 10^(2/3) ≈ 4.64× capacity.
    for v100g, v1t in zip(curves[100 * GB], curves[1 * TB]):
        assert math.isclose(v1t / v100g, 10 ** (2 / 3), rel_tol=0.02)

    # Anchor from the paper's arithmetic: 1 MB elements, 1 TB → v = 10,000.
    assert max_v_design_storage(1000 * KB, 1 * TB) == 10_000

    rows = [
        [s // KB] + [curves[m][i] for m in MAXIS_VALUES]
        for i, s in enumerate(SIZES)
    ]
    from repro.report import loglog_chart

    chart = loglog_chart(
        {
            "100GB": list(zip(SIZES, curves[100 * GB])),
            "1TB": list(zip(SIZES, curves[1 * TB])),
            "10TB": list(zip(SIZES, curves[10 * TB])),
        },
        x_label="element size (bytes)",
        y_label="max v (design)",
    )
    write_report(
        "fig8b",
        "Fig 8b — max(v) before design hits maxis (element size in KB)",
        format_table(
            ["elem_KB", "maxis=100GB", "maxis=1TB", "maxis=10TB"], rows
        )
        + "\n\n" + chart,
    )
