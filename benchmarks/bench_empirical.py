"""E1 — §6 cloud experiment: measured replication & working sets vs theory.

The paper implemented all three schemes on Hadoop 0.20.1 and ran them on
AWS EC2 and the Google/IBM academic cloud, reporting that (a) measured
replication factors and working-set sizes "showed to be close to our
theoretic evaluations", and (b) the working-set limit was hit "a little
earlier than expected" because the runtime keeps other data in memory.

This bench reruns that experiment on the cluster simulator: all three
schemes, an 8-node × 2-slot cluster with the paper's 200 MB slots, and a
per-task memory overhead injected to reproduce observation (b).
"""

from __future__ import annotations

from harness import format_table, write_report

from repro._util import KB, MB, TB
from repro.cluster import ClusterSimulator, ClusterSpec, NodeSpec
from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.design import DesignScheme

V = 993  # = 31² + 31 + 1: an exact plane size, where √v theory is tight
ELEMENT_SIZE = 100 * KB
OVERHEAD = 20 * MB  # the "other variables and data" of §6


def run_all():
    cluster = ClusterSpec.homogeneous(8, NodeSpec(slot_memory=200 * MB, slots=2))
    sim = ClusterSimulator(cluster, maxis=1 * TB, task_overhead_bytes=OVERHEAD)
    schemes = [
        (BroadcastScheme(V, 16), BroadcastScheme(V, 16).metrics()),
        (BlockScheme(V, 20), BlockScheme(V, 20).metrics()),
        (DesignScheme(V), DesignScheme.approx_metrics(V)),
    ]
    return [
        (scheme.name, sim.simulate(scheme, ELEMENT_SIZE).compare(theory),
         sim.simulate(scheme, ELEMENT_SIZE))
        for scheme, theory in schemes
    ]


def test_empirical_theory_match(benchmark):
    results = benchmark(run_all)

    rows = []
    for name, comparison, report in results:
        for row in comparison.rows():
            rows.append(
                [name, row.quantity, row.predicted, row.measured,
                 f"{row.relative_error:.2%}"]
            )
        # (a) measured ≈ theory: replication and ws within a few percent
        # (block/broadcast exact; design's √v approximation ≤ ~5%).
        by_name = {r.quantity: r for r in comparison.rows()}
        assert by_name["replication_factor"].relative_error < 0.05, name
        assert by_name["working_set_elements"].relative_error < 0.05, name

    # (b) the overhead makes broadcast's big working set hit maxws early:
    # 993 × 100 KB ≈ 99 MB fits a 200 MB slot, but push v up toward the
    # "pure" limit and the overhead flips feasibility before theory does.
    cluster = ClusterSpec.homogeneous(8, NodeSpec(slot_memory=200 * MB, slots=2))
    v_pure_limit = (200 * MB) // ELEMENT_SIZE  # 2000 elements, exactly maxws
    clean = ClusterSimulator(cluster).simulate(
        BroadcastScheme(v_pure_limit, 16), ELEMENT_SIZE
    )
    padded = ClusterSimulator(cluster, task_overhead_bytes=OVERHEAD).simulate(
        BroadcastScheme(v_pure_limit, 16), ELEMENT_SIZE
    )
    assert clean.feasible and not padded.feasible  # "hit a little earlier"

    write_report(
        "empirical",
        f"E1 — §6 theory vs simulated measurement (v={V}, s={ELEMENT_SIZE}B, "
        f"overhead={OVERHEAD}B/task)",
        format_table(["scheme", "quantity", "theory", "measured", "err"], rows)
        + "\n\nWorking-set limit: pure v_max=2000 feasible without overhead, "
        "infeasible with 20MB/task overhead (paper's early-limit observation).",
    )


def test_empirical_makespans_comparable(benchmark):
    """All three schemes spread work evenly enough that no scheme's
    makespan is an outlier at equal eval cost (the balance demand)."""

    def makespans():
        cluster = ClusterSpec.homogeneous(8, NodeSpec(slot_memory=400 * MB, slots=2))
        sim = ClusterSimulator(cluster)
        return {
            scheme.name: sim.simulate(scheme, 10 * KB).measured.makespan_seconds
            for scheme in (BroadcastScheme(V, 16), BlockScheme(V, 20), DesignScheme(V))
        }

    times = benchmark(makespans)
    fastest, slowest = min(times.values()), max(times.values())
    assert slowest / fastest < 5, times
