"""P3 — vectorized batch pair-evaluation kernels vs the scalar pair loop.

The compute phase used to evaluate ``comp(a, b)`` once per pair from a
Python loop.  The :mod:`repro.kernels` subsystem materializes each
reduce task's pair list into an index block and dispatches it to a batch
kernel — CSR sparse-matrix cosine for tf-idf dict vectors, BLAS-backed
dense kernels for ndarray payloads — with the scalar loop as the
bit-identical fallback.  This bench quantifies the kernels against
:class:`~repro.kernels.ScalarKernel` on the same working sets:

- **docsim / csr-cosine** (the headline): tf-idf vectors at the engine
  bench's scale (v=60, 20k-term vocabulary, 1500-token documents), full
  broadcast working set (all v·(v−1)/2 pairs in one block).
- **covariance / dense rows** and **knn / dense-euclidean** sweeps over
  working-set sizes, showing how the advantage grows with block size.
- an **end-to-end** row running the full cached docsim pipeline with
  ``kernel=None`` vs ``kernel="auto"``, bounding what kernel dispatch is
  worth once shuffle and serialization costs are included.

Every timed cell first checks parity: vectorized results must match the
scalar loop within 1e-9 relative tolerance.  Asserts the PR's acceptance
bar — csr-cosine ≥10× over scalar on the headline working set.  Writes
``results/kernel_speedup.txt`` and the repo-root
``BENCH_kernel_speedup.json`` consumed by CI.

Run standalone (``--quick`` for the fast, assertion-free CI variant):

    PYTHONPATH=src python benchmarks/bench_kernels.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import math
import time
from pathlib import Path

import numpy as np

from harness import format_table, machine_info, write_report

from repro.apps.covariance import row_inner_product
from repro.apps.dbscan import euclidean_distance
from repro.apps.docsim import build_tfidf, cosine_similarity, pairwise_similarity
from repro.core.broadcast import BroadcastScheme
from repro.kernels import ScalarKernel, get_kernel, pair_index_array
from repro.mapreduce import SerialEngine
from repro.workloads.generator import make_documents

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_kernel_speedup.json"

# Headline working set: the engine bench's docsim scale.  One broadcast
# task (p=1) sees all v elements, so the kernel gets the whole triangle
# of pairs in a single block — the compute phase at its densest.
V = 60
VOCABULARY = 20_000
DOC_LENGTH = 1500
REPEATS = 9
SWEEP_V = (15, 30, 60)
# Each dense sweep runs at its application's representative shape: fat
# centered rows for covariance (the Gram/BLAS regime), low-dimensional
# geometric points for euclidean (kNN/DBSCAN; the scalar loop's cost is
# per-call overhead there, which is exactly what batching removes).
COVARIANCE_DIM = 256
POINT_DIM = 8
HEADLINE_MIN_SPEEDUP = 10.0

QUICK_V = 24
QUICK_VOCABULARY = 2_000
QUICK_DOC_LENGTH = 200
QUICK_REPEATS = 2
QUICK_SWEEP_V = (8, 16, 24)
QUICK_COVARIANCE_DIM = 64
QUICK_POINT_DIM = 8

#: vectorized results must match the scalar loop to this relative tolerance
REL_TOLERANCE = 1e-9


def all_pairs_block(v: int) -> np.ndarray:
    """The full (i, j) triangle, i > j, 1-indexed — a broadcast p=1 task."""
    return pair_index_array([(i, j) for i in range(2, v + 1) for j in range(1, i)])


def check_parity(forward: list, reference: list) -> None:
    assert len(forward) == len(reference)
    for got, want in zip(forward, reference):
        assert math.isclose(got, want, rel_tol=REL_TOLERANCE, abs_tol=1e-12), (
            f"kernel diverged from scalar loop: {got!r} vs {want!r}"
        )


def bench_block(kernel, payloads: dict, block: np.ndarray, repeats: int) -> tuple[float, list]:
    """Best-of-``repeats`` seconds to evaluate ``block`` with ``kernel``."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = kernel.evaluate_block(payloads, block)
        best = min(best, time.perf_counter() - start)
    return best, out


def bench_working_set(comp, kernel_name: str, payloads_list: list, repeats: int) -> dict:
    """Time scalar vs vectorized on the full pair triangle of one working set."""
    v = len(payloads_list)
    payloads = {eid: payloads_list[eid - 1] for eid in range(1, v + 1)}
    block = all_pairs_block(v)
    scalar_s, reference = bench_block(ScalarKernel(comp), payloads, block, repeats)
    kernel_s, forward = bench_block(get_kernel(kernel_name), payloads, block, repeats)
    check_parity(forward, reference)
    return {
        "v": v,
        "pairs": int(block.shape[0]),
        "scalar_seconds": scalar_s,
        "kernel_seconds": kernel_s,
        "speedup": scalar_s / kernel_s,
    }


def bench_end_to_end(vectors, repeats: int) -> dict:
    """Full cached docsim pipeline, scalar loop vs auto-selected kernel."""
    scheme = BroadcastScheme(v=len(vectors), num_tasks=1)
    timings = {}
    results = {}
    for label, kernel in (("scalar", None), ("auto", "auto")):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            results[label] = pairwise_similarity(
                vectors, scheme, engine=SerialEngine(), kernel=kernel
            )
            best = min(best, time.perf_counter() - start)
        timings[label] = best
    assert set(results["scalar"]) == set(results["auto"])
    for key, want in results["scalar"].items():
        got = results["auto"][key]
        assert math.isclose(got, want, rel_tol=REL_TOLERANCE, abs_tol=1e-12)
    return {
        "scalar_seconds": timings["scalar"],
        "kernel_seconds": timings["auto"],
        "speedup": timings["scalar"] / timings["auto"],
    }


def run_comparison(quick: bool = False) -> dict:
    if quick:
        v, vocabulary, length = QUICK_V, QUICK_VOCABULARY, QUICK_DOC_LENGTH
        repeats, sweep_v = QUICK_REPEATS, QUICK_SWEEP_V
        cov_dim, point_dim = QUICK_COVARIANCE_DIM, QUICK_POINT_DIM
    else:
        v, vocabulary, length = V, VOCABULARY, DOC_LENGTH
        repeats, sweep_v = REPEATS, SWEEP_V
        cov_dim, point_dim = COVARIANCE_DIM, POINT_DIM

    vectors = build_tfidf(make_documents(v, vocabulary=vocabulary, length=length, seed=7))
    rng = np.random.default_rng(7)

    headline = bench_working_set(cosine_similarity, "csr-cosine", vectors, repeats)

    csr_sweep = [
        bench_working_set(cosine_similarity, "csr-cosine", vectors[:size], repeats)
        for size in sweep_v
        if size <= v
    ]
    covariance_sweep = [
        bench_working_set(
            row_inner_product,
            "covariance",
            [rng.normal(size=cov_dim) for _ in range(size)],
            repeats,
        )
        for size in sweep_v
    ]
    euclidean_sweep = [
        bench_working_set(
            euclidean_distance,
            "dense-euclidean",
            [rng.normal(size=point_dim) for _ in range(size)],
            repeats,
        )
        for size in sweep_v
    ]
    end_to_end = bench_end_to_end(vectors, repeats)

    metrics = {
        "machine": machine_info(repeats=repeats),
        "workload": {
            "v": v,
            "vocabulary": vocabulary,
            "doc_length": length,
            "covariance_dim": cov_dim,
            "point_dim": point_dim,
            "repeats": repeats,
            "rel_tolerance": REL_TOLERANCE,
            "quick": quick,
        },
        "headline_csr_cosine": headline,
        "sweeps": {
            "csr_cosine": csr_sweep,
            "covariance": covariance_sweep,
            "dense_euclidean": euclidean_sweep,
        },
        "end_to_end_docsim": end_to_end,
        "headline_speedup": headline["speedup"],
    }

    rows = []
    for name, sweep in (
        ("csr-cosine", csr_sweep),
        ("covariance", covariance_sweep),
        ("dense-euclidean", euclidean_sweep),
    ):
        for cell in sweep:
            rows.append(
                [
                    name,
                    cell["v"],
                    cell["pairs"],
                    f"{cell['scalar_seconds'] * 1e3:.2f}",
                    f"{cell['kernel_seconds'] * 1e3:.2f}",
                    f"{cell['speedup']:.1f}",
                ]
            )
    rows.append(
        [
            "end-to-end docsim",
            v,
            headline["pairs"],
            f"{end_to_end['scalar_seconds'] * 1e3:.2f}",
            f"{end_to_end['kernel_seconds'] * 1e3:.2f}",
            f"{end_to_end['speedup']:.1f}",
        ]
    )
    write_report(
        "kernel_speedup",
        f"P3 — batch pair-evaluation kernels vs the scalar loop "
        f"(docsim v={v}, vocab={vocabulary}, len={length}; "
        f"rows dim={cov_dim}, points dim={point_dim}; "
        f"best of {repeats}); headline csr-cosine "
        f"{headline['speedup']:.1f}x over scalar on {headline['pairs']} pairs",
        format_table(
            ["kernel", "v", "pairs", "scalar ms", "kernel ms", "speedup"], rows
        ),
    )
    JSON_PATH.write_text(json.dumps(metrics, indent=2) + "\n")

    if not quick:
        assert headline["speedup"] >= HEADLINE_MIN_SPEEDUP, (
            f"csr-cosine only {headline['speedup']:.2f}x over scalar "
            f"(need >= {HEADLINE_MIN_SPEEDUP}x)"
        )
    return metrics


def test_kernel_speedup(benchmark):
    metrics = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    assert metrics["headline_speedup"] >= HEADLINE_MIN_SPEEDUP


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workload, fewer repeats, no perf assertions (CI artifact mode)",
    )
    arguments = parser.parse_args()
    results = run_comparison(quick=arguments.quick)
    print(json.dumps(results, indent=2))
