"""Shared benchmark-harness helpers: table formatting and result persistence.

Every bench regenerates one of the paper's tables/figures as a text table,
asserts the *shape* the paper reports (who wins, by what factor, where
crossovers fall), and writes the series to ``benchmarks/results/<name>.txt``
so EXPERIMENTS.md's numbers can be traced back to a concrete run.
"""

from __future__ import annotations

import os
import platform
from pathlib import Path
from typing import Sequence

RESULTS_DIR = Path(__file__).parent / "results"


def machine_info(*, warmup: int = 0, repeats: int = 1) -> dict:
    """Provenance stamp for BENCH_*.json files.

    Timings are only comparable against a baseline taken on a similar
    box; the stamp makes a mismatch diagnosable instead of a mystery
    regression.  ``warmup``/``repeats`` record the measurement protocol
    the numbers were taken under.
    """
    return {
        "cpu_count": os.cpu_count(),
        "python_version": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "warmup_rounds": warmup,
        "repeat_rounds": repeats,
    }


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain-text aligned table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(r[col]) for r in str_rows)) if str_rows else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def write_report(name: str, title: str, body: str) -> Path:
    """Persist one experiment's regenerated series under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(f"# {title}\n\n{body}\n")
    return path
