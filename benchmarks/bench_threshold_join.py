"""P8 — sketch-pruned threshold similarity joins.

The sketch subsystem (``repro.sketches``, DESIGN.md §3.1.7) builds one
cheap per-element summary pass before job submission; reduce tasks then
intersect each ``get_pairs`` block against a sound upper bound and skip
pairs that provably cannot qualify.  This bench sweeps the join
threshold over a topic-structured document workload and quantifies, per
threshold:

- evaluations actually run vs pairs pruned (the skipped ratio);
- best-of-repeats wall clock against the unpruned ``pruning="exact"``
  arm (speedup);
- measured recall against :func:`brute_force_similarity` — 1.0 by
  construction for the exact-fallback arm (sound bounds), and a real
  measurement for the estimate arm (``exact_fallback=False``), which
  additionally consults MinHash estimates and may drop true pairs.

Writes ``results/threshold_join.txt`` and the repo-root
``BENCH_threshold_join.json`` consumed by CI.

``--guard`` replays the quick workload at threshold 0.7 and asserts
against ``benchmarks/baselines/threshold_join.json``: recall must be
exactly 1.0 under exact fallback and evaluations must stay under the
committed ceiling (≤ 40% of v(v−1)/2) — the deterministic tripwire for
"a bound got looser" or "pruning silently stopped firing".  Refresh
with ``--write-baseline`` after an intentional sketch change.

Run standalone (``--quick`` for the fast, assertion-free CI variant):

    PYTHONPATH=src python benchmarks/bench_threshold_join.py [--quick|--guard]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from harness import format_table, machine_info, write_report

from repro.apps.docsim import (
    brute_force_similarity,
    build_tfidf,
    cosine_similarity,
)
from repro.core.block import BlockScheme
from repro.core.element import results_matrix
from repro.core.pairwise import (
    EVALUATIONS,
    PAIRS_PRUNED,
    PAIRWISE_GROUP,
    SKETCH_BYTES,
    PairwiseComputation,
)
from repro.workloads.generator import make_documents

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_threshold_join.json"
BASELINE_PATH = Path(__file__).parent / "baselines" / "threshold_join.json"

# Topic-structured corpus: same-topic documents share a 20-word slice,
# so every threshold in the sweep keeps a non-trivial pair set (the
# similarity distribution is bimodal — cross-topic mass near 0,
# same-topic mass above 0.6).
NUM_DOCS = 400
VOCABULARY = 600
NUM_TOPICS = 30
TOPIC_STRENGTH = 0.95
DOC_LENGTH = 80
SEED = 42
NUM_BLOCKS = 8
REPEATS = 3
THRESHOLDS = (0.3, 0.5, 0.7, 0.9)

QUICK_NUM_DOCS = 120
QUICK_REPEATS = 1

# Full-mode acceptance floors at threshold 0.7.
MIN_SPEEDUP = 2.0
MIN_SKIPPED = 0.55
# Guard ceiling: evaluations at threshold 0.7 on the quick workload.
GUARD_THRESHOLD = 0.7
GUARD_MAX_EVAL_FRACTION = 0.40


def make_corpus(num_docs: int) -> list:
    documents = make_documents(
        num_docs,
        vocabulary=VOCABULARY,
        num_topics=NUM_TOPICS,
        topic_strength=TOPIC_STRENGTH,
        length=DOC_LENGTH,
        seed=SEED,
    )
    return build_tfidf(documents)


def run_arm(vectors, threshold: float, *, repeats: int, **kwargs) -> dict:
    """Best-of-``repeats`` cached-pipeline run; returns timings + counters."""
    scheme = BlockScheme(len(vectors), NUM_BLOCKS)
    best = float("inf")
    merged = None
    pipeline = None
    for _ in range(repeats):
        computation = PairwiseComputation(
            scheme,
            cosine_similarity,
            threshold=threshold,
            **kwargs,
        )
        start = time.perf_counter()
        merged, pipeline = computation.run_cached(
            list(vectors), return_pipeline=True
        )
        best = min(best, time.perf_counter() - start)
    total = len(vectors) * (len(vectors) - 1) // 2
    evaluations = pipeline.counters.get(PAIRWISE_GROUP, EVALUATIONS)
    pruned = pipeline.counters.get(PAIRWISE_GROUP, PAIRS_PRUNED)
    return {
        "seconds": best,
        "evaluations": evaluations,
        "pairs_pruned": pruned,
        "skipped_ratio": pruned / total,
        "sketch_bytes": pipeline.counters.get(PAIRWISE_GROUP, SKETCH_BYTES),
        "_pairs": results_matrix(merged),
    }


def recall_against(want: dict, got: dict) -> float:
    """|found ∩ wanted| / |wanted| on pair keys; 1.0 when nothing qualifies."""
    if not want:
        return 1.0
    return len(want.keys() & got.keys()) / len(want)


def run_sweep(quick: bool = False) -> dict:
    num_docs = QUICK_NUM_DOCS if quick else NUM_DOCS
    repeats = QUICK_REPEATS if quick else REPEATS
    vectors = make_corpus(num_docs)
    total = num_docs * (num_docs - 1) // 2

    sweep = []
    for threshold in THRESHOLDS:
        want = brute_force_similarity(vectors, threshold=threshold)
        exact = run_arm(
            vectors, threshold, repeats=repeats, pruning="exact"
        )
        sketch = run_arm(
            vectors, threshold, repeats=repeats, pruning="sketch"
        )
        estimate = run_arm(
            vectors,
            threshold,
            repeats=repeats,
            pruning="sketch",
            exact_fallback=False,
        )
        entry = {"threshold": threshold, "qualifying_pairs": len(want)}
        for name, arm in (("exact", exact), ("sketch", sketch), ("estimate", estimate)):
            pairs = arm.pop("_pairs")
            arm["output_pairs"] = len(pairs)
            arm["recall"] = recall_against(want, pairs)
            arm["speedup_vs_exact"] = exact["seconds"] / arm["seconds"]
            entry[name] = arm
        # Conservation + soundness: the counters must tile the pair
        # relation, and sound pruning must reproduce the oracle exactly.
        for name in ("sketch", "estimate"):
            assert entry[name]["evaluations"] + entry[name]["pairs_pruned"] == total, (
                f"{name}@{threshold}: evaluations + pruned != v(v-1)/2"
            )
        assert entry["sketch"]["recall"] == 1.0, (
            f"exact-fallback recall {entry['sketch']['recall']} at "
            f"threshold {threshold} — a bound is unsound"
        )
        assert entry["sketch"]["output_pairs"] == len(want), (
            f"sketch arm returned {entry['sketch']['output_pairs']} pairs, "
            f"oracle has {len(want)} at threshold {threshold}"
        )
        sweep.append(entry)

    metrics = {
        "machine": machine_info(repeats=repeats),
        "workload": {
            "num_docs": num_docs,
            "vocabulary": VOCABULARY,
            "num_topics": NUM_TOPICS,
            "topic_strength": TOPIC_STRENGTH,
            "doc_length": DOC_LENGTH,
            "num_blocks": NUM_BLOCKS,
            "seed": SEED,
            "repeats": repeats,
            "quick": quick,
        },
        "total_pairs": total,
        "sweep": sweep,
    }

    rows = [
        [
            f"{entry['threshold']:.1f}",
            entry["qualifying_pairs"],
            f"{entry['exact']['seconds']:.3f}",
            f"{entry['sketch']['seconds']:.3f}",
            f"{entry['sketch']['skipped_ratio']:.2%}",
            f"{entry['sketch']['speedup_vs_exact']:.2f}x",
            f"{entry['sketch']['recall']:.4f}",
            f"{entry['estimate']['recall']:.4f}",
        ]
        for entry in sweep
    ]
    write_report(
        "threshold_join",
        f"P8 — sketch-pruned threshold join ({num_docs} docs, "
        f"{total} pairs, best of {repeats}); exact-fallback recall 1.0 "
        f"at every threshold",
        format_table(
            [
                "threshold",
                "qualifying",
                "exact s",
                "sketch s",
                "skipped",
                "speedup",
                "recall",
                "est. recall",
            ],
            rows,
        ),
    )
    JSON_PATH.write_text(json.dumps(metrics, indent=2) + "\n")

    if not quick:
        at_07 = next(e for e in sweep if e["threshold"] == 0.7)
        assert at_07["sketch"]["speedup_vs_exact"] >= MIN_SPEEDUP, (
            f"sketch arm only {at_07['sketch']['speedup_vs_exact']:.2f}x "
            f"vs exact at threshold 0.7 (floor {MIN_SPEEDUP}x)"
        )
        assert at_07["sketch"]["skipped_ratio"] >= MIN_SKIPPED, (
            f"only {at_07['sketch']['skipped_ratio']:.2%} of pairs skipped "
            f"at threshold 0.7 (floor {MIN_SKIPPED:.0%})"
        )
    return metrics


# ---------------------------------------------------------------------------
# Counter-regression guard (CI lane).
# ---------------------------------------------------------------------------


def guard_measurements() -> dict:
    """Deterministic quick-workload counters at the guard threshold."""
    vectors = make_corpus(QUICK_NUM_DOCS)
    total = QUICK_NUM_DOCS * (QUICK_NUM_DOCS - 1) // 2
    want = brute_force_similarity(vectors, threshold=GUARD_THRESHOLD)
    arm = run_arm(vectors, GUARD_THRESHOLD, repeats=1, pruning="sketch")
    pairs = arm.pop("_pairs")
    return {
        "evaluations": arm["evaluations"],
        "pairs_pruned": arm["pairs_pruned"],
        "total_pairs": total,
        "sketch_bytes": arm["sketch_bytes"],
        "recall": recall_against(want, pairs),
        "output_pairs": len(pairs),
        "qualifying_pairs": len(want),
    }


def write_baseline() -> dict:
    measured = guard_measurements()
    baseline = {
        "workload": {
            "num_docs": QUICK_NUM_DOCS,
            "vocabulary": VOCABULARY,
            "num_topics": NUM_TOPICS,
            "topic_strength": TOPIC_STRENGTH,
            "doc_length": DOC_LENGTH,
            "threshold": GUARD_THRESHOLD,
            "seed": SEED,
        },
        "measured": measured,
        "ceilings": {
            # The hard acceptance line: at threshold 0.7 the sketch must
            # eliminate ≥ 60% of the pair relation.  Counter values are
            # seed-deterministic, so a modest margin over the measured
            # count still trips on any real bound loosening.
            "evaluations": min(
                int(measured["evaluations"] * 1.25),
                int(measured["total_pairs"] * GUARD_MAX_EVAL_FRACTION),
            ),
            "max_eval_fraction": GUARD_MAX_EVAL_FRACTION,
            "sketch_bytes": int(measured["sketch_bytes"] * 1.5),
        },
    }
    BASELINE_PATH.parent.mkdir(exist_ok=True)
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    return baseline


def run_guard() -> dict:
    baseline = json.loads(BASELINE_PATH.read_text())
    ceilings = baseline["ceilings"]
    measured = guard_measurements()
    failures = []
    if measured["recall"] != 1.0:
        failures.append(
            f"exact-fallback recall {measured['recall']} != 1.0 — "
            "a sketch bound dropped a qualifying pair"
        )
    if measured["output_pairs"] != measured["qualifying_pairs"]:
        failures.append(
            f"output {measured['output_pairs']} pairs, oracle has "
            f"{measured['qualifying_pairs']}"
        )
    if measured["evaluations"] > ceilings["evaluations"]:
        failures.append(
            f"evaluations {measured['evaluations']} exceeds ceiling "
            f"{ceilings['evaluations']} "
            f"(of {measured['total_pairs']} total pairs)"
        )
    if measured["evaluations"] + measured["pairs_pruned"] != measured["total_pairs"]:
        failures.append(
            "conservation violated: evaluations + pairs_pruned != v(v-1)/2"
        )
    if measured["sketch_bytes"] > ceilings.get("sketch_bytes", float("inf")):
        failures.append(
            f"sketch_bytes {measured['sketch_bytes']} exceeds ceiling "
            f"{ceilings['sketch_bytes']}"
        )
    assert not failures, "; ".join(failures)
    return {"measured": measured, "ceilings": ceilings}


def test_threshold_join(benchmark):
    metrics = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    at_07 = next(e for e in metrics["sweep"] if e["threshold"] == 0.7)
    assert at_07["sketch"]["recall"] == 1.0
    assert at_07["sketch"]["speedup_vs_exact"] >= MIN_SPEEDUP


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workload, single repeat, no perf assertions (CI artifact mode)",
    )
    parser.add_argument(
        "--guard",
        action="store_true",
        help="assert counters against baselines/threshold_join.json ceilings",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="re-measure and rewrite the guard baseline",
    )
    arguments = parser.parse_args()
    if arguments.write_baseline:
        print(json.dumps(write_baseline(), indent=2))
    elif arguments.guard:
        print(json.dumps(run_guard(), indent=2))
    else:
        print(json.dumps(run_sweep(quick=arguments.quick), indent=2))
