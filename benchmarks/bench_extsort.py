"""A5 — substrate bench: external merge sort under memory pressure.

The paper's premise is data beyond single-machine memory; the shuffle's
external sorter is the substrate mechanism that makes reduce-side
grouping possible there.  This bench measures sort throughput across
memory budgets and verifies spill behaviour: tighter budgets mean more
runs, identical output.
"""

from __future__ import annotations

import random

from harness import format_table, write_report

from repro.mapreduce.extsort import ExternalSorter

N = 20_000


def make_records():
    rng = random.Random(99)
    return [(rng.randrange(5_000), i) for i in range(N)]


def sort_with_budget(records, budget):
    with ExternalSorter(memory_budget=budget) as sorter:
        sorter.add_all(records)
        out = list(sorter.sorted_records())
        return out, sorter.num_runs, sorter.spilled_records


def test_extsort_in_memory(benchmark):
    records = make_records()
    out, runs, _spilled = benchmark(sort_with_budget, records, 10**9)
    assert runs == 0
    assert [k for k, _ in out] == sorted(k for k, _ in records)


def test_extsort_spilling(benchmark):
    records = make_records()
    out, runs, spilled = benchmark(sort_with_budget, records, 50_000)
    assert runs > 1
    assert spilled > 0
    assert [k for k, _ in out] == sorted(k for k, _ in records)


def test_extsort_budget_sweep(benchmark):
    records = make_records()

    def sweep():
        rows = []
        reference_keys = None
        reference_multiset = sorted(records)
        for budget in (10**9, 400_000, 100_000, 25_000):
            out, runs, spilled = sort_with_budget(records, budget)
            # The MR contract: key order is total, value order within a
            # key is unspecified (spill boundaries reorder it) — so check
            # the key sequence and the record multiset, not list equality.
            keys = [k for k, _ in out]
            if reference_keys is None:
                reference_keys = keys
            assert keys == reference_keys
            assert sorted(out) == reference_multiset
            rows.append([budget, runs, spilled])
        return rows

    rows = benchmark(sweep)
    run_counts = [r[1] for r in rows]
    assert run_counts == sorted(run_counts)  # tighter budget ⇒ more runs
    write_report(
        "extsort",
        f"A5 — external sort of {N} records across memory budgets",
        format_table(["budget_bytes", "spill_runs", "spilled_records"], rows),
    )
