"""A6 — ablation: three projective-plane constructions for the design scheme.

The paper builds its design scheme on the Lee-et-al fast incidence
construction (prime orders, mod-q arithmetic).  This repo additionally
implements the GF(q) homogeneous-coordinate construction (any prime
power) and the Singer difference-set construction (any prime power,
O(q) memory).  This bench compares construction time and — the real
win — driver memory: the cyclic scheme stores q+1 residues where the
stored-block scheme keeps the full q̂ × (q+1) incidence structure.
"""

from __future__ import annotations

import sys
import time

from harness import format_table, write_report

from repro.core.design import CyclicDesignScheme, DesignScheme
from repro.designs.difference_sets import cyclic_plane, singer_difference_set
from repro.designs.primes import plane_size
from repro.designs.projective import gf_plane, lee_plane

Q = 13  # plane with 183 points — big enough to show the trends, fast enough to bench


def construct_all():
    times = {}
    t0 = time.perf_counter()
    lee = lee_plane(Q)
    times["lee"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    gf = gf_plane(Q)
    times["gf"] = time.perf_counter() - t0
    singer_difference_set.cache_clear()
    t0 = time.perf_counter()
    singer = cyclic_plane(Q)
    times["singer"] = time.perf_counter() - t0
    return lee, gf, singer, times


def test_constructions_agree(benchmark):
    lee, gf, singer, times = benchmark(construct_all)
    v = plane_size(Q)
    for plane in (lee, gf, singer):
        assert len(plane) == v
        assert all(len(block) == Q + 1 for block in plane)

    # All three cover every pair exactly once (full verification).
    from repro.designs.bibd import verify_design

    for name, plane in (("lee", lee), ("gf", gf), ("singer", singer)):
        check = verify_design(plane, v, k=Q + 1, lam=1)
        assert check.ok, (name, check.violations)

    write_report(
        "design_constructions",
        f"A6 — plane constructions at q={Q} (v={v}): build time",
        format_table(
            ["construction", "seconds", "valid"],
            [[name, round(seconds, 5), "yes"] for name, seconds in times.items()],
        ),
    )


def test_cyclic_scheme_memory_advantage(benchmark):
    """Stored blocks vs difference set: the driver-memory ablation."""

    def measure():
        v = plane_size(Q)
        stored = DesignScheme(v)
        cyclic = CyclicDesignScheme(v, allow_prime_powers=False)
        stored_bytes = sys.getsizeof(stored.blocks) + sum(
            sys.getsizeof(block) + len(block) * 28 for block in stored.blocks
        )
        # plus the point->tasks index
        stored_bytes += sum(
            sys.getsizeof(tasks) + len(tasks) * 28
            for tasks in stored._subsets_of.values()
        )
        cyclic_bytes = sys.getsizeof(cyclic.difference_set) + 28 * len(
            cyclic.difference_set
        )
        return stored, cyclic, stored_bytes, cyclic_bytes

    stored, cyclic, stored_bytes, cyclic_bytes = benchmark(measure)
    # Same structural metrics...
    assert stored.metrics().replication_factor == cyclic.metrics().replication_factor
    assert (
        stored.metrics().working_set_elements
        == cyclic.metrics().working_set_elements
    )
    # ...at a fraction of the memory (≥ 50× at q=13; grows with q²).
    assert cyclic_bytes * 50 <= stored_bytes

    write_report(
        "design_memory",
        f"A6b — design-scheme driver memory at v={plane_size(Q)}",
        format_table(
            ["representation", "approx_bytes"],
            [
                ["stored blocks + index (DesignScheme)", stored_bytes],
                ["difference set (CyclicDesignScheme)", cyclic_bytes],
            ],
        ),
    )
