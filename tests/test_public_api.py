"""Public API surface tests: exports exist, are documented, and stay stable."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.mapreduce",
    "repro.cluster",
    "repro.designs",
    "repro.apps",
    "repro.workloads",
    "repro.report",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestExports:
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_all_sorted_and_unique(self, package_name):
        package = importlib.import_module(package_name)
        names = list(package.__all__)
        assert names == sorted(names), f"{package_name}.__all__ not sorted"
        assert len(names) == len(set(names)), f"{package_name}.__all__ has dupes"

    def test_package_docstring(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__ and package.__doc__.strip()


class TestDocumentation:
    @pytest.mark.parametrize("package_name", PACKAGES[1:])
    def test_public_callables_have_docstrings(self, package_name):
        package = importlib.import_module(package_name)
        undocumented = []
        for name in package.__all__:
            obj = getattr(package, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{package_name}.{name}")
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_every_module_has_docstring(self):
        import pathlib

        import repro

        root = pathlib.Path(repro.__file__).parent
        bare = []
        for path in sorted(root.rglob("*.py")):
            text = path.read_text(encoding="utf-8")
            stripped = text.lstrip()
            if stripped and not stripped.startswith(('"""', "'''", "#")):
                bare.append(str(path.relative_to(root)))
        assert not bare, f"modules without leading docstring: {bare}"


class TestStableSurface:
    """The names downstream code relies on; removing one is a break."""

    CORE_SURFACE = {
        "BroadcastScheme", "BlockScheme", "DesignScheme", "CyclicDesignScheme",
        "PairwiseComputation", "pairwise_results", "brute_force_results",
        "ConcatAggregator", "ThresholdAggregator", "TopKAggregator",
        "check_exactly_once", "balance_report", "choose_scheme",
        "HierarchicalBlockScheme", "SequentialDesignSchedule", "run_rounds",
        "auto_pairwise", "IncrementalPairwise", "Element", "results_matrix",
    }

    def test_core_surface_present(self):
        import repro.core

        missing = self.CORE_SURFACE - set(repro.core.__all__)
        assert not missing, f"core API regression: {missing}"

    def test_top_level_reexports(self):
        import repro

        for name in ("PairwiseComputation", "BlockScheme", "SerialEngine",
                     "ClusterSimulator", "Element", "KB", "MB", "GB", "TB"):
            assert hasattr(repro, name)

    def test_version(self):
        import repro

        assert repro.__version__.count(".") == 2
