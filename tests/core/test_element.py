"""Element model tests: result storage, merging, §3 size arithmetic."""

import pytest

from repro._util import GB, KB
from repro.core.element import (
    DuplicatePairError,
    Element,
    dataset_size_bytes,
    element_size_bytes,
    make_elements,
    merge_copies,
    results_matrix,
)


class TestElement:
    def test_one_indexed_ids(self):
        with pytest.raises(ValueError):
            Element(0)
        assert Element(1).eid == 1

    def test_add_result(self):
        e = Element(1, "payload")
        e.add_result(2, 0.5)
        assert e.results == {2: 0.5}

    def test_self_pair_rejected(self):
        with pytest.raises(ValueError):
            Element(3).add_result(3, 1.0)

    def test_duplicate_partner_rejected(self):
        e = Element(1)
        e.add_result(2, 0.5)
        with pytest.raises(DuplicatePairError):
            e.add_result(2, 0.7)

    def test_copy_without_results_shares_payload(self):
        payload = [1, 2, 3]
        e = Element(4, payload)
        e.add_result(1, 0.1)
        copy = e.copy_without_results()
        assert copy.eid == 4
        assert copy.payload is payload
        assert copy.results == {}
        assert e.results == {1: 0.1}  # original untouched


class TestMergeCopies:
    def _copies(self):
        a = Element(1, "data")
        a.add_result(2, 0.2)
        b = Element(1, "data")
        b.add_result(3, 0.3)
        return a, b

    def test_disjoint_merge(self):
        merged = merge_copies(self._copies())
        assert merged.results == {2: 0.2, 3: 0.3}
        assert merged.payload == "data"

    def test_duplicate_error_policy(self):
        a, _ = self._copies()
        b = Element(1)
        b.add_result(2, 0.9)
        with pytest.raises(DuplicatePairError):
            merge_copies([a, b])

    def test_duplicate_keep_policy(self):
        a, _ = self._copies()
        b = Element(1)
        b.add_result(2, 0.9)
        merged = merge_copies([a, b], on_duplicate="keep")
        assert merged.results[2] == 0.2

    def test_duplicate_combine_policy(self):
        a, _ = self._copies()
        b = Element(1)
        b.add_result(2, 0.9)
        merged = merge_copies([a, b], on_duplicate="combine", combine=max)
        assert merged.results[2] == 0.9

    def test_combine_requires_function(self):
        with pytest.raises(ValueError):
            merge_copies([Element(1)], on_duplicate="combine")

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            merge_copies([Element(1)], on_duplicate="whatever")

    def test_different_ids_rejected(self):
        with pytest.raises(ValueError):
            merge_copies([Element(1), Element(2)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_copies([])

    def test_payload_backfilled_from_later_copy(self):
        a = Element(1, None)
        b = Element(1, "late payload")
        assert merge_copies([a, b]).payload == "late payload"

    def test_original_copies_not_mutated(self):
        a, b = self._copies()
        merge_copies([a, b])
        assert a.results == {2: 0.2}
        assert b.results == {3: 0.3}


class TestSizeArithmetic:
    def test_paper_example(self):
        """§3: 10,000 × 500 KB elements → each ≈650 KB after, ≈6.5 GB total."""
        per_element = element_size_bytes(500 * KB, 9_999)
        assert per_element == 500 * KB + 9_999 * 16
        assert abs(per_element - 650 * KB) < 11 * KB  # "about 650KB"
        total = dataset_size_bytes(10_000, 500 * KB, with_results=True)
        assert abs(total - 6.5 * GB) < 0.1 * GB  # "about 6.5GB"

    def test_before_computation(self):
        assert dataset_size_bytes(10_000, 500 * KB) == 5 * GB

    def test_custom_widths(self):
        assert element_size_bytes(0, 10, id_bytes=4, result_bytes=4) == 80

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            element_size_bytes(-1, 0)
        with pytest.raises(ValueError):
            dataset_size_bytes(-1, 10)


class TestHelpers:
    def test_make_elements(self):
        elements = make_elements(["a", "b", "c"])
        assert [e.eid for e in elements] == [1, 2, 3]
        assert [e.payload for e in elements] == ["a", "b", "c"]

    def test_results_matrix_canonicalizes(self):
        a = Element(1)
        a.add_result(2, 0.5)
        b = Element(2)
        b.add_result(1, 0.5)
        assert results_matrix([a, b]) == {(2, 1): 0.5}

    def test_results_matrix_detects_asymmetry(self):
        a = Element(1)
        a.add_result(2, 0.5)
        b = Element(2)
        b.add_result(1, 0.6)  # disagrees
        with pytest.raises(ValueError):
            results_matrix([a, b])

    def test_results_matrix_accepts_mapping(self):
        a = Element(1)
        a.add_result(2, 1.5)
        assert results_matrix({1: a}) == {(2, 1): 1.5}
