"""Hierarchical schedule tests (§7 extensions)."""

import pytest

from repro.core.design import DesignScheme
from repro.core.element import results_matrix
from repro.core.hierarchical import (
    HierarchicalBlockScheme,
    SequentialDesignSchedule,
    check_schedule_exactly_once,
    hierarchical_block_limits,
    hierarchical_max_dataset_bytes,
    run_rounds,
)
from repro.core.pairwise import brute_force_results
from repro._util import GB, MB, TB

from ..conftest import abs_diff


class TestHierarchicalBlock:
    def test_round_count(self):
        assert HierarchicalBlockScheme(40, 4, 2).num_rounds == 10

    def test_rejects_bad_factors(self):
        with pytest.raises(ValueError):
            HierarchicalBlockScheme(10, 0, 2)
        with pytest.raises(ValueError):
            HierarchicalBlockScheme(10, 11, 2)
        with pytest.raises(ValueError):
            HierarchicalBlockScheme(10, 2, 0)

    @pytest.mark.parametrize("v,H,f", [(23, 3, 2), (30, 5, 3), (9, 3, 3), (2, 1, 1)])
    def test_exactly_once(self, v, H, f):
        ok, msg = check_schedule_exactly_once(HierarchicalBlockScheme(v, H, f))
        assert ok, msg

    def test_peak_replicas_below_flat(self):
        """The whole point of §7: per-round replicas ≪ total replicas."""
        schedule = HierarchicalBlockScheme(60, 5, 2)
        total = sum(r.replicas for r in schedule.rounds())
        assert schedule.peak_round_replicas() < total / 3

    def test_working_set_is_fine_grained(self):
        schedule = HierarchicalBlockScheme(64, 4, 4)
        # Coarse group has 16 elements, fine chunks 4 → tasks hold ≤ 8.
        assert schedule.max_working_set() <= 8

    def test_total_evaluations(self):
        schedule = HierarchicalBlockScheme(30, 3, 2)
        assert schedule.total_evaluations() == 30 * 29 // 2


class TestSequentialDesign:
    def test_round_partitioning(self):
        design = DesignScheme(23)
        schedule = SequentialDesignSchedule(design, 4)
        task_total = sum(len(r.tasks) for r in schedule.rounds())
        assert task_total == design.num_tasks

    def test_rounds_clamped_to_tasks(self):
        design = DesignScheme(7)  # 7 tasks
        schedule = SequentialDesignSchedule(design, 100)
        assert schedule.num_rounds == 7

    def test_peak_replicas_scales_inversely(self):
        design = DesignScheme(57)
        flat = SequentialDesignSchedule(design, 1).peak_round_replicas()
        split = SequentialDesignSchedule(design, 8).peak_round_replicas()
        assert split <= flat / 4  # ≈ flat/8, generous margin

    def test_rejects_bad_rounds(self):
        with pytest.raises(ValueError):
            SequentialDesignSchedule(DesignScheme(7), 0)


class TestRunRounds:
    @pytest.mark.parametrize(
        "schedule_factory",
        [
            lambda: HierarchicalBlockScheme(23, 3, 2),
            lambda: HierarchicalBlockScheme(23, 4, 4),
            lambda: SequentialDesignSchedule(DesignScheme(23), 5),
        ],
    )
    def test_matches_brute_force(self, small_dataset, schedule_factory):
        out = run_rounds(small_dataset, abs_diff, schedule_factory())
        assert results_matrix(out) == brute_force_results(small_dataset, abs_diff)

    def test_accepts_elements(self, small_dataset):
        from repro.core.element import Element

        elements = [Element(i + 1, p) for i, p in enumerate(small_dataset)]
        out = run_rounds(elements, abs_diff, HierarchicalBlockScheme(23, 2, 2))
        assert results_matrix(out) == brute_force_results(small_dataset, abs_diff)

    def test_wrong_cardinality_rejected(self):
        with pytest.raises(ValueError):
            run_rounds([1.0], abs_diff, HierarchicalBlockScheme(23, 2, 2))


class TestRunRoundsMR:
    """§7 rounds executed as real two-MR-job runs per round."""

    @pytest.mark.parametrize(
        "schedule_factory",
        [
            lambda: HierarchicalBlockScheme(23, 3, 2),
            lambda: HierarchicalBlockScheme(23, 5, 3),
            lambda: SequentialDesignSchedule(DesignScheme(23), 4),
        ],
    )
    def test_matches_brute_force(self, small_dataset, schedule_factory):
        from repro.core.hierarchical import run_rounds_mr

        out = run_rounds_mr(small_dataset, abs_diff, schedule_factory())
        assert results_matrix(out) == brute_force_results(small_dataset, abs_diff)

    def test_matches_in_process_rounds(self, small_dataset):
        from repro.core.hierarchical import run_rounds_mr

        schedule = HierarchicalBlockScheme(23, 4, 2)
        mr = run_rounds_mr(small_dataset, abs_diff, schedule)
        local = run_rounds(small_dataset, abs_diff, schedule)
        assert results_matrix(mr) == results_matrix(local)

    def test_multiprocess_engine(self, small_dataset):
        from repro.core.hierarchical import run_rounds_mr
        from repro.mapreduce import MultiprocessEngine

        out = run_rounds_mr(
            small_dataset,
            abs_diff,
            HierarchicalBlockScheme(23, 3, 2),
            engine=MultiprocessEngine(2),
        )
        assert results_matrix(out) == brute_force_results(small_dataset, abs_diff)

    def test_cardinality_check(self):
        from repro.core.hierarchical import run_rounds_mr

        with pytest.raises(ValueError):
            run_rounds_mr([1.0], abs_diff, HierarchicalBlockScheme(23, 2, 2))


class TestLimitModel:
    def test_limits_shrink_with_coarse_factor(self):
        small = hierarchical_block_limits(10_000, 2, 5, 500_000)
        large = hierarchical_block_limits(10_000, 20, 5, 500_000)
        assert large["working_set_bytes"] < small["working_set_bytes"]
        assert large["round_intermediate_bytes"] < small["round_intermediate_bytes"]

    def test_max_dataset_scales_with_h(self):
        flat = hierarchical_max_dataset_bytes(200 * MB, 1 * TB, 1)
        assert flat == pytest.approx(10 * GB)
        assert hierarchical_max_dataset_bytes(200 * MB, 1 * TB, 8) == pytest.approx(
            40 * GB
        )

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            hierarchical_max_dataset_bytes(1, 1, 0)
