"""Property-based validation: exactly-once coverage under random parameters.

These are the paper's formal demands (§5) tested as universal properties:
for *any* admissible (v, parameters), every scheme must cover each pair
exactly once, keep all pairs locally servable, and agree between its
map-side (get_subsets) and reduce-side (subset_members) views.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.design import DesignScheme
from repro.core.hierarchical import (
    HierarchicalBlockScheme,
    SequentialDesignSchedule,
    check_schedule_exactly_once,
)
from repro.core.validate import balance_report, check_exactly_once

# Keep v modest: the checker is O(v²) and hypothesis runs many examples.
SMALL_V = st.integers(min_value=2, max_value=40)


@given(v=SMALL_V, n=st.integers(min_value=1, max_value=20))
@settings(max_examples=40, deadline=None)
def test_broadcast_exactly_once(v, n):
    report = check_exactly_once(BroadcastScheme(v, n))
    assert report.ok, report


@given(v=SMALL_V, data=st.data())
@settings(max_examples=40, deadline=None)
def test_block_exactly_once(v, data):
    h = data.draw(st.integers(min_value=1, max_value=v))
    report = check_exactly_once(BlockScheme(v, h))
    assert report.ok, report


@given(v=SMALL_V, data=st.data())
@settings(max_examples=30, deadline=None)
def test_block_paired_diagonals_exactly_once(v, data):
    h = data.draw(st.integers(min_value=1, max_value=v))
    report = check_exactly_once(BlockScheme(v, h, pair_diagonals=True))
    assert report.ok, report


@given(v=SMALL_V, prime_powers=st.booleans())
@settings(max_examples=30, deadline=None)
def test_design_exactly_once(v, prime_powers):
    report = check_exactly_once(DesignScheme(v, allow_prime_powers=prime_powers))
    assert report.ok, report


@given(v=SMALL_V, data=st.data())
@settings(max_examples=30, deadline=None)
def test_hierarchical_block_exactly_once(v, data):
    coarse = data.draw(st.integers(min_value=1, max_value=v))
    fine = data.draw(st.integers(min_value=1, max_value=8))
    ok, msg = check_schedule_exactly_once(HierarchicalBlockScheme(v, coarse, fine))
    assert ok, msg


@given(v=SMALL_V, rounds=st.integers(min_value=1, max_value=10))
@settings(max_examples=20, deadline=None)
def test_sequential_design_exactly_once(v, rounds):
    schedule = SequentialDesignSchedule(DesignScheme(v), rounds)
    ok, msg = check_schedule_exactly_once(schedule)
    assert ok, msg


@given(v=st.integers(min_value=4, max_value=40), data=st.data())
@settings(max_examples=25, deadline=None)
def test_block_replication_is_h(v, data):
    """Table-1 invariant: every element is replicated exactly h times."""
    h = data.draw(st.integers(min_value=1, max_value=v))
    scheme = BlockScheme(v, h)
    report = balance_report(scheme)
    assert report.replication_min == report.replication_max == scheme.h


@given(v=SMALL_V, n=st.integers(min_value=1, max_value=15))
@settings(max_examples=25, deadline=None)
def test_broadcast_total_evaluations(v, n):
    """The chunks always sum to exactly v(v−1)/2 evaluations."""
    scheme = BroadcastScheme(v, n)
    total = sum(
        scheme.task_profile(t).num_evaluations for t in range(scheme.num_tasks)
    )
    assert total == v * (v - 1) // 2


@given(v=SMALL_V)
@settings(max_examples=25, deadline=None)
def test_design_evaluations_sum(v):
    """Design blocks' internal pairs also sum to the full triangle."""
    scheme = DesignScheme(v)
    total = sum(
        scheme.task_profile(t).num_evaluations for t in range(scheme.num_tasks)
    )
    assert total == v * (v - 1) // 2
