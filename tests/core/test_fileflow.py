"""File-backed pairwise execution tests."""

import pytest

from repro.core.block import BlockScheme
from repro.core.design import DesignScheme
from repro.core.element import results_matrix
from repro.core.fileflow import (
    load_elements,
    run_pairwise_on_files,
    write_element_files,
)
from repro.core.pairwise import PairwiseComputation, brute_force_results

from ..conftest import abs_diff


@pytest.fixture
def dataset():
    return [float((x * 11 + 3) % 31) for x in range(20)]


class TestElementFiles:
    def test_round_robin_layout(self, tmp_path, dataset):
        paths = write_element_files(tmp_path / "in", dataset, files=3)
        assert len(paths) == 3
        from repro.mapreduce.textio import read_records

        all_ids = sorted(
            key for path in paths for key, _value in read_records(path)
        )
        assert all_ids == list(range(1, 21))

    def test_bad_file_count(self, tmp_path):
        with pytest.raises(ValueError):
            write_element_files(tmp_path, [1.0], files=0)


class TestEndToEnd:
    def test_matches_brute_force(self, tmp_path, dataset):
        paths = write_element_files(tmp_path / "in", dataset, files=4)
        computation = PairwiseComputation(BlockScheme(20, 4), abs_diff)
        out_paths, report = run_pairwise_on_files(
            computation, paths, tmp_path / "work"
        )
        elements = load_elements(out_paths)
        assert results_matrix(elements) == brute_force_results(dataset, abs_diff)
        assert report.output_records == 20

    def test_intermediate_measures_replication(self, tmp_path, dataset):
        """Table 1: job-1 output holds exactly v·h element copies."""
        scheme = BlockScheme(20, 4)
        paths = write_element_files(tmp_path / "in", dataset, files=2)
        computation = PairwiseComputation(scheme, abs_diff)
        _out, report = run_pairwise_on_files(computation, paths, tmp_path / "work")
        assert report.intermediate_records == 20 * scheme.h
        assert report.disk_replication_factor == scheme.h
        # Materialized intermediate really is bigger than the input.
        assert report.intermediate_bytes > report.input_bytes

    def test_intermediate_left_on_disk(self, tmp_path, dataset):
        paths = write_element_files(tmp_path / "in", dataset)
        computation = PairwiseComputation(DesignScheme(20), abs_diff)
        run_pairwise_on_files(computation, paths, tmp_path / "work")
        inter = list((tmp_path / "work" / "intermediate").glob("part-r-*.jsonl"))
        assert inter  # inspectable, like chained Hadoop jobs

    def test_empty_inputs_rejected(self, tmp_path, dataset):
        computation = PairwiseComputation(BlockScheme(20, 2), abs_diff)
        with pytest.raises(ValueError):
            run_pairwise_on_files(computation, [], tmp_path / "work")

    def test_load_elements_detects_duplicates(self, tmp_path):
        from repro.core.element import Element
        from repro.mapreduce.textio import write_records

        write_records(tmp_path / "a.jsonl", [(1, Element(1, 0.5))])
        write_records(tmp_path / "b.jsonl", [(1, Element(1, 0.5))])
        with pytest.raises(ValueError):
            load_elements([tmp_path / "a.jsonl", tmp_path / "b.jsonl"])

    def test_load_elements_type_check(self, tmp_path):
        from repro.mapreduce.textio import write_records

        write_records(tmp_path / "bad.jsonl", [(1, "not an element")])
        with pytest.raises(TypeError):
            load_elements([tmp_path / "bad.jsonl"])
