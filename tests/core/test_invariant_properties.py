"""Cross-cutting invariants, property-tested across subsystems.

These are the contracts that hold *between* modules: scheme metrics vs
measured balance, analytic vs enumerated task profiles, aggregation
order-independence, serialization faithfulness — each one a seam where
independent implementations must agree.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregate import ConcatAggregator
from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.design import CyclicDesignScheme, DesignScheme
from repro.core.element import Element, merge_copies
from repro.core.pairwise import PairwiseComputation, brute_force_results
from repro.core.validate import balance_report

SMALL_V = st.integers(min_value=2, max_value=30)


def _random_scheme(draw, v):
    kind = draw(st.sampled_from(["broadcast", "block", "block-diag", "design", "cyclic"]))
    if kind == "broadcast":
        return BroadcastScheme(v, draw(st.integers(min_value=1, max_value=12)))
    if kind == "block":
        return BlockScheme(v, draw(st.integers(min_value=1, max_value=v)))
    if kind == "block-diag":
        return BlockScheme(
            v, draw(st.integers(min_value=1, max_value=v)), pair_diagonals=True
        )
    if kind == "design":
        return DesignScheme(v)
    return CyclicDesignScheme(v)


@given(v=SMALL_V, data=st.data())
@settings(max_examples=40, deadline=None)
def test_task_profiles_equal_enumeration(v, data):
    """Closed-form task profiles == enumerated members/pairs, all schemes."""
    scheme = _random_scheme(data.draw, v)
    for task in range(scheme.num_tasks):
        profile = scheme.task_profile(task)
        members = scheme.subset_members(task)
        assert profile.num_members == len(members)
        assert profile.num_evaluations == len(scheme.get_pairs(task, members))


@given(v=SMALL_V, data=st.data())
@settings(max_examples=30, deadline=None)
def test_metrics_working_set_bounds_measured(v, data):
    """Analytic working-set size is an upper bound on every real task."""
    scheme = _random_scheme(data.draw, v)
    limit = scheme.metrics().working_set_elements
    report = balance_report(scheme)
    assert report.ws_max <= limit + (limit if scheme.name.startswith("block") else 0)
    # block's 2⌈v/h⌉ is exact for cross blocks; diagonal-only tasks are
    # smaller — hence bound, not equality.


@given(v=SMALL_V, data=st.data())
@settings(max_examples=25, deadline=None)
def test_pipeline_equals_brute_force_random_schemes(v, data):
    """The headline invariant at a random point of the whole config space."""
    scheme = _random_scheme(data.draw, v)
    payloads = [
        data.draw(st.floats(min_value=-50, max_value=50, allow_nan=False))
        for _ in range(v)
    ]

    from ..conftest import abs_diff

    computation = PairwiseComputation(scheme, abs_diff)
    from repro.core.element import results_matrix

    assert results_matrix(computation.run_local(payloads)) == brute_force_results(
        payloads, abs_diff
    )


@given(
    partner_groups=st.lists(
        st.dictionaries(
            st.integers(min_value=2, max_value=60),
            st.floats(allow_nan=False),
            max_size=5,
        ),
        min_size=1,
        max_size=5,
    ),
    seed=st.randoms(),
)
@settings(max_examples=40, deadline=None)
def test_merge_copies_order_independent(partner_groups, seed):
    """Merging disjoint copies commutes — any permutation, same element."""
    # Make the partner sets disjoint by offsetting each group.
    copies = []
    offset = 0
    for group in partner_groups:
        element = Element(1, "payload")
        for partner, value in group.items():
            element.results[partner + offset * 100] = value
        copies.append(element)
        offset += 1
    merged_forward = merge_copies([c for c in copies])
    shuffled = list(copies)
    seed.shuffle(shuffled)
    merged_shuffled = merge_copies(shuffled)
    assert merged_forward.results == merged_shuffled.results


@given(
    results=st.dictionaries(
        st.integers(min_value=2, max_value=100),
        st.floats(allow_nan=False),
        max_size=8,
    )
)
@settings(max_examples=30, deadline=None)
def test_concat_aggregator_idempotent_on_single_copy(results):
    element = Element(1, "p")
    element.results = dict(results)
    merged = ConcatAggregator()([element])
    assert merged.results == results


@given(
    records=st.lists(
        st.tuples(
            st.one_of(st.integers(), st.text(max_size=8)),
            st.one_of(
                st.integers(),
                st.floats(allow_nan=False),
                st.text(max_size=12),
                st.lists(st.integers(), max_size=4),
            ),
        ),
        max_size=30,
    )
)
@settings(max_examples=30, deadline=None)
def test_textio_roundtrip_property(records, tmp_path_factory):
    """Arbitrary JSON-able records survive the JSONL round trip."""
    from repro.mapreduce.textio import read_records, write_records

    path = tmp_path_factory.mktemp("textio") / "records.jsonl"
    write_records(path, records)
    assert list(read_records(path)) == records


@given(v=SMALL_V, n=st.integers(min_value=1, max_value=10))
@settings(max_examples=30, deadline=None)
def test_broadcast_effective_ws_never_exceeds_v(v, n):
    scheme = BroadcastScheme(v, n)
    for task in range(n):
        effective = scheme.effective_working_set(task)
        assert len(effective) <= v
        for eid in effective:
            assert 1 <= eid <= v
