"""Speedup / efficiency model tests."""

import pytest

from repro._util import KB, MB
from repro.core.cost_model import block_row, broadcast_row, design_row
from repro.core.speedup import (
    MachineModel,
    max_useful_nodes,
    predicted_makespan,
    scalability_knee,
    speedup_curve,
)

METRICS = block_row(2_000, 20)
S = 100 * KB


class TestMakespan:
    def test_compute_scales_inversely(self):
        c1, _ = predicted_makespan(METRICS, S, 1)
        c4, _ = predicted_makespan(METRICS, S, 4)
        assert c4 == pytest.approx(c1 / 4)

    def test_comm_scales_inversely(self):
        _, m1 = predicted_makespan(METRICS, S, 1)
        _, m4 = predicted_makespan(METRICS, S, 4)
        assert m4 == pytest.approx(m1 / 4)

    def test_per_task_floor_binds(self):
        """Huge clusters cannot beat the largest single task."""
        machine = MachineModel()
        compute, _ = predicted_makespan(METRICS, S, 10_000, machine)
        floor = METRICS.evaluations_per_task * machine.eval_seconds
        assert compute == pytest.approx(floor)

    def test_validation(self):
        with pytest.raises(ValueError):
            predicted_makespan(METRICS, S, 0)
        with pytest.raises(ValueError):
            predicted_makespan(METRICS, 0, 1)
        with pytest.raises(ValueError):
            MachineModel(eval_seconds=0)
        with pytest.raises(ValueError):
            MachineModel(slots_per_node=0)


class TestSpeedupCurve:
    def test_monotone_and_bounded(self):
        points = speedup_curve(METRICS, S, [1, 2, 4, 8, 16])
        speedups = [p.speedup for p in points]
        assert speedups[0] == pytest.approx(1.0)
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
        for p in points:
            assert p.speedup <= p.nodes + 1e-9  # no super-linear speedup

    def test_efficiency_declines(self):
        points = speedup_curve(METRICS, S, [1, 4, 16, 64, 256])
        efficiencies = [p.efficiency for p in points]
        assert all(b <= a + 1e-9 for a, b in zip(efficiencies, efficiencies[1:]))

    def test_comm_fraction_constant_here(self):
        """Both terms scale 1/n for block below the floor — comm share flat."""
        points = speedup_curve(METRICS, S, [1, 2, 4])
        fractions = {round(p.comm_fraction, 9) for p in points}
        assert len(fractions) == 1

    def test_empty_counts_rejected(self):
        with pytest.raises(ValueError):
            speedup_curve(METRICS, S, [])


class TestSchemeComparison:
    def test_design_has_most_tasks_hence_longest_scaling(self):
        """Table 1's task counts order the useful-parallelism ceilings."""
        v = 2_000
        broadcast = broadcast_row(v, 16)
        block = block_row(v, 20)
        design = design_row(v)
        assert (
            max_useful_nodes(broadcast)
            < max_useful_nodes(block)
            < max_useful_nodes(design)
        )

    def test_broadcast_compute_saturates_at_task_count(self):
        """With p tasks, the compute term stops improving once slots ≈ p;
        only the (smaller) communication term keeps shrinking, so the
        overall knee follows within a small factor."""
        broadcast = broadcast_row(500, 8)
        ceiling = max_useful_nodes(broadcast)
        at_ceiling, _ = predicted_makespan(broadcast, S, ceiling)
        beyond, _ = predicted_makespan(broadcast, S, ceiling * 4)
        assert beyond == pytest.approx(at_ceiling)  # compute saturated
        knee = scalability_knee(broadcast, S, max_nodes=64)
        assert ceiling <= knee <= 4 * ceiling

    def test_knee_validation(self):
        knee = scalability_knee(METRICS, S, max_nodes=16)
        assert 1 <= knee <= 16

    def test_max_useful_nodes_validation(self):
        with pytest.raises(ValueError):
            max_useful_nodes(METRICS, slots_per_node=0)
