"""Quorum scheme tests: exactly-once coverage, skew-aware packing, metering.

The quorum scheme's correctness argument is canonical per-difference-class
pair ownership (module docstring of ``repro.core.quorum``); these tests
check it exhaustively for every v the scheme claims to support, plus the
skew-aware permutation's invariance, the replication lower-bound report,
engine parity against broadcast, and the chooser crossover.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import GB, MB
from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.chooser import choose_scheme
from repro.core.design import DesignScheme
from repro.core.element import results_matrix
from repro.core.pairwise import PairwiseComputation, brute_force_results
from repro.core.quorum import QuorumScheme, measure_task_bytes
from repro.core.runner import auto_pairwise
from repro.core.validate import balance_report, check_exactly_once
from repro.designs.difference_covers import difference_cover
from repro.mapreduce import MultiprocessEngine, SerialEngine


def closed_form_coverage_ok(scheme: QuorumScheme) -> bool:
    """Cheap full-coverage check: every pair from get_pairs, exactly once."""
    v = scheme.v
    seen = set()
    for t in range(scheme.num_tasks):
        for pair in scheme.get_pairs(t, ()):
            if pair in seen:
                return False
            seen.add(pair)
    expected = {(i, j) for i in range(2, v + 1) for j in range(1, i)}
    return seen == expected


class TestExactlyOnce:
    @pytest.mark.parametrize("v", [3, 4, 7, 12, 20, 31, 57, 58])
    def test_full_checker_small(self, v):
        report = check_exactly_once(QuorumScheme(v))
        assert report.ok, report

    @given(v=st.integers(min_value=3, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_closed_form_coverage_sampled(self, v):
        assert closed_form_coverage_ok(QuorumScheme(v))

    @pytest.mark.replication
    def test_closed_form_coverage_every_v_to_200(self):
        for v in range(3, 201):
            assert closed_form_coverage_ok(QuorumScheme(v)), v

    def test_pairs_lie_in_working_set(self):
        scheme = QuorumScheme(58)
        for t in range(scheme.num_tasks):
            members = set(scheme.subset_members(t))
            for i, j in scheme.get_pairs(t, ()):
                assert i in members and j in members
                assert i > j

    def test_perfect_and_greedy_paths(self):
        assert QuorumScheme(57).cover.kind == "perfect"
        assert QuorumScheme(58).cover.kind == "greedy"
        for v in (57, 58):
            report = check_exactly_once(QuorumScheme(v))
            assert report.ok, report

    def test_explicit_cover(self):
        scheme = QuorumScheme(7, cover=(0, 1, 3))
        assert scheme.cover.kind == "explicit"
        report = check_exactly_once(scheme)
        assert report.ok, report

    def test_bad_explicit_cover_rejected(self):
        with pytest.raises(ValueError):
            QuorumScheme(7, cover=(0, 1))

    def test_cover_v_mismatch_rejected(self):
        with pytest.raises(ValueError):
            QuorumScheme(58, cover=difference_cover(57))


class TestStructure:
    def test_map_reduce_views_agree(self):
        scheme = QuorumScheme(30)
        for eid in range(1, 31):
            for t in scheme.get_subsets(eid):
                assert eid in scheme.subset_members(t)
        for t in range(scheme.num_tasks):
            for eid in scheme.subset_members(t):
                assert t in scheme.get_subsets(eid)

    def test_balanced_evaluations(self):
        # Every task evaluates ⌊(v−1)/2⌋ or ⌈(v−1)/2⌉ pairs.
        for v in (29, 30):
            scheme = QuorumScheme(v)
            counts = {len(scheme.get_pairs(t, ())) for t in range(v)}
            assert counts <= {(v - 1) // 2, v // 2}
            total = sum(len(scheme.get_pairs(t, ())) for t in range(v))
            assert total == v * (v - 1) // 2

    def test_task_profile_matches_reality(self):
        scheme = QuorumScheme(30)
        for t in range(scheme.num_tasks):
            profile = scheme.task_profile(t)
            assert profile.num_members == len(scheme.subset_members(t))
            assert profile.num_evaluations == len(scheme.get_pairs(t, ()))

    def test_metrics_row(self):
        scheme = QuorumScheme(58)
        m = scheme.metrics()
        k = scheme.cover.size
        assert m.num_tasks == 58
        assert m.replication_factor == float(k)
        assert m.working_set_elements == k
        assert m.communication_records == 2 * 58 * k
        assert scheme.replication_of(1) == k

    def test_replication_matches_balance_report(self):
        scheme = QuorumScheme(31)
        report = balance_report(scheme)
        assert report.replication_min == report.replication_max == scheme.cover.size


class TestReplicationReport:
    def test_perfect_cover_meets_bound_exactly(self):
        for v in (57, 73, 91, 133):
            report = QuorumScheme(v).replication_report()
            assert report.optimality_ratio == pytest.approx(1.0)

    def test_greedy_cover_within_modest_factor(self):
        report = QuorumScheme(58).replication_report()
        assert 1.0 <= report.optimality_ratio < 1.5

    def test_quorum_beats_padded_design_off_plane(self):
        quorum = QuorumScheme(58).replication_report()
        design = DesignScheme(58).replication_report()
        assert quorum.replication_achieved < design.replication_achieved

    def test_every_scheme_reports(self):
        for scheme in (
            BroadcastScheme(30, 4),
            BlockScheme(30, 5),
            DesignScheme(30),
            QuorumScheme(30),
        ):
            report = scheme.replication_report()
            assert report.replication_achieved > 0
            assert report.optimality_ratio >= 0.99  # achieved can't beat the bound
            assert "ratio" in report.summary()

    def test_skew_fields_only_with_sizes(self):
        plain = QuorumScheme(30).replication_report()
        assert plain.max_task_bytes is None and plain.bytes_skew is None
        sized = QuorumScheme(30, element_sizes=[1000] * 30).replication_report()
        assert sized.max_task_bytes == sized.mean_task_bytes
        assert sized.bytes_skew == pytest.approx(1.0)


class TestSkewAware:
    SIZES = [65536] * 4 + [1024] * 26  # 4 heavy + 26 light at v=30

    def test_coverage_invariant_under_packing(self):
        scheme = QuorumScheme(30, element_sizes=self.SIZES)
        report = check_exactly_once(scheme)
        assert report.ok, report

    def test_payload_bytes_in_profile(self):
        scheme = QuorumScheme(30, element_sizes=self.SIZES)
        for t in range(scheme.num_tasks):
            profile = scheme.task_profile(t)
            members = scheme.subset_members(t)
            assert profile.payload_bytes == sum(self.SIZES[e - 1] for e in members)
            assert profile.working_set_bytes(0) == profile.payload_bytes

    def test_packing_no_worse_than_identity(self):
        skewed = QuorumScheme(30, element_sizes=self.SIZES)
        identity = QuorumScheme(30)
        max_packed, _ = measure_task_bytes(skewed, self.SIZES)
        max_identity, _ = measure_task_bytes(identity, self.SIZES)
        assert max_packed <= max_identity

    def test_mapping_sizes_accepted(self):
        as_mapping = {eid: size for eid, size in enumerate(self.SIZES, start=1)}
        a = QuorumScheme(30, element_sizes=self.SIZES)
        b = QuorumScheme(30, element_sizes=as_mapping)
        assert a.subset_members(0) == b.subset_members(0)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            QuorumScheme(30, element_sizes=[100] * 29)
        with pytest.raises(ValueError):
            QuorumScheme(30, element_sizes=[-1] + [100] * 29)

    def test_results_identical_to_plain_quorum(self):
        data = [float(i * 3 % 17) for i in range(30)]
        sizes = self.SIZES
        plain = PairwiseComputation(QuorumScheme(30), lambda a, b: a - b)
        skewed = PairwiseComputation(
            QuorumScheme(30, element_sizes=sizes), lambda a, b: a - b
        )
        assert results_matrix(plain.run(data)) == results_matrix(skewed.run(data))


V = 18
DATA = [float(i * i % 37) for i in range(V)]


def abs_diff(a, b):
    return abs(a - b)


class TestEngineParity:
    def test_two_job_pipeline_bit_identical(self):
        serial = PairwiseComputation(
            QuorumScheme(V), abs_diff, engine=SerialEngine(), num_reduce_tasks=3
        )
        merged_serial, result_serial = serial.run(
            DATA, num_map_tasks=4, return_pipeline=True
        )
        with MultiprocessEngine(max_workers=2) as engine:
            pooled = PairwiseComputation(
                QuorumScheme(V), abs_diff, engine=engine, num_reduce_tasks=3
            )
            merged_pooled, result_pooled = pooled.run(
                DATA, num_map_tasks=4, return_pipeline=True
            )
        assert len(result_serial.stages) == len(result_pooled.stages)
        for s_stage, p_stage in zip(result_serial.stages, result_pooled.stages):
            assert s_stage.records == p_stage.records
            assert s_stage.counters.as_dict() == p_stage.counters.as_dict()
        assert results_matrix(merged_serial) == results_matrix(merged_pooled)
        assert results_matrix(merged_serial) == brute_force_results(DATA, abs_diff)

    def test_quorum_matches_broadcast_results(self):
        quorum = PairwiseComputation(QuorumScheme(V), abs_diff)
        broadcast = PairwiseComputation(BroadcastScheme(V, 4), abs_diff)
        assert results_matrix(quorum.run(DATA)) == results_matrix(broadcast.run(DATA))
        assert results_matrix(quorum.run_cached(DATA)) == results_matrix(
            broadcast.run_cached(DATA)
        )

    @pytest.mark.shm
    def test_shm_plane_parity(self):
        pytest.importorskip("multiprocessing.shared_memory")
        with MultiprocessEngine(max_workers=2, data_plane="shm") as engine:
            pooled = PairwiseComputation(QuorumScheme(V), abs_diff, engine=engine)
            merged = pooled.run_cached(DATA)
        serial = PairwiseComputation(QuorumScheme(V), abs_diff)
        assert results_matrix(merged) == results_matrix(serial.run_cached(DATA))


class TestMetering:
    def test_engine_stats_populated(self):
        data = [float(i * 5 % 23) for i in range(30)]
        with MultiprocessEngine(max_workers=2) as engine:
            pc = PairwiseComputation(QuorumScheme(30), abs_diff, engine=engine)
            pc.run(data)
            stats = engine.stats
        k = difference_cover(30).size
        assert stats.replication_factor_achieved == pytest.approx(float(k))
        assert stats.replication_lower_bound == pytest.approx(29 / (k - 1))
        assert stats.shuffle_bytes_vs_bound > 0

    def test_trace_has_replication_event(self, tmp_path):
        from repro.mapreduce.controlplane import JsonlTraceSink

        path = tmp_path / "trace.jsonl"
        with MultiprocessEngine(max_workers=2, trace_sink=JsonlTraceSink(path)) as eng:
            PairwiseComputation(QuorumScheme(V), abs_diff, engine=eng).run(DATA)
        events = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip().startswith("{")
        ]
        measured = [e for e in events if e.get("type") == "ReplicationMeasured"]
        assert len(measured) == 1
        event = measured[0]
        assert event["scheme"] == "quorum"
        assert event["v"] == V
        assert event["replication_achieved"] >= event["replication_lower_bound"]

    def test_serial_engine_safe_no_stats(self):
        # SerialEngine has no .stats; the meter must not crash.
        pc = PairwiseComputation(QuorumScheme(V), abs_diff, engine=SerialEngine())
        merged = pc.run(DATA)
        assert results_matrix(merged) == brute_force_results(DATA, abs_diff)


class TestChooserCrossover:
    def test_quorum_chosen_off_plane_when_block_infeasible(self):
        choice = choose_scheme(58, 1 * MB, maxws=10 * MB, maxis=600 * MB)
        assert isinstance(choice.scheme, QuorumScheme)
        assert "difference cover" in choice.explain()

    def test_design_kept_on_exact_plane(self):
        # v=57 is the q=7 plane: design pays no padding, quorum is skipped.
        choice = choose_scheme(57, 1 * MB, maxws=10 * MB, maxis=600 * MB)
        assert isinstance(choice.scheme, DesignScheme)
        assert "quorum not needed" in choice.explain()

    def test_design_kept_when_cover_not_competitive(self):
        # v=2500: structured cover |D|=70 ≥ padded design's q+1=54.
        choice = choose_scheme(2_500, 1 * MB, maxws=50 * MB, maxis=200 * GB)
        assert isinstance(choice.scheme, DesignScheme)
        assert "not competitive" in choice.explain()

    def test_quorum_replication_strictly_below_design(self):
        choice = choose_scheme(58, 1 * MB, maxws=10 * MB, maxis=600 * MB)
        assert (
            choice.scheme.metrics().replication_factor
            < DesignScheme(58).metrics().replication_factor
        )


class TestRunnerForcedScheme:
    def test_forced_quorum_by_name(self):
        data = [float(i) for i in range(12)]
        merged, choice = auto_pairwise(data, abs_diff, scheme="quorum")
        assert isinstance(choice.scheme, QuorumScheme)
        assert "forced" in choice.explain()
        assert results_matrix(merged) == brute_force_results(data, abs_diff)

    def test_forced_instance(self):
        data = [float(i) for i in range(12)]
        scheme = QuorumScheme(12, element_sizes=[8] * 12)
        merged, choice = auto_pairwise(data, abs_diff, scheme=scheme)
        assert choice.scheme is scheme
        assert results_matrix(merged) == brute_force_results(data, abs_diff)

    def test_forced_instance_v_mismatch(self):
        with pytest.raises(ValueError):
            auto_pairwise([1.0, 2.0, 3.0], abs_diff, scheme=QuorumScheme(5))

    def test_forced_unknown_name(self):
        with pytest.raises(ValueError):
            auto_pairwise([1.0, 2.0, 3.0], abs_diff, scheme="zigzag")
