"""Scheme-chooser tests: the Fig 9b decision logic."""

import pytest

from repro._util import GB, KB, MB, TB
from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.chooser import InfeasibleWorkloadError, choose_scheme
from repro.core.cost_model import block_h_bounds
from repro.core.design import DesignScheme
from repro.core.hierarchical import HierarchicalBlockScheme

LIMITS = dict(maxws=200 * MB, maxis=1 * TB)


class TestDecisions:
    def test_small_dataset_broadcast(self):
        choice = choose_scheme(1000, 50 * KB, **LIMITS)
        assert isinstance(choice.scheme, BroadcastScheme)
        assert not choice.is_hierarchical

    def test_medium_dataset_block(self):
        choice = choose_scheme(50_000, 100 * KB, **LIMITS)
        assert isinstance(choice.scheme, BlockScheme)
        bounds = block_h_bounds(50_000 * 100 * KB, **LIMITS)
        assert bounds.h_min <= choice.scheme.h_requested <= bounds.h_max

    def test_huge_dataset_hierarchical(self):
        choice = choose_scheme(5_000, 10 * MB, **LIMITS)
        assert isinstance(choice.scheme, HierarchicalBlockScheme)
        assert choice.is_hierarchical

    def test_design_when_block_infeasible(self):
        # vs = 2500 × 1 MB = 2.5 GB; block needs vs ≤ sqrt(maxws·maxis/2)
        # = sqrt(50 MB · 200 GB / 2) ≈ 2.24 GB → infeasible.  Design:
        # storage v^{3/2}·s = 125 GB ≤ 200 GB and ws √v·s = 50 MB ≤ maxws.
        choice = choose_scheme(
            2_500, 1 * MB, maxws=50 * MB, maxis=200 * GB, num_nodes=8
        )
        assert isinstance(choice.scheme, DesignScheme)

    def test_chosen_scheme_respects_limits(self):
        """Whatever is chosen must actually fit the limits it was given."""
        for v, s in [(500, 100 * KB), (20_000, 200 * KB), (3_000, 2 * MB)]:
            choice = choose_scheme(v, s, **LIMITS)
            if isinstance(choice.scheme, HierarchicalBlockScheme):
                assert choice.scheme.max_working_set() * s <= LIMITS["maxws"]
            elif isinstance(choice.scheme, DesignScheme):
                m = choice.scheme.metrics()
                assert m.working_set_bytes(s) <= LIMITS["maxws"]
                assert m.intermediate_bytes(s) <= LIMITS["maxis"] * 1.05
            else:
                m = choice.scheme.metrics()
                assert m.working_set_bytes(s) <= LIMITS["maxws"]
                assert m.intermediate_bytes(s) <= LIMITS["maxis"]

    def test_min_tasks_raises_parallelism(self):
        low = choose_scheme(2_000, 500 * KB, min_tasks=4, **LIMITS)
        high = choose_scheme(2_000, 500 * KB, min_tasks=300, **LIMITS)
        def tasks(choice):
            scheme = choice.scheme
            if isinstance(scheme, HierarchicalBlockScheme):
                return max(len(r.tasks) for r in scheme.rounds())
            return scheme.num_tasks
        assert tasks(high) >= 300 or isinstance(high.scheme, DesignScheme)
        assert tasks(low) >= 4

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleWorkloadError):
            # Each element alone exceeds a task slot: nothing can fit.
            choose_scheme(100, 10 * GB, maxws=1 * MB, maxis=1 * GB, max_rounds=50)

    def test_rationale_populated(self):
        choice = choose_scheme(50_000, 100 * KB, **LIMITS)
        text = choice.explain()
        assert "block" in text and "maxws" in text


class TestValidation:
    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            choose_scheme(1, 100, **LIMITS)
        with pytest.raises(ValueError):
            choose_scheme(10, 0, **LIMITS)
        with pytest.raises(ValueError):
            choose_scheme(10, 100, maxws=0, maxis=1)
        with pytest.raises(ValueError):
            choose_scheme(10, 100, num_nodes=0, **LIMITS)

    def test_prime_power_passthrough(self):
        choice = choose_scheme(
            21, 1 * MB, maxws=6 * MB, maxis=100 * TB, allow_prime_powers=True
        )
        if isinstance(choice.scheme, DesignScheme):
            assert choice.scheme.q == 4
