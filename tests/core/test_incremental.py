"""Incremental pairwise maintenance tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import IncrementalPairwise
from repro.core.pairwise import brute_force_results

from ..conftest import abs_diff


class TestSingleBatch:
    def test_first_batch_is_full_triangle(self):
        inc = IncrementalPairwise(abs_diff)
        report = inc.add_batch([1.0, 5.0, 2.0, 9.0])
        assert report.cross_evaluations == 0
        assert report.fresh_evaluations == 6
        assert inc.results() == brute_force_results([1.0, 5.0, 2.0, 9.0], abs_diff)

    def test_single_element_first_batch(self):
        inc = IncrementalPairwise(abs_diff)
        report = inc.add_batch([3.0])
        assert report.evaluations == 0
        assert inc.v == 1

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            IncrementalPairwise(abs_diff).add_batch([])


class TestGrowth:
    def test_matches_full_recompute(self):
        data = [float((x * 7 + 1) % 23) for x in range(18)]
        inc = IncrementalPairwise(abs_diff)
        inc.add_batch(data[:5])
        inc.add_batch(data[5:11])
        inc.add_batch(data[11:])
        assert inc.results() == brute_force_results(data, abs_diff)

    def test_evaluation_counts_exact(self):
        inc = IncrementalPairwise(abs_diff)
        inc.add_batch([1.0] * 10)
        report = inc.add_batch([2.0] * 4)
        assert report.cross_evaluations == 10 * 4
        assert report.fresh_evaluations == 4 * 3 // 2
        assert report.total_elements == 14

    def test_savings_grow_with_base(self):
        inc = IncrementalPairwise(abs_diff)
        inc.add_batch([float(x) for x in range(40)])
        report = inc.add_batch([100.0, 101.0])
        # 40·2 + 1 = 81 evaluations instead of C(42,2) = 861.
        assert report.evaluations == 81
        assert report.savings_vs_recompute() > 0.9

    def test_ids_assigned_in_arrival_order(self):
        inc = IncrementalPairwise(abs_diff)
        inc.add_batch([10.0, 20.0])
        inc.add_batch([30.0])
        assert sorted(inc.elements) == [1, 2, 3]
        assert inc.elements[3].payload == 30.0

    def test_single_element_batches(self):
        data = [float(x * 3 % 11) for x in range(7)]
        inc = IncrementalPairwise(abs_diff)
        for value in data:
            inc.add_batch([value])
        assert inc.results() == brute_force_results(data, abs_diff)

    def test_old_results_never_recomputed(self):
        calls = []

        def counting_comp(a, b):
            calls.append((a, b))
            return abs(a - b)

        inc = IncrementalPairwise(counting_comp)
        inc.add_batch([1.0, 2.0, 3.0])
        first = len(calls)
        assert first == 3
        inc.add_batch([4.0])
        assert len(calls) - first == 3  # only the 3 cross pairs


class TestCustomFactories:
    def test_custom_flat_factory(self):
        from repro.core.design import DesignScheme

        inc = IncrementalPairwise(
            abs_diff, flat_scheme_factory=lambda v: DesignScheme(v)
        )
        data = [float(x) for x in range(9)]
        inc.add_batch(data)
        assert inc.results() == brute_force_results(data, abs_diff)

    def test_bad_factory_detected(self):
        inc = IncrementalPairwise(
            abs_diff, flat_scheme_factory=lambda v: __import__(
                "repro.core.block", fromlist=["BlockScheme"]
            ).BlockScheme(v + 1, 1)
        )
        with pytest.raises(ValueError):
            inc.add_batch([1.0, 2.0])

    def test_custom_cross_factors(self):
        inc = IncrementalPairwise(abs_diff, cross_factors=lambda vr, vs: (2, 1))
        inc.add_batch([1.0, 2.0, 3.0, 4.0])
        inc.add_batch([5.0, 6.0])
        assert inc.results() == brute_force_results(
            [1.0, 2.0, 3.0, 4.0, 5.0, 6.0], abs_diff
        )


@given(
    batches=st.lists(
        st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1, max_size=6),
        min_size=1,
        max_size=4,
    )
)
@settings(max_examples=30, deadline=None)
def test_property_any_batching_equals_recompute(batches):
    """Invariant: however the data is batched, the final result map equals
    the from-scratch computation over the concatenation."""
    inc = IncrementalPairwise(abs_diff)
    flattened = []
    for batch in batches:
        inc.add_batch(batch)
        flattened.extend(batch)
    assert inc.results() == brute_force_results(flattened, abs_diff)
