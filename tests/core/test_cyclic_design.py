"""CyclicDesignScheme tests: the O(√v)-memory design scheme."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.design import CyclicDesignScheme, DesignScheme
from repro.core.element import results_matrix
from repro.core.pairwise import PairwiseComputation, brute_force_results, pairwise_results
from repro.core.validate import assert_valid_scheme, check_exactly_once

from ..conftest import abs_diff


class TestConstruction:
    def test_prime_power_default(self):
        # v=21 fits the order-4 plane; the cyclic scheme takes it by default.
        assert CyclicDesignScheme(21).q == 4
        assert CyclicDesignScheme(21, allow_prime_powers=False).q == 5

    def test_no_blocks_materialized(self):
        scheme = CyclicDesignScheme(57)
        assert not hasattr(scheme, "blocks")
        assert len(scheme.difference_set) == 8  # q+1 residues — that's all

    def test_describe(self):
        assert "|D|=8" in CyclicDesignScheme(57).describe()


class TestEquivalenceWithStoredBlocks:
    @pytest.mark.parametrize("v", [7, 13, 31, 57])
    def test_metrics_match_on_exact_planes(self, v):
        cyclic = CyclicDesignScheme(v, allow_prime_powers=False).metrics()
        stored = DesignScheme(v).metrics()
        assert cyclic.num_tasks == stored.num_tasks
        assert cyclic.replication_factor == stored.replication_factor
        assert cyclic.working_set_elements == stored.working_set_elements
        assert cyclic.evaluations_per_task == stored.evaluations_per_task

    def test_truncated_pair_totals_agree(self):
        """Truncation interacts with each construction's point labelling,
        so block-size *profiles* differ — but both must still cover
        exactly C(v,2) pairs (Σ C(k,2) over blocks is invariant)."""
        v = 40
        cyclic = CyclicDesignScheme(v, allow_prime_powers=False)
        stored = DesignScheme(v)

        def total_pairs(scheme):
            return sum(
                scheme.task_profile(t).num_evaluations
                for t in range(scheme.num_tasks)
            )

        assert total_pairs(cyclic) == total_pairs(stored) == v * (v - 1) // 2


class TestValidity:
    @pytest.mark.parametrize("v", [2, 7, 12, 21, 23, 40, 57, 73])
    def test_exactly_once(self, v):
        assert_valid_scheme(CyclicDesignScheme(v))

    @given(v=st.integers(min_value=2, max_value=45))
    @settings(max_examples=20, deadline=None)
    def test_property_exactly_once(self, v):
        report = check_exactly_once(CyclicDesignScheme(v))
        assert report.ok, report


class TestPipeline:
    def test_matches_brute_force(self, small_dataset):
        got = pairwise_results(small_dataset, abs_diff, CyclicDesignScheme(23))
        assert got == brute_force_results(small_dataset, abs_diff)

    def test_run_local(self, small_dataset):
        computation = PairwiseComputation(CyclicDesignScheme(23), abs_diff)
        local = results_matrix(computation.run_local(small_dataset))
        assert local == brute_force_results(small_dataset, abs_diff)

    def test_mismatched_members_raise(self):
        scheme = CyclicDesignScheme(13)
        task = scheme.get_subsets(1)[0]
        with pytest.raises(ValueError):
            scheme.get_pairs(task, [1, 999])


class TestTaskProfiles:
    def test_profiles_match_enumeration(self):
        scheme = CyclicDesignScheme(40)
        for t in range(scheme.num_tasks):
            profile = scheme.task_profile(t)
            members = scheme.subset_members(t)
            assert profile.num_members == len(members)
            assert profile.num_evaluations == len(scheme.get_pairs(t, members))

    def test_empty_tasks_have_no_work(self):
        # Truncate far below the plane: many blocks lose all/most points.
        scheme = CyclicDesignScheme(8, allow_prime_powers=False)  # plane 13
        empties = [
            t for t in range(scheme.num_tasks) if not scheme.subset_members(t)
        ]
        for t in empties:
            assert scheme.get_pairs(t) == []
            assert scheme.task_profile(t).num_evaluations == 0
