"""Serial vs. pooled engine: bit-identical pairwise runs per scheme.

The acceptance bar for the persistent-pool engine: for every distribution
scheme and every execution path (two-job chain through ``pipeline.py``,
cache-resident chain, one-job broadcast), records *and* counters must be
exactly equal between :class:`SerialEngine` and
:class:`MultiprocessEngine` — stage by stage, in order.
"""

import pytest

from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.design import DesignScheme
from repro.core.element import results_matrix
from repro.core.pairwise import PairwiseComputation, brute_force_results
from repro.mapreduce import MultiprocessEngine, SerialEngine

V = 18
DATA = [float(i * i % 37) for i in range(V)]


def abs_diff(a, b):
    return abs(a - b)


SCHEMES = {
    "broadcast": lambda: BroadcastScheme(V, 4),
    "block": lambda: BlockScheme(V, 4),
    "design": lambda: DesignScheme(V),
}


def computation(scheme, engine):
    return PairwiseComputation(scheme, abs_diff, engine=engine, num_reduce_tasks=3)


def assert_stages_identical(serial_result, pooled_result):
    """Stage records (in order) and merged counters must match exactly."""
    assert len(serial_result.stages) == len(pooled_result.stages)
    for serial_stage, pooled_stage in zip(serial_result.stages, pooled_result.stages):
        assert serial_stage.records == pooled_stage.records
        assert serial_stage.counters.as_dict() == pooled_stage.counters.as_dict()


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
class TestTwoJobChainParity:
    def test_two_job_pipeline_bit_identical(self, scheme_name):
        serial = computation(SCHEMES[scheme_name](), SerialEngine())
        merged_serial, result_serial = serial.run(DATA, num_map_tasks=4, return_pipeline=True)
        with MultiprocessEngine(max_workers=2) as engine:
            pooled = computation(SCHEMES[scheme_name](), engine)
            merged_pooled, result_pooled = pooled.run(
                DATA, num_map_tasks=4, return_pipeline=True
            )
        assert_stages_identical(result_serial, result_pooled)
        assert results_matrix(merged_serial) == results_matrix(merged_pooled)
        assert results_matrix(merged_serial) == brute_force_results(DATA, abs_diff)

    def test_cached_chain_bit_identical(self, scheme_name):
        serial = computation(SCHEMES[scheme_name](), SerialEngine())
        merged_serial, result_serial = serial.run_cached(
            DATA, num_map_tasks=4, return_pipeline=True
        )
        with MultiprocessEngine(max_workers=2) as engine:
            pooled = computation(SCHEMES[scheme_name](), engine)
            merged_pooled, result_pooled = pooled.run_cached(
                DATA, num_map_tasks=4, return_pipeline=True
            )
        assert_stages_identical(result_serial, result_pooled)
        assert results_matrix(merged_serial) == results_matrix(merged_pooled)
        assert results_matrix(merged_serial) == brute_force_results(DATA, abs_diff)


class TestBroadcastOneJobParity:
    def test_one_job_broadcast_bit_identical(self):
        scheme = BroadcastScheme(V, 4)
        serial = computation(scheme, SerialEngine())
        merged_serial, result_serial = serial.run_broadcast_job(DATA, return_result=True)
        with MultiprocessEngine(max_workers=2) as engine:
            pooled = computation(BroadcastScheme(V, 4), engine)
            merged_pooled, result_pooled = pooled.run_broadcast_job(
                DATA, return_result=True
            )
        assert result_serial.records == result_pooled.records
        assert result_serial.counters.as_dict() == result_pooled.counters.as_dict()
        assert results_matrix(merged_serial) == results_matrix(merged_pooled)


class TestCachedVariantSemantics:
    def test_cached_matches_record_variant(self):
        scheme = DesignScheme(V)
        serial = computation(scheme, SerialEngine())
        via_records = serial.run(DATA, num_map_tasks=4)
        via_cache = serial.run_cached(DATA, num_map_tasks=4)
        assert results_matrix(via_records) == results_matrix(via_cache)
        assert sorted(via_cache) == sorted(via_records)
        for eid, element in via_cache.items():
            assert element.payload == via_records[eid].payload
