"""Triangle enumeration tests (the Fig. 5 labelling and its inverse)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.triangle import (
    elements_in_labels,
    label_to_pair,
    labels_for_task,
    pair_label,
    pairs_for_task,
    pairs_in_labels,
    total_pairs,
)


class TestPairLabel:
    def test_figure5_values(self):
        """The exact labels printed in the paper's Figure 5."""
        expected = {
            (2, 1): 1, (3, 1): 2, (3, 2): 3, (4, 1): 4, (4, 2): 5, (4, 3): 6,
            (5, 1): 7, (5, 2): 8, (5, 3): 9, (5, 4): 10, (6, 1): 11,
            (7, 1): 16, (7, 6): 21,
        }
        for (i, j), p in expected.items():
            assert pair_label(i, j) == p

    def test_rejects_non_canonical(self):
        with pytest.raises(ValueError):
            pair_label(1, 1)
        with pytest.raises(ValueError):
            pair_label(2, 3)  # i < j
        with pytest.raises(ValueError):
            pair_label(3, 0)

    def test_labels_are_dense(self):
        """Labels over v elements are exactly 1..v(v−1)/2, no gaps."""
        v = 12
        labels = sorted(pair_label(i, j) for i in range(2, v + 1) for j in range(1, i))
        assert labels == list(range(1, total_pairs(v) + 1))


class TestInverse:
    def test_roundtrip_small(self):
        for p in range(1, 1000):
            i, j = label_to_pair(p)
            assert i > j >= 1
            assert pair_label(i, j) == p

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            label_to_pair(0)

    @given(st.integers(min_value=1, max_value=10**15))
    def test_roundtrip_huge(self, p):
        """Exact at the billion-pair scale (no float round-off)."""
        i, j = label_to_pair(p)
        assert pair_label(i, j) == p

    @given(st.integers(min_value=2, max_value=10**7), st.data())
    def test_roundtrip_from_pair(self, i, data):
        j = data.draw(st.integers(min_value=1, max_value=i - 1))
        assert label_to_pair(pair_label(i, j)) == (i, j)


class TestTaskRanges:
    def test_union_of_tasks_is_everything(self):
        v, n = 17, 5
        seen = []
        for task in range(n):
            seen.extend(labels_for_task(task, n, v))
        assert sorted(seen) == list(range(1, total_pairs(v) + 1))

    def test_chunks_are_balanced(self):
        v, n = 100, 7
        sizes = [len(labels_for_task(t, n, v)) for t in range(n)]
        assert max(sizes) - min(sizes) <= max(sizes)  # trailing may be short
        assert max(sizes) == -(-total_pairs(v) // n)

    def test_more_tasks_than_pairs(self):
        v, n = 3, 10  # only 3 pairs
        nonempty = [t for t in range(n) if len(labels_for_task(t, n, v))]
        total = sum(len(labels_for_task(t, n, v)) for t in range(n))
        assert total == 3
        assert len(nonempty) == 3

    def test_v_below_two(self):
        assert len(labels_for_task(0, 1, 1)) == 0
        assert len(labels_for_task(0, 1, 0)) == 0

    def test_bad_task_index(self):
        with pytest.raises(ValueError):
            labels_for_task(5, 5, 10)
        with pytest.raises(ValueError):
            labels_for_task(-1, 5, 10)


class TestPairsIteration:
    def test_incremental_matches_inverse(self):
        labels = range(37, 61)
        assert list(pairs_in_labels(labels)) == [label_to_pair(p) for p in labels]

    def test_empty_range(self):
        assert list(pairs_in_labels(range(5, 5))) == []

    def test_pairs_for_task_cover_triangle(self):
        v, n = 11, 4
        seen = set()
        for task in range(n):
            for pair in pairs_for_task(task, n, v):
                assert pair not in seen
                seen.add(pair)
        assert len(seen) == total_pairs(v)
        assert all(1 <= j < i <= v for i, j in seen)

    def test_elements_in_labels(self):
        # Labels 1..3 are pairs (2,1), (3,1), (3,2) → elements {1, 2, 3}.
        assert elements_in_labels(range(1, 4)) == {1, 2, 3}

    @given(st.integers(min_value=2, max_value=60), st.integers(min_value=1, max_value=12))
    def test_property_task_partition(self, v, n):
        """Tasks always partition the label space exactly."""
        all_pairs = []
        for task in range(n):
            all_pairs.extend(pairs_for_task(task, n, v))
        assert len(all_pairs) == total_pairs(v)
        assert len(set(all_pairs)) == total_pairs(v)
