"""End-to-end pairwise computation tests (Algorithms 1 & 2 on the MR runtime)."""

import pytest

from repro.core.aggregate import ThresholdAggregator, TopKAggregator
from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.design import DesignScheme
from repro.core.element import Element, results_matrix
from repro.core.pairwise import (
    EVALUATIONS,
    PAIRWISE_GROUP,
    REPLICAS_EMITTED,
    PairwiseComputation,
    brute_force_results,
    pairwise_results,
)
from repro.mapreduce import MultiprocessEngine, SerialEngine

from ..conftest import abs_diff, pair_tuple


class TestTwoJobPipeline:
    def test_matches_brute_force(self, small_dataset, any_scheme):
        got = pairwise_results(small_dataset, abs_diff, any_scheme)
        assert got == brute_force_results(small_dataset, abs_diff)

    def test_every_pair_evaluated_in_exactly_one_task(self, small_dataset, any_scheme):
        """pair_tuple results identify inputs, so duplicates/misroutes show."""
        got = pairwise_results(small_dataset, pair_tuple, any_scheme)
        assert len(got) == 23 * 22 // 2

    def test_result_symmetry_in_element_maps(self, small_dataset):
        computation = PairwiseComputation(BlockScheme(23, 3), abs_diff)
        merged = computation.run(small_dataset)
        for eid, element in merged.items():
            # Every element carries results against all v−1 partners.
            assert len(element.results) == 22
            assert eid not in element.results

    def test_counters_measure_table1(self, small_dataset):
        scheme = BlockScheme(23, 4)
        computation = PairwiseComputation(scheme, abs_diff)
        _merged, pipeline = computation.run(small_dataset, return_pipeline=True)
        counters = pipeline.counters
        # Replicas emitted by job 1's map = v·h exactly.
        assert counters.get(PAIRWISE_GROUP, REPLICAS_EMITTED) == 23 * scheme.h
        # Evaluations = full triangle.
        assert counters.get(PAIRWISE_GROUP, EVALUATIONS) == 23 * 22 // 2

    def test_payloads_survive(self, small_dataset):
        computation = PairwiseComputation(DesignScheme(23), abs_diff)
        merged = computation.run(small_dataset)
        for eid, element in merged.items():
            assert element.payload == small_dataset[eid - 1]


class TestInputHandling:
    def test_accepts_elements(self, small_dataset):
        elements = [Element(i + 1, p) for i, p in enumerate(small_dataset)]
        computation = PairwiseComputation(BlockScheme(23, 3), abs_diff)
        merged = computation.run(elements)
        assert results_matrix(merged) == brute_force_results(small_dataset, abs_diff)

    def test_wrong_cardinality_rejected(self):
        computation = PairwiseComputation(BlockScheme(23, 3), abs_diff)
        with pytest.raises(ValueError):
            computation.run([1.0, 2.0])

    def test_non_contiguous_ids_rejected(self):
        computation = PairwiseComputation(BlockScheme(3, 1), abs_diff)
        bad = [Element(1, 0.0), Element(2, 1.0), Element(7, 2.0)]
        with pytest.raises(ValueError):
            computation.run(bad)

    def test_bad_reduce_task_count(self):
        with pytest.raises(ValueError):
            PairwiseComputation(BlockScheme(4, 2), abs_diff, num_reduce_tasks=0)


class TestRunLocal:
    def test_matches_pipeline(self, small_dataset, any_scheme):
        computation = PairwiseComputation(any_scheme, abs_diff)
        assert results_matrix(computation.run_local(small_dataset)) == results_matrix(
            computation.run(small_dataset)
        )


class TestBroadcastOneJob:
    def test_matches_brute_force(self, small_dataset):
        scheme = BroadcastScheme(23, 6)
        computation = PairwiseComputation(scheme, abs_diff)
        merged = computation.run_broadcast_job(small_dataset)
        assert results_matrix(merged) == brute_force_results(small_dataset, abs_diff)

    def test_rejects_other_schemes(self, small_dataset):
        computation = PairwiseComputation(BlockScheme(23, 3), abs_diff)
        with pytest.raises(TypeError):
            computation.run_broadcast_job(small_dataset)

    def test_counter_evaluations(self, small_dataset):
        scheme = BroadcastScheme(23, 4)
        computation = PairwiseComputation(scheme, abs_diff)
        _merged, result = computation.run_broadcast_job(small_dataset, return_result=True)
        assert result.counters.get(PAIRWISE_GROUP, EVALUATIONS) == 253
        # One-job form: one map task per pairwise task.
        assert result.num_map_tasks == scheme.num_tasks


class TestAggregatorIntegration:
    def test_threshold_pruning(self, small_dataset):
        computation = PairwiseComputation(
            BlockScheme(23, 4), abs_diff, aggregator=ThresholdAggregator(3.0)
        )
        merged = computation.run(small_dataset)
        for element in merged.values():
            assert all(value < 3.0 for value in element.results.values())

    def test_topk(self, small_dataset):
        computation = PairwiseComputation(
            DesignScheme(23), abs_diff, aggregator=TopKAggregator(3)
        )
        merged = computation.run(small_dataset)
        brute = brute_force_results(small_dataset, abs_diff)
        for eid, element in merged.items():
            assert len(element.results) == 3
            # The kept values are the 3 smallest among the true distances.
            all_dists = sorted(
                value
                for (a, b), value in brute.items()
                if eid in (a, b)
            )
            assert sorted(element.results.values()) == all_dists[:3]


class TestEngines:
    @pytest.mark.parametrize("engine_factory", [SerialEngine, lambda: MultiprocessEngine(2)])
    def test_engine_equivalence(self, small_dataset, engine_factory):
        scheme = BlockScheme(23, 3)
        computation = PairwiseComputation(scheme, abs_diff, engine=engine_factory())
        got = results_matrix(computation.run(small_dataset))
        assert got == brute_force_results(small_dataset, abs_diff)

    def test_multiprocess_broadcast_job(self, small_dataset):
        scheme = BroadcastScheme(23, 4)
        computation = PairwiseComputation(
            scheme, abs_diff, engine=MultiprocessEngine(2)
        )
        merged = computation.run_broadcast_job(small_dataset)
        assert results_matrix(merged) == brute_force_results(small_dataset, abs_diff)


class TestBruteForceHelper:
    def test_shape(self):
        data = [1.0, 5.0, 2.0]
        assert brute_force_results(data, abs_diff) == {
            (2, 1): 4.0,
            (3, 1): 1.0,
            (3, 2): 3.0,
        }
