"""Broadcast scheme tests (§5.1)."""

import pytest

from repro.core.broadcast import BroadcastScheme
from repro.core.triangle import total_pairs
from repro.core.validate import assert_valid_scheme, balance_report


class TestConstruction:
    def test_rejects_tiny_v(self):
        with pytest.raises(ValueError):
            BroadcastScheme(1, 1)

    def test_rejects_zero_tasks(self):
        with pytest.raises(ValueError):
            BroadcastScheme(10, 0)

    def test_chunk_is_ceiling(self):
        s = BroadcastScheme(10, 4)  # 45 pairs over 4 tasks
        assert s.chunk == 12


class TestSubsets:
    def test_every_element_everywhere(self):
        s = BroadcastScheme(6, 3)
        for eid in range(1, 7):
            assert s.get_subsets(eid) == [0, 1, 2]

    def test_subset_members_is_whole_dataset(self):
        s = BroadcastScheme(6, 3)
        assert s.subset_members(1) == [1, 2, 3, 4, 5, 6]

    def test_id_bounds_enforced(self):
        s = BroadcastScheme(6, 3)
        with pytest.raises(ValueError):
            s.get_subsets(0)
        with pytest.raises(ValueError):
            s.get_subsets(7)
        with pytest.raises(ValueError):
            s.get_pairs(3)


class TestPairs:
    def test_contiguous_label_chunks(self):
        s = BroadcastScheme(7, 3)  # 21 pairs, h = 7
        assert s.task_labels(0) == range(1, 8)
        assert s.task_labels(1) == range(8, 15)
        assert s.task_labels(2) == range(15, 22)

    def test_paper_first_node_rule(self):
        """Node 1 evaluates pairs 1..h with h = ⌈v(v−1)/(2n)⌉."""
        v, n = 50, 8
        s = BroadcastScheme(v, n)
        h = -(-total_pairs(v) // n)
        assert list(s.task_labels(0)) == list(range(1, h + 1))

    def test_last_task_may_be_short(self):
        s = BroadcastScheme(5, 3)  # 10 pairs, h = 4 → chunks 4,4,2
        assert [len(s.task_labels(t)) for t in range(3)] == [4, 4, 2]

    def test_members_argument_ignored(self):
        s = BroadcastScheme(5, 2)
        assert s.get_pairs(0, [1, 2]) == s.get_pairs(0)


class TestValidity:
    @pytest.mark.parametrize("v,n", [(2, 1), (7, 7), (10, 3), (23, 5), (9, 40)])
    def test_exactly_once(self, v, n):
        assert_valid_scheme(BroadcastScheme(v, n))

    def test_balance(self):
        report = balance_report(BroadcastScheme(40, 6))
        assert report.evals_max - report.evals_min <= report.evals_max
        assert report.ws_min == report.ws_max == 40  # full replication
        assert report.replication_mean == 6


class TestMetricsAndExtras:
    def test_table1_row(self):
        m = BroadcastScheme(100, 10).metrics()
        assert m.num_tasks == 10
        assert m.communication_records == 2 * 100 * 10
        assert m.replication_factor == 10
        assert m.working_set_elements == 100
        assert m.evaluations_per_task == total_pairs(100) / 10

    def test_effective_working_set_smaller_than_shipped(self):
        """A task's label chunk touches far fewer elements than v for many tasks."""
        s = BroadcastScheme(100, 50)
        effective = s.effective_working_set(0)
        assert len(effective) < 100
        assert effective <= set(range(1, 101))

    def test_describe_mentions_chunk(self):
        assert "pairs/task" in BroadcastScheme(10, 2).describe()

    def test_task_profile_matches_enumeration(self):
        s = BroadcastScheme(23, 4)
        for t in range(4):
            profile = s.task_profile(t)
            assert profile.num_members == 23
            assert profile.num_evaluations == len(s.get_pairs(t))
