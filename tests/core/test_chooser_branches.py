"""Chooser edge-branch tests: the fall-through paths."""

import pytest

from repro._util import GB, KB, MB, TB
from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.chooser import choose_scheme
from repro.core.runner import auto_pairwise


class TestBroadcastMaxisFallthrough:
    def test_broadcast_skipped_when_intermediate_blows_maxis(self):
        # Dataset fits a slot (10 MB), but p-fold replication (16×10 MB)
        # exceeds a pathologically small maxis → falls through to block.
        choice = choose_scheme(
            100, 100 * KB, maxws=200 * MB, maxis=50 * MB, num_nodes=8
        )
        assert not isinstance(choice.scheme, BroadcastScheme)
        assert any("exceed maxis" in line for line in choice.rationale)


class TestDiscreteWorkingSetBump:
    def test_h_bumped_past_ceiling_rounding(self):
        """When 2⌈v/h_min⌉·s > maxws due to rounding, h rises until the
        discrete working set fits."""
        # v=10000, s=1MB, maxws=25MB: analytic h_min=800 gives e=13 →
        # 26 MB > 25 MB; the chooser must end at h with 2⌈v/h⌉ ≤ 25.
        choice = choose_scheme(
            10_000, 1 * MB, maxws=25 * MB, maxis=100 * TB, num_nodes=8
        )
        assert isinstance(choice.scheme, BlockScheme)
        scheme = choice.scheme
        assert 2 * scheme.e * 1 * MB <= 25 * MB


class TestRunnerEdges:
    def test_asymmetric_hierarchical_rejected(self):
        from repro.mapreduce import SizedPayload

        data = [SizedPayload(40 * MB, tag=i) for i in range(30)]
        with pytest.raises(NotImplementedError):
            auto_pairwise(
                data,
                lambda a, b: a.tag - b.tag,
                maxws=100 * MB,
                maxis=600 * MB,
                symmetric=False,
            )

    def test_asymmetric_flat_works(self):
        data = [float(x) for x in range(10)]
        merged, choice = auto_pairwise(
            data, lambda a, b: a - b, symmetric=False
        )
        from repro.core.element import ordered_results

        results = ordered_results(merged)
        assert results[(3, 7)] == -4.0
        assert results[(7, 3)] == 4.0

    def test_explicit_element_size_overrides_estimate(self):
        data = [0.0, 1.0, 2.0]
        _merged, small = auto_pairwise(data, lambda a, b: a - b)
        _merged, large = auto_pairwise(
            data, lambda a, b: a - b, element_size=80 * MB
        )
        # Small payloads → broadcast; declared 150 MB → not broadcast.
        assert small.scheme.name == "broadcast"
        assert large.scheme.name != "broadcast"
