"""Non-symmetric evaluation tests (the §1 'marginal modification')."""

import pytest

from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.design import DesignScheme
from repro.core.element import ordered_results, results_matrix
from repro.core.pairwise import (
    EVALUATIONS,
    PAIRWISE_GROUP,
    PairwiseComputation,
    brute_force_asymmetric,
)


def directed(a, b):
    """Order-sensitive pair function: who is first matters."""
    return a * 1000 + b


DATA = [float(x + 1) for x in range(17)]


class TestAsymmetricPipeline:
    @pytest.mark.parametrize(
        "scheme_factory",
        [
            lambda: BroadcastScheme(17, 4),
            lambda: BlockScheme(17, 3),
            lambda: BlockScheme(17, 4, pair_diagonals=True),
            lambda: DesignScheme(17),
        ],
    )
    def test_both_orientations_stored(self, scheme_factory):
        computation = PairwiseComputation(scheme_factory(), directed, symmetric=False)
        merged = computation.run(DATA)
        got = ordered_results(merged)
        assert got == brute_force_asymmetric(DATA, directed)

    def test_run_local_matches(self):
        computation = PairwiseComputation(BlockScheme(17, 3), directed, symmetric=False)
        local = ordered_results(computation.run_local(DATA))
        assert local == brute_force_asymmetric(DATA, directed)

    def test_broadcast_one_job_asymmetric(self):
        scheme = BroadcastScheme(17, 4)
        computation = PairwiseComputation(scheme, directed, symmetric=False)
        merged = computation.run_broadcast_job(DATA)
        assert ordered_results(merged) == brute_force_asymmetric(DATA, directed)

    def test_evaluation_count_doubles(self):
        sym = PairwiseComputation(BlockScheme(17, 3), directed)
        asym = PairwiseComputation(BlockScheme(17, 3), directed, symmetric=False)
        _m1, p1 = sym.run(DATA, return_pipeline=True)
        _m2, p2 = asym.run(DATA, return_pipeline=True)
        triangle = 17 * 16 // 2
        assert p1.counters.get(PAIRWISE_GROUP, EVALUATIONS) == triangle
        assert p2.counters.get(PAIRWISE_GROUP, EVALUATIONS) == 2 * triangle

    def test_symmetric_mode_unaffected(self):
        """symmetric=True (default) still stores one value per pair."""

        def sym_fn(a, b):
            return a + b

        computation = PairwiseComputation(DesignScheme(17), sym_fn)
        merged = computation.run(DATA)
        matrix = results_matrix(merged)  # symmetry check passes
        assert len(matrix) == 17 * 16 // 2


class TestOrderedResults:
    def test_orientation_preserved(self):
        from repro.core.element import Element

        a = Element(1)
        a.add_result(2, "one-two")
        b = Element(2)
        b.add_result(1, "two-one")
        got = ordered_results([a, b])
        assert got == {(1, 2): "one-two", (2, 1): "two-one"}

    def test_mapping_input(self):
        from repro.core.element import Element

        a = Element(1)
        a.add_result(2, 5)
        assert ordered_results({1: a}) == {(1, 2): 5}
