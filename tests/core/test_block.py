"""Block scheme tests (§5.2): grid math, working sets, diagonal pairing."""

import pytest

from repro.core.block import BlockScheme
from repro.core.validate import assert_valid_scheme, balance_report


class TestConstruction:
    def test_rejects_bad_h(self):
        with pytest.raises(ValueError):
            BlockScheme(10, 0)
        with pytest.raises(ValueError):
            BlockScheme(10, 11)

    def test_paper_example_geometry(self):
        """Fig. 6: v=15, h=3 → e=5, 6 blocks."""
        s = BlockScheme(15, 3)
        assert s.e == 5
        assert s.num_tasks == 6

    def test_effective_h_shrinks(self):
        # v=10, h=6 → e=2 → only 5 groups exist.
        s = BlockScheme(10, 6)
        assert s.e == 2
        assert s.h == 5
        assert s.h_requested == 6
        assert s.num_tasks == 15


class TestGridMath:
    def test_block_position_figure6(self):
        """Fig. 6's enumeration: p=1→(1,1), 2→(2,1)... in (I,J) with I≥J.

        The paper labels positions (I=column-block, J=row-block); its p=2
        block has columns 6–10 (I=2) and rows 1–5 (J=1)."""
        s = BlockScheme(15, 3)
        assert s.block_position(1) == (1, 1)
        assert s.block_position(2) == (2, 1)
        assert s.block_position(3) == (2, 2)
        assert s.block_position(4) == (3, 1)
        assert s.block_position(5) == (3, 2)
        assert s.block_position(6) == (3, 3)

    def test_block_id_roundtrip(self):
        s = BlockScheme(100, 9)
        for p in range(1, s.num_tasks + 1):
            I, J = s.block_position(p)
            assert s.block_id(I, J) == p

    def test_block_id_rejects_bad_position(self):
        s = BlockScheme(20, 4)
        with pytest.raises(ValueError):
            s.block_id(2, 3)  # J > I
        with pytest.raises(ValueError):
            s.block_id(5, 1)  # I > h

    def test_paper_block2_members(self):
        """§5.2: block p=2 has rows 1..5 and columns 6..10 (v=15, e=5)."""
        s = BlockScheme(15, 3)
        assert s.block_members(2) == list(range(1, 6)) + list(range(6, 11))

    def test_group_of(self):
        s = BlockScheme(15, 3)
        assert s.group_of(1) == 1
        assert s.group_of(5) == 1
        assert s.group_of(6) == 2
        assert s.group_of(15) == 3

    def test_last_group_may_be_short(self):
        s = BlockScheme(13, 3)  # e = 5 → groups 5,5,3
        assert s.group_members(3) == [11, 12, 13]


class TestReplication:
    def test_each_element_in_h_blocks(self):
        """Table 1: replication factor = h."""
        s = BlockScheme(23, 4)
        for eid in range(1, 24):
            assert len(s.blocks_of_element(eid)) == s.h

    def test_blocks_of_element_consistent_with_members(self):
        s = BlockScheme(17, 4)
        for eid in range(1, 18):
            for block in s.blocks_of_element(eid):
                assert eid in s.block_members(block)


class TestPairs:
    def test_diagonal_block_is_half_triangle(self):
        s = BlockScheme(15, 3)
        pairs = s.block_pairs(1)  # block (1,1) over elements 1..5
        assert len(pairs) == 10  # 5·4/2
        assert all(1 <= j < i <= 5 for i, j in pairs)

    def test_cross_block_is_full_rectangle(self):
        s = BlockScheme(15, 3)
        pairs = s.block_pairs(2)  # rows 1..5 × cols 6..10
        assert len(pairs) == 25
        assert all(6 <= i <= 10 and 1 <= j <= 5 for i, j in pairs)


class TestValidity:
    @pytest.mark.parametrize(
        "v,h",
        [(2, 1), (2, 2), (10, 1), (10, 3), (23, 4), (23, 23), (40, 7), (15, 3)],
    )
    def test_exactly_once(self, v, h):
        assert_valid_scheme(BlockScheme(v, h))

    @pytest.mark.parametrize("v,h", [(23, 4), (40, 7), (31, 5), (16, 4)])
    def test_exactly_once_paired(self, v, h):
        assert_valid_scheme(BlockScheme(v, h, pair_diagonals=True))


class TestMetrics:
    def test_table1_row(self):
        m = BlockScheme(100, 5).metrics()
        assert m.num_tasks == 15
        assert m.communication_records == 2 * 100 * 5
        assert m.replication_factor == 5
        assert m.working_set_elements == 40  # 2·⌈100/5⌉
        assert m.evaluations_per_task == 400  # ⌈v/h⌉²

    def test_balance_measured_replication(self):
        report = balance_report(BlockScheme(60, 5))
        assert report.replication_min == report.replication_max == 5

    def test_task_profile_matches_enumeration(self):
        for scheme in (BlockScheme(23, 4), BlockScheme(23, 4, pair_diagonals=True)):
            for t in range(scheme.num_tasks):
                profile = scheme.task_profile(t)
                members = scheme.subset_members(t)
                assert profile.num_members == len(members)
                assert profile.num_evaluations == len(scheme.get_pairs(t, members))


class TestPairedDiagonals:
    def test_task_count(self):
        """h(h−1)/2 off-diagonal + ⌈h/2⌉ fused diagonal tasks."""
        s = BlockScheme(40, 4, pair_diagonals=True)
        assert s.num_tasks == 6 + 2
        s5 = BlockScheme(40, 5, pair_diagonals=True)
        assert s5.num_tasks == 10 + 3  # odd h leaves one solo diagonal

    def test_evens_out_task_work(self):
        """Fusing diagonals narrows the evals/task spread (the §5.2 point)."""
        plain = balance_report(BlockScheme(60, 6))
        paired = balance_report(BlockScheme(60, 6, pair_diagonals=True))
        assert paired.eval_imbalance <= plain.eval_imbalance

    def test_get_subsets_points_at_fused_tasks(self):
        s = BlockScheme(20, 4, pair_diagonals=True)
        for eid in range(1, 21):
            for task in s.get_subsets(eid):
                assert eid in s.subset_members(task)
