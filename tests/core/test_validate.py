"""Tests for the validator itself: it must catch broken schemes."""

from typing import Sequence

import pytest

from repro.core.block import BlockScheme
from repro.core.scheme import DistributionScheme, Pair, SchemeMetrics
from repro.core.validate import assert_valid_scheme, balance_report, check_exactly_once


class _BrokenScheme(DistributionScheme):
    """Configurable bad scheme: one working set of everything, with knobs."""

    name = "broken"

    def __init__(self, v: int, mode: str):
        super().__init__(v)
        self.mode = mode

    @property
    def num_tasks(self) -> int:
        return 2

    def get_subsets(self, element_id: int) -> list[int]:
        if self.mode == "membership-mismatch" and element_id == 1:
            return [1]  # claims subset 1, but subset_members puts it in 0
        return [0, 1]

    def subset_members(self, subset_id: int) -> list[int]:
        if self.mode == "membership-mismatch":
            return list(range(1, self.v + 1)) if subset_id == 0 else list(
                range(2, self.v + 1)
            )
        return list(range(1, self.v + 1))

    def get_pairs(self, subset_id: int, members: Sequence[int]) -> list[Pair]:
        full = [(i, j) for i in range(2, self.v + 1) for j in range(1, i)]
        if self.mode == "duplicate":
            return full  # both subsets evaluate everything → every pair twice
        if self.mode == "missing":
            return full[:-1] if subset_id == 0 else []
        if self.mode == "unservable":
            # Pair references an id outside [1, v] members list.
            return ([(self.v + 1, 1)] if subset_id == 0 else []) + (
                full if subset_id == 1 else []
            )
        if self.mode == "membership-mismatch":
            return full if subset_id == 0 else []
        return full if subset_id == 0 else []  # "valid": subset 0 does all

    def metrics(self) -> SchemeMetrics:  # pragma: no cover - not used
        raise NotImplementedError


class TestCatchesViolations:
    def test_duplicates_detected(self):
        report = check_exactly_once(_BrokenScheme(6, "duplicate"))
        assert not report.ok
        assert report.duplicated

    def test_missing_detected(self):
        report = check_exactly_once(_BrokenScheme(6, "missing"))
        assert not report.ok
        assert report.missing

    def test_unservable_detected(self):
        report = check_exactly_once(_BrokenScheme(6, "unservable"))
        assert not report.ok
        assert report.unservable

    def test_membership_mismatch_detected(self):
        report = check_exactly_once(_BrokenScheme(6, "membership-mismatch"))
        assert not report.ok
        assert report.membership_mismatches

    def test_valid_trivial_scheme_passes(self):
        report = check_exactly_once(_BrokenScheme(6, "valid"))
        assert report.ok

    def test_assert_valid_raises_with_diagnostics(self):
        with pytest.raises(AssertionError, match="exactly-once"):
            assert_valid_scheme(_BrokenScheme(6, "duplicate"))


class TestNonCanonicalPairs:
    def test_swapped_pair_raises_immediately(self):
        class Swapped(_BrokenScheme):
            def get_pairs(self, subset_id, members):
                return [(1, 2)] if subset_id == 0 else []

        with pytest.raises(AssertionError, match="non-canonical"):
            check_exactly_once(Swapped(4, "valid"))


class TestBalanceReport:
    def test_fields_consistent(self):
        report = balance_report(BlockScheme(30, 3))
        assert report.num_tasks == 6
        assert report.evals_min <= report.evals_mean <= report.evals_max
        assert report.ws_min <= report.ws_mean <= report.ws_max
        assert report.eval_imbalance >= 1.0

    def test_report_caps_output(self):
        report = check_exactly_once(_BrokenScheme(20, "duplicate"), max_reported=5)
        assert len(report.duplicated) <= 5
