"""Aggregator strategy tests (Algorithm 2's aggregateResults)."""

import pytest

from repro.core.aggregate import (
    ConcatAggregator,
    ReduceAggregator,
    ThresholdAggregator,
    TopKAggregator,
    count_neighbors,
)
from repro.core.element import DuplicatePairError, Element


def _copies(results_per_copy):
    """Build copies of element 1 with the given per-copy result maps."""
    out = []
    for results in results_per_copy:
        e = Element(1, "payload")
        for partner, value in results.items():
            e.add_result(partner, value)
        out.append(e)
    return out


class TestConcat:
    def test_merges_disjoint(self):
        merged = ConcatAggregator()(_copies([{2: 0.1}, {3: 0.2}, {4: 0.3}]))
        assert merged.results == {2: 0.1, 3: 0.2, 4: 0.3}

    def test_error_on_duplicates(self):
        with pytest.raises(DuplicatePairError):
            ConcatAggregator()(_copies([{2: 0.1}, {2: 0.2}]))

    def test_keep_policy(self):
        merged = ConcatAggregator(on_duplicate="keep")(_copies([{2: 0.1}, {2: 0.2}]))
        assert merged.results == {2: 0.1}


class TestThreshold:
    def test_keep_below(self):
        agg = ThresholdAggregator(0.5, keep_below=True)
        merged = agg(_copies([{2: 0.1, 3: 0.9}, {4: 0.5}]))
        assert merged.results == {2: 0.1}  # 0.5 is not < 0.5

    def test_keep_above(self):
        agg = ThresholdAggregator(0.5, keep_below=False)
        merged = agg(_copies([{2: 0.1, 3: 0.9}]))
        assert merged.results == {3: 0.9}

    def test_key_extractor(self):
        agg = ThresholdAggregator(1.0, keep_below=True, key=lambda v: v["d"])
        merged = agg(_copies([{2: {"d": 0.4}, 3: {"d": 2.0}}]))
        assert merged.results == {2: {"d": 0.4}}


class TestTopK:
    def test_k_smallest(self):
        agg = TopKAggregator(2, smallest=True)
        merged = agg(_copies([{2: 5.0, 3: 1.0}, {4: 3.0, 5: 0.5}]))
        assert merged.results == {5: 0.5, 3: 1.0}

    def test_k_largest(self):
        agg = TopKAggregator(1, smallest=False)
        merged = agg(_copies([{2: 5.0, 3: 1.0}]))
        assert merged.results == {2: 5.0}

    def test_ties_break_on_partner_id(self):
        agg = TopKAggregator(1, smallest=True)
        merged = agg(_copies([{3: 1.0, 2: 1.0}]))
        assert merged.results == {2: 1.0}

    def test_k_larger_than_results(self):
        agg = TopKAggregator(10)
        merged = agg(_copies([{2: 1.0}]))
        assert merged.results == {2: 1.0}

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            TopKAggregator(0)

    @pytest.mark.parametrize("smallest", [True, False])
    @pytest.mark.parametrize("k", [1, 3, 7, 20])
    def test_heap_selection_identical_to_full_sort(self, smallest, k):
        # The heap path must keep exactly the pairs the historical full
        # sort kept — ties included (values repeat on purpose).
        results = {
            partner: float((partner * 3) % 5) for partner in range(2, 20)
        }
        merged = TopKAggregator(k, smallest=smallest)(_copies([results]))
        ranked = sorted(
            results.items(),
            key=lambda item: (item[1], item[0]),
            reverse=not smallest,
        )
        assert merged.results == dict(ranked[:k])


class TestReduce:
    def test_sum(self):
        import operator

        agg = ReduceAggregator(operator.add)
        merged = agg(_copies([{2: 1.0, 3: 2.0}, {4: 3.0}]))
        assert merged.results == {0: 6.0}

    def test_initial_value(self):
        import operator

        agg = ReduceAggregator(operator.add, initial=100.0)
        merged = agg(_copies([{2: 1.0}]))
        assert merged.results == {0: 101.0}

    def test_max(self):
        agg = ReduceAggregator(max)
        merged = agg(_copies([{2: 1.0, 3: 7.0}, {4: 3.0}]))
        assert merged.results == {0: 7.0}

    def test_empty_results(self):
        import operator

        agg = ReduceAggregator(operator.add)
        merged = agg([Element(1, "p")])
        assert merged.results == {0: None}


class TestCountNeighbors:
    def test_counts(self):
        merged = count_neighbors(_copies([{2: 0.1}, {3: 0.2, 4: 0.3}]))
        assert merged.results == {0: 3}

    def test_payload_preserved(self):
        merged = count_neighbors(_copies([{2: 0.1}]))
        assert merged.payload == "payload"
