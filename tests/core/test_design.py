"""Design scheme tests (§5.3)."""

import math

import pytest

from repro.core.design import DesignScheme
from repro.core.validate import assert_valid_scheme, balance_report


class TestConstruction:
    def test_paper_q_for_10000(self):
        """§5.3: v = 10,000 → q = 101, first 102 working sets dominated by
        the remaining 10,201."""
        s = DesignScheme(10_000)
        assert s.q == 101
        assert s.plane_points == 10_303

    def test_exact_plane_no_truncation(self):
        s = DesignScheme(57)  # 7²+7+1
        assert s.q == 7
        assert s.num_tasks == 57
        assert all(len(block) == 8 for block in s.blocks)

    def test_truncated_blocks_smaller(self):
        s = DesignScheme(40)  # inside the order-7 plane
        assert s.q == 7
        assert all(2 <= len(block) <= 8 for block in s.blocks)
        assert all(max(block) <= 40 for block in s.blocks)

    def test_prime_power_option(self):
        s = DesignScheme(21, allow_prime_powers=True)
        assert s.q == 4
        assert DesignScheme(21).q == 5

    def test_gf_construction_for_primes(self):
        s = DesignScheme(31, prefer_lee=False)
        assert s.q == 5
        assert_valid_scheme(s)


class TestSubsets:
    def test_full_plane_replication_q_plus_1(self):
        s = DesignScheme(57)
        for eid in range(1, 58):
            assert s.replication_of(eid) == 8

    def test_subsets_consistent_with_blocks(self):
        s = DesignScheme(30)
        for eid in range(1, 31):
            for task in s.get_subsets(eid):
                assert eid in s.blocks[task]

    def test_every_element_covered(self):
        s = DesignScheme(23)
        for eid in range(1, 24):
            assert s.get_subsets(eid), f"element {eid} in no working set"


class TestPairs:
    def test_pairs_are_full_relation(self):
        s = DesignScheme(13)
        for task in range(s.num_tasks):
            block = s.blocks[task]
            pairs = s.get_pairs(task, block)
            assert len(pairs) == len(block) * (len(block) - 1) // 2

    def test_mismatched_members_raise(self):
        s = DesignScheme(13)
        with pytest.raises(ValueError):
            s.get_pairs(0, [1, 2, 999])

    def test_members_none_uses_block(self):
        s = DesignScheme(13)
        assert s.get_pairs(0) == s.get_pairs(0, s.blocks[0])


class TestValidity:
    @pytest.mark.parametrize("v", [2, 3, 7, 13, 21, 31, 40, 57, 73, 91])
    def test_exactly_once(self, v):
        assert_valid_scheme(DesignScheme(v))

    @pytest.mark.parametrize("v", [21, 64, 73])
    def test_exactly_once_prime_powers(self, v):
        assert_valid_scheme(DesignScheme(v, allow_prime_powers=True))


class TestMetrics:
    def test_working_set_about_sqrt_v(self):
        """Table 1's ≈√v working set: exactly q+1 on a full plane."""
        s = DesignScheme(57)
        m = s.metrics()
        assert m.working_set_elements == 8
        assert abs(m.working_set_elements - math.sqrt(57)) < 1

    def test_replication_about_sqrt_v(self):
        s = DesignScheme(10_000)
        m = s.metrics()
        assert abs(m.replication_factor - 100) < 3  # ≈ √10000, exact 102-ish

    def test_comm_capped_at_2vn(self):
        with_cap = DesignScheme(57, num_nodes=2).metrics()
        without = DesignScheme(57).metrics()
        assert with_cap.communication_records == 2 * 57 * 2
        assert without.communication_records > with_cap.communication_records

    def test_approx_matches_exact_on_large_plane(self):
        exact = DesignScheme(10_000).metrics()
        approx = DesignScheme.approx_metrics(10_000)
        assert abs(exact.replication_factor - approx.replication_factor) < 3
        assert abs(exact.working_set_elements - approx.working_set_elements) < 3
        assert (
            abs(exact.evaluations_per_task - approx.evaluations_per_task)
            / approx.evaluations_per_task
            < 0.05
        )

    def test_balance(self):
        report = balance_report(DesignScheme(31))
        assert report.ws_min == report.ws_max == 6  # full plane: uniform blocks
        assert report.evals_min == report.evals_max == 15

    def test_task_profile_matches_enumeration(self):
        s = DesignScheme(40)
        for t in range(s.num_tasks):
            profile = s.task_profile(t)
            assert profile.num_members == len(s.blocks[t])
            assert profile.num_evaluations == len(s.get_pairs(t))

    def test_describe(self):
        text = DesignScheme(23).describe()
        assert "q=5" in text and "v=23" in text
