"""Two-set (bipartite) pairwise computation tests (§1's generalization)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bipartite import (
    BipartiteBlockScheme,
    BipartiteBroadcastScheme,
    brute_force_bipartite,
    check_bipartite_exactly_once,
    run_bipartite,
)


def cross(a, b):
    return a * 100 + b


class TestBroadcastScheme:
    def test_label_enumeration(self):
        s = BipartiteBroadcastScheme(3, 2, 2)
        # Column-major: (1,1),(2,1),(3,1),(1,2),(2,2),(3,2).
        assert [s.label_to_pair(p) for p in range(1, 7)] == [
            (1, 1), (2, 1), (3, 1), (1, 2), (2, 2), (3, 2),
        ]

    def test_label_bounds(self):
        s = BipartiteBroadcastScheme(3, 2, 2)
        with pytest.raises(ValueError):
            s.label_to_pair(0)
        with pytest.raises(ValueError):
            s.label_to_pair(7)

    def test_r_side_fully_replicated(self):
        s = BipartiteBroadcastScheme(4, 6, 3)
        for r in range(1, 5):
            assert s.get_subsets("r", r) == [0, 1, 2]

    def test_s_side_partially_replicated(self):
        s = BipartiteBroadcastScheme(4, 6, 3)
        for col in range(1, 7):
            tasks = s.get_subsets("s", col)
            assert tasks  # every S element reaches at least one task
            for task in tasks:
                assert ("s", col) in s.subset_members(task)

    def test_validation(self):
        with pytest.raises(ValueError):
            BipartiteBroadcastScheme(0, 5, 2)
        with pytest.raises(ValueError):
            BipartiteBroadcastScheme(5, 5, 0)
        s = BipartiteBroadcastScheme(3, 3, 2)
        with pytest.raises(ValueError):
            s.get_subsets("x", 1)
        with pytest.raises(ValueError):
            s.get_subsets("r", 4)

    @pytest.mark.parametrize("vr,vs,p", [(3, 5, 2), (7, 2, 4), (5, 5, 30), (2, 2, 1)])
    def test_exactly_once(self, vr, vs, p):
        ok, msg = check_bipartite_exactly_once(BipartiteBroadcastScheme(vr, vs, p))
        assert ok, msg


class TestBlockScheme:
    def test_grid_tasks(self):
        s = BipartiteBlockScheme(10, 15, 2, 3)
        assert s.num_tasks == 6
        assert s.task_position(0) == (0, 0)
        assert s.task_position(5) == (1, 2)

    def test_replication_factors(self):
        s = BipartiteBlockScheme(10, 15, 2, 3)
        for r in range(1, 11):
            assert len(s.get_subsets("r", r)) == 3  # h_s
        for col in range(1, 16):
            assert len(s.get_subsets("s", col)) == 2  # h_r

    def test_metrics(self):
        m = BipartiteBlockScheme(100, 200, 5, 8).metrics()
        assert m.replication_r == 8
        assert m.replication_s == 5
        assert m.communication_records == 2 * (100 * 8 + 200 * 5)
        assert m.working_set_elements == 20 + 25
        assert m.evaluations_per_task == 500

    def test_effective_factors_shrink(self):
        s = BipartiteBlockScheme(5, 5, 4, 4)  # e = 2 → only 3 chunks fit
        assert s.hr == 3 and s.hs == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            BipartiteBlockScheme(5, 5, 0, 2)
        with pytest.raises(ValueError):
            BipartiteBlockScheme(5, 5, 2, 6)

    @pytest.mark.parametrize(
        "vr,vs,hr,hs", [(6, 9, 2, 3), (5, 5, 5, 5), (8, 3, 4, 1), (2, 2, 1, 1)]
    )
    def test_exactly_once(self, vr, vs, hr, hs):
        ok, msg = check_bipartite_exactly_once(BipartiteBlockScheme(vr, vs, hr, hs))
        assert ok, msg


class TestExecution:
    def test_matches_brute_force(self):
        r = [1, 2, 3, 4, 5]
        s = [6, 7, 8]
        ref = brute_force_bipartite(r, s, cross)
        for scheme in (
            BipartiteBroadcastScheme(5, 3, 4),
            BipartiteBlockScheme(5, 3, 2, 2),
        ):
            assert run_bipartite(r, s, cross, scheme) == ref

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_bipartite([1], [2, 3], cross, BipartiteBlockScheme(2, 2, 1, 1))


@given(
    vr=st.integers(min_value=1, max_value=12),
    vs=st.integers(min_value=1, max_value=12),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_property_block_exactly_once(vr, vs, data):
    hr = data.draw(st.integers(min_value=1, max_value=vr))
    hs = data.draw(st.integers(min_value=1, max_value=vs))
    ok, msg = check_bipartite_exactly_once(BipartiteBlockScheme(vr, vs, hr, hs))
    assert ok, msg


@given(
    vr=st.integers(min_value=1, max_value=12),
    vs=st.integers(min_value=1, max_value=12),
    p=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=40, deadline=None)
def test_property_broadcast_exactly_once(vr, vs, p):
    ok, msg = check_bipartite_exactly_once(BipartiteBroadcastScheme(vr, vs, p))
    assert ok, msg
