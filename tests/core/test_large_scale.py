"""Larger-scale smoke validation: the invariants at a few hundred elements.

The property suites sweep v ≤ 45 densely; these single checks push each
scheme to the hundreds (still seconds, O(v²) checker) to catch any
size-dependent arithmetic drift — e.g. grid rounding at non-dividing h,
plane truncation deep below q̂, label inversion past 10⁴ pairs.
"""

import pytest

from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.design import CyclicDesignScheme, DesignScheme
from repro.core.validate import assert_valid_scheme, balance_report


@pytest.mark.parametrize(
    "scheme_factory",
    [
        lambda: BroadcastScheme(211, 16),
        lambda: BlockScheme(211, 13),            # prime v, non-dividing h
        lambda: BlockScheme(256, 16, pair_diagonals=True),
        lambda: DesignScheme(211),               # deep truncation of q=17 plane
        lambda: DesignScheme(183),               # exact plane (13²+13+1)
        lambda: CyclicDesignScheme(211),
    ],
    ids=["broadcast", "block", "block-paired", "design-trunc", "design-exact", "cyclic"],
)
def test_exactly_once_at_scale(scheme_factory):
    scheme = scheme_factory()
    assert_valid_scheme(scheme)


def test_balance_at_scale():
    """Table 1's balance claims hold at v=256 for the tunable schemes."""
    report = balance_report(BlockScheme(256, 16, pair_diagonals=True))
    assert report.eval_imbalance < 1.05
    report = balance_report(BroadcastScheme(256, 32))
    assert report.eval_imbalance < 1.05
    report = balance_report(DesignScheme(183))  # exact plane: perfect
    assert report.eval_imbalance == 1.0


def test_pipeline_at_scale():
    """A 211-element end-to-end run through the MR pipeline."""
    from repro.core.pairwise import PairwiseComputation, brute_force_results
    from repro.core.element import results_matrix

    data = [float((x * 37 + 11) % 509) for x in range(211)]

    def distance(a, b):
        return abs(a - b)

    computation = PairwiseComputation(CyclicDesignScheme(211), distance)
    merged = computation.run(data)
    assert results_matrix(merged) == brute_force_results(data, distance)
