"""Cost-model tests: Table 1 closed forms and the Fig 8/9 feasibility curves."""

import math

import pytest

from repro._util import GB, KB, MB, TB
from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.cost_model import (
    PAPER_MAXIS,
    PAPER_MAXWS,
    block_h_bounds,
    block_row,
    broadcast_row,
    design_block_crossover,
    design_row,
    fig9b_curves,
    log_spaced_sizes,
    max_dataset_bytes_block,
    max_v_block,
    max_v_broadcast,
    max_v_design,
    max_v_design_memory,
    max_v_design_storage,
    quorum_row,
    replication_lower_bound,
    table1,
)


class TestTable1Rows:
    def test_broadcast_row_formulas(self):
        m = broadcast_row(1000, 20)
        assert m.communication_records == 2 * 1000 * 20
        assert m.replication_factor == 20
        assert m.working_set_elements == 1000
        assert m.evaluations_per_task == 1000 * 999 / 2 / 20

    def test_block_row_formulas(self):
        m = block_row(1000, 10)
        assert m.num_tasks == 55
        assert m.communication_records == 2 * 1000 * 10
        assert m.working_set_elements == 200
        assert m.evaluations_per_task == 100 * 100

    def test_design_row_padded_by_default(self):
        """v = 10 000 pads to the q = 101 plane: replication is the honest
        q + 1 = 102 the implementation pays, not the unpadded √v = 100."""
        m = design_row(10_000)
        assert m.replication_factor == 102.0
        assert m.working_set_elements == 102
        assert m.num_tasks == 101 * 101 + 101 + 1
        assert m.evaluations_per_task == pytest.approx(
            10_000 * 9_999 / 2 / (101 * 101 + 101 + 1)
        )

    def test_design_row_unpadded_paper_form(self):
        m = design_row(10_000, padded=False)
        assert m.replication_factor == pytest.approx(100.0)
        assert m.working_set_elements == 100
        assert m.evaluations_per_task == pytest.approx(4999.5)

    def test_design_row_padded_matches_constructed_scheme(self):
        """At an exact prime plane size the padded row is the real scheme."""
        from repro.core.design import DesignScheme

        v = 7 * 7 + 7 + 1  # 57, the q=7 plane
        row = design_row(v)
        m = DesignScheme(v).metrics()
        assert row.replication_factor == m.replication_factor == 8.0
        assert row.num_tasks == m.num_tasks == 57

    def test_design_row_node_cap(self):
        capped = design_row(10_000, num_nodes=8)
        assert capped.communication_records == 2 * 10_000 * 8

    def test_rows_match_scheme_metrics(self):
        """The closed forms must agree with the schemes' own metrics()."""
        assert broadcast_row(100, 5) == BroadcastScheme(100, 5).metrics()
        assert block_row(100, 5) == BlockScheme(100, 5).metrics()

    def test_table1_bundle(self):
        rows = table1(100, p=4, h=5)
        assert [m.scheme for m in rows] == ["broadcast", "block", "design"]

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            broadcast_row(1, 1)
        with pytest.raises(ValueError):
            block_row(10, 0)
        with pytest.raises(ValueError):
            design_row(1)
        with pytest.raises(ValueError):
            quorum_row(1)
        with pytest.raises(ValueError):
            quorum_row(100, cover_size=1)


class TestQuorumRowAndBound:
    def test_quorum_row_uses_cached_cover(self):
        from repro.core.quorum import QuorumScheme

        row = quorum_row(58)
        assert row == QuorumScheme(58).metrics()
        assert row.num_tasks == 58
        assert row.replication_factor == row.working_set_elements

    def test_quorum_row_symbolic_override(self):
        row = quorum_row(10_000, cover_size=120)
        assert row.replication_factor == 120.0
        assert row.communication_records == 2 * 10_000 * 120

    def test_quorum_row_node_cap(self):
        capped = quorum_row(10_000, cover_size=120, num_nodes=8)
        assert capped.communication_records == 2 * 10_000 * 8

    def test_quorum_beats_padded_design_on_non_prime_power_v(self):
        """The satellite-motivating case: design pads 58 up to the q=11
        plane (replication 12); the greedy cover of Z_58 needs only 9."""
        assert quorum_row(58).replication_factor < design_row(58).replication_factor

    def test_lower_bound_tight_at_perfect_difference_set(self):
        # v = q²+q+1, capacity q+1 ⇒ bound (v−1)/q = q+1 exactly.
        for q in (2, 3, 5, 7, 9, 11):
            v = q * q + q + 1
            assert replication_lower_bound(v, q + 1) == pytest.approx(q + 1)

    def test_lower_bound_decreases_with_capacity(self):
        bounds = [replication_lower_bound(1000, c) for c in (10, 50, 200, 999)]
        assert bounds == sorted(bounds, reverse=True)

    def test_lower_bound_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError):
            replication_lower_bound(100, 1)
        with pytest.raises(ValueError):
            replication_lower_bound(1, 10)


class TestBytesHelpers:
    def test_metric_byte_conversions(self):
        m = block_row(1000, 10)
        assert m.communication_bytes(500 * KB) == 2 * 1000 * 10 * 500 * KB
        assert m.working_set_bytes(500 * KB) == 200 * 500 * KB
        assert m.intermediate_bytes(500 * KB) == 1000 * 500 * KB * 10

    def test_summary_contains_key_numbers(self):
        text = block_row(1000, 10).summary(500 * KB)
        assert "repl=10" in text and "tasks=55" in text


class TestFig8aBroadcastLimit:
    def test_formula(self):
        # 200 MB / 100 KB = 2000 elements.
        assert max_v_broadcast(100 * KB, 200 * MB) == 2000

    @pytest.mark.parametrize("maxws", [200 * MB, 400 * MB, 1 * GB])
    def test_monotone_decreasing_in_element_size(self, maxws):
        sizes = log_spaced_sizes(10 * KB, 10 * MB)
        values = [max_v_broadcast(s, maxws) for s in sizes]
        assert values == sorted(values, reverse=True)

    def test_larger_memory_allows_more(self):
        assert max_v_broadcast(100 * KB, 1 * GB) > max_v_broadcast(100 * KB, 200 * MB)


class TestFig8bDesignLimit:
    def test_formula(self):
        # (1 TB / 1 MB)^(2/3) = (10^6)^(2/3) = 10^4.
        assert max_v_design_storage(1 * MB, 1 * TB) == 10_000

    def test_memory_variant(self):
        # (200 MB / 10 MB)² = 400.
        assert max_v_design_memory(10 * MB, 200 * MB) == 400

    def test_combined_takes_minimum(self):
        s = 10 * MB
        assert max_v_design(s, PAPER_MAXIS, PAPER_MAXWS) == min(
            max_v_design_storage(s, PAPER_MAXIS),
            max_v_design_memory(s, PAPER_MAXWS),
        )

    @pytest.mark.parametrize("maxis", [100 * GB, 1 * TB, 10 * TB])
    def test_monotone(self, maxis):
        sizes = log_spaced_sizes(10 * KB, 10 * MB)
        values = [max_v_design_storage(s, maxis) for s in sizes]
        assert values == sorted(values, reverse=True)


class TestFig9aBlockBounds:
    def test_paper_4gb_example(self):
        """§6: a 4 GB dataset gives h roughly in [39, 263] (decimal units
        land on [40, 250]; the paper read its values off a log chart)."""
        bounds = block_h_bounds(4 * GB, PAPER_MAXWS, PAPER_MAXIS)
        assert bounds.feasible
        assert 35 <= bounds.h_min <= 45
        assert 240 <= bounds.h_max <= 270

    def test_bounds_satisfy_both_limits(self):
        vs = 2 * GB
        bounds = block_h_bounds(vs, PAPER_MAXWS, PAPER_MAXIS)
        # h_min honours maxws, h_max honours maxis.
        assert 2 * vs / bounds.h_min <= PAPER_MAXWS
        assert vs * bounds.h_max <= PAPER_MAXIS

    def test_infeasible_beyond_intersection(self):
        limit = max_dataset_bytes_block(PAPER_MAXWS, PAPER_MAXIS)
        assert block_h_bounds(limit, PAPER_MAXWS, PAPER_MAXIS).feasible
        assert not block_h_bounds(2 * limit + 10, PAPER_MAXWS, PAPER_MAXIS).feasible

    def test_intersection_value(self):
        """sqrt(200 MB · 1 TB / 2) = 10 GB."""
        assert max_dataset_bytes_block(PAPER_MAXWS, PAPER_MAXIS) == 10 * GB

    def test_small_dataset_h_min_clamped_to_one(self):
        bounds = block_h_bounds(10 * MB, PAPER_MAXWS, PAPER_MAXIS)
        assert bounds.h_min == 1


class TestFig9bComparison:
    def test_crossover_at_one_megabyte(self):
        """The paper: block and design cross near 1 MB element size."""
        assert design_block_crossover() == pytest.approx(1 * MB, rel=1e-6)

    def test_ordering_below_crossover(self):
        """Small elements: block admits the most, broadcast the least."""
        point = fig9b_curves([100 * KB])[0]
        assert point.broadcast < point.design < point.block

    def test_ordering_above_crossover(self):
        """Large elements (>1 MB): design allows a few more than block."""
        point = fig9b_curves([10 * MB])[0]
        assert point.design > point.block > point.broadcast

    def test_strict_variant_never_higher(self):
        for point in fig9b_curves(log_spaced_sizes(10 * KB, 10 * MB)):
            assert point.design_strict <= point.design

    def test_exact_values_at_1mb(self):
        point = fig9b_curves([1 * MB])[0]
        assert point.broadcast == 200
        assert point.block == 10_000
        assert point.design == pytest.approx(10_000, rel=1e-3)


class TestHelpers:
    def test_log_spaced_sizes_span(self):
        sizes = log_spaced_sizes(10 * KB, 10 * MB)
        assert sizes[0] == 10 * KB
        assert sizes[-1] == 10 * MB
        assert all(a < b for a, b in zip(sizes, sizes[1:]))

    def test_log_spaced_rejects_bad_range(self):
        with pytest.raises(ValueError):
            log_spaced_sizes(0, 100)
        with pytest.raises(ValueError):
            log_spaced_sizes(100, 10)

    def test_size_guards(self):
        with pytest.raises(ValueError):
            max_v_broadcast(0, 100)
        with pytest.raises(ValueError):
            block_h_bounds(-1, 100, 100)
