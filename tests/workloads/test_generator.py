"""Workload generator tests: shapes, determinism, planted structure."""

import numpy as np
import pytest

from repro.mapreduce.serialization import SizedPayload
from repro.workloads import (
    make_blobs,
    make_documents,
    make_expression_matrix,
    make_matrix,
    make_sized_elements,
    make_vectors,
)


class TestBlobs:
    def test_shape(self):
        points = make_blobs(50, dim=3, seed=0)
        assert len(points) == 50
        assert all(p.shape == (3,) for p in points)

    def test_deterministic(self):
        a = make_blobs(20, seed=5)
        b = make_blobs(20, seed=5)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_seeds_differ(self):
        a = make_blobs(20, seed=5)
        b = make_blobs(20, seed=6)
        assert not all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_clusters_are_tight(self):
        """With tiny spread, nearest-neighbour distances within a cluster
        are far below the box scale."""
        points = np.array(make_blobs(60, num_clusters=2, spread=0.05, box=50, seed=1))
        dists = np.linalg.norm(points[:, None] - points[None, :], axis=-1)
        np.fill_diagonal(dists, np.inf)
        assert np.median(dists.min(axis=1)) < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            make_blobs(0)
        with pytest.raises(ValueError):
            make_blobs(5, num_clusters=0)
        with pytest.raises(ValueError):
            make_blobs(5, noise_fraction=1.5)


class TestDocuments:
    def test_shape(self):
        docs = make_documents(10, length=30, seed=0)
        assert len(docs) == 10
        assert all(len(d) == 30 for d in docs)

    def test_deterministic(self):
        assert make_documents(5, seed=2) == make_documents(5, seed=2)

    def test_vocab_respected(self):
        docs = make_documents(10, vocabulary=50, seed=1)
        tokens = {t for d in docs for t in d}
        assert tokens <= {f"w{i}" for i in range(50)}

    def test_validation(self):
        with pytest.raises(ValueError):
            make_documents(0)
        with pytest.raises(ValueError):
            make_documents(5, vocabulary=2, num_topics=5)


class TestExpression:
    def test_shape(self):
        m = make_expression_matrix(6, 40, seed=0)
        assert m.shape == (6, 40)

    def test_linked_pairs_correlated(self):
        m = make_expression_matrix(8, 200, num_linked_pairs=2, link_noise=0.05, seed=3)
        r01 = np.corrcoef(m[0], m[1])[0, 1]
        r23 = np.corrcoef(m[2], m[3])[0, 1]
        r45 = np.corrcoef(m[4], m[5])[0, 1]
        assert r01 > 0.95 and r23 > 0.95
        assert abs(r45) < 0.4  # unlinked background

    def test_too_many_links_rejected(self):
        with pytest.raises(ValueError):
            make_expression_matrix(4, 10, num_linked_pairs=3)


class TestMatrix:
    def test_full_rank_by_default(self):
        m = make_matrix(5, 20, seed=0)
        assert np.linalg.matrix_rank(m) == 5

    def test_planted_rank(self):
        m = make_matrix(10, 30, rank=4, seed=1)
        assert np.linalg.matrix_rank(m) == 4

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            make_matrix(5, 5, rank=6)
        with pytest.raises(ValueError):
            make_matrix(0, 5)


class TestSizedElements:
    def test_payloads(self):
        payloads = make_sized_elements(5, 1000)
        assert all(isinstance(p, SizedPayload) for p in payloads)
        assert all(p.size_bytes == 1000 for p in payloads)
        assert len({p.tag for p in payloads}) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            make_sized_elements(0, 10)


class TestVectors:
    def test_shape_and_determinism(self):
        a = make_vectors(4, 7, seed=9)
        b = make_vectors(4, 7, seed=9)
        assert len(a) == 4 and a[0].shape == (7,)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_validation(self):
        with pytest.raises(ValueError):
            make_vectors(0, 3)
