"""CLI tests: every subcommand, size parsing, exit codes."""

import pytest

from repro._util import GB, KB, MB
from repro.cli import main, parse_size


class TestParseSize:
    def test_suffixes(self):
        assert parse_size("500KB") == 500 * KB
        assert parse_size("1.5MB") == int(1.5 * MB)
        assert parse_size("2GB") == 2 * GB
        assert parse_size("10tb") == 10 * 10**12

    def test_bare_bytes(self):
        assert parse_size("1234") == 1234
        assert parse_size("64B") == 64

    def test_bad_values(self):
        import argparse

        for bad in ("abc", "-5MB", "0", "MB"):
            with pytest.raises(argparse.ArgumentTypeError):
                parse_size(bad)


class TestMetrics:
    def test_prints_all_rows(self, capsys):
        assert main(["metrics", "--v", "10000", "--element-size", "500KB"]) == 0
        out = capsys.readouterr().out
        assert "broadcast:" in out and "block:" in out and "design:" in out
        assert "repl=102" in out  # padded to the q=101 plane, reported honestly


class TestValidate:
    def test_valid_scheme_exit_zero(self, capsys):
        assert main(["validate", "--scheme", "block", "--v", "30", "--h", "5"]) == 0
        assert "exactly-once: OK" in capsys.readouterr().out

    def test_design_prime_powers(self, capsys):
        assert main(
            ["validate", "--scheme", "design", "--v", "21", "--prime-powers"]
        ) == 0
        assert "q=4" in capsys.readouterr().out

    def test_broadcast(self, capsys):
        assert main(["validate", "--scheme", "broadcast", "--v", "12", "--tasks", "3"]) == 0

    def test_quorum(self, capsys):
        assert main(["validate", "--scheme", "quorum", "--v", "58"]) == 0
        out = capsys.readouterr().out
        assert "quorum(v=58" in out and "exactly-once: OK" in out


class TestReplication:
    def test_table_printed(self, capsys):
        assert main(["replication", "--v", "58", "--element-size", "64KB"]) == 0
        out = capsys.readouterr().out
        for name in ("broadcast", "block", "design", "quorum"):
            assert name in out
        assert "lower bound" in out and "|D|=" in out

    def test_perfect_plane_ratio_one(self, capsys):
        assert main(["replication", "--v", "57"]) == 0
        out = capsys.readouterr().out
        quorum_line = [l for l in out.splitlines() if l.strip().startswith("quorum")][0]
        assert "1.00" in quorum_line


class TestPlan:
    def test_block_recommendation(self, capsys):
        code = main(
            ["plan", "--v", "50000", "--element-size", "100KB",
             "--maxws", "200MB", "--maxis", "1TB"]
        )
        assert code == 0
        assert "BlockScheme" in capsys.readouterr().out

    def test_infeasible_exit_one(self, capsys):
        code = main(
            ["plan", "--v", "100", "--element-size", "10GB",
             "--maxws", "1MB", "--maxis", "1GB"]
        )
        assert code == 1
        assert "infeasible" in capsys.readouterr().out


class TestFigures:
    @pytest.mark.parametrize("which", ["8a", "8b", "9a", "9b"])
    def test_series_printed(self, which, capsys):
        assert main(["figures", "--which", which]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) > 5

    def test_fig9b_columns(self, capsys):
        main(["figures", "--which", "9b"])
        header = capsys.readouterr().out.splitlines()[0]
        assert "broadcast" in header and "design" in header


class TestDemo:
    @pytest.mark.parametrize(
        "app", ["dbscan", "docsim", "genes", "covariance", "coreference"]
    )
    def test_each_app_runs(self, app, capsys):
        assert main(["demo", "--app", app]) == 0
        assert capsys.readouterr().out.startswith(app.split("_")[0][:4])


class TestSimulate:
    def test_feasible_workload(self, capsys):
        code = main(
            ["simulate", "--v", "2000", "--element-size", "100KB"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "maxws" in out

    def test_gantt_rendered(self, capsys):
        main(
            ["simulate", "--v", "2000", "--element-size", "100KB", "--gantt"]
        )
        out = capsys.readouterr().out
        assert "n0.s0" in out and "utilization" in out

    def test_infeasible_exit_code(self, capsys):
        code = main(
            ["simulate", "--v", "50", "--element-size", "10GB",
             "--maxws", "1MB", "--maxis", "1GB"]
        )
        assert code == 1

    def test_hierarchical_path(self, capsys):
        code = main(
            ["simulate", "--v", "5000", "--element-size", "10MB"]
        )
        out = capsys.readouterr().out
        assert "sequential rounds" in out
        assert code == 0


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_missing_required_rejected(self):
        with pytest.raises(SystemExit):
            main(["metrics"])
