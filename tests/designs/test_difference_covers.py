"""Difference-cover constructions: validity, optimality, pruning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs.difference_covers import (
    GREEDY_LIMIT,
    cover_size_lower_bound,
    difference_cover,
    greedy_difference_cover,
    perfect_difference_cover,
    prune_cover,
    structured_difference_cover,
    verify_difference_cover,
)
from repro.designs.primes import plane_size


class TestLowerBound:
    def test_counting_bound_is_tight_at_plane_sizes(self):
        # A perfect difference set has |D| = q+1 and |D|(|D|-1) = v-1 exactly.
        for q in (2, 3, 4, 5, 7, 8, 9, 11):
            v = plane_size(q)
            assert cover_size_lower_bound(v) == q + 1

    def test_bound_property_holds(self):
        for v in range(1, 300):
            k = cover_size_lower_bound(v)
            if v > 2:
                assert k * (k - 1) >= v - 1
                assert (k - 1) * (k - 2) < v - 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            cover_size_lower_bound(0)


class TestVerify:
    def test_accepts_known_perfect_set(self):
        assert verify_difference_cover((0, 1, 3), 7)

    def test_rejects_incomplete(self):
        assert not verify_difference_cover((0, 1), 7)

    def test_modular_normalization(self):
        assert verify_difference_cover((7, 8, 10), 7)  # ≡ {0,1,3}


class TestConstructions:
    def test_perfect_only_at_prime_power_planes(self):
        assert perfect_difference_cover(57) is not None  # q=7
        assert perfect_difference_cover(73) is not None  # q=8=2³
        assert perfect_difference_cover(91) is not None  # q=9=3²
        assert perfect_difference_cover(58) is None
        assert perfect_difference_cover(43) is None  # q=6 is not a prime power

    @pytest.mark.parametrize("v", [3, 7, 20, 58, 100, 120])
    def test_greedy_is_valid(self, v):
        assert verify_difference_cover(greedy_difference_cover(v), v)

    @pytest.mark.parametrize("v", [3, 58, 500, 2500, 10_000])
    def test_structured_is_valid(self, v):
        assert verify_difference_cover(structured_difference_cover(v), v)

    def test_prune_keeps_validity_and_zero(self):
        raw = structured_difference_cover(200)
        pruned = prune_cover(raw, 200)
        assert verify_difference_cover(pruned, 200)
        assert 0 in pruned
        assert len(pruned) <= len(raw)


class TestDifferenceCover:
    def test_perfect_when_available(self):
        cover = difference_cover(57)
        assert cover.kind == "perfect"
        assert cover.is_perfect
        assert cover.size == 8 == cover_size_lower_bound(57)

    def test_greedy_below_limit_structured_above(self):
        assert difference_cover(58).kind == "greedy"
        assert difference_cover(GREEDY_LIMIT + 5).kind == "structured"

    def test_cached_instance(self):
        assert difference_cover(58) is difference_cover(58)

    def test_all_small_v_valid(self):
        for v in range(1, 101):
            cover = difference_cover(v)
            if v > 2:
                assert verify_difference_cover(cover.residues, v), v
            assert 0 in cover.residues

    def test_quality_near_counting_bound(self):
        # Greedy stays within 40% of the counting bound in this range.
        for v in (30, 58, 100, 120, 200, 500):
            cover = difference_cover(v)
            assert cover.size <= 1.4 * cover_size_lower_bound(v) + 1, (v, cover.size)

    def test_structured_scale_quality(self):
        cover = difference_cover(10_000)
        # structured lands near √2·√v
        assert cover.size <= 1.6 * cover_size_lower_bound(10_000)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            difference_cover(0)


@given(v=st.integers(min_value=3, max_value=GREEDY_LIMIT))
@settings(max_examples=30, deadline=None)
def test_cover_always_valid_and_bounded(v):
    cover = difference_cover(v)
    assert verify_difference_cover(cover.residues, v)
    assert cover.size >= cover_size_lower_bound(v)
