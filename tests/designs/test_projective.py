"""Projective-plane construction tests (both Lee and GF routes)."""

import pytest

from repro.designs.bibd import pair_coverage, verify_design
from repro.designs.primes import plane_size
from repro.designs.projective import gf_plane, lee_plane, projective_plane

PRIME_ORDERS = [2, 3, 5, 7, 11, 13]
PRIME_POWER_ORDERS = [4, 8, 9]


class TestLeePlane:
    @pytest.mark.parametrize("q", PRIME_ORDERS)
    def test_is_valid_design(self, q):
        blocks = lee_plane(q)
        v = plane_size(q)
        assert len(blocks) == v
        check = verify_design(blocks, v, k=q + 1, lam=1)
        assert check.ok, check.violations

    def test_fano_plane_structure(self):
        """q=2 yields the Fano plane: 7 points, 7 lines of 3."""
        blocks = lee_plane(2)
        assert blocks[0] == [1, 2, 3]  # Rule 1 block
        assert blocks[1] == [1, 4, 5]  # first Rule 2 block
        assert all(len(b) == 3 for b in blocks)

    def test_rejects_non_prime(self):
        with pytest.raises(ValueError):
            lee_plane(4)  # prime power but not prime
        with pytest.raises(ValueError):
            lee_plane(6)

    def test_every_point_on_q_plus_1_lines(self):
        q = 5
        blocks = lee_plane(q)
        from collections import Counter

        incidence = Counter()
        for block in blocks:
            incidence.update(block)
        assert all(count == q + 1 for count in incidence.values())

    def test_two_lines_meet_in_one_point(self):
        """Dual property: any two distinct lines share exactly one point."""
        blocks = [set(b) for b in lee_plane(3)]
        for a in range(len(blocks)):
            for b in range(a):
                assert len(blocks[a] & blocks[b]) == 1


class TestGFPlane:
    @pytest.mark.parametrize("q", PRIME_ORDERS + PRIME_POWER_ORDERS)
    def test_is_valid_design(self, q):
        blocks = gf_plane(q)
        v = plane_size(q)
        assert len(blocks) == v
        check = verify_design(blocks, v, k=q + 1, lam=1)
        assert check.ok, check.violations

    def test_rejects_non_prime_power(self):
        with pytest.raises(ValueError):
            gf_plane(6)

    def test_point_ids_one_indexed(self):
        blocks = gf_plane(4)
        flat = {p for block in blocks for p in block}
        assert flat == set(range(1, 22))

    @pytest.mark.parametrize("q", [4, 9])
    def test_prime_power_two_lines_one_point(self, q):
        blocks = [set(b) for b in gf_plane(q)]
        for a in range(len(blocks)):
            for b in range(a):
                assert len(blocks[a] & blocks[b]) == 1


class TestCrossValidation:
    @pytest.mark.parametrize("q", [2, 3, 5, 7])
    def test_lee_and_gf_cover_identically(self, q):
        """Different constructions, identical pair-coverage profile."""
        lee_cover = pair_coverage(lee_plane(q))
        gf_cover = pair_coverage(gf_plane(q))
        assert set(lee_cover) == set(gf_cover)
        assert all(count == 1 for count in lee_cover.values())
        assert all(count == 1 for count in gf_cover.values())

    def test_dispatch_prefers_lee_for_primes(self):
        assert projective_plane(5) == lee_plane(5)
        assert projective_plane(5, prefer_lee=False) == gf_plane(5)
        assert projective_plane(4) == gf_plane(4)
