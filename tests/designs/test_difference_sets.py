"""Singer difference-set tests."""

import pytest

from repro.designs.bibd import pair_coverage, verify_design
from repro.designs.difference_sets import (
    cyclic_plane,
    find_primitive_element,
    singer_difference_set,
    verify_difference_set,
)
from repro.designs.gf import GF
from repro.designs.primes import plane_size
from repro.designs.projective import lee_plane

PRIME_ORDERS = [2, 3, 5, 7, 11, 13]
PRIME_POWER_ORDERS = [4, 8, 9]


class TestPrimitiveElements:
    @pytest.mark.parametrize("q", [3, 4, 5, 7, 8, 9, 27])
    def test_generates_whole_group(self, q):
        field = GF(q)
        g = find_primitive_element(field)
        powers = set()
        x = 1
        for _ in range(q - 1):
            powers.add(x)
            x = field.mul(x, g)
        assert powers == set(range(1, q))

    def test_trivial_field(self):
        assert find_primitive_element(GF(2)) == 1


class TestSingerSets:
    @pytest.mark.parametrize("q", PRIME_ORDERS + PRIME_POWER_ORDERS)
    def test_is_perfect_difference_set(self, q):
        diff_set = singer_difference_set(q)
        assert len(diff_set) == q + 1
        assert verify_difference_set(diff_set, plane_size(q))

    def test_rejects_non_prime_power(self):
        with pytest.raises(ValueError):
            singer_difference_set(6)

    def test_cached_and_deterministic(self):
        assert singer_difference_set(5) is singer_difference_set(5)

    def test_fano_difference_set(self):
        # The classic {0, 1, 3} mod 7 (up to the primitive element chosen).
        diff_set = singer_difference_set(2)
        assert verify_difference_set(diff_set, 7)
        assert len(diff_set) == 3


class TestVerifier:
    def test_accepts_known_set(self):
        assert verify_difference_set((0, 1, 3), 7)

    def test_rejects_bad_set(self):
        assert not verify_difference_set((0, 1, 2), 7)  # difference 1 twice

    def test_rejects_wrong_modulus(self):
        assert not verify_difference_set((0, 1, 3), 8)


class TestCyclicPlane:
    @pytest.mark.parametrize("q", PRIME_ORDERS + PRIME_POWER_ORDERS)
    def test_valid_design(self, q):
        blocks = cyclic_plane(q)
        v = plane_size(q)
        assert len(blocks) == v
        check = verify_design(blocks, v, k=q + 1, lam=1)
        assert check.ok, check.violations

    @pytest.mark.parametrize("q", [3, 5, 7])
    def test_same_coverage_as_lee(self, q):
        """Three independent constructions (Lee, GF, Singer) must induce
        identical exactly-once pair coverage."""
        singer_cover = pair_coverage(cyclic_plane(q))
        lee_cover = pair_coverage(lee_plane(q))
        assert set(singer_cover) == set(lee_cover)

    def test_blocks_are_translates(self):
        q = 5
        diff_set = singer_difference_set(q)
        blocks = cyclic_plane(q)
        q_hat = plane_size(q)
        for t, block in enumerate(blocks):
            expected = sorted(((t + d) % q_hat) + 1 for d in diff_set)
            assert block == expected
