"""Finite-field tests: polynomial layer and GF(p^k) axioms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs.gf import (
    GF,
    find_irreducible,
    is_irreducible,
    poly_add,
    poly_divmod,
    poly_gcd,
    poly_mod,
    poly_mul,
    poly_pow_mod,
    poly_sub,
)

FIELD_ORDERS = [2, 3, 4, 5, 7, 8, 9, 16, 25, 27]


class TestPolynomials:
    def test_add_sub_roundtrip(self):
        a, b, p = (1, 2, 1), (0, 1), 3
        assert poly_sub(poly_add(a, b, p), b, p) == a

    def test_mul_by_zero_and_one(self):
        a, p = (2, 0, 1), 5
        assert poly_mul(a, (), p) == ()
        assert poly_mul(a, (1,), p) == a

    def test_trailing_zeros_trimmed(self):
        # (x + 2)(x + 3) over Z_5 = x² + 5x + 6 = x² + 1 — middle term vanishes.
        assert poly_mul((2, 1), (3, 1), 5) == (1, 0, 1)

    def test_divmod_identity(self):
        a, b, p = (4, 3, 2, 1), (1, 1), 5
        q, r = poly_divmod(a, b, p)
        assert poly_add(poly_mul(q, b, p), r, p) == a
        assert len(r) < len(b)

    def test_divmod_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            poly_divmod((1, 1), (), 3)

    def test_pow_mod_matches_repeated_mul(self):
        m, p = (1, 0, 1, 1), 2  # irreducible cubic over GF(2)
        base = (0, 1)
        direct = (1,)
        for _ in range(5):
            direct = poly_mod(poly_mul(direct, base, p), m, p)
        assert poly_pow_mod(base, 5, m, p) == direct

    def test_gcd_of_coprime_is_one(self):
        # x + 1 and x² + x + 1 share no factor over GF(2)
        # (note x² + 1 = (x+1)² would NOT be coprime with x + 1).
        assert poly_gcd((1, 1), (1, 1, 1), 2) == (1,)
        assert poly_gcd((1, 1), (1, 0, 1), 2) == (1, 1)

    def test_gcd_common_factor(self):
        # Both divisible by (x + 1) over Z_3.
        f = poly_mul((1, 1), (2, 1), 3)
        g = poly_mul((1, 1), (1, 0, 1), 3)
        assert poly_gcd(f, g, 3) == (1, 1)


class TestIrreducible:
    def test_known_irreducible_gf2(self):
        assert is_irreducible((1, 1, 1), 2)  # x² + x + 1
        assert not is_irreducible((1, 0, 1), 2)  # x² + 1 = (x+1)²

    def test_known_irreducible_gf3(self):
        assert is_irreducible((1, 0, 1), 3)  # x² + 1 has no root mod 3
        assert not is_irreducible((2, 0, 1), 3)  # x² + 2 = x² - 1 = (x-1)(x+1)

    def test_find_irreducible_has_no_roots(self):
        for p, k in [(2, 2), (2, 3), (2, 4), (3, 2), (3, 3), (5, 2)]:
            f = find_irreducible(p, k)
            assert len(f) == k + 1 and f[-1] == 1  # monic, right degree
            for x in range(p):
                value = sum(c * x**i for i, c in enumerate(f)) % p
                assert value != 0, f"{f} has root {x} mod {p}"

    def test_find_irreducible_deterministic(self):
        assert find_irreducible(2, 4) == find_irreducible(2, 4)


class TestGFConstruction:
    def test_rejects_non_prime_power(self):
        for bad in (1, 6, 12, 100):
            with pytest.raises(ValueError):
                GF(bad)

    @pytest.mark.parametrize("q", FIELD_ORDERS)
    def test_decompose(self, q):
        field = GF(q)
        assert field.p**field.k == q

    def test_encode_decode_roundtrip(self):
        field = GF(27)
        for code in field.elements():
            assert field.encode(field.decode(code)) == code

    def test_decode_out_of_range(self):
        with pytest.raises(ValueError):
            GF(4).decode(4)


class TestFieldAxioms:
    """Exhaustive axiom checks on every small field."""

    @pytest.mark.parametrize("q", FIELD_ORDERS)
    def test_additive_group(self, q):
        field = GF(q)
        for a in field.elements():
            assert field.add(a, 0) == a
            assert field.add(a, field.neg(a)) == 0

    @pytest.mark.parametrize("q", FIELD_ORDERS)
    def test_multiplicative_group(self, q):
        field = GF(q)
        for a in field.elements():
            assert field.mul(a, 1) == a
            if a != 0:
                assert field.mul(a, field.inv(a)) == 1

    @pytest.mark.parametrize("q", [4, 8, 9])
    def test_associativity_and_distributivity_exhaustive(self, q):
        field = GF(q)
        elems = list(field.elements())
        for a in elems:
            for b in elems:
                assert field.mul(a, b) == field.mul(b, a)
                for c in elems:
                    assert field.mul(a, field.mul(b, c)) == field.mul(
                        field.mul(a, b), c
                    )
                    assert field.mul(a, field.add(b, c)) == field.add(
                        field.mul(a, b), field.mul(a, c)
                    )

    @pytest.mark.parametrize("q", FIELD_ORDERS)
    def test_no_zero_divisors(self, q):
        field = GF(q)
        for a in range(1, q):
            for b in range(1, q):
                assert field.mul(a, b) != 0

    @pytest.mark.parametrize("q", FIELD_ORDERS)
    def test_frobenius_fixed_points(self, q):
        """x^q = x for every x in GF(q) (little Fermat for fields)."""
        field = GF(q)
        for a in field.elements():
            assert field.pow(a, q) == a

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF(9).inv(0)

    def test_div(self):
        field = GF(8)
        for a in field.elements():
            for b in range(1, 8):
                assert field.mul(field.div(a, b), b) == a

    def test_pow_negative_exponent(self):
        field = GF(7)
        for a in range(1, 7):
            assert field.mul(field.pow(a, -1), a) == 1

    def test_large_field_without_tables(self):
        """q > 256 skips table building; direct arithmetic must still hold."""
        field = GF(289)  # 17²
        assert field._mul_table is None
        a, b = 37, 250
        assert field.mul(a, field.inv(a)) == 1
        assert field.mul(a, b) == field.mul(b, a)


@given(st.sampled_from(FIELD_ORDERS), st.data())
@settings(max_examples=60)
def test_field_random_triples(q, data):
    """Property: random triples satisfy commutativity + distributivity."""
    field = GF(q)
    a = data.draw(st.integers(min_value=0, max_value=q - 1))
    b = data.draw(st.integers(min_value=0, max_value=q - 1))
    c = data.draw(st.integers(min_value=0, max_value=q - 1))
    assert field.add(a, b) == field.add(b, a)
    assert field.mul(a, field.add(b, c)) == field.add(field.mul(a, b), field.mul(a, c))
