"""Design verification and truncation tests."""

import pytest

from repro.designs.bibd import (
    design_stats,
    pair_coverage,
    truncate_design,
    verify_design,
)
from repro.designs.projective import lee_plane

FANO = [[1, 2, 3], [1, 4, 5], [1, 6, 7], [2, 4, 6], [2, 5, 7], [3, 4, 7], [3, 5, 6]]


class TestVerify:
    def test_fano_valid(self):
        assert verify_design(FANO, 7, 3, 1).ok

    def test_missing_pair_detected(self):
        broken = FANO[:-1]  # dropping a block uncovers its 3 pairs
        check = verify_design(broken, 7, 3, 1)
        assert not check.ok
        assert any("no block" in v for v in check.violations)

    def test_duplicate_pair_detected(self):
        check = verify_design(FANO + [[1, 2, 4]], 7, 3, 1)
        assert not check.ok
        assert any("covered 2 times" in v for v in check.violations)

    def test_wrong_block_size_detected(self):
        check = verify_design([[1, 2]], 3, k=3, lam=0)
        assert not check.ok
        assert any("expected k=3" in v for v in check.violations)

    def test_out_of_range_point_detected(self):
        check = verify_design([[1, 2, 99]], 7, k=3, lam=0)
        assert not check.ok
        assert any("out-of-range" in v for v in check.violations)

    def test_duplicate_point_in_block_detected(self):
        check = verify_design([[1, 1, 2]], 7, k=None, lam=0)
        assert not check.ok
        assert any("duplicate" in v for v in check.violations)

    def test_k_none_skips_uniformity(self):
        # Mixed block sizes but perfect pair coverage over v=4.
        blocks = [[1, 2, 3], [1, 4], [2, 4], [3, 4]]
        assert verify_design(blocks, 4, k=None, lam=1).ok

    def test_violation_cap(self):
        # Massively broken input must not flood the report.
        check = verify_design([[1, 2]] * 50, 10, k=3, lam=1, max_violations=5)
        assert not check.ok
        assert len(check.violations) <= 5


class TestPairCoverage:
    def test_counts(self):
        cover = pair_coverage([[1, 2, 3], [2, 3, 4]])
        assert cover[(1, 2)] == 1
        assert cover[(2, 3)] == 2
        assert cover[(3, 4)] == 1
        assert (1, 4) not in cover

    def test_block_order_irrelevant(self):
        assert pair_coverage([[3, 1, 2]]) == pair_coverage([[1, 2, 3]])


class TestTruncate:
    def test_noop_when_v_matches(self):
        assert truncate_design(FANO, 7) == FANO

    def test_points_removed_and_small_blocks_dropped(self):
        out = truncate_design(FANO, 4)
        # Every surviving block has >= 2 points <= 4.
        assert all(len(b) >= 2 and max(b) <= 4 for b in out)
        check = verify_design(out, 4, k=None, lam=1)
        assert check.ok, check.violations

    @pytest.mark.parametrize("v", [10, 25, 40, 56, 57])
    def test_truncations_of_order7_plane(self, v):
        out = truncate_design(lee_plane(7), v)
        check = verify_design(out, v, k=None, lam=1)
        assert check.ok, check.violations

    def test_min_block_zero_keeps_everything(self):
        out = truncate_design(FANO, 4, min_block=0)
        assert len(out) == len(FANO)


class TestStats:
    def test_full_plane_stats(self):
        stats = design_stats(lee_plane(5), 31)
        assert stats.num_blocks == 31
        assert stats.min_block_size == stats.max_block_size == 6
        assert stats.min_replication == stats.max_replication == 6

    def test_truncated_stats(self):
        blocks = truncate_design(lee_plane(5), 20)
        stats = design_stats(blocks, 20)
        assert stats.max_block_size <= 6
        assert stats.min_block_size >= 2
        assert stats.mean_replication <= 6

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            design_stats([], 5)
