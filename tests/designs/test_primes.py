"""Tests for primality / prime-power machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs.primes import (
    integer_nth_root,
    is_prime,
    is_prime_power,
    iter_primes,
    next_prime,
    next_prime_power,
    plane_order_for,
    plane_size,
    prime_power_decompose,
    primes_up_to,
)


class TestIsPrime:
    def test_small_primes(self):
        known = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}
        for n in range(50):
            assert is_prime(n) == (n in known)

    def test_negative_zero_one(self):
        assert not is_prime(-7)
        assert not is_prime(0)
        assert not is_prime(1)

    def test_large_prime(self):
        assert is_prime(2**61 - 1)  # Mersenne prime
        assert not is_prime(2**61 - 3)

    def test_carmichael_numbers_rejected(self):
        # Fermat pseudoprimes that fool weak tests.
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601, 8911, 41041):
            assert not is_prime(carmichael)

    def test_squares_of_primes_rejected(self):
        for p in (101, 103, 997):
            assert not is_prime(p * p)

    @given(st.integers(min_value=2, max_value=100_000))
    def test_agrees_with_trial_division(self, n):
        trial = all(n % d for d in range(2, int(n**0.5) + 1))
        assert is_prime(n) == trial


class TestSieve:
    def test_matches_is_prime(self):
        sieve = primes_up_to(1000)
        assert sieve == [n for n in range(1001) if is_prime(n)]

    def test_empty_below_two(self):
        assert primes_up_to(1) == []
        assert primes_up_to(0) == []

    def test_iter_primes_prefix(self):
        import itertools

        assert list(itertools.islice(iter_primes(), 10)) == [
            2, 3, 5, 7, 11, 13, 17, 19, 23, 29,
        ]


class TestNthRoot:
    def test_exact_cubes(self):
        for base in (2, 3, 10, 101):
            assert integer_nth_root(base**3, 3) == base

    def test_floor_behaviour(self):
        assert integer_nth_root(26, 3) == 2
        assert integer_nth_root(27, 3) == 3
        assert integer_nth_root(28, 3) == 3

    def test_edge_cases(self):
        assert integer_nth_root(0, 5) == 0
        assert integer_nth_root(1, 7) == 1
        assert integer_nth_root(12345, 1) == 12345

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            integer_nth_root(-1, 2)
        with pytest.raises(ValueError):
            integer_nth_root(10, 0)

    @given(st.integers(min_value=0, max_value=10**12), st.integers(min_value=1, max_value=10))
    def test_root_is_floor(self, x, n):
        r = integer_nth_root(x, n)
        assert r**n <= x
        assert (r + 1) ** n > x or x == 0 and r == 0


class TestPrimePowers:
    def test_decompose_primes(self):
        assert prime_power_decompose(7) == (7, 1)
        assert prime_power_decompose(2) == (2, 1)

    def test_decompose_powers(self):
        assert prime_power_decompose(8) == (2, 3)
        assert prime_power_decompose(9) == (3, 2)
        assert prime_power_decompose(243) == (3, 5)
        assert prime_power_decompose(1024) == (2, 10)

    def test_decompose_composites(self):
        for n in (6, 12, 36, 100, 1000):
            assert prime_power_decompose(n) is None

    def test_decompose_below_two(self):
        assert prime_power_decompose(0) is None
        assert prime_power_decompose(1) is None

    def test_is_prime_power_small_table(self):
        powers = {2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 17, 19, 23, 25, 27, 29, 31, 32}
        for n in range(2, 33):
            assert is_prime_power(n) == (n in powers), n

    @given(st.integers(min_value=2, max_value=50), st.integers(min_value=1, max_value=8))
    def test_reconstruction(self, p, k):
        if is_prime(p):
            decomp = prime_power_decompose(p**k)
            assert decomp is not None
            base, exp = decomp
            assert base**exp == p**k
            assert is_prime(base)


class TestNextPrime:
    def test_basics(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 2
        assert next_prime(3) == 3
        assert next_prime(4) == 5
        assert next_prime(90) == 97

    def test_next_prime_power(self):
        assert next_prime_power(6) == 7
        assert next_prime_power(8) == 8
        assert next_prime_power(10) == 11
        assert next_prime_power(26) == 27

    @given(st.integers(min_value=2, max_value=100_000))
    @settings(max_examples=50)
    def test_next_prime_is_minimal(self, n):
        p = next_prime(n)
        assert p >= n and is_prime(p)
        assert not any(is_prime(m) for m in range(n, p))


class TestPlaneOrder:
    def test_paper_example(self):
        # §5.3: "If, e.g., v = 10,000, then q = 101".
        assert plane_order_for(10_000) == 101

    def test_exact_plane_sizes(self):
        assert plane_order_for(7) == 2
        assert plane_order_for(57) == 7  # 7²+7+1 = 57
        # 58 needs q >= 8; 8 is not prime, so the prime search lands on 11
        # while the prime-power search takes 8.
        assert plane_order_for(58) == 11
        assert plane_order_for(58, allow_prime_powers=True) == 8

    def test_prime_only_vs_prime_power(self):
        # v=21 fits a plane of order 4 = 2², but the smallest *prime* is 5.
        assert plane_order_for(21) == 5
        assert plane_order_for(21, allow_prime_powers=True) == 4

    def test_bound_holds(self):
        for v in (2, 5, 7, 8, 100, 1234, 99991):
            q = plane_order_for(v)
            assert plane_size(q) >= v
            assert is_prime(q)

    def test_minimality(self):
        for v in (50, 200, 5000):
            q = plane_order_for(v)
            # No smaller prime's plane is large enough.
            smaller = [p for p in primes_up_to(q - 1) if plane_size(p) >= v]
            assert not smaller

    def test_rejects_bad_v(self):
        with pytest.raises(ValueError):
            plane_order_for(0)

    def test_plane_size_rejects_tiny_order(self):
        with pytest.raises(ValueError):
            plane_size(1)
