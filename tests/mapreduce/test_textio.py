"""File-based I/O tests: JSONL records, part files, file-driven jobs."""

import numpy as np
import pytest

from repro.core.element import Element
from repro.mapreduce.job import Job, Mapper, Reducer
from repro.mapreduce.runtime import SerialEngine
from repro.mapreduce.textio import (
    decode_value,
    encode_value,
    read_output_dir,
    read_records,
    run_job_on_files,
    write_partitioned,
    write_records,
)


class TestValueCodec:
    def test_scalars_roundtrip(self):
        for value in (None, True, 0, -3, 2.5, "text"):
            assert decode_value(encode_value(value)) == value

    def test_containers_roundtrip(self):
        value = {"a": [1, 2, {"b": 3.5}], "c": "x"}
        assert decode_value(encode_value(value)) == value

    def test_ndarray_roundtrip(self):
        arr = np.array([1.5, 2.5, 3.5])
        restored = decode_value(encode_value(arr))
        assert isinstance(restored, np.ndarray)
        assert np.array_equal(restored, arr)
        assert restored.dtype == arr.dtype

    def test_element_roundtrip(self):
        e = Element(3, np.array([1.0, 2.0]))
        e.add_result(1, 0.5)
        e.add_result(7, 0.25)
        restored = decode_value(encode_value(e))
        assert isinstance(restored, Element)
        assert restored.eid == 3
        assert np.array_equal(restored.payload, e.payload)
        assert restored.results == {1: 0.5, 7: 0.25}

    def test_numpy_scalar(self):
        assert decode_value(encode_value(np.float64(2.5))) == 2.5

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError):
            encode_value(object())


class TestRecordFiles:
    def test_roundtrip(self, tmp_path):
        records = [(1, "a"), ("key", [1, 2]), ((2, 1), 0.5)]
        path = tmp_path / "data.jsonl"
        count = write_records(path, records)
        assert count == 3
        restored = list(read_records(path))
        assert restored == records  # tuple keys restored

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text('[1, "a"]\n\n[2, "b"]\n')
        assert list(read_records(path)) == [(1, "a"), (2, "b")]

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('[1, "a"]\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            list(read_records(path))

    def test_write_creates_parents(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "data.jsonl"
        write_records(path, [(1, 1)])
        assert path.exists()


class TestPartFiles:
    def test_layout(self, tmp_path):
        paths = write_partitioned(tmp_path / "out", [[(1, "a")], [(2, "b")]])
        assert [p.name for p in paths] == ["part-r-00000.jsonl", "part-r-00001.jsonl"]

    def test_read_output_dir_ordered(self, tmp_path):
        write_partitioned(tmp_path / "out", [[(1, "a")], [(2, "b")], []])
        assert list(read_output_dir(tmp_path / "out")) == [(1, "a"), (2, "b")]

    def test_missing_output_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list(read_output_dir(tmp_path / "nothing"))


class WordSplitMapper(Mapper):
    def map(self, key, value, context):
        for word in value.split():
            context.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sum(values))


class TestFileDrivenJobs:
    def test_wordcount_over_files(self, tmp_path):
        write_records(tmp_path / "in0.jsonl", [(0, "a b a")])
        write_records(tmp_path / "in1.jsonl", [(1, "b c")])
        job = Job(
            name="wc", mapper=WordSplitMapper, reducer=SumReducer, num_reducers=2
        )
        result = run_job_on_files(
            job,
            [tmp_path / "in0.jsonl", tmp_path / "in1.jsonl"],
            tmp_path / "out",
            engine=SerialEngine(),
        )
        assert result.num_map_tasks == 2  # one split per file
        counts = dict(read_output_dir(tmp_path / "out"))
        assert counts == {"a": 2, "b": 2, "c": 1}

    def test_part_count_matches_reducers(self, tmp_path):
        write_records(tmp_path / "in.jsonl", [(0, "x y z")])
        job = Job(
            name="wc", mapper=WordSplitMapper, reducer=SumReducer, num_reducers=3
        )
        run_job_on_files(job, [tmp_path / "in.jsonl"], tmp_path / "out")
        parts = sorted((tmp_path / "out").glob("part-r-*.jsonl"))
        assert len(parts) == 3

    def test_empty_input_list_rejected(self, tmp_path):
        job = Job(name="wc", mapper=WordSplitMapper, reducer=SumReducer)
        with pytest.raises(ValueError):
            run_job_on_files(job, [], tmp_path / "out")

    def test_chained_file_jobs(self, tmp_path):
        """Job 2 reads job 1's parts — the §3 'preceding job wrote the
        dataset to files' workflow."""
        write_records(tmp_path / "in.jsonl", [(0, "a a b")])
        job1 = Job(name="wc", mapper=WordSplitMapper, reducer=SumReducer)
        run_job_on_files(job1, [tmp_path / "in.jsonl"], tmp_path / "stage1")

        class Invert(Mapper):
            def map(self, key, value, context):
                context.emit(value, key)

        job2 = Job(name="invert", mapper=Invert, reducer=None, num_reducers=0)
        parts = sorted((tmp_path / "stage1").glob("part-r-*.jsonl"))
        run_job_on_files(job2, parts, tmp_path / "stage2")
        inverted = sorted(read_output_dir(tmp_path / "stage2"))
        assert inverted == [(1, "b"), (2, "a")]
