"""Zero-copy read path: mmap-backed chunk views, view-accepting codecs."""

import struct

import numpy as np
import pytest

from repro.mapreduce.extsort import ExternalSorter
from repro.mapreduce.serialization import (
    NumpyBufferCodec,
    PickleCodec,
    decode_records,
    encode_records,
    io_meter,
    read_chunk_file,
    read_chunk_view,
    write_chunk_file,
    write_spill_chunk,
)
from repro.mapreduce.shuffle import iter_spill_records


def _records(n=16, dim=8):
    return [(i, np.arange(dim, dtype=np.float64) + i) for i in range(n)]


class TestReadChunkView:
    def test_roundtrip_matches_eager_read(self, tmp_path):
        path = tmp_path / "chunk.npb"
        chunk = encode_records(_records())
        write_chunk_file(path, chunk)
        view = read_chunk_view(path)
        assert isinstance(view, memoryview)
        assert bytes(view) == read_chunk_file(path)
        eager = decode_records(chunk)
        mapped = decode_records(view)
        assert [(k, v.tolist()) for k, v in eager] == [
            (k, v.tolist()) for k, v in mapped
        ]

    def test_decoded_arrays_share_mapped_memory(self, tmp_path):
        path = tmp_path / "chunk.npb"
        write_chunk_file(path, encode_records(_records()))
        view = read_chunk_view(path)
        raw = np.frombuffer(view, dtype=np.uint8)
        for _key, value in decode_records(view):
            assert np.shares_memory(value, raw)
            assert not value.flags.writeable

    def test_meter_counts_mmap_not_copy(self, tmp_path):
        path = tmp_path / "chunk.npb"
        chunk = encode_records(_records())
        write_chunk_file(path, chunk)
        mark = io_meter.snapshot()
        read_chunk_view(path)
        assert io_meter.since(mark) == (1, 0)
        read_chunk_file(path)
        assert io_meter.since(mark) == (1, len(chunk))

    def test_empty_file_falls_back_to_eager_read(self, tmp_path):
        # mmap(0 bytes) raises; the reader degrades to a plain read and
        # returns an empty view (callers never decode empty chunks — the
        # spill writer skips empty partitions).
        path = tmp_path / "empty.npb"
        path.write_bytes(b"")
        mark = io_meter.snapshot()
        view = read_chunk_view(path)
        assert view.nbytes == 0
        assert io_meter.since(mark) == (0, 0)

    def test_spill_stream_reads_views(self, tmp_path):
        records = _records()
        paths = []
        for start in (0, 8):
            path = tmp_path / f"part-{start}.spill"
            write_spill_chunk(path, encode_records(records[start : start + 8]))
            paths.append(str(path))
        mark = io_meter.snapshot()
        streamed = list(iter_spill_records(paths))
        assert io_meter.since(mark) == (2, 0)
        assert [(k, v.tolist()) for k, v in streamed] == [
            (k, v.tolist()) for k, v in records
        ]


class TestCodecViews:
    @pytest.mark.parametrize("codec", [PickleCodec(), NumpyBufferCodec()])
    def test_decode_accepts_memoryview(self, codec):
        payload = {"arr": np.arange(6.0), "tag": "x"}
        data = codec.encode(payload)
        decoded = codec.decode(memoryview(data))
        assert decoded["tag"] == "x"
        np.testing.assert_array_equal(decoded["arr"], payload["arr"])

    def test_decode_records_accepts_sliced_view(self):
        records = _records(4)
        chunk = encode_records(records)
        framed = struct.pack("<Q", len(chunk)) + chunk + b"trailing-garbage"
        view = memoryview(framed)
        (length,) = struct.unpack_from("<Q", view, 0)
        decoded = decode_records(view[8 : 8 + length])
        assert [(k, v.tolist()) for k, v in decoded] == [
            (k, v.tolist()) for k, v in records
        ]


class TestKernelZeroCopy:
    def test_dense_kernel_evaluates_mapped_rows_without_copy(self, tmp_path):
        from repro.kernels.dense import DenseDotKernel

        path = tmp_path / "chunk.npb"
        write_chunk_file(path, encode_records(_records(6)))
        view = read_chunk_view(path)
        payloads = {key: value for key, value in decode_records(view)}
        raw = np.frombuffer(view, dtype=np.uint8)
        for row in payloads.values():
            # The kernel's ingest conversion must pass float64 rows
            # through as views, not private copies.
            ingested = np.asarray(row, dtype=float)
            assert np.shares_memory(ingested, raw)
            assert not row.flags.writeable
        pairs = np.array([(i, j) for i in range(6) for j in range(i + 1, 6)])
        results = DenseDotKernel().evaluate_block(payloads, pairs)
        expected = [float(np.dot(payloads[i], payloads[j])) for i, j in pairs]
        assert results == expected

    def test_csr_kernel_shares_conversion_buffers(self):
        sparse = pytest.importorskip("scipy.sparse")
        from repro.kernels.sparse import CsrCosineKernel

        vectors = [
            {"alpha": 0.6, "beta": 0.8},
            {"beta": 1.0},
            {"alpha": 1.0},
            {"alpha": 0.5, "gamma": 0.5},
        ]
        data, cols, indptr, num_terms = CsrCosineKernel._to_csr_arrays(vectors)
        matrix = sparse.csr_matrix(
            (data, cols, indptr), shape=(len(vectors), num_terms), copy=False
        )
        # The CSR build the kernel performs per working set reuses the
        # conversion arrays — no second copy of the nonzeros.
        assert np.shares_memory(matrix.data, data)
        assert np.shares_memory(matrix.indices, cols)
        payloads = dict(enumerate(vectors))
        pairs = np.array([(0, 1), (0, 2), (2, 3)])
        results = CsrCosineKernel().evaluate_block(payloads, pairs)
        assert results == pytest.approx([0.8, 0.6, 0.5])


class TestExtsortMmapMerge:
    def test_spilled_merge_is_mmap_backed_and_ordered(self, tmp_path):
        sorter = ExternalSorter(memory_budget=256, spill_dir=tmp_path)
        keys = [7, 3, 9, 1, 3, 8, 2, 2, 6, 5, 0, 4] * 20
        for ordinal, key in enumerate(keys):
            sorter.add(key, np.full(4, float(ordinal)))
        assert sorter.num_runs > 1
        mark = io_meter.snapshot()
        merged = list(sorter.sorted_records())
        mmap_reads, bytes_copied = io_meter.since(mark)
        assert mmap_reads == sorter.num_runs
        assert bytes_copied == 0
        assert [k for k, _v in merged] == sorted(keys)
        # Stable arrival-order tie-break survives the mmap rewrite: equal
        # keys come out in insertion order.
        by_key: dict[int, list[float]] = {}
        for key, value in merged:
            by_key.setdefault(key, []).append(float(value[0]))
        for key, ordinals in by_key.items():
            assert ordinals == sorted(ordinals)
