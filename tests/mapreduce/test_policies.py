"""Scheduling policies: parity with the cluster scheduler, engine wiring,
the unified engine chooser, and the real-run trace round-trip."""

import json

import pytest

from repro.cluster.node import ClusterSpec, NodeSpec
from repro.cluster.scheduler import (
    TaskCost,
    cluster_slots,
    schedule_lpt,
    schedule_lpt_heterogeneous,
    schedule_round_robin,
)
from repro.cluster.trace import Trace
from repro.mapreduce.controlplane import (
    FifoPolicy,
    JsonlTraceSink,
    LptPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    Slot,
    resolve_policy,
)
from repro.mapreduce.job import Job, Mapper, Reducer
from repro.mapreduce.runtime import (
    AUTO_SERIAL_MAX_RECORDS,
    Engine,
    MultiprocessEngine,
    SerialEngine,
    choose_engine,
)


def cluster(nodes=2, slots=2, rates=None):
    if rates is None:
        return ClusterSpec.homogeneous(nodes, NodeSpec(slots=slots))
    return ClusterSpec(nodes=[NodeSpec(slots=slots, eval_rate=r) for r in rates])


TASKS = [TaskCost(i, float((i * 7) % 5 + 1)) for i in range(12)]


class TestPolicyParityWithClusterScheduler:
    """The schedule_* wrappers and the policies must agree exactly."""

    def test_lpt_matches_schedule_lpt(self):
        c = cluster(3, 2)
        expected = schedule_lpt(TASKS, c)
        got = LptPolicy().assign(TASKS, cluster_slots(c))
        assert got.placement == expected.placement
        assert got.slot_loads == expected.slot_loads

    def test_lpt_heterogeneous_matches(self):
        c = cluster(2, 2, rates=[100.0, 300.0])
        expected = schedule_lpt_heterogeneous(TASKS, c)
        got = LptPolicy().assign(TASKS, cluster_slots(c, speed_aware=True))
        assert got.placement == expected.placement
        assert got.slot_loads == pytest.approx(expected.slot_loads)

    def test_round_robin_matches(self):
        c = cluster(2, 2)
        expected = schedule_round_robin(TASKS, c)
        got = RoundRobinPolicy().assign(TASKS, cluster_slots(c))
        assert got.placement == expected.placement

    def test_lpt_beats_round_robin_on_skew(self):
        skewed = [TaskCost(i, float(2**i % 97 + 1)) for i in range(16)]
        c = cluster(4, 1)
        assert (
            schedule_lpt(skewed, c).makespan
            <= schedule_round_robin(skewed, c).makespan
        )

    def test_blacklist_validation_preserved(self):
        c = cluster(2, 1)
        with pytest.raises(ValueError, match="outside cluster"):
            schedule_lpt(TASKS, c, blacklist=[9])
        with pytest.raises(ValueError, match="blacklisted"):
            schedule_lpt(TASKS, c, blacklist=[0, 1])


class TestPolicyProtocol:
    def test_fifo_order_is_id_order(self):
        assert FifoPolicy().dispatch_order(TASKS) == list(range(12))

    def test_lpt_order_is_descending_cost(self):
        order = LptPolicy().dispatch_order(TASKS)
        seconds = {t.task_id: t.seconds for t in TASKS}
        costs = [seconds[task_id] for task_id in order]
        assert costs == sorted(costs, reverse=True)

    def test_duplicate_ids_rejected(self):
        slots = [Slot(0, 0)]
        with pytest.raises(ValueError, match="unique"):
            FifoPolicy().assign([TaskCost(1, 1.0), TaskCost(1, 2.0)], slots)

    def test_assign_needs_slots(self):
        with pytest.raises(ValueError, match="zero slots"):
            LptPolicy().assign(TASKS, [])

    def test_resolve_policy(self):
        assert isinstance(resolve_policy(None), FifoPolicy)
        assert isinstance(resolve_policy("lpt"), LptPolicy)
        assert isinstance(resolve_policy("Round-Robin"), RoundRobinPolicy)
        lpt = LptPolicy()
        assert resolve_policy(lpt) is lpt
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            resolve_policy("nope")
        with pytest.raises(TypeError):
            resolve_policy(42)


class WordSplitMapper(Mapper):
    def map(self, key, value, context):
        for word in value.split():
            context.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sum(values))


LINES = [
    "the quick brown fox",
    "the lazy dog",
    "the fox jumps over the lazy dog",
] * 4


def wordcount_job():
    return Job(
        name="wordcount", mapper=WordSplitMapper, reducer=SumReducer, num_reducers=3
    )


class TestEnginePolicyWiring:
    def test_outputs_bit_identical_across_policies(self):
        records = list(enumerate(LINES))
        baseline = None
        for policy in ("fifo", "lpt", "round_robin"):
            engine = SerialEngine(scheduling_policy=policy)
            result = engine.run(wordcount_job(), records, num_map_tasks=4)
            if baseline is None:
                baseline = result
            else:
                assert result.records == baseline.records
                assert result.counters.as_dict() == baseline.counters.as_dict()

    def test_pooled_outputs_match_serial_under_lpt(self):
        records = list(enumerate(LINES))
        serial = SerialEngine().run(wordcount_job(), records, num_map_tasks=4)
        with MultiprocessEngine(max_workers=2, scheduling_policy="lpt") as engine:
            pooled = engine.run(wordcount_job(), records, num_map_tasks=4)
        assert pooled.records == serial.records
        assert pooled.counters.as_dict() == serial.counters.as_dict()

    def test_both_engines_accept_policy_objects(self):
        policy = LptPolicy()
        assert SerialEngine(scheduling_policy=policy).scheduling_policy is policy
        with MultiprocessEngine(max_workers=2, scheduling_policy=policy) as engine:
            assert engine.scheduling_policy is policy

    def test_simulator_accepts_policy(self):
        from repro.core.block import BlockScheme
        from repro.cluster.simulator import ClusterSimulator

        scheme = BlockScheme(v=30, h=5)
        default = ClusterSimulator(cluster(2, 2)).simulate(scheme, 64)
        lpt = ClusterSimulator(cluster(2, 2), scheduling_policy="lpt").simulate(
            scheme, 64
        )
        assert lpt.measured.makespan_seconds == pytest.approx(
            default.measured.makespan_seconds
        )
        rr = ClusterSimulator(
            cluster(2, 2), scheduling_policy=RoundRobinPolicy()
        ).simulate(scheme, 64)
        assert rr.measured.makespan_seconds >= lpt.measured.makespan_seconds


class TestChooseEngine:
    def test_small_or_unknown_is_serial(self):
        assert isinstance(choose_engine(None), SerialEngine)
        assert isinstance(choose_engine(100), SerialEngine)

    def test_large_is_multiprocess(self):
        engine = choose_engine(AUTO_SERIAL_MAX_RECORDS, max_workers=2)
        try:
            assert isinstance(engine, MultiprocessEngine)
        finally:
            engine.close()

    def test_engine_auto_uses_same_crossover(self):
        assert isinstance(Engine.auto(100), SerialEngine)
        engine = Engine.auto(AUTO_SERIAL_MAX_RECORDS, max_workers=2)
        try:
            assert isinstance(engine, MultiprocessEngine)
        finally:
            engine.close()

    def test_negative_hint_rejected(self):
        with pytest.raises(ValueError):
            choose_engine(-1)


class TestRealRunTraceRoundTrip:
    """Satellite: a real engine run's JSONL replays through Trace.gantt()."""

    def run_traced(self, engine_factory, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path)
        records = list(enumerate(LINES))
        with engine_factory(sink) as engine:
            result = engine.run(wordcount_job(), records, num_map_tasks=4)
            stats = getattr(engine, "stats", None)
        assert sink.closed  # engine.close() closes the sink
        return path, result, stats

    def test_multiprocess_run_replays_as_trace(self, tmp_path):
        path, _result, stats = self.run_traced(
            lambda sink: MultiprocessEngine(max_workers=2, trace_sink=sink),
            tmp_path,
        )
        text = path.read_text()
        trace = Trace.from_json(text)
        # One span per succeeded attempt: 4 map + 3 reduce tasks.
        assert len(trace.spans) == 7
        assert len({span.task_id for span in trace.spans}) == 7
        # The timeline must agree with the engine's own wall-clock meter.
        assert 0 < trace.makespan <= stats.run_seconds + 0.05
        gantt = trace.gantt(width=60)
        assert gantt.count("|") >= 2  # rendered rows, no exceptions
        # Event lines really are the typed schema, not just spans.
        types = {
            json.loads(line).get("type")
            for line in text.splitlines()
            if line.strip()
        }
        assert {"AttemptTransition", "PhaseMarker", None} <= types

    def test_serial_run_replays_as_trace(self, tmp_path):
        path, _result, _stats = self.run_traced(
            lambda sink: SerialEngine(trace_sink=sink), tmp_path
        )
        trace = Trace.from_json(path.read_text())
        assert len(trace.spans) == 7
        assert trace.mean_utilization() > 0
