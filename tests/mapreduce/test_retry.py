"""Task-retry (fault tolerance) tests."""

from pathlib import Path

import pytest

from repro.mapreduce.counters import FRAMEWORK_GROUP
from repro.mapreduce.job import Job, Mapper, Reducer, TaskFailedError
from repro.mapreduce.runtime import MultiprocessEngine, SerialEngine


class FlakyMapper(Mapper):
    """Fails until a flag file exists (state survives across attempts
    and across processes)."""

    def map(self, key, value, context):
        flag = Path(context.config["flag"])
        if not flag.exists():
            flag.write_text("tripped")
            raise RuntimeError("transient failure")
        context.emit(key, value)


class AlwaysFailMapper(Mapper):
    def map(self, key, value, context):
        raise RuntimeError("permanent failure")


class FlakyReducer(Reducer):
    def reduce(self, key, values, context):
        flag = Path(context.config["flag"])
        values = list(values)
        if not flag.exists():
            flag.write_text("tripped")
            raise RuntimeError("reduce hiccup")
        context.emit(key, sum(values))


class TestRetries:
    def test_transient_map_failure_recovers(self, tmp_path):
        job = Job(
            name="flaky",
            mapper=FlakyMapper,
            config={"flag": str(tmp_path / "flag")},
            max_attempts=3,
        )
        result = SerialEngine().run(job, [(1, "a")], num_map_tasks=1)
        assert result.records == [(1, "a")]
        assert result.counters.get(FRAMEWORK_GROUP, "task_retries") == 1

    def test_transient_reduce_failure_recovers(self, tmp_path):
        job = Job(
            name="flaky-reduce",
            reducer=FlakyReducer,
            config={"flag": str(tmp_path / "flag")},
            max_attempts=2,
        )
        result = SerialEngine().run(job, [(1, 2), (1, 3)], num_map_tasks=1)
        assert result.records == [(1, 5)]

    def test_permanent_failure_raises_after_attempts(self, tmp_path):
        job = Job(name="dead", mapper=AlwaysFailMapper, max_attempts=3)
        with pytest.raises(TaskFailedError) as info:
            SerialEngine().run(job, [(1, "a")], num_map_tasks=1)
        assert info.value.attempts == 3
        assert isinstance(info.value.cause, RuntimeError)

    def test_default_single_attempt(self):
        job = Job(name="dead", mapper=AlwaysFailMapper)
        with pytest.raises(TaskFailedError) as info:
            SerialEngine().run(job, [(1, "a")], num_map_tasks=1)
        assert info.value.attempts == 1

    def test_failed_attempt_side_effects_discarded(self, tmp_path):
        """A failed attempt's emitted records never reach the output."""

        class EmitThenFail(Mapper):
            def map(self, key, value, context):
                context.emit("garbage", "from failed attempt")
                flag = Path(context.config["flag"])
                if not flag.exists():
                    flag.write_text("x")
                    raise RuntimeError("boom after emitting")
                context.emit(key, value)

        job = Job(
            name="dirty",
            mapper=EmitThenFail,
            reducer=None,
            num_reducers=0,
            config={"flag": str(tmp_path / "flag")},
            max_attempts=2,
        )
        result = SerialEngine().run(job, [(1, "clean")], num_map_tasks=1)
        # The successful attempt emits garbage+clean; the failed attempt's
        # records are gone (only one garbage record, not two).
        assert result.records == [("garbage", "from failed attempt"), (1, "clean")]

    def test_multiprocess_retry(self, tmp_path):
        job = Job(
            name="flaky-mp",
            mapper=FlakyMapper,
            config={"flag": str(tmp_path / "flag")},
            max_attempts=3,
        )
        result = MultiprocessEngine(max_workers=2).run(
            job, [(1, "a"), (2, "b")], num_map_tasks=2
        )
        assert sorted(result.records) == [(1, "a"), (2, "b")]

    def test_bad_max_attempts(self):
        with pytest.raises(ValueError):
            Job(name="bad", max_attempts=0)
