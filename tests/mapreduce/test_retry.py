"""Task-retry (fault tolerance) tests."""

from pathlib import Path

import pytest

from repro.mapreduce.counters import FRAMEWORK_GROUP
from repro.mapreduce.job import Job, Mapper, Reducer, TaskFailedError
from repro.mapreduce.runtime import MultiprocessEngine, SerialEngine


class FlakyMapper(Mapper):
    """Fails until a flag file exists (state survives across attempts
    and across processes)."""

    def map(self, key, value, context):
        flag = Path(context.config["flag"])
        if not flag.exists():
            flag.write_text("tripped")
            raise RuntimeError("transient failure")
        context.emit(key, value)


class AlwaysFailMapper(Mapper):
    def map(self, key, value, context):
        raise RuntimeError("permanent failure")


class FlakyReducer(Reducer):
    def reduce(self, key, values, context):
        flag = Path(context.config["flag"])
        values = list(values)
        if not flag.exists():
            flag.write_text("tripped")
            raise RuntimeError("reduce hiccup")
        context.emit(key, sum(values))


class TestRetries:
    def test_transient_map_failure_recovers(self, tmp_path):
        job = Job(
            name="flaky",
            mapper=FlakyMapper,
            config={"flag": str(tmp_path / "flag")},
            max_attempts=3,
        )
        result = SerialEngine().run(job, [(1, "a")], num_map_tasks=1)
        assert result.records == [(1, "a")]
        assert result.counters.get(FRAMEWORK_GROUP, "task_retries") == 1

    def test_transient_reduce_failure_recovers(self, tmp_path):
        job = Job(
            name="flaky-reduce",
            reducer=FlakyReducer,
            config={"flag": str(tmp_path / "flag")},
            max_attempts=2,
        )
        result = SerialEngine().run(job, [(1, 2), (1, 3)], num_map_tasks=1)
        assert result.records == [(1, 5)]

    def test_permanent_failure_raises_after_attempts(self, tmp_path):
        job = Job(name="dead", mapper=AlwaysFailMapper, max_attempts=3)
        with pytest.raises(TaskFailedError) as info:
            SerialEngine().run(job, [(1, "a")], num_map_tasks=1)
        assert info.value.attempts == 3
        assert isinstance(info.value.cause, RuntimeError)

    def test_default_single_attempt(self):
        job = Job(name="dead", mapper=AlwaysFailMapper)
        with pytest.raises(TaskFailedError) as info:
            SerialEngine().run(job, [(1, "a")], num_map_tasks=1)
        assert info.value.attempts == 1

    def test_failed_attempt_side_effects_discarded(self, tmp_path):
        """A failed attempt's emitted records never reach the output."""

        class EmitThenFail(Mapper):
            def map(self, key, value, context):
                context.emit("garbage", "from failed attempt")
                flag = Path(context.config["flag"])
                if not flag.exists():
                    flag.write_text("x")
                    raise RuntimeError("boom after emitting")
                context.emit(key, value)

        job = Job(
            name="dirty",
            mapper=EmitThenFail,
            reducer=None,
            num_reducers=0,
            config={"flag": str(tmp_path / "flag")},
            max_attempts=2,
        )
        result = SerialEngine().run(job, [(1, "clean")], num_map_tasks=1)
        # The successful attempt emits garbage+clean; the failed attempt's
        # records are gone (only one garbage record, not two).
        assert result.records == [("garbage", "from failed attempt"), (1, "clean")]

    def test_multiprocess_retry(self, tmp_path):
        job = Job(
            name="flaky-mp",
            mapper=FlakyMapper,
            config={"flag": str(tmp_path / "flag")},
            max_attempts=3,
        )
        result = MultiprocessEngine(max_workers=2).run(
            job, [(1, "a"), (2, "b")], num_map_tasks=2
        )
        assert sorted(result.records) == [(1, "a"), (2, "b")]

    def test_bad_max_attempts(self):
        with pytest.raises(ValueError):
            Job(name="bad", max_attempts=0)


class TestFailureAccounting:
    def test_task_failures_counter_on_recovery(self, tmp_path):
        job = Job(
            name="flaky",
            mapper=FlakyMapper,
            config={"flag": str(tmp_path / "flag")},
            max_attempts=3,
        )
        result = SerialEngine().run(job, [(1, "a")], num_map_tasks=1)
        assert result.counters.get(FRAMEWORK_GROUP, "task_failures") == 1
        assert result.counters.get(FRAMEWORK_GROUP, "task_retries") == 1

    def test_no_failure_counters_on_clean_run(self):
        job = Job(name="clean", mapper=Mapper, reducer=None, num_reducers=0)
        result = SerialEngine().run(job, [(1, "a")], num_map_tasks=1)
        assert result.counters.get(FRAMEWORK_GROUP, "task_failures") == 0
        assert result.counters.get(FRAMEWORK_GROUP, "task_retries") == 0

    def test_all_attempt_errors_preserved_and_chained(self):
        job = Job(name="dead", mapper=AlwaysFailMapper, max_attempts=3)
        with pytest.raises(TaskFailedError) as info:
            SerialEngine().run(job, [(1, "a")], num_map_tasks=1)
        error = info.value
        assert len(error.causes) == 3
        assert error.cause is error.causes[-1]
        # Attempt n chains to attempt n-1: the whole retry history is one
        # traceback walk away.
        assert error.causes[2].__cause__ is error.causes[1]
        assert error.causes[1].__cause__ is error.causes[0]
        assert error.__cause__ is error.causes[-1]

    def test_task_failed_error_survives_process_boundary(self):
        """TaskFailedError pickles with its metadata (worker -> driver)."""
        import pickle

        original = TaskFailedError(
            "map", 2, RuntimeError("boom"), causes=[ValueError("x"), RuntimeError("boom")]
        )
        restored = pickle.loads(pickle.dumps(original))
        assert restored.task_kind == "map"
        assert restored.attempts == 2
        assert isinstance(restored.cause, RuntimeError)
        assert len(restored.causes) == 2

    def test_multiprocess_permanent_failure_reports_attempts(self):
        job = Job(name="dead-mp", mapper=AlwaysFailMapper, max_attempts=2)
        with pytest.raises(TaskFailedError) as info:
            MultiprocessEngine(max_workers=2).run(
                job, [(1, "a"), (2, "b")], num_map_tasks=2
            )
        assert info.value.attempts == 2
