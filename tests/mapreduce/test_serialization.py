"""Serialization and byte-accounting tests."""

import pickle

import numpy as np
import pytest

from repro.core.element import Element
from repro.mapreduce.serialization import (
    _BUFFER_MAGIC,
    NumpyBufferCodec,
    PickleCodec,
    SizedPayload,
    declared_size,
    decode_records,
    encode_records,
    record_size,
)


class TestSizedPayload:
    def test_declares_size(self):
        assert declared_size(SizedPayload(500_000)) == 500_000

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SizedPayload(-1)

    def test_containers_sum(self):
        payload = [SizedPayload(100), SizedPayload(200)]
        assert declared_size(payload) == 300

    def test_dict_values(self):
        payload = {"a": SizedPayload(100), "b": SizedPayload(50)}
        size = declared_size(payload)
        assert size is not None and size >= 150

    def test_plain_objects_declare_nothing(self):
        assert declared_size(42) is None
        assert declared_size("hello") is None
        assert declared_size([1, 2, 3]) is None

    def test_element_with_sized_payload(self):
        e = Element(1, SizedPayload(1000))
        e.add_result(2, 0.5)
        e.add_result(3, 0.5)
        # payload + 2 results × 16 B + 8 B id
        assert declared_size(e) == 1000 + 32 + 8


class TestRecordSize:
    def test_declared_beats_measured(self):
        assert record_size(1, SizedPayload(10_000)) == 10_000 + 8

    def test_string_key(self):
        assert record_size("abc", SizedPayload(10)) == 3 + 10

    def test_measured_fallback_positive(self):
        assert record_size(1, [1.0] * 100) > 100

    def test_int_float_sizes(self):
        assert record_size(1, 2) == 16
        assert record_size(1, 2.5) == 16

    def test_bytes_value(self):
        assert record_size(0, b"12345") == 8 + 5


class TestPickleCodec:
    def test_roundtrip(self):
        codec = PickleCodec()
        obj = {"key": [1, 2, (3, 4)], "e": Element(1, "p")}
        restored = codec.decode(codec.encode(obj))
        assert restored["key"] == obj["key"]
        assert restored["e"].eid == 1


class TestNumpyBufferCodec:
    def test_ndarray_roundtrip_out_of_band(self):
        codec = NumpyBufferCodec()
        arr = np.arange(1000, dtype=np.float64)
        wire = codec.encode({"row": arr, "tag": 7})
        assert wire.startswith(_BUFFER_MAGIC)
        restored = codec.decode(wire)
        assert restored["tag"] == 7
        np.testing.assert_array_equal(restored["row"], arr)

    def test_raw_buffer_not_copied_through_pickle_head(self):
        codec = NumpyBufferCodec()
        arr = np.arange(4096, dtype=np.float64)
        wire = codec.encode(arr)
        # Framed layout: magic + count + length-prefixed raw data + head.
        # The head alone must stay tiny (metadata only, no element data).
        head_size = len(wire) - arr.nbytes
        assert head_size < 512

    def test_plain_objects_keep_plain_pickle_layout(self):
        codec = NumpyBufferCodec()
        obj = {"key": [1, 2, (3, 4)], "text": "hello"}
        wire = codec.encode(obj)
        assert wire.startswith(b"\x80")  # PROTO opcode, not the magic
        assert pickle.loads(wire) == obj  # any pickle reader still works
        assert codec.decode(wire) == obj

    def test_decoded_arrays_are_readonly_views(self):
        codec = NumpyBufferCodec()
        restored = codec.decode(codec.encode(np.ones(16)))
        assert not restored.flags.writeable
        copy = restored.copy()
        copy[0] = 5.0  # mutating a copy is the supported path
        assert restored[0] == 1.0

    def test_noncontiguous_array_falls_back_in_band(self):
        codec = NumpyBufferCodec()
        arr = np.arange(100, dtype=np.float64)[::2]
        restored = codec.decode(codec.encode(arr))
        np.testing.assert_array_equal(restored, arr)

    def test_mixed_dtypes_and_nesting(self):
        codec = NumpyBufferCodec()
        obj = [
            (1, np.arange(10, dtype=np.int32)),
            (2, {"w": np.ones((3, 4)), "label": "x"}),
        ]
        restored = codec.decode(codec.encode(obj))
        np.testing.assert_array_equal(restored[0][1], obj[0][1])
        np.testing.assert_array_equal(restored[1][1]["w"], obj[1][1]["w"])
        assert restored[1][1]["label"] == "x"


class TestEncodeRecords:
    def test_plain_records_roundtrip(self):
        records = [(1, "a"), (2, "b"), ("k", [1, 2, 3])]
        assert decode_records(encode_records(records)) == records

    def test_ndarray_records_use_framed_layout(self):
        records = [(eid, np.full(64, float(eid))) for eid in range(1, 6)]
        wire = encode_records(records)
        assert wire.startswith(_BUFFER_MAGIC)
        restored = decode_records(wire)
        assert [key for key, _value in restored] == [1, 2, 3, 4, 5]
        for (_key, got), (_key2, want) in zip(restored, records):
            np.testing.assert_array_equal(got, want)

    def test_empty_chunk(self):
        assert decode_records(encode_records([])) == []
