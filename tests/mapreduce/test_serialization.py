"""Serialization and byte-accounting tests."""

import pytest

from repro.core.element import Element
from repro.mapreduce.serialization import (
    PickleCodec,
    SizedPayload,
    declared_size,
    record_size,
)


class TestSizedPayload:
    def test_declares_size(self):
        assert declared_size(SizedPayload(500_000)) == 500_000

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SizedPayload(-1)

    def test_containers_sum(self):
        payload = [SizedPayload(100), SizedPayload(200)]
        assert declared_size(payload) == 300

    def test_dict_values(self):
        payload = {"a": SizedPayload(100), "b": SizedPayload(50)}
        size = declared_size(payload)
        assert size is not None and size >= 150

    def test_plain_objects_declare_nothing(self):
        assert declared_size(42) is None
        assert declared_size("hello") is None
        assert declared_size([1, 2, 3]) is None

    def test_element_with_sized_payload(self):
        e = Element(1, SizedPayload(1000))
        e.add_result(2, 0.5)
        e.add_result(3, 0.5)
        # payload + 2 results × 16 B + 8 B id
        assert declared_size(e) == 1000 + 32 + 8


class TestRecordSize:
    def test_declared_beats_measured(self):
        assert record_size(1, SizedPayload(10_000)) == 10_000 + 8

    def test_string_key(self):
        assert record_size("abc", SizedPayload(10)) == 3 + 10

    def test_measured_fallback_positive(self):
        assert record_size(1, [1.0] * 100) > 100

    def test_int_float_sizes(self):
        assert record_size(1, 2) == 16
        assert record_size(1, 2.5) == 16

    def test_bytes_value(self):
        assert record_size(0, b"12345") == 8 + 5


class TestPickleCodec:
    def test_roundtrip(self):
        codec = PickleCodec()
        obj = {"key": [1, 2, (3, 4)], "e": Element(1, "p")}
        restored = codec.decode(codec.encode(obj))
        assert restored["key"] == obj["key"]
        assert restored["e"].eid == 1
