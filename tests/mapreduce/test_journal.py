"""Durable job journal: crash-resumable execution (PR 7 tentpole).

The journal's contract, in order of increasing violence:

- the JSONL file itself is append-only, fsync'd, and tolerantly read
  (a torn final line is a legal crash artifact, anything else raises);
- a journaled run that *succeeds* retires all of its durable state;
- a journaled run that *fails or dies* can be resumed bit-identically —
  records and job counters — re-running only the map tasks whose spill
  files did not survive intact, proven by ``tasks_resumed`` /
  ``tasks_replayed`` and, in the hardest test, by SIGKILLing a real
  driver subprocess mid-map-phase.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.mapreduce import (
    JobJournal,
    MultiprocessEngine,
    SerialEngine,
    TaskFailedError,
    choose_engine,
    plan_resume,
    read_journal,
    resume_job,
)
from repro.mapreduce.journal import JOURNAL_NAME, parse_jsonl_tolerant
from repro.mapreduce.stats import EngineStats

from . import journal_workload as workload

REPO_ROOT = Path(__file__).resolve().parents[2]


def reference_result():
    """The uninterrupted ground truth every resumed run must match."""
    with SerialEngine() as engine:
        return engine.run(
            workload.make_job(),
            workload.make_records(),
            num_map_tasks=workload.NUM_MAP_TASKS,
        )


def journal_types(journal_dir):
    counts: dict[str, int] = {}
    for record in read_journal(Path(journal_dir) / JOURNAL_NAME):
        counts[record["type"]] = counts.get(record["type"], 0) + 1
    return counts


class TestJournalFile:
    def test_parse_tolerates_torn_final_line(self):
        text = '{"type": "a"}\n{"type": "b"}\n{"type": "c", "oops'
        assert parse_jsonl_tolerant(text) == [{"type": "a"}, {"type": "b"}]

    def test_parse_raises_on_interior_corruption(self):
        text = '{"type": "a"}\n{"torn\n{"type": "c"}\n'
        with pytest.raises(json.JSONDecodeError):
            parse_jsonl_tolerant(text)

    def test_append_fsyncs_and_meters(self, tmp_path):
        stats = EngineStats()
        journal = JobJournal(tmp_path, stats=stats)
        journal.append({"type": "x", "n": 1})
        journal.append({"type": "y", "n": 2})
        journal.close()
        assert read_journal(tmp_path / JOURNAL_NAME) == [
            {"type": "x", "n": 1},
            {"type": "y", "n": 2},
        ]
        assert stats.journal_events == 2

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            plan_resume(tmp_path / "nowhere")


class TestJournaledRun:
    def test_success_retires_artifacts_and_matches_serial(self, tmp_path):
        result = workload.run_journaled(tmp_path)
        reference = reference_result()
        assert sorted(result.records) == sorted(reference.records)
        assert result.counters.as_dict() == reference.counters.as_dict()
        types = journal_types(tmp_path)
        assert types["job_submitted"] == 1
        assert types["job_finished"] == 1
        assert types["map_result"] == workload.NUM_MAP_TASKS
        assert types["AttemptTransition"] > 0
        # Success retires the durable state: no spill dirs, no spec pickle.
        assert sorted(p.name for p in tmp_path.iterdir()) == [JOURNAL_NAME]
        with pytest.raises(ValueError, match="nothing to resume"):
            plan_resume(tmp_path)

    def test_journal_requires_direct_shuffle(self, tmp_path):
        with pytest.raises(ValueError, match="journal_dir requires"):
            MultiprocessEngine(shuffle_mode="relay", journal_dir=tmp_path)

    def test_journal_dir_forces_pooled_engine(self, tmp_path):
        engine = choose_engine(10, journal_dir=tmp_path)
        try:
            assert isinstance(engine, MultiprocessEngine)
            assert engine.shuffle_mode == "direct"
        finally:
            engine.close()


def abandoned_run(tmp_path):
    """A journaled run whose reduce phase fails after all maps complete.

    Returns (journal_dir, gate_path): touching the gate lets a resumed
    execution's reducers succeed.
    """
    journal_dir = tmp_path / "journal"
    gate = tmp_path / "gate"
    with pytest.raises(TaskFailedError):
        workload.run_journaled(journal_dir, gate_path=gate)
    return journal_dir, gate


class TestResume:
    def test_resume_salvages_all_map_tasks_bit_identical(self, tmp_path):
        journal_dir, gate = abandoned_run(tmp_path)
        plan = plan_resume(journal_dir)
        assert len(plan.salvage) == workload.NUM_MAP_TASKS
        assert plan.missing == []

        gate.touch()
        outcome = resume_job(journal_dir, max_workers=2)
        assert outcome.tasks_resumed == workload.NUM_MAP_TASKS
        assert outcome.tasks_replayed == 0
        reference = reference_result()
        assert sorted(outcome.result.records) == sorted(reference.records)
        assert outcome.result.counters.as_dict() == reference.counters.as_dict()
        # The resumed completion retires every open run's artifacts.
        assert sorted(p.name for p in journal_dir.iterdir()) == [JOURNAL_NAME]
        with pytest.raises(ValueError, match="nothing to resume"):
            plan_resume(journal_dir)

    def test_resume_replays_only_tasks_with_missing_spills(self, tmp_path):
        journal_dir, gate = abandoned_run(tmp_path)
        # Destroy two map tasks' outputs outright (files gone), which the
        # size check must classify as not-salvageable.
        victims = {0, 3}
        for task in victims:
            spills = list(journal_dir.glob(f"*-shuffle/map-{task:05d}-*"))
            assert spills, "expected durable spill files for the victim task"
            for path in spills:
                path.unlink()

        gate.touch()
        outcome = resume_job(journal_dir, max_workers=2)
        assert outcome.tasks_resumed == workload.NUM_MAP_TASKS - len(victims)
        assert outcome.tasks_replayed == len(victims)
        reference = reference_result()
        assert sorted(outcome.result.records) == sorted(reference.records)
        assert outcome.result.counters.as_dict() == reference.counters.as_dict()

    def test_resume_rejects_truncated_spill(self, tmp_path):
        journal_dir, gate = abandoned_run(tmp_path)
        spills = sorted(journal_dir.glob("*-shuffle/map-00002-*"))
        assert spills
        with open(spills[0], "r+b") as handle:
            handle.truncate(max(1, os.path.getsize(spills[0]) // 2))
        plan = plan_resume(journal_dir)
        assert 2 in plan.missing
        gate.touch()
        outcome = resume_job(journal_dir, max_workers=2)
        assert outcome.tasks_replayed >= 1
        assert sorted(outcome.result.records) == sorted(
            reference_result().records
        )


@pytest.mark.durability
class TestDriverKill:
    def test_sigkilled_driver_resumes_bit_identical(self, tmp_path):
        """SIGKILL a real journaled driver mid-map; resume must finish the
        job bit-identically with strictly fewer map re-runs."""
        journal_dir = tmp_path / "journal"
        child = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "import sys; from tests.mapreduce import journal_workload as w; "
                "w.main(sys.argv[1:])",
                str(journal_dir),
                "0.6",  # seconds of map work per task: a wide kill window
            ],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": "src"},
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Kill once at least two map results are durable but before the
            # job can finish — the journal itself is the progress signal.
            journal_path = journal_dir / JOURNAL_NAME
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                assert child.poll() is None, "driver finished before the kill"
                done = 0
                if journal_path.exists():
                    done = sum(
                        1
                        for record in read_journal(journal_path)
                        if record["type"] == "map_result"
                    )
                if done >= 2:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("driver never journaled two map results")
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup guard
                child.kill()
                child.wait()

        outcome = resume_job(journal_dir, max_workers=2)
        assert outcome.tasks_resumed >= 1
        assert (
            outcome.tasks_resumed + outcome.tasks_replayed
            == workload.NUM_MAP_TASKS
        )
        assert outcome.tasks_replayed < workload.NUM_MAP_TASKS
        reference = reference_result()
        assert sorted(outcome.result.records) == sorted(reference.records)
        assert outcome.result.counters.as_dict() == reference.counters.as_dict()
        assert sorted(p.name for p in journal_dir.iterdir()) == [JOURNAL_NAME]
