"""Fused job chaining: the reduce→map short-circuit of run_chain.

When the next job's map phase is identity-shaped, the upstream reduce
tasks write the next job's spill files at source; the elided stage's
records never reach the driver and its data-plane counters are
synthesized from the manifest sums — bit-identical to the unfused values.
"""

import pytest

from repro.core.design import DesignScheme
from repro.core.pairwise import PairwiseComputation
from repro.mapreduce.counters import (
    FRAMEWORK_GROUP,
    MAP_INPUT_RECORDS,
    MAP_OUTPUT_BYTES,
    MAP_OUTPUT_RECORDS,
    REDUCE_INPUT_GROUPS,
    REDUCE_INPUT_RECORDS,
    REDUCE_OUTPUT_RECORDS,
    SHUFFLE_BYTES,
    SHUFFLE_RECORDS,
)
from repro.mapreduce.faults import CrashFault, FaultPlan
from repro.mapreduce.job import Job, Mapper, Reducer, records_from
from repro.mapreduce.pipeline import Pipeline
from repro.mapreduce.runtime import MultiprocessEngine, SerialEngine

DATA_PLANE_COUNTERS = [
    MAP_INPUT_RECORDS,
    MAP_OUTPUT_RECORDS,
    MAP_OUTPUT_BYTES,
    SHUFFLE_RECORDS,
    SHUFFLE_BYTES,
    REDUCE_INPUT_GROUPS,
    REDUCE_INPUT_RECORDS,
    REDUCE_OUTPUT_RECORDS,
]


class WordSplitMapper(Mapper):
    def map(self, key, value, context):
        for word in value.split():
            context.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sum(values))


class MaxReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, max(values))


class IncrementMapper(Mapper):
    """Non-identity map over stage-1 (word, count) output."""

    def map(self, key, value, context):
        context.emit(key, value + 1)


LINES = [
    "the quick brown fox",
    "the lazy dog",
    "the fox jumps over the lazy dog",
] * 6


def fusable_chain(**second_overrides):
    """wordcount → identity-map re-aggregation: the fusable shape."""
    first = Job(
        name="count", mapper=WordSplitMapper, reducer=SumReducer, num_reducers=3
    )
    settings = dict(name="rollup", reducer=MaxReducer, num_reducers=2)
    settings.update(second_overrides)
    return [first, Job(**settings)]


class TestFusionHappens:
    def test_fused_chain_matches_unfused(self):
        baseline = SerialEngine().run_chain(
            fusable_chain(), records_from(LINES), num_map_tasks=4
        )
        with MultiprocessEngine(max_workers=2) as engine:
            fused = engine.run_chain(
                fusable_chain(), records_from(LINES), num_map_tasks=4
            )
            assert engine.stats.fused_stages == 1
        assert fused[-1].records == baseline[-1].records
        assert fused[0].records_elided
        assert fused[0].records == []

    def test_elided_stage_counters_are_synthesized_exactly(self):
        baseline = SerialEngine().run_chain(
            fusable_chain(), records_from(LINES), num_map_tasks=4
        )
        with MultiprocessEngine(max_workers=2) as engine:
            fused = engine.run_chain(
                fusable_chain(), records_from(LINES), num_map_tasks=4
            )
        for stage in range(2):
            for name in DATA_PLANE_COUNTERS:
                assert fused[stage].counters.get(FRAMEWORK_GROUP, name) == baseline[
                    stage
                ].counters.get(FRAMEWORK_GROUP, name), (stage, name)

    def test_elided_record_accessors_raise(self):
        with MultiprocessEngine(max_workers=2) as engine:
            fused = engine.run_chain(
                fusable_chain(), records_from(LINES), num_map_tasks=4
            )
        with pytest.raises(ValueError, match="elided"):
            fused[0].values()
        with pytest.raises(ValueError, match="elided"):
            fused[0].as_dict()

    def test_three_stage_chain_fuses_twice(self):
        chain = fusable_chain() + [
            Job(name="rollup-2", reducer=MaxReducer, num_reducers=2)
        ]
        baseline = SerialEngine().run_chain(
            chain, records_from(LINES), num_map_tasks=4
        )
        with MultiprocessEngine(max_workers=2) as engine:
            fused = engine.run_chain(chain, records_from(LINES), num_map_tasks=4)
            assert engine.stats.fused_stages == 2
        assert fused[-1].records == baseline[-1].records
        assert fused[0].records_elided and fused[1].records_elided


class TestFusionGuards:
    def run_fused(self, chain, **kwargs):
        with MultiprocessEngine(max_workers=2) as engine:
            results = engine.run_chain(chain, records_from(LINES), **kwargs)
            return results, engine.stats.fused_stages

    def test_fuse_false_forces_sequential(self):
        results, fused_stages = self.run_fused(
            fusable_chain(), num_map_tasks=4, fuse=False
        )
        assert fused_stages == 0
        assert results[0].records and not results[0].records_elided

    def test_config_opt_out_on_either_job(self):
        for stage in range(2):
            chain = fusable_chain()
            chain[stage].config["pipeline_fusion"] = False
            _, fused_stages = self.run_fused(chain, num_map_tasks=4)
            assert fused_stages == 0, f"opt-out on stage {stage} ignored"

    def test_non_identity_mapper_falls_back(self):
        baseline = SerialEngine().run_chain(
            fusable_chain(mapper=IncrementMapper), records_from(LINES), num_map_tasks=4
        )
        results, fused_stages = self.run_fused(
            fusable_chain(mapper=IncrementMapper), num_map_tasks=4
        )
        assert fused_stages == 0
        assert results[-1].records == baseline[-1].records

    def test_combiner_on_next_job_falls_back(self):
        chain = fusable_chain(combiner=MaxReducer)
        _, fused_stages = self.run_fused(chain, num_map_tasks=4)
        assert fused_stages == 0

    def test_relay_mode_never_fuses(self):
        with MultiprocessEngine(max_workers=2, shuffle_mode="relay") as engine:
            results = engine.run_chain(
                fusable_chain(), records_from(LINES), num_map_tasks=4
            )
            assert engine.stats.fused_stages == 0
        assert results[0].records

    def test_map_targeting_fault_plan_blocks_fusion(self):
        # A plan that could fire on the next job's (elided) map attempts
        # must force the unfused path so the faults actually run.
        chain = fusable_chain(
            config={"fault_plan": FaultPlan(faults=[CrashFault(task_kind="map")])},
            max_attempts=2,
        )
        _, fused_stages = self.run_fused(chain, num_map_tasks=4)
        assert fused_stages == 0

    def test_reduce_only_fault_plan_still_fuses(self):
        plan = FaultPlan(faults=[CrashFault(task_kind="reduce", attempts=(1,))])
        chain = fusable_chain(config={"fault_plan": plan}, max_attempts=2)
        baseline = SerialEngine().run_chain(
            fusable_chain(), records_from(LINES), num_map_tasks=4
        )
        results, fused_stages = self.run_fused(chain, num_map_tasks=4)
        assert fused_stages == 1
        assert results[-1].records == baseline[-1].records

    def test_serial_engine_accepts_and_ignores_fuse(self):
        results = SerialEngine().run_chain(
            fusable_chain(), records_from(LINES), num_map_tasks=4, fuse=True
        )
        assert results[0].records and not results[0].records_elided


class TestPipelineIntegration:
    def test_pipeline_forwards_fuse(self):
        with MultiprocessEngine(max_workers=2) as engine:
            fused = Pipeline(fusable_chain(), engine=engine).run(
                records_from(LINES), num_map_tasks=4
            )
            assert engine.stats.fused_stages == 1
            unfused = Pipeline(fusable_chain(), engine=engine).run(
                records_from(LINES), num_map_tasks=4, fuse=False
            )
            assert engine.stats.fused_stages == 1  # unchanged by second run
        assert fused.records == unfused.records
        assert fused.stages[0].records_elided

    def test_pairwise_run_fuses_and_matches_serial(self):
        scheme = DesignScheme(13)
        dataset = list(range(100, 100 + scheme.v))
        serial = PairwiseComputation(scheme, abs_distance).run(dataset)
        with MultiprocessEngine(max_workers=2) as engine:
            computation = PairwiseComputation(scheme, abs_distance, engine=engine)
            fused = computation.run(dataset)
            assert engine.stats.fused_stages == 1
        assert fused == serial

    def test_pairwise_return_pipeline_disables_fusion(self):
        scheme = DesignScheme(13)
        dataset = list(range(100, 100 + scheme.v))
        with MultiprocessEngine(max_workers=2) as engine:
            computation = PairwiseComputation(scheme, abs_distance, engine=engine)
            merged, result = computation.run(dataset, return_pipeline=True)
            assert engine.stats.fused_stages == 0
        # Per-stage records stay inspectable for the Table-1 measurements.
        assert result.stages[0].records
        assert merged == PairwiseComputation(scheme, abs_distance).run(dataset)

    def test_pairwise_run_cached_fuses(self):
        scheme = DesignScheme(13)
        dataset = list(range(100, 100 + scheme.v))
        serial = PairwiseComputation(scheme, abs_distance).run_cached(dataset)
        with MultiprocessEngine(max_workers=2) as engine:
            computation = PairwiseComputation(scheme, abs_distance, engine=engine)
            fused = computation.run_cached(dataset)
            assert engine.stats.fused_stages == 1
        assert fused == serial


def abs_distance(a, b):
    return abs(a - b)
