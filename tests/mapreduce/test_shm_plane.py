"""Shared-memory data plane: segment lifecycle, parity, crash recovery.

Everything here needs working POSIX shared memory; the module skips
cleanly (and carries the ``shm`` marker for its CI lane) where
``/dev/shm`` is absent.
"""

import glob
import pickle

import numpy as np
import pytest

from repro.core.element import results_matrix
from repro.core.pairwise import PairwiseComputation
from repro.core.block import BlockScheme
from repro.mapreduce import Job, Mapper, Reducer, MultiprocessEngine, SerialEngine
from repro.mapreduce.faults import FaultPlan, WorkerKillFault
from repro.mapreduce.shm import (
    SEGMENT_PREFIX,
    SegmentHost,
    SegmentRef,
    attach_object,
    detach_all,
    shm_available,
)
from repro.mapreduce.tasks import JobRef

pytestmark = [
    pytest.mark.shm,
    pytest.mark.skipif(not shm_available(), reason="POSIX shared memory unavailable"),
]


def leaked_segments():
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}-*")


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every test must leave /dev/shm as it found it."""
    before = set(leaked_segments())
    yield
    detach_all()
    assert set(leaked_segments()) == before


class TestSegmentHost:
    def test_materialize_attach_roundtrip(self):
        host = SegmentHost()
        cache = {"data": np.arange(32.0).reshape(8, 4), "tag": "x"}
        try:
            ref, created = host.materialize("job-1", cache)
            assert created > 0
            attached = attach_object(ref)
            assert attached["tag"] == "x"
            np.testing.assert_array_equal(attached["data"], cache["data"])
            assert not attached["data"].flags.writeable
        finally:
            host.close()
            detach_all()

    def test_attached_arrays_share_segment_memory(self):
        from repro.mapreduce.shm import _ATTACHED

        host = SegmentHost()
        cache = {"data": np.arange(64.0)}
        try:
            ref, _created = host.materialize("job-1", cache)
            attached = attach_object(ref)
            # Compare against the attach-side mapping: a fresh
            # SharedMemory(name=...) maps the segment at a different
            # virtual address, which np.shares_memory cannot relate.
            segment, _obj = _ATTACHED[ref.name]
            raw = np.frombuffer(segment.buf, dtype=np.uint8)
            assert np.shares_memory(attached["data"], raw)
            del raw
        finally:
            detach_all()
            host.close()

    def test_same_cache_object_shares_one_segment(self):
        host = SegmentHost()
        cache = {"data": np.arange(16.0)}
        try:
            ref1, created1 = host.materialize("job-1", cache)
            ref2, created2 = host.materialize("job-2", cache)
            assert ref1 == ref2
            assert created1 > 0 and created2 == 0
            host.release("job-1")
            assert leaked_segments()  # job-2 still holds it
            host.release("job-2")
            assert not leaked_segments()
        finally:
            host.close()

    def test_release_unknown_uid_is_noop(self):
        host = SegmentHost()
        host.release("never-materialized")
        host.close()

    def test_revive_recreates_missing_segment_under_same_name(self):
        host = SegmentHost()
        cache = {"data": np.arange(24.0)}
        try:
            ref, _created = host.materialize("job-1", cache)
            assert host.revive() == 0  # present: nothing to do
            from multiprocessing import shared_memory

            victim = shared_memory.SharedMemory(name=ref.name)
            victim.unlink()  # simulate an external sweep
            victim.close()
            assert host.revive() == 1
            attached = attach_object(ref)
            np.testing.assert_array_equal(attached["data"], cache["data"])
        finally:
            detach_all()
            host.close()

    def test_close_is_idempotent(self):
        host = SegmentHost()
        host.materialize("job-1", {"data": np.arange(4.0)})
        host.close()
        host.close()
        assert not leaked_segments()


class TestKernelOverSharedSegments:
    def test_dense_kernel_reads_attached_store_without_copy(self):
        from repro.kernels.dense import DenseDotKernel
        from repro.mapreduce.shm import _ATTACHED

        host = SegmentHost()
        store = {i: np.arange(8.0) + i for i in range(6)}
        try:
            ref, _created = host.materialize("job-1", {"dataset": store})
            attached = attach_object(ref)["dataset"]
            segment, _obj = _ATTACHED[ref.name]
            raw = np.frombuffer(segment.buf, dtype=np.uint8)
            for row in attached.values():
                ingested = np.asarray(row, dtype=float)
                assert np.shares_memory(ingested, raw)
                assert not row.flags.writeable
            del raw
            pairs = np.array([(i, j) for i in range(6) for j in range(i + 1, 6)])
            results = DenseDotKernel().evaluate_block(attached, pairs)
            expected = [float(np.dot(store[i], store[j])) for i, j in pairs]
            assert results == expected
        finally:
            detach_all()
            host.close()


class TestRefWire:
    def test_jobref_with_cache_ref_pickles(self):
        ref = JobRef(
            uid="job-9",
            path="/tmp/job-9.pkl",
            cache_ref=SegmentRef(name="repro-shm-1-abc", nbytes=128),
        )
        clone = pickle.loads(pickle.dumps(ref, protocol=pickle.HIGHEST_PROTOCOL))
        assert clone == ref
        assert clone.cache_ref.nbytes == 128

    def test_attach_missing_segment_raises(self):
        with pytest.raises(FileNotFoundError):
            attach_object(SegmentRef(name="repro-shm-0-missing", nbytes=8))


# -- engine-level tests --------------------------------------------------------

V = 18
DATA = [np.arange(8.0) * (i + 1) for i in range(V)]


def dot(a, b):
    return float(np.dot(a, b))


class CacheSumMapper(Mapper):
    def map(self, key, value, context):
        arr = context.cache_file("data")
        context.emit(key % 3, float(arr[value].sum()))


class SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sum(values))


def cache_job(**overrides):
    settings = dict(
        name="cache-sum",
        mapper=CacheSumMapper,
        reducer=SumReducer,
        num_reducers=3,
        cache={"data": np.arange(80.0).reshape(10, 8)},
    )
    settings.update(overrides)
    return Job(**settings)


RECORDS = [(i, i % 10) for i in range(40)]


class TestEngineParity:
    def test_cached_pairwise_bit_identical_across_planes(self):
        scheme = BlockScheme(V, 4)
        serial = PairwiseComputation(
            scheme, dot, engine=SerialEngine(), num_reduce_tasks=3
        )
        merged_serial = serial.run_cached(DATA, num_map_tasks=4)
        with MultiprocessEngine(max_workers=2, data_plane="shm") as engine:
            assert engine.data_plane == "shm"
            pooled = PairwiseComputation(scheme, dot, engine=engine, num_reduce_tasks=3)
            merged_shm = pooled.run_cached(DATA, num_map_tasks=4)
            assert engine.stats.shm_segments >= 1
            assert engine.stats.shm_bytes > 0
        with MultiprocessEngine(max_workers=2, data_plane="default") as engine:
            pooled = PairwiseComputation(scheme, dot, engine=engine, num_reduce_tasks=3)
            merged_default = pooled.run_cached(DATA, num_map_tasks=4)
            assert engine.stats.shm_segments == 0
        assert (
            results_matrix(merged_serial)
            == results_matrix(merged_shm)
            == results_matrix(merged_default)
        )

    def test_stage_counters_identical_across_planes(self):
        scheme = BlockScheme(V, 4)
        with MultiprocessEngine(max_workers=2, data_plane="shm") as engine:
            comp = PairwiseComputation(scheme, dot, engine=engine, num_reduce_tasks=3)
            _merged, shm_result = comp.run_cached(
                DATA, num_map_tasks=4, return_pipeline=True
            )
        with MultiprocessEngine(max_workers=2) as engine:
            comp = PairwiseComputation(scheme, dot, engine=engine, num_reduce_tasks=3)
            _merged, default_result = comp.run_cached(
                DATA, num_map_tasks=4, return_pipeline=True
            )
        assert len(shm_result.stages) == len(default_result.stages)
        for shm_stage, default_stage in zip(shm_result.stages, default_result.stages):
            # Records carry ndarray payloads, so compare serialized bytes
            # (Element.__eq__ on arrays is ambiguous); identical pickles
            # are the bit-identical claim anyway.
            assert pickle.dumps(shm_stage.records) == pickle.dumps(
                default_stage.records
            )
            assert shm_stage.counters.as_dict() == default_stage.counters.as_dict()

    def test_fused_chain_shares_one_segment(self):
        # run_cached attaches the *same* cache dict to both jobs; the
        # fused chain holds both handles concurrently, so the shm plane
        # materializes exactly one segment for the whole pipeline.
        scheme = BlockScheme(V, 4)
        with MultiprocessEngine(max_workers=2, data_plane="shm") as engine:
            comp = PairwiseComputation(scheme, dot, engine=engine, num_reduce_tasks=3)
            comp.run_cached(DATA, num_map_tasks=4)
            assert engine.stats.shm_segments == 1
            assert engine.stats.jobs_broadcast == 2

    def test_speculation_parity_on_shm_plane(self):
        serial = SerialEngine().run(cache_job(), RECORDS, num_map_tasks=4)
        with MultiprocessEngine(max_workers=2, data_plane="shm") as engine:
            pooled = engine.run(
                cache_job(
                    config={
                        "speculative_execution": True,
                        "speculative_multiplier": 1.2,
                        "speculative_fraction": 1.0,
                    }
                ),
                RECORDS,
                num_map_tasks=4,
            )
        assert serial.records == pooled.records
        assert serial.counters.as_dict() == pooled.counters.as_dict()


class TestCrashRecovery:
    def test_worker_kill_recovers_and_leaves_no_segments(self):
        plan = FaultPlan(faults=[WorkerKillFault(task_kind="map", task_index=1)])
        reference = SerialEngine().run(cache_job(), RECORDS, num_map_tasks=4)
        with MultiprocessEngine(max_workers=2, data_plane="shm") as engine:
            result = engine.run(
                cache_job(config={"fault_plan": plan}, max_attempts=2),
                RECORDS,
                num_map_tasks=4,
            )
            assert engine.stats.pool_restarts >= 1
            assert engine.stats.shm_segments == 1
            # engine still usable on the same plane after recovery
            again = engine.run(cache_job(), RECORDS, num_map_tasks=4)
        assert result.records == reference.records
        assert again.records == reference.records
        assert not leaked_segments()

    def test_kill_mid_reduce_recovers(self):
        plan = FaultPlan(faults=[WorkerKillFault(task_kind="reduce", task_index=1)])
        reference = SerialEngine().run(cache_job(), RECORDS, num_map_tasks=4)
        with MultiprocessEngine(max_workers=2, data_plane="shm") as engine:
            result = engine.run(
                cache_job(config={"fault_plan": plan}, max_attempts=2),
                RECORDS,
                num_map_tasks=4,
            )
        assert result.records == reference.records
        assert not leaked_segments()


class TestFallback:
    def test_engine_downgrades_when_shm_unavailable(self, monkeypatch):
        monkeypatch.setattr("repro.mapreduce.runtime.shm_available", lambda: False)
        with MultiprocessEngine(max_workers=2, data_plane="shm") as engine:
            assert engine.data_plane == "default"
            result = engine.run(cache_job(), RECORDS, num_map_tasks=4)
            assert engine.stats.shm_segments == 0
        reference = SerialEngine().run(cache_job(), RECORDS, num_map_tasks=4)
        assert result.records == reference.records

    def test_invalid_plane_rejected(self):
        with pytest.raises(ValueError, match="data_plane"):
            MultiprocessEngine(max_workers=2, data_plane="mystery")
