"""External merge sort tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.extsort import ExternalSorter, sorted_groups


class TestInMemoryPath:
    def test_small_input_no_spill(self):
        with ExternalSorter(memory_budget=10**9) as sorter:
            sorter.add_all([(3, "c"), (1, "a"), (2, "b")])
            assert sorter.num_runs == 0
            assert list(sorter.sorted_records()) == [(1, "a"), (2, "b"), (3, "c")]
            assert sorter.spilled_records == 0


class TestSpilling:
    def test_tiny_budget_forces_runs(self):
        with ExternalSorter(memory_budget=64) as sorter:
            records = [(i % 17, i) for i in range(200)]
            sorter.add_all(records)
            assert sorter.num_runs > 1
            assert sorter.spilled_records > 0
            out = list(sorter.sorted_records())
        assert len(out) == 200
        keys = [k for k, _v in out]
        assert keys == sorted(keys)

    def test_merge_is_globally_sorted_and_complete(self):
        rng = random.Random(7)
        records = [(rng.randrange(1000), i) for i in range(5000)]
        with ExternalSorter(memory_budget=500) as sorter:
            sorter.add_all(records)
            out = list(sorter.sorted_records())
        assert sorted(out) == sorted(records)
        assert [k for k, _ in out] == sorted(k for k, _ in records)

    def test_values_for_equal_keys_all_present(self):
        with ExternalSorter(memory_budget=50) as sorter:
            sorter.add_all([("k", i) for i in range(100)])
            out = list(sorter.sorted_records())
        assert sorted(v for _k, v in out) == list(range(100))


class TestGroups:
    def test_sorted_groups_matches_in_memory_grouping(self):
        records = [(i % 5, i) for i in range(50)]
        with ExternalSorter(memory_budget=64) as sorter:
            sorter.add_all(records)
            groups = {k: sorted(vs) for k, vs in sorted_groups(sorter)}
        expected = {k: sorted(i for i in range(50) if i % 5 == k) for k in range(5)}
        assert groups == expected

    def test_sort_key_proxy(self):
        records = [(("b", 2), 1), (("a", 9), 2)]
        with ExternalSorter(memory_budget=10**9, sort_key=lambda k: k[0]) as sorter:
            sorter.add_all(records)
            keys = [k for k, _ in sorter.sorted_records()]
        assert keys == [("a", 9), ("b", 2)]


class TestLifecycle:
    def test_single_use(self):
        sorter = ExternalSorter()
        sorter.add(1, "a")
        list(sorter.sorted_records())
        with pytest.raises(RuntimeError):
            sorter.add(2, "b")
        with pytest.raises(RuntimeError):
            list(sorter.sorted_records())
        sorter.close()

    def test_bad_budget(self):
        with pytest.raises(ValueError):
            ExternalSorter(memory_budget=0)

    def test_custom_spill_dir(self, tmp_path):
        with ExternalSorter(memory_budget=32, spill_dir=tmp_path / "spills") as sorter:
            sorter.add_all([(i, i) for i in range(50)])
            assert sorter.num_runs > 0
            assert any((tmp_path / "spills").iterdir())
            list(sorter.sorted_records())


@given(
    records=st.lists(
        st.tuples(st.integers(min_value=0, max_value=50), st.integers()),
        max_size=300,
    ),
    budget=st.integers(min_value=32, max_value=4096),
)
@settings(max_examples=30, deadline=None)
def test_property_external_equals_internal_sort(records, budget):
    """Any input, any budget: output is the stable multiset sort by key."""
    with ExternalSorter(memory_budget=budget) as sorter:
        sorter.add_all(records)
        out = list(sorter.sorted_records())
    assert sorted(out, key=lambda kv: kv[0]) == out
    assert sorted(out) == sorted(records)
