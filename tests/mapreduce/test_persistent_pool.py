"""Persistent-pool engine: broadcast-once, streaming shuffle, spill path."""

import pytest

from repro.mapreduce.counters import (
    FRAMEWORK_GROUP,
    MAP_OUTPUT_BYTES,
    SHUFFLE_BYTES,
    SHUFFLE_RECORDS,
)
from repro.mapreduce.job import Job, Mapper, Reducer, records_from
from repro.mapreduce.runtime import (
    DEFAULT_RECORDS_PER_SPLIT,
    REDUCE_SPILL_RUNS,
    REDUCE_SPILLED_RECORDS,
    MultiprocessEngine,
    SerialEngine,
)
from repro.mapreduce.serialization import SizedPayload


class WordSplitMapper(Mapper):
    def map(self, key, value, context):
        for word in value.split():
            context.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sum(values))


class FanOutMapper(Mapper):
    """Emit several keyed records per input so every partition gets data."""

    def map(self, key, value, context):
        for offset in range(4):
            context.emit((key + offset) % 8, value)


LINES = [
    "the quick brown fox",
    "the lazy dog",
    "the fox jumps over the lazy dog",
] * 4


def wordcount_job(**overrides):
    settings = dict(
        name="wordcount",
        mapper=WordSplitMapper,
        reducer=SumReducer,
        num_reducers=3,
    )
    settings.update(overrides)
    return Job(**settings)


def run_both(job_factory, records, **kwargs):
    """Run the same job on both engines; returns (serial, pooled) results."""
    serial = SerialEngine().run(job_factory(), records, **kwargs)
    with MultiprocessEngine(max_workers=2) as engine:
        pooled = engine.run(job_factory(), records, **kwargs)
    return serial, pooled


class TestBitIdenticalResults:
    def test_records_and_counters_match(self):
        serial, pooled = run_both(wordcount_job, records_from(LINES), num_map_tasks=4)
        assert serial.records == pooled.records  # exact order, not just content
        assert serial.counters.as_dict() == pooled.counters.as_dict()

    def test_combiner_path_matches(self):
        serial, pooled = run_both(
            lambda: wordcount_job(combiner=SumReducer),
            records_from(LINES),
            num_map_tasks=4,
        )
        assert serial.records == pooled.records
        assert serial.counters.as_dict() == pooled.counters.as_dict()

    def test_map_only_matches(self):
        serial, pooled = run_both(
            lambda: wordcount_job(reducer=None, num_reducers=0),
            records_from(LINES),
            num_map_tasks=4,
        )
        assert serial.records == pooled.records
        assert serial.counters.as_dict() == pooled.counters.as_dict()


class TestBroadcastOncePerWorker:
    def test_cache_loaded_exactly_once_per_worker(self):
        job = Job(
            name="bc",
            mapper=WordSplitMapper,
            reducer=SumReducer,
            num_reducers=4,
            cache={"blob": list(range(10_000))},
        )
        with MultiprocessEngine(max_workers=2) as engine:
            engine.run(job, records_from(LINES), num_map_tasks=12)
            stats = engine.stats
            # One localization per distinct worker that ran a task — never
            # once per task (12 map + 4 reduce tasks here).
            assert stats.jobs_broadcast == 1
            assert 1 <= stats.broadcast_loads <= 2
            assert stats.broadcast_loads == len(stats.worker_pids)
            assert stats.tasks_dispatched == 16

    def test_pool_persists_across_jobs(self):
        with MultiprocessEngine(max_workers=2) as engine:
            first_job = wordcount_job(name="first")
            second_job = wordcount_job(name="second")
            engine.run(first_job, records_from(LINES), num_map_tasks=6)
            pids_after_first = set(engine.stats.worker_pids)
            engine.run(second_job, records_from(LINES), num_map_tasks=6)
            assert engine.stats.pools_created == 1  # same pool, both jobs
            assert engine.stats.jobs_broadcast == 2  # one broadcast per job
            assert engine.stats.worker_pids == pids_after_first

    def test_specs_do_not_ship_the_cache(self):
        cache = {"blob": b"x" * 200_000}
        job = Job(
            name="slim-specs",
            mapper=WordSplitMapper,
            reducer=SumReducer,
            num_reducers=2,
            cache=cache,
        )
        with MultiprocessEngine(max_workers=2) as engine:
            engine.run(job, records_from(LINES), num_map_tasks=8)
            stats = engine.stats
            # The 200 KB cache appears once in the broadcast, and the task
            # specs together stay far below one cache copy per task.
            assert stats.broadcast_bytes >= 200_000
            assert stats.broadcast_bytes < 2 * 200_000
            assert stats.spec_bytes < 200_000


class TestStreamingShuffleAccounting:
    def test_shuffle_bytes_equal_map_output_bytes_without_combiner(self):
        serial, pooled = run_both(wordcount_job, records_from(LINES), num_map_tasks=4)
        for result in (serial, pooled):
            counters = result.counters
            assert counters.get(FRAMEWORK_GROUP, SHUFFLE_BYTES) == counters.get(
                FRAMEWORK_GROUP, MAP_OUTPUT_BYTES
            )
            assert counters.get(FRAMEWORK_GROUP, SHUFFLE_BYTES) > 0

    def test_declared_sizes_drive_shuffle_bytes(self):
        records = [(i, SizedPayload(1000, tag=i)) for i in range(8)]
        job = Job(name="sized", reducer=SumReducerLess, num_reducers=2)
        result = SerialEngine().run(job, records, num_map_tasks=2)
        counters = result.counters
        assert counters.get(FRAMEWORK_GROUP, SHUFFLE_RECORDS) == 8
        # 8 records × (8 B int key + 1000 B declared payload)
        assert counters.get(FRAMEWORK_GROUP, SHUFFLE_BYTES) == 8 * 1008


class SumReducerLess(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sum(v.size_bytes for v in values))


class TestSpillPath:
    def spill_job(self, threshold):
        return Job(
            name="spill",
            mapper=FanOutMapper,
            reducer=CollectReducer,
            num_reducers=2,
            config={"spill_threshold_bytes": threshold},
        )

    def test_spill_results_match_in_memory(self):
        records = [(i, SizedPayload(500, tag=i)) for i in range(40)]
        spilled = SerialEngine().run(self.spill_job(2000), records, num_map_tasks=4)
        in_memory = SerialEngine().run(
            self.spill_job(10**9), records, num_map_tasks=4
        )
        assert spilled.records == in_memory.records
        assert spilled.counters.get(FRAMEWORK_GROUP, REDUCE_SPILLED_RECORDS) > 0
        assert spilled.counters.get(FRAMEWORK_GROUP, REDUCE_SPILL_RUNS) > 0
        assert in_memory.counters.get(FRAMEWORK_GROUP, REDUCE_SPILLED_RECORDS) == 0

    def test_spill_bit_identical_across_engines(self):
        records = [(i, SizedPayload(500, tag=i)) for i in range(40)]
        serial = SerialEngine().run(self.spill_job(2000), records, num_map_tasks=4)
        with MultiprocessEngine(max_workers=2) as engine:
            pooled = engine.run(self.spill_job(2000), records, num_map_tasks=4)
        assert serial.records == pooled.records
        assert serial.counters.as_dict() == pooled.counters.as_dict()


class CollectReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sorted(v.tag for v in values))


class FailingMapper(Mapper):
    def map(self, key, value, context):
        raise RuntimeError("stage goes down")


class TestPoolReuseAfterFailure:
    """A failed job must not corrupt the persistent pool for the next one."""

    def test_pool_and_broadcast_survive_task_failed_error(self):
        from repro.mapreduce.job import TaskFailedError

        with MultiprocessEngine(max_workers=2) as engine:
            bad = Job(name="bad", mapper=FailingMapper, reducer=None, num_reducers=0)
            with pytest.raises(TaskFailedError):
                engine.run(bad, records_from(LINES), num_map_tasks=4)
            # Same pool, fresh broadcast: the next job's cache localizes
            # cleanly and produces correct output.
            good = Job(
                name="good",
                mapper=WordSplitMapper,
                reducer=SumReducer,
                num_reducers=3,
                cache={"blob": list(range(1000))},
            )
            pooled = engine.run(good, records_from(LINES), num_map_tasks=4)
            assert engine.stats.pools_created == 1
            assert engine.stats.jobs_broadcast == 2
        serial = SerialEngine().run(
            wordcount_job(cache={"blob": list(range(1000))}),
            records_from(LINES),
            num_map_tasks=4,
        )
        assert pooled.records == serial.records

    def test_pipeline_failure_names_stage_and_engine_stays_usable(self):
        from repro.mapreduce.job import TaskFailedError
        from repro.mapreduce.pipeline import Pipeline

        with MultiprocessEngine(max_workers=2) as engine:
            chain = Pipeline(
                [
                    wordcount_job(name="stage-0"),
                    Job(name="stage-1", mapper=FailingMapper, reducer=None, num_reducers=0),
                ],
                engine=engine,
            )
            with pytest.raises(TaskFailedError) as info:
                chain.run(records_from(LINES), num_map_tasks=4)
            assert info.value.stage_index == 1
            assert info.value.job_name == "stage-1"
            result = Pipeline([wordcount_job()], engine=engine).run(
                records_from(LINES), num_map_tasks=4
            )
        serial = SerialEngine().run(wordcount_job(), records_from(LINES), num_map_tasks=4)
        assert result.records == serial.records


class TestRecordsPerSplitConfig:
    def test_default_constant(self):
        records = records_from(["x"] * (DEFAULT_RECORDS_PER_SPLIT * 2))
        result = SerialEngine().run(wordcount_job(), records)
        assert result.num_map_tasks == 2

    def test_config_override(self):
        job = wordcount_job(config={"records_per_split": 3})
        result = SerialEngine().run(job, records_from(LINES))
        assert result.num_map_tasks == len(LINES) // 3

    def test_explicit_num_map_tasks_wins(self):
        job = wordcount_job(config={"records_per_split": 3})
        result = SerialEngine().run(job, records_from(LINES), num_map_tasks=2)
        assert result.num_map_tasks == 2

    def test_invalid_records_per_split(self):
        job = wordcount_job(config={"records_per_split": 0})
        with pytest.raises(ValueError, match="records_per_split"):
            SerialEngine().run(job, records_from(LINES))
