"""Range-partitioner (total order) tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.partitioners import RangePartitioner, is_globally_sorted
from repro.mapreduce.shuffle import partition_records


class TestRangePartitioner:
    def test_routing(self):
        part = RangePartitioner([10, 20])
        assert part.num_partitions == 3
        assert part(5, 3) == 0
        assert part(10, 3) == 1  # boundary goes right
        assert part(15, 3) == 1
        assert part(25, 3) == 2

    def test_rejects_unsorted_splits(self):
        with pytest.raises(ValueError):
            RangePartitioner([20, 10])

    def test_partition_count_must_match(self):
        part = RangePartitioner([10])
        with pytest.raises(ValueError):
            part(5, 3)

    def test_key_extractor(self):
        part = RangePartitioner([("b", 0)], key=lambda k: k[0])
        assert part(("a", 99), 2) == 0
        assert part(("c", 1), 2) == 1


class TestSampling:
    def test_roughly_even_partitions(self):
        rng = random.Random(1)
        keys = [rng.randrange(10_000) for _ in range(5_000)]
        part = RangePartitioner.from_sample(keys, 4, seed=7)
        records = [(k, None) for k in keys]
        partitions = partition_records(records, part.num_partitions, part)
        sizes = [len(p) for p in partitions]
        assert min(sizes) > len(keys) / 4 / 3  # within 3× of perfect

    def test_global_order_property(self):
        rng = random.Random(2)
        keys = [rng.randrange(100_000) for _ in range(2_000)]
        part = RangePartitioner.from_sample(keys, 5, seed=3)
        partitions = partition_records(
            [(k, None) for k in keys], part.num_partitions, part
        )
        assert is_globally_sorted([[k for k, _ in p] for p in partitions])

    def test_skewed_keys_keep_requested_partition_count(self):
        # Regression: dedupe used to shrink the split list, so a job built
        # for 8 reducers got a partitioner that raised when called with 8.
        keys = [7] * 100 + [9]
        part = RangePartitioner.from_sample(keys, 8, seed=0)
        assert part.num_partitions == 8
        for k in keys:
            assert 0 <= part(k, 8) < 8

    def test_skewed_sample_routes_all_keys_and_stays_ordered(self):
        # A sample dominated by one key leaves middle partitions empty but
        # must still route every key and preserve the global order.
        rng = random.Random(5)
        keys = [42] * 900 + [rng.randrange(1_000) for _ in range(100)]
        part = RangePartitioner.from_sample(keys, 6, seed=1)
        assert part.num_partitions == 6
        partitions = partition_records([(k, None) for k in keys], 6, part)
        assert sum(len(p) for p in partitions) == len(keys)
        assert is_globally_sorted([[k for k, _ in p] for p in partitions])

    def test_constant_sample_keeps_requested_partition_count(self):
        part = RangePartitioner.from_sample([3] * 50, 4, seed=0)
        assert part.num_partitions == 4
        assert part(3, 4) == 3  # bisect_right routes past every equal split
        assert part(2, 4) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RangePartitioner.from_sample([], 3)
        with pytest.raises(ValueError):
            RangePartitioner.from_sample([1], 0)

    def test_single_partition(self):
        part = RangePartitioner.from_sample([3, 1, 2], 1)
        assert part.num_partitions == 1
        assert part(99, 1) == 0


class TestGloballySorted:
    def test_accepts_ordered(self):
        assert is_globally_sorted([[1, 2], [3, 4], [5]])

    def test_rejects_overlap(self):
        assert not is_globally_sorted([[1, 5], [3, 4]])

    def test_empty_partitions_skipped(self):
        assert is_globally_sorted([[1], [], [2]])


@given(
    keys=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=500),
    parts=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=40, deadline=None)
def test_property_range_partitioning_is_totally_ordered(keys, parts):
    part = RangePartitioner.from_sample(keys, parts, seed=11)
    partitions = partition_records(
        [(k, None) for k in keys], part.num_partitions, part
    )
    assert sum(len(p) for p in partitions) == len(keys)
    assert is_globally_sorted([[k for k, _ in p] for p in partitions])
