"""Partitioning / sorting / grouping tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mapreduce.shuffle import (
    hash_partition,
    partition_records,
    sort_and_group,
    stable_hash,
)


class TestStableHash:
    def test_known_types_stable(self):
        """Same value → same hash, across calls (process-independence is
        guaranteed by construction: blake2b of a canonical encoding)."""
        for value in (0, 1, -17, 2**80, "key", b"raw", (1, "a"), True, False):
            assert stable_hash(value) == stable_hash(value)

    def test_true_is_not_one(self):
        """bool/int confusion would collapse keys True and 1."""
        assert stable_hash(True) != stable_hash(1)

    def test_distinct_values_spread(self):
        hashes = {stable_hash(i) for i in range(1000)}
        assert len(hashes) == 1000

    def test_negative_and_positive_differ(self):
        assert stable_hash(-5) != stable_hash(5)


class TestHashPartition:
    def test_range(self):
        for key in range(100):
            assert 0 <= hash_partition(key, 7) < 7

    def test_deterministic(self):
        assert hash_partition("x", 5) == hash_partition("x", 5)

    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            hash_partition(1, 0)

    @given(st.integers(min_value=1, max_value=64), st.integers())
    def test_always_in_range(self, n, key):
        assert 0 <= hash_partition(key, n) < n


class TestPartitionRecords:
    def test_all_records_kept(self):
        records = [(i % 5, i) for i in range(100)]
        parts = partition_records(records, 4)
        assert sum(len(p) for p in parts) == 100

    def test_same_key_same_partition(self):
        records = [(i % 5, i) for i in range(100)]
        parts = partition_records(records, 4)
        key_home = {}
        for index, part in enumerate(parts):
            for key, _value in part:
                assert key_home.setdefault(key, index) == index

    def test_custom_partitioner(self):
        parts = partition_records([(3, "a"), (4, "b")], 2, lambda k, n: k % n)
        assert parts[1] == [(3, "a")]
        assert parts[0] == [(4, "b")]

    def test_out_of_range_partitioner_rejected(self):
        with pytest.raises(ValueError):
            partition_records([(1, "a")], 2, lambda k, n: 5)


class TestSortAndGroup:
    def test_groups_in_key_order(self):
        records = [(2, "b1"), (1, "a1"), (2, "b2"), (1, "a2"), (3, "c")]
        groups = [(k, list(vs)) for k, vs in sort_and_group(records)]
        assert groups == [(1, ["a1", "a2"]), (2, ["b1", "b2"]), (3, ["c"])]

    def test_each_key_exactly_once(self):
        records = [(i % 7, i) for i in range(70)]
        keys = [k for k, _vs in sort_and_group(records)]
        assert keys == sorted(set(keys))

    def test_sort_key_proxy(self):
        """Non-comparable keys become sortable through the proxy."""
        records = [((2, "x"), 1), ((1, "y"), 2)]
        groups = list(sort_and_group(records, sort_key=lambda k: k[0]))
        assert [k for k, _ in groups] == [(1, "y"), (2, "x")]

    def test_equal_proxy_distinct_keys_stay_separate(self):
        records = [(("a", 1), "r1"), (("b", 1), "r2")]
        groups = [(k, list(vs)) for k, vs in sort_and_group(records, sort_key=lambda k: k[1])]
        assert len(groups) == 2

    def test_empty(self):
        assert list(sort_and_group([])) == []
