"""Fault injection, timeouts, recovery, and speculation tests.

The parity tests assert the ISSUE's acceptance criterion: with any
absorbable :class:`FaultPlan`, the :class:`MultiprocessEngine`'s results
are bit-identical to a fault-free :class:`SerialEngine` run.
"""

import time
from pathlib import Path

import pytest

from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.design import DesignScheme
from repro.core.element import results_matrix
from repro.core.pairwise import PairwiseComputation
from repro.mapreduce.counters import FRAMEWORK_GROUP
from repro.mapreduce.faults import (
    CrashFault,
    FaultPlan,
    InjectedCrash,
    InjectedWorkerDeath,
    PoisonedRecordError,
    PoisonFault,
    SlowFault,
    WorkerKillFault,
    _draw,
)
from repro.mapreduce.job import Job, Mapper, Reducer, TaskFailedError, TaskTimeoutError
from repro.mapreduce.runtime import (
    TASK_ATTEMPTS,
    TASK_RETRIES,
    TASKS_TIMED_OUT,
    MultiprocessEngine,
    SerialEngine,
    _backoff_seconds,
)


class SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sum(values))


class SleepOnceMapper(Mapper):
    """Sleeps on the first attempt only (flag file survives attempts)."""

    def map(self, key, value, context):
        flag = Path(context.config["flag"])
        if not flag.exists():
            flag.write_text("slept")
            time.sleep(context.config["sleep_seconds"])
        context.emit(key, value)


def product(a, b):
    return a * b


RECORDS = [(i % 4, i) for i in range(16)]


def fault_job(plan, *, max_attempts=2, **config):
    config = {"fault_plan": plan, **config}
    return Job(
        name="faulty",
        reducer=SumReducer,
        num_reducers=2,
        config=config,
        max_attempts=max_attempts,
    )


def clean_run():
    return SerialEngine().run(
        Job(name="clean", reducer=SumReducer, num_reducers=2),
        RECORDS,
        num_map_tasks=4,
    )


class TestFaultPlan:
    def test_draw_is_deterministic_and_uniformish(self):
        assert _draw(7, "map", 3, "crash") == _draw(7, "map", 3, "crash")
        assert _draw(7, "map", 3, "crash") != _draw(8, "map", 3, "crash")
        draws = [_draw(0, "map", i, "crash") for i in range(200)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 0.3 < sum(draws) / len(draws) < 0.7

    def test_selectors(self):
        fault = CrashFault(task_kind="map", task_index=2, attempts=(1,))
        assert fault.applies("map", 2, 1, False)
        assert not fault.applies("reduce", 2, 1, False)
        assert not fault.applies("map", 3, 1, False)
        assert not fault.applies("map", 2, 2, False)
        assert not fault.applies("map", 2, 1, True)  # speculative skipped

    def test_affects_speculative_opt_in(self):
        fault = CrashFault(affects_speculative=True)
        assert fault.applies("map", 0, 1, True)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(slow_seconds=-1)

    def test_rates_only_fire_on_first_attempt(self):
        plan = FaultPlan(crash_rate=1.0)
        with pytest.raises(InjectedCrash):
            plan.fire("map", 0, 1)
        plan.fire("map", 0, 2)  # retries run clean
        plan.fire("map", 0, 1, speculative=True)  # backups run clean

    def test_describe_mentions_rates(self):
        text = FaultPlan(crash_rate=0.25, seed=3).describe()
        assert "crash_rate=0.25" in text and "seed=3" in text


class TestSerialInjection:
    def test_crash_absorbed_by_retry_budget(self):
        plan = FaultPlan(faults=[CrashFault(task_kind="map", task_index=1)])
        result = SerialEngine().run(fault_job(plan), RECORDS, num_map_tasks=4)
        assert result.records == clean_run().records
        assert result.counters.get(FRAMEWORK_GROUP, TASK_RETRIES) == 1
        # 4 map + 2 reduce tasks, one of which took two attempts.
        assert result.counters.get(FRAMEWORK_GROUP, TASK_ATTEMPTS) == 7

    def test_crash_rate_absorbed(self):
        plan = FaultPlan(crash_rate=0.5, seed=11)
        result = SerialEngine().run(fault_job(plan), RECORDS, num_map_tasks=4)
        assert result.records == clean_run().records

    def test_poisoned_record_retryable(self):
        plan = FaultPlan(
            faults=[PoisonFault(task_kind="map", task_index=0, record_index=2)]
        )
        result = SerialEngine().run(fault_job(plan), RECORDS, num_map_tasks=4)
        assert result.records == clean_run().records

    def test_poison_without_retries_fails(self):
        plan = FaultPlan(faults=[PoisonFault(task_kind="map", task_index=0)])
        with pytest.raises(TaskFailedError) as info:
            SerialEngine().run(fault_job(plan, max_attempts=1), RECORDS, num_map_tasks=4)
        assert isinstance(info.value.cause, PoisonedRecordError)

    def test_worker_kill_degrades_to_failure_in_process(self):
        plan = FaultPlan(faults=[WorkerKillFault(task_kind="reduce", task_index=1)])
        result = SerialEngine().run(fault_job(plan), RECORDS, num_map_tasks=4)
        assert result.records == clean_run().records
        assert result.counters.get(FRAMEWORK_GROUP, TASK_RETRIES) == 1

    def test_permanent_fault_exhausts_attempts(self):
        plan = FaultPlan(faults=[CrashFault(task_kind="map", attempts=None)])
        with pytest.raises(TaskFailedError) as info:
            SerialEngine().run(fault_job(plan), RECORDS, num_map_tasks=4)
        assert isinstance(info.value.cause, InjectedCrash)
        assert len(info.value.causes) == 2


class TestTimeouts:
    def test_slow_attempt_fails_post_hoc_and_retries(self, tmp_path):
        job = Job(
            name="slow",
            mapper=SleepOnceMapper,
            reducer=SumReducer,
            num_reducers=1,
            config={
                "flag": str(tmp_path / "flag"),
                "sleep_seconds": 0.2,
                "task_timeout_seconds": 0.05,
            },
            max_attempts=2,
        )
        result = SerialEngine().run(job, RECORDS[:4], num_map_tasks=1)
        assert result.counters.get(FRAMEWORK_GROUP, TASKS_TIMED_OUT) == 1
        assert result.counters.get(FRAMEWORK_GROUP, TASK_RETRIES) == 1

    def test_injected_slow_fault_counts_as_attempt_time(self):
        plan = FaultPlan(faults=[SlowFault(task_kind="map", task_index=0, seconds=0.2)])
        result = SerialEngine().run(
            fault_job(plan, task_timeout_seconds=0.05),
            RECORDS,
            num_map_tasks=4,
        )
        assert result.records == clean_run().records
        assert result.counters.get(FRAMEWORK_GROUP, TASKS_TIMED_OUT) == 1

    def test_timeout_exhaustion_raises_timeout_cause(self):
        plan = FaultPlan(
            faults=[SlowFault(task_kind="map", task_index=0, seconds=0.1, attempts=None)]
        )
        with pytest.raises(TaskFailedError) as info:
            SerialEngine().run(
                fault_job(plan, task_timeout_seconds=0.02),
                RECORDS,
                num_map_tasks=4,
            )
        assert isinstance(info.value.cause, TaskTimeoutError)


class TestBackoff:
    def test_deterministic_and_growing(self):
        first = _backoff_seconds(0.1, "map", 3, 2)
        assert first == _backoff_seconds(0.1, "map", 3, 2)
        assert 0.05 <= first <= 0.1
        later = _backoff_seconds(0.1, "map", 3, 4)
        assert 0.2 <= later <= 0.4

    def test_backoff_job_still_recovers(self):
        plan = FaultPlan(faults=[CrashFault(task_kind="map", task_index=2)])
        result = SerialEngine().run(
            fault_job(plan, retry_backoff_seconds=0.01),
            RECORDS,
            num_map_tasks=4,
        )
        assert result.records == clean_run().records


SCHEMES = [
    BroadcastScheme(12, 4),
    BlockScheme(12, 3),
    DesignScheme(13),
]


class TestEngineParityUnderFaults:
    """Absorbable plans leave pooled results bit-identical to fault-free serial."""

    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
    def test_pairwise_parity_with_crash_rate(self, scheme):
        dataset = list(range(1, scheme.v + 1))
        baseline = PairwiseComputation(scheme, product).run(dataset)
        plan = FaultPlan(crash_rate=0.4, seed=5)
        with MultiprocessEngine(max_workers=2) as engine:
            faulty = PairwiseComputation(
                scheme,
                product,
                engine=engine,
                runtime_config={"fault_plan": plan},
                max_attempts=3,
            ).run(dataset)
        assert results_matrix(faulty) == results_matrix(baseline)

    def test_counter_parity_between_engines_same_plan(self):
        plan = FaultPlan(faults=[CrashFault(task_kind="map", task_index=1)])
        serial = SerialEngine().run(fault_job(plan), RECORDS, num_map_tasks=4)
        with MultiprocessEngine(max_workers=2) as engine:
            pooled = engine.run(fault_job(plan), RECORDS, num_map_tasks=4)
        assert serial.records == pooled.records
        assert serial.counters.as_dict() == pooled.counters.as_dict()


@pytest.mark.faults
class TestWorkerDeathRecovery:
    def test_injected_worker_kill_recovered(self):
        plan = FaultPlan(faults=[WorkerKillFault(task_kind="map", task_index=1)])
        with MultiprocessEngine(max_workers=2) as engine:
            result = engine.run(fault_job(plan), RECORDS, num_map_tasks=4)
            assert result.records == clean_run().records
            assert engine.stats.pool_restarts >= 1
            assert engine.stats.tasks_relaunched >= 1
        # The lost attempt is charged in job counters like a worker-side
        # retry would be (same counter parity as the serial degradation).
        assert result.counters.get(FRAMEWORK_GROUP, TASK_RETRIES) >= 1

    def test_kill_without_retry_budget_fails(self):
        plan = FaultPlan(faults=[WorkerKillFault(task_kind="map", task_index=0)])
        with MultiprocessEngine(max_workers=2) as engine:
            with pytest.raises(TaskFailedError):
                engine.run(fault_job(plan, max_attempts=1), RECORDS, num_map_tasks=4)

    def test_pool_usable_after_recovery(self):
        plan = FaultPlan(faults=[WorkerKillFault(task_kind="map", task_index=0)])
        with MultiprocessEngine(max_workers=2) as engine:
            engine.run(fault_job(plan), RECORDS, num_map_tasks=4)
            clean = engine.run(
                Job(name="after", reducer=SumReducer, num_reducers=2),
                RECORDS,
                num_map_tasks=4,
            )
            assert clean.records == clean_run().records


@pytest.mark.faults
class TestDriverHangKill:
    def test_hung_attempt_killed_and_rerun(self, tmp_path):
        job = Job(
            name="hang",
            mapper=SleepOnceMapper,
            reducer=SumReducer,
            num_reducers=1,
            config={
                "flag": str(tmp_path / "flag"),
                "sleep_seconds": 30.0,
                "task_timeout_seconds": 0.2,
            },
            max_attempts=2,
        )
        with MultiprocessEngine(max_workers=2) as engine:
            result = engine.run(job, RECORDS[:4], num_map_tasks=1)
            assert engine.stats.tasks_timed_out >= 1
            assert engine.stats.pool_restarts >= 1
        expected = SerialEngine().run(
            Job(name="ref", reducer=SumReducer, num_reducers=1),
            RECORDS[:4],
            num_map_tasks=1,
        )
        assert result.records == expected.records


@pytest.mark.faults
class TestSpeculativeExecution:
    def test_backup_attempt_beats_injected_straggler(self):
        plan = FaultPlan(
            faults=[SlowFault(task_kind="map", task_index=3, seconds=0.5)]
        )
        job = fault_job(
            plan,
            max_attempts=1,
            speculative_execution=True,
            speculative_multiplier=1.5,
            speculative_fraction=1.0,
        )
        with MultiprocessEngine(max_workers=2) as engine:
            result = engine.run(job, RECORDS, num_map_tasks=4)
            assert result.records == clean_run().records
            assert engine.stats.speculative_launched >= 1
            assert engine.stats.speculative_wasted >= 1

    def test_speculation_off_by_default(self):
        with MultiprocessEngine(max_workers=2) as engine:
            engine.run(fault_job(FaultPlan()), RECORDS, num_map_tasks=4)
            assert engine.stats.speculative_launched == 0
