"""Picklable workload for the durable-journal tests and benchmarks.

Journal resume reloads the job spec pickle in a *different* driver
process, so every class the spec references must be importable under a
stable module path — which is why this lives in a module instead of the
test file's function bodies (``python -c`` children import it the same
way; ``python -m`` would rebrand it ``__main__`` and break unpickling).

``main`` is the subprocess entry point used by the SIGKILL tests: it
runs one journaled job to completion and prints the sorted result.  The
parent kills it mid-map (watching the journal for progress), then calls
``resume_job`` on the same directory in-process.
"""

from __future__ import annotations

import json
import sys
import time

from repro.mapreduce import Job, Mapper, MultiprocessEngine, Reducer

NUM_RECORDS = 96
NUM_MAP_TASKS = 8
NUM_REDUCERS = 4


class SpreadMapper(Mapper):
    """Fan each record out to a key group; optionally sleep per task.

    ``config["sleep_per_task"]`` slows every map task down so a parent
    process has a deterministic window to SIGKILL the driver mid-phase.
    """

    def map(self, key, value, context):
        sleep = context.config.get("sleep_per_task", 0.0)
        if sleep:
            time.sleep(sleep / max(1, NUM_RECORDS // NUM_MAP_TASKS))
        context.emit(key % 12, value * 3 + 1)


class SumReducer(Reducer):
    def reduce(self, key, values, context):
        values = list(values)
        context.emit(key, (len(values), sum(values)))


class GatedReducer(SumReducer):
    """Fails every attempt until ``config["gate_path"]`` exists.

    Lets a test abandon a journaled job after its map phase completed
    (reduce fails, the driver survives), then open the gate and resume.
    """

    def reduce(self, key, values, context):
        import os

        gate = context.config.get("gate_path")
        if gate and not os.path.exists(gate):
            raise RuntimeError(f"gate closed: {gate}")
        super().reduce(key, values, context)


def make_records():
    return [(i, i) for i in range(NUM_RECORDS)]


def make_job(*, sleep_per_task=0.0, gate_path=None, max_attempts=1, name="journaled"):
    config = {}
    if sleep_per_task:
        config["sleep_per_task"] = sleep_per_task
    if gate_path is not None:
        config["gate_path"] = str(gate_path)
    return Job(
        name=name,
        mapper=SpreadMapper,
        reducer=GatedReducer if gate_path is not None else SumReducer,
        num_reducers=NUM_REDUCERS,
        max_attempts=max_attempts,
        config=config,
    )


def run_journaled(journal_dir, *, max_workers=2, **job_kwargs):
    """One full journaled run; returns the JobResult."""
    engine = MultiprocessEngine(max_workers=max_workers, journal_dir=journal_dir)
    try:
        return engine.run(
            make_job(**job_kwargs), make_records(), num_map_tasks=NUM_MAP_TASKS
        )
    finally:
        engine.close()


def main(argv):
    """Subprocess entry: run one journaled job, print the sorted records."""
    journal_dir = argv[0]
    sleep = float(argv[1]) if len(argv) > 1 else 0.0
    result = run_journaled(journal_dir, sleep_per_task=sleep)
    print(json.dumps(sorted(result.records)))


if __name__ == "__main__":  # pragma: no cover - subprocess helper
    main(sys.argv[1:])
