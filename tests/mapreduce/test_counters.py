"""Counter tests."""

from repro.mapreduce.counters import Counters


class TestCounters:
    def test_increment_and_get(self):
        c = Counters()
        c.increment("app", "pairs", 3)
        c.increment("app", "pairs")
        assert c.get("app", "pairs") == 4

    def test_unknown_counter_is_zero(self):
        assert Counters().get("nope", "nothing") == 0

    def test_negative_increment(self):
        c = Counters()
        c.increment("g", "n", 10)
        c.increment("g", "n", -4)
        assert c.get("g", "n") == 6

    def test_group_snapshot(self):
        c = Counters()
        c.increment("g", "a", 1)
        c.increment("g", "b", 2)
        snapshot = c.group("g")
        assert snapshot == {"a": 1, "b": 2}
        snapshot["a"] = 99  # mutating the snapshot must not affect the counters
        assert c.get("g", "a") == 1

    def test_merge(self):
        a, b = Counters(), Counters()
        a.increment("g", "x", 1)
        b.increment("g", "x", 2)
        b.increment("h", "y", 5)
        a.merge(b)
        assert a.get("g", "x") == 3
        assert a.get("h", "y") == 5

    def test_items_sorted(self):
        c = Counters()
        c.increment("b", "z", 1)
        c.increment("a", "y", 2)
        c.increment("a", "x", 3)
        assert list(c.items()) == [("a", "x", 3), ("a", "y", 2), ("b", "z", 1)]

    def test_dict_roundtrip(self):
        c = Counters()
        c.increment("g", "x", 7)
        c.increment("h", "y", 9)
        restored = Counters.from_dict(c.as_dict())
        assert list(restored.items()) == list(c.items())


class TestGauges:
    def test_set_max_keeps_maximum(self):
        c = Counters()
        c.set_max("g", "max_ws", 10)
        c.set_max("g", "max_ws", 5)
        assert c.get("g", "max_ws") == 10
        c.set_max("g", "max_ws", 20)
        assert c.get("g", "max_ws") == 20

    def test_gauge_name_enforced(self):
        import pytest

        with pytest.raises(ValueError):
            Counters().set_max("g", "ws", 1)

    def test_merge_takes_max_for_gauges(self):
        a, b = Counters(), Counters()
        a.set_max("g", "max_ws", 10)
        b.set_max("g", "max_ws", 30)
        a.increment("g", "records", 5)
        b.increment("g", "records", 7)
        a.merge(b)
        assert a.get("g", "max_ws") == 30  # max, not 40
        assert a.get("g", "records") == 12  # sum as usual
