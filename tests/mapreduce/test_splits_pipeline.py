"""Split planning and pipeline chaining tests."""

import pytest

from repro.mapreduce.job import Job, Mapper, Reducer, records_from
from repro.mapreduce.pipeline import Pipeline
from repro.mapreduce.runtime import SerialEngine
from repro.mapreduce.splits import (
    Split,
    assign_round_robin,
    split_by_count,
    split_by_size,
)


class TestSplitByCount:
    def test_near_equal_sizes(self):
        splits = split_by_count(list(range(10)), 3)
        assert [len(s) for s in splits] == [4, 3, 3]

    def test_preserves_order(self):
        splits = split_by_count([(i, i) for i in range(10)], 3)
        flat = [r for s in splits for r in s.records]
        assert flat == [(i, i) for i in range(10)]

    def test_more_splits_than_records(self):
        splits = split_by_count([(1, "a")], 5)
        assert len(splits) == 5
        assert sum(len(s) for s in splits) == 1

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            split_by_count([], 0)


class TestSplitBySize:
    def test_max_respected(self):
        splits = split_by_size([(i, i) for i in range(10)], 4)
        assert all(len(s) <= 4 for s in splits)
        assert sum(len(s) for s in splits) == 10

    def test_empty_input(self):
        assert len(split_by_size([], 5)) == 1

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            split_by_size([], 0)


class TestPlacement:
    def test_round_robin(self):
        splits = [Split(records=[]) for _ in range(7)]
        assign_round_robin(splits, 3)
        assert [s.location for s in splits] == [0, 1, 2, 0, 1, 2, 0]

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            assign_round_robin([], 0)


class DoubleMapper(Mapper):
    def map(self, key, value, context):
        context.emit(key, value * 2)


class SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sum(values))


class TestPipeline:
    def test_two_stage_chain(self):
        """Stage 1 doubles, stage 2 doubles again — composition works."""
        jobs = [
            Job(name="double1", mapper=DoubleMapper, reducer=SumReducer),
            Job(name="double2", mapper=DoubleMapper, reducer=SumReducer),
        ]
        result = Pipeline(jobs, engine=SerialEngine()).run([(1, 5), (2, 7)])
        assert dict(result.records) == {1: 20, 2: 28}

    def test_stage_results_retained(self):
        jobs = [
            Job(name="a", mapper=DoubleMapper, reducer=SumReducer),
            Job(name="b", mapper=DoubleMapper, reducer=SumReducer),
        ]
        result = Pipeline(jobs).run([(1, 5)])
        assert len(result.stages) == 2
        assert dict(result.stages[0].records) == {1: 10}

    def test_counters_merged_across_stages(self):
        jobs = [
            Job(name="a", mapper=DoubleMapper, reducer=SumReducer),
            Job(name="b", mapper=DoubleMapper, reducer=SumReducer),
        ]
        result = Pipeline(jobs).run([(1, 5)])
        from repro.mapreduce.counters import FRAMEWORK_GROUP, MAP_INPUT_RECORDS

        assert result.counters.get(FRAMEWORK_GROUP, MAP_INPUT_RECORDS) == 2

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_empty_result_access(self):
        from repro.mapreduce.pipeline import PipelineResult

        with pytest.raises(ValueError):
            PipelineResult().records


class TestJobResultHelpers:
    def test_as_dict_rejects_duplicate_keys(self):
        job = Job(name="dup", mapper=DoubleMapper, reducer=None, num_reducers=0)
        result = SerialEngine().run(job, [(1, 1), (1, 2)])
        with pytest.raises(ValueError):
            result.as_dict()

    def test_values(self):
        assert records_from(["x", "y"]) == [(0, "x"), (1, "y")]
