"""DFS block-placement model tests."""

import pytest

from repro._util import MB
from repro.mapreduce.hdfs import DistributedFileSystem


def make_fs(**kwargs):
    defaults = dict(num_nodes=4, block_size=64 * MB, replication=3, seed=42)
    defaults.update(kwargs)
    return DistributedFileSystem(**defaults)


class TestCreate:
    def test_block_count(self):
        fs = make_fs()
        entry = fs.create("data", 200 * MB)  # 4 blocks: 64+64+64+8
        assert entry.num_blocks == 4

    def test_empty_file(self):
        fs = make_fs()
        entry = fs.create("empty", 0)
        assert entry.num_blocks == 0

    def test_duplicate_name_rejected(self):
        fs = make_fs()
        fs.create("a", 10)
        with pytest.raises(FileExistsError):
            fs.create("a", 10)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            make_fs().create("bad", -1)

    def test_replication_capped_at_nodes(self):
        fs = make_fs(num_nodes=2, replication=5)
        entry = fs.create("a", 10)
        assert len(entry.placements[0]) == 2

    def test_replicas_distinct_nodes(self):
        fs = make_fs()
        entry = fs.create("a", 500 * MB)
        for replicas in entry.placements:
            assert len(replicas) == len(set(replicas)) == 3


class TestBlockSizes:
    def test_last_block_short(self):
        fs = make_fs()
        fs.create("a", 100 * MB)  # 64 + 36
        assert fs.block_size_of("a", 0) == 64 * MB
        assert fs.block_size_of("a", 1) == 36 * MB

    def test_out_of_range(self):
        fs = make_fs()
        fs.create("a", 10)
        with pytest.raises(IndexError):
            fs.block_size_of("a", 1)


class TestReads:
    def test_read_cost_partition(self):
        fs = make_fs()
        fs.create("a", 300 * MB)
        local, remote = fs.read_cost("a", reader_node=0)
        assert local + remote == 300 * MB

    def test_full_replication_always_local(self):
        fs = make_fs(num_nodes=3, replication=3)
        fs.create("a", 200 * MB)
        for node in range(3):
            local, remote = fs.read_cost("a", node)
            assert remote == 0

    def test_missing_file(self):
        with pytest.raises(FileNotFoundError):
            make_fs().read_cost("ghost", 0)


class TestAccounting:
    def test_used_bytes_counts_replicas(self):
        fs = make_fs(replication=3)
        fs.create("a", 100 * MB)
        assert fs.used_bytes() == 300 * MB

    def test_per_node_sums_to_total(self):
        fs = make_fs()
        fs.create("a", 500 * MB)
        fs.create("b", 130 * MB)
        assert sum(fs.used_bytes(n) for n in range(4)) == fs.used_bytes()

    def test_delete_frees(self):
        fs = make_fs()
        fs.create("a", 100 * MB)
        fs.delete("a")
        assert fs.used_bytes() == 0
        assert not fs.exists("a")
        with pytest.raises(FileNotFoundError):
            fs.delete("a")

    def test_locations_enumerate_replicas(self):
        fs = make_fs()
        fs.create("a", 100 * MB)  # 2 blocks × 3 replicas
        assert len(fs.locations("a")) == 6

    def test_deterministic_placement(self):
        a = make_fs(seed=7)
        b = make_fs(seed=7)
        a.create("x", 500 * MB)
        b.create("x", 500 * MB)
        assert a.entry("x").placements == b.entry("x").placements

    def test_files_listing(self):
        fs = make_fs()
        fs.create("b", 1)
        fs.create("a", 1)
        assert fs.files() == ["a", "b"]

    def test_primaries_rotate(self):
        fs = make_fs(num_nodes=4)
        entry = fs.create("a", 256 * MB)  # 4 blocks
        primaries = [replicas[0] for replicas in entry.placements]
        assert primaries == [0, 1, 2, 3]
