"""Job/engine tests: the classic MR contract (wordcount et al.)."""

import pytest

from repro.mapreduce.counters import (
    FRAMEWORK_GROUP,
    MAP_INPUT_RECORDS,
    MAP_OUTPUT_RECORDS,
    REDUCE_INPUT_GROUPS,
    SHUFFLE_BYTES,
    SHUFFLE_RECORDS,
)
from repro.mapreduce.job import (
    Context,
    IdentityMapper,
    Job,
    Mapper,
    Reducer,
    records_from,
)
from repro.mapreduce.runtime import (
    AUTO_SERIAL_MAX_RECORDS,
    Engine,
    MultiprocessEngine,
    SerialEngine,
)
from repro.mapreduce.splits import split_by_count


class WordSplitMapper(Mapper):
    def map(self, key, value, context):
        for word in value.split():
            context.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sum(values))


class SetupCleanupMapper(Mapper):
    """Counts lifecycle hooks through counters."""

    def setup(self, context):
        context.counters.increment("lifecycle", "setup")

    def map(self, key, value, context):
        context.emit(key, value)

    def cleanup(self, context):
        context.counters.increment("lifecycle", "cleanup")


class CacheReadingMapper(Mapper):
    def map(self, key, value, context):
        factor = context.cache_file("factor")
        context.emit(key, value * factor)


LINES = [
    "the quick brown fox",
    "the lazy dog",
    "the fox jumps over the lazy dog",
]
EXPECTED_COUNTS = {
    "the": 4, "quick": 1, "brown": 1, "fox": 2, "lazy": 2,
    "dog": 2, "jumps": 1, "over": 1,
}


def wordcount_job(num_reducers=3, combiner=None):
    return Job(
        name="wordcount",
        mapper=WordSplitMapper,
        reducer=SumReducer,
        combiner=combiner,
        num_reducers=num_reducers,
    )


class TestWordCount:
    def test_serial(self):
        result = SerialEngine().run(wordcount_job(), records_from(LINES))
        assert result.as_dict() == EXPECTED_COUNTS

    def test_multiprocess_matches_serial(self):
        serial = SerialEngine().run(
            wordcount_job(), records_from(LINES), num_map_tasks=3
        )
        parallel = MultiprocessEngine(max_workers=2).run(
            wordcount_job(), records_from(LINES), num_map_tasks=3
        )
        assert dict(serial.records) == dict(parallel.records)
        # Framework counters agree too (same record movement).
        assert serial.counters.get(FRAMEWORK_GROUP, SHUFFLE_RECORDS) == \
            parallel.counters.get(FRAMEWORK_GROUP, SHUFFLE_RECORDS)

    def test_combiner_shrinks_shuffle(self):
        plain = SerialEngine().run(
            wordcount_job(), records_from(LINES), num_map_tasks=1
        )
        combined = SerialEngine().run(
            wordcount_job(combiner=SumReducer), records_from(LINES), num_map_tasks=1
        )
        assert dict(combined.records) == EXPECTED_COUNTS
        assert combined.counters.get(FRAMEWORK_GROUP, SHUFFLE_RECORDS) < \
            plain.counters.get(FRAMEWORK_GROUP, SHUFFLE_RECORDS)

    def test_single_reducer(self):
        result = SerialEngine().run(wordcount_job(num_reducers=1), records_from(LINES))
        assert result.as_dict() == EXPECTED_COUNTS

    def test_many_reducers(self):
        result = SerialEngine().run(wordcount_job(num_reducers=16), records_from(LINES))
        assert result.as_dict() == EXPECTED_COUNTS
        assert result.num_reduce_tasks == 16


class TestCounters:
    def test_framework_counter_values(self):
        result = SerialEngine().run(
            wordcount_job(), records_from(LINES), num_map_tasks=2
        )
        c = result.counters
        assert c.get(FRAMEWORK_GROUP, MAP_INPUT_RECORDS) == 3
        assert c.get(FRAMEWORK_GROUP, MAP_OUTPUT_RECORDS) == 14  # total words
        assert c.get(FRAMEWORK_GROUP, SHUFFLE_RECORDS) == 14
        assert c.get(FRAMEWORK_GROUP, REDUCE_INPUT_GROUPS) == len(EXPECTED_COUNTS)
        assert c.get(FRAMEWORK_GROUP, SHUFFLE_BYTES) > 0

    def test_lifecycle_hooks_once_per_task(self):
        job = Job(name="lc", mapper=SetupCleanupMapper, reducer=SumReducer)
        records = [(i, i) for i in range(6)]
        result = SerialEngine().run(job, records, num_map_tasks=3)
        assert result.counters.get("lifecycle", "setup") == 3
        assert result.counters.get("lifecycle", "cleanup") == 3


class TestJobValidation:
    def test_map_only_requires_no_reducer(self):
        with pytest.raises(ValueError):
            Job(name="bad", num_reducers=0)  # default reducer present

    def test_combiner_without_reducer_rejected(self):
        with pytest.raises(ValueError):
            Job(name="bad", reducer=None, num_reducers=0, combiner=SumReducer)

    def test_negative_reducers_rejected(self):
        with pytest.raises(ValueError):
            Job(name="bad", num_reducers=-1)


class TestMapOnly:
    def test_map_only_passthrough(self):
        job = Job(name="m", mapper=WordSplitMapper, reducer=None, num_reducers=0)
        result = SerialEngine().run(job, records_from(LINES))
        assert result.num_reduce_tasks == 0
        assert sorted(result.records)[0] == ("brown", 1)
        assert len(result.records) == 14


class FirstValueReducer(Reducer):
    """Emits only the first value per group — order-sensitive on purpose."""

    def reduce(self, key, values, context):
        context.emit(key, next(iter(values)))


class TestSecondarySort:
    def test_values_ordered_within_group(self):
        job = Job(
            name="secondary",
            reducer=FirstValueReducer,
            value_sort_key=lambda v: v,
        )
        records = [("k", 9), ("k", 1), ("k", 5), ("x", 3), ("x", 2)]
        result = SerialEngine().run(job, records, num_map_tasks=2)
        assert dict(result.records) == {"k": 1, "x": 2}

    def test_descending_order(self):
        job = Job(
            name="secondary-desc",
            reducer=FirstValueReducer,
            value_sort_key=lambda v: -v,
        )
        result = SerialEngine().run(job, [("k", 1), ("k", 7)], num_map_tasks=1)
        assert result.as_dict() == {"k": 7}

    def test_without_value_sort_order_is_arrival(self):
        job = Job(name="plain", reducer=FirstValueReducer)
        result = SerialEngine().run(job, [("k", 9), ("k", 1)], num_map_tasks=1)
        assert result.as_dict() == {"k": 9}


class TestDistributedCache:
    def test_cache_available_in_tasks(self):
        job = Job(
            name="cached",
            mapper=CacheReadingMapper,
            reducer=SumReducer,
            cache={"factor": 10},
        )
        result = SerialEngine().run(job, [(1, 1), (1, 2), (2, 3)])
        assert result.as_dict() == {1: 30, 2: 30}

    def test_missing_cache_entry_raises_keyerror(self):
        context = Context(counters=None, cache={"a": 1})
        with pytest.raises(KeyError, match="available"):
            context.cache_file("b")


class TestEngineInput:
    def test_requires_exactly_one_input_form(self):
        engine = SerialEngine()
        with pytest.raises(ValueError):
            engine.run(wordcount_job())
        with pytest.raises(ValueError):
            engine.run(
                wordcount_job(),
                records_from(LINES),
                splits=split_by_count(records_from(LINES), 2),
            )

    def test_prebuilt_splits(self):
        engine = SerialEngine()
        result = engine.run(
            wordcount_job(), splits=split_by_count(records_from(LINES), 2)
        )
        assert result.as_dict() == EXPECTED_COUNTS
        assert result.num_map_tasks == 2

    def test_identity_defaults(self):
        job = Job(name="id", mapper=IdentityMapper)
        result = SerialEngine().run(job, [(1, "a"), (2, "b")])
        assert sorted(result.records) == [(1, "a"), (2, "b")]

    def test_multiprocess_bad_workers(self):
        with pytest.raises(ValueError):
            MultiprocessEngine(max_workers=0)


class TestEngineAuto:
    def test_small_workload_serial(self):
        assert isinstance(Engine.auto(100), SerialEngine)

    def test_unknown_workload_serial(self):
        assert isinstance(Engine.auto(), SerialEngine)
        assert isinstance(Engine.auto(None), SerialEngine)

    def test_large_workload_pooled(self):
        engine = Engine.auto(AUTO_SERIAL_MAX_RECORDS, max_workers=2)
        try:
            assert isinstance(engine, MultiprocessEngine)
        finally:
            engine.close()

    def test_threshold_override(self):
        assert isinstance(Engine.auto(50, serial_below=10_000), SerialEngine)
        engine = Engine.auto(50, max_workers=2, serial_below=10)
        try:
            assert isinstance(engine, MultiprocessEngine)
        finally:
            engine.close()

    def test_negative_hint_rejected(self):
        with pytest.raises(ValueError):
            Engine.auto(-1)
