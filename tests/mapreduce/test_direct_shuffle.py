"""Direct (driver-bypass) spill-file shuffle: parity, metering, faults.

The acceptance bar: the direct plane must be bit-identical to both the
serial engine and the legacy relay plane — same records, same counters —
including when reduce attempts are retried mid-merge, and the driver must
stop touching record payloads (``EngineStats.driver_bytes`` collapses to
manifest size).
"""

import os

import pytest

from repro.core.block import BlockScheme
from repro.core.design import DesignScheme
from repro.core.pairwise import PairwiseComputation
from repro.mapreduce.counters import FRAMEWORK_GROUP
from repro.mapreduce.faults import CrashFault, FaultPlan, WorkerKillFault
from repro.mapreduce.job import Job, Mapper, Reducer, records_from
from repro.mapreduce.runtime import (
    REDUCE_SPILL_RUNS,
    REDUCE_SPILLED_RECORDS,
    SHUFFLE_MODES,
    MultiprocessEngine,
    SerialEngine,
)
from repro.mapreduce.serialization import SizedPayload


class WordSplitMapper(Mapper):
    def map(self, key, value, context):
        for word in value.split():
            context.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sum(values))


class FanOutMapper(Mapper):
    """Emit several keyed records per input so every partition gets data."""

    def map(self, key, value, context):
        for offset in range(4):
            context.emit((key + offset) % 8, value)


class CollectReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sorted(v.tag for v in values))


class ByteLenReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sum(len(v) for v in values))


LINES = [
    "the quick brown fox",
    "the lazy dog",
    "the fox jumps over the lazy dog",
] * 4


def wordcount_job(**overrides):
    settings = dict(
        name="wordcount",
        mapper=WordSplitMapper,
        reducer=SumReducer,
        num_reducers=3,
    )
    settings.update(overrides)
    return Job(**settings)


def abs_distance(a, b):
    return abs(a - b)


class TestShuffleModeKnob:
    def test_direct_is_the_default(self):
        with MultiprocessEngine(max_workers=2) as engine:
            assert engine.shuffle_mode == "direct"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="shuffle_mode"):
            MultiprocessEngine(max_workers=2, shuffle_mode="carrier-pigeon")

    def test_modes_constant(self):
        assert set(SHUFFLE_MODES) == {"direct", "relay"}


class TestBitIdenticalAcrossPlanes:
    def run_all_planes(self, job_factory, records, **kwargs):
        serial = SerialEngine().run(job_factory(), records, **kwargs)
        with MultiprocessEngine(max_workers=2, shuffle_mode="relay") as engine:
            relay = engine.run(job_factory(), records, **kwargs)
        with MultiprocessEngine(max_workers=2, shuffle_mode="direct") as engine:
            direct = engine.run(job_factory(), records, **kwargs)
        return serial, relay, direct

    def test_wordcount_parity(self):
        serial, relay, direct = self.run_all_planes(
            wordcount_job, records_from(LINES), num_map_tasks=4
        )
        assert serial.records == relay.records == direct.records
        assert (
            serial.counters.as_dict()
            == relay.counters.as_dict()
            == direct.counters.as_dict()
        )

    def test_combiner_parity(self):
        serial, relay, direct = self.run_all_planes(
            lambda: wordcount_job(combiner=SumReducer),
            records_from(LINES),
            num_map_tasks=4,
        )
        assert serial.records == relay.records == direct.records
        assert serial.counters.as_dict() == direct.counters.as_dict()

    def test_payload_parity(self):
        # ndarray-free payloads with ties across map tasks: arrival-order
        # tie-breaks must match the relay plane exactly.
        records = [(i % 5, SizedPayload(200, tag=i)) for i in range(60)]
        serial, relay, direct = self.run_all_planes(
            lambda: Job(
                name="collect",
                mapper=FanOutMapper,
                reducer=CollectReducer,
                num_reducers=4,
            ),
            records,
            num_map_tasks=6,
        )
        assert serial.records == relay.records == direct.records

    @pytest.mark.parametrize(
        "scheme_factory",
        [lambda: DesignScheme(13), lambda: BlockScheme(12, 3)],
        ids=["design", "block"],
    )
    @pytest.mark.parametrize("path", ["run", "run_cached"])
    def test_pairwise_scheme_parity(self, scheme_factory, path):
        dataset = list(range(10, 10 + scheme_factory().v))

        def merged_with(engine):
            comp = PairwiseComputation(
                scheme_factory(), abs_distance, engine=engine
            )
            return getattr(comp, path)(dataset)

        serial = merged_with(SerialEngine())
        with MultiprocessEngine(max_workers=2, shuffle_mode="direct") as engine:
            direct = merged_with(engine)
        with MultiprocessEngine(max_workers=2, shuffle_mode="relay") as engine:
            relay = merged_with(engine)
        assert serial == direct == relay


class TestDriverBypassMetering:
    def big_shuffle_job(self):
        return Job(
            name="big-shuffle",
            mapper=FanOutMapper,
            reducer=ByteLenReducer,
            num_reducers=4,
        )

    def records(self):
        # Real payload bytes (not declared sizes): driver_bytes meters
        # what actually crossed the driver, so the relay volume must be
        # physically large for the bypass ratio to mean anything.
        return [(i, bytes([i % 251]) * 5_000) for i in range(100)]

    def test_direct_driver_bytes_are_manifest_sized(self):
        with MultiprocessEngine(max_workers=2, shuffle_mode="relay") as engine:
            engine.run(self.big_shuffle_job(), self.records(), num_map_tasks=5)
            relay_bytes = engine.stats.driver_bytes
        with MultiprocessEngine(max_workers=2, shuffle_mode="direct") as engine:
            engine.run(self.big_shuffle_job(), self.records(), num_map_tasks=5)
            direct_bytes = engine.stats.driver_bytes
            spilled = engine.stats.spill_bytes_written
        # Relay moves the full shuffle volume through the driver; direct
        # moves it to disk and only manifests cross the driver.
        assert relay_bytes > 10 * direct_bytes
        assert spilled > 0
        assert direct_bytes > 0

    def test_spill_files_metered_and_cleaned_up(self):
        with MultiprocessEngine(max_workers=2, shuffle_mode="direct") as engine:
            engine.run(self.big_shuffle_job(), self.records(), num_map_tasks=5)
            stats = engine.stats
            assert stats.spill_files_written > 0
            # The job's shuffle dir is removed with the job: nothing of it
            # survives in the engine's scratch space.
            tmpdir = engine._resources["tmpdir"].name
            leftovers = [
                name for name in os.listdir(tmpdir) if name.endswith("-shuffle")
            ]
            assert leftovers == []

    def test_relay_plane_writes_no_spill_files(self):
        with MultiprocessEngine(max_workers=2, shuffle_mode="relay") as engine:
            engine.run(self.big_shuffle_job(), self.records(), num_map_tasks=5)
            assert engine.stats.spill_files_written == 0
            assert engine.stats.spill_bytes_written == 0


class TestExternalSortOverSpillFiles:
    """Satellite: tiny spill_threshold_bytes forces multi-run merges of the
    spill-file stream inside pooled reduce tasks."""

    def spill_job(self, threshold, **overrides):
        settings = dict(
            name="spill",
            mapper=FanOutMapper,
            reducer=CollectReducer,
            num_reducers=2,
            config={"spill_threshold_bytes": threshold},
        )
        settings.update(overrides)
        return Job(**settings)

    def test_multi_run_merge_matches_serial(self):
        records = [(i, SizedPayload(500, tag=i)) for i in range(80)]
        serial = SerialEngine().run(self.spill_job(2000), records, num_map_tasks=4)
        with MultiprocessEngine(max_workers=2, shuffle_mode="direct") as engine:
            direct = engine.run(self.spill_job(2000), records, num_map_tasks=4)
        assert serial.records == direct.records
        assert serial.counters.as_dict() == direct.counters.as_dict()
        assert direct.counters.get(FRAMEWORK_GROUP, REDUCE_SPILL_RUNS) > 2
        assert direct.counters.get(FRAMEWORK_GROUP, REDUCE_SPILLED_RECORDS) > 0

    def test_retry_mid_merge_rebuilds_the_stream(self):
        # The reduce attempt crashes on its first attempt — after the
        # spill-file stream has been opened — and must succeed on a fresh
        # re-read of the same files.
        records = [(i, SizedPayload(500, tag=i)) for i in range(80)]
        plan = FaultPlan(faults=[CrashFault(task_kind="reduce", attempts=(1,))])
        failing = lambda: self.spill_job(  # noqa: E731 - tiny factory
            2000,
            config={"spill_threshold_bytes": 2000, "fault_plan": plan},
            max_attempts=2,
        )
        clean = SerialEngine().run(self.spill_job(2000), records, num_map_tasks=4)
        with MultiprocessEngine(max_workers=2, shuffle_mode="direct") as engine:
            retried = engine.run(failing(), records, num_map_tasks=4)
        assert retried.records == clean.records


@pytest.mark.faults
class TestDirectShuffleUnderWorkerDeath:
    def test_reducer_killed_mid_merge_recovers_bit_identical(self):
        # A worker-kill takes down the reducer's process while it merges
        # its spill files; the re-dispatched attempt re-reads the same
        # files from scratch and the job result is unchanged.
        import glob
        import tempfile

        # A killed reducer can never run its ExternalSorter.close(); the
        # engine must still not leak extsort scratch dirs into the system
        # temp dir (they belong under the job's shuffle dir, which the
        # engine sweeps).
        leak_pattern = os.path.join(tempfile.gettempdir(), "repro-extsort-*")
        leaks_before = len(glob.glob(leak_pattern))
        records = [(i, SizedPayload(500, tag=i)) for i in range(80)]

        def job(plan=None):
            config = {"spill_threshold_bytes": 2000}
            if plan is not None:
                config["fault_plan"] = plan
            return Job(
                name="kill-merge",
                mapper=FanOutMapper,
                reducer=CollectReducer,
                num_reducers=2,
                config=config,
                max_attempts=2,
            )

        clean = SerialEngine().run(job(), records, num_map_tasks=4)
        plan = FaultPlan(
            faults=[WorkerKillFault(task_kind="reduce", task_index=0, attempts=(1,))]
        )
        with MultiprocessEngine(max_workers=2, shuffle_mode="direct") as engine:
            survived = engine.run(job(plan), records, num_map_tasks=4)
            assert engine.stats.pool_restarts >= 1
        assert survived.records == clean.records
        # Settle briefly: an orphaned worker from an earlier kill test may
        # still be mid-task and holding a (soon to be cleaned) scratch dir.
        import time

        deadline = time.monotonic() + 5
        while (
            len(glob.glob(leak_pattern)) > leaks_before
            and time.monotonic() < deadline
        ):
            time.sleep(0.1)
        assert len(glob.glob(leak_pattern)) <= leaks_before

    def test_speculative_attempts_stay_bit_identical(self):
        from repro.mapreduce.faults import SlowFault

        records = [(i, SizedPayload(500, tag=i)) for i in range(80)]

        def job(plan=None):
            config = {
                "spill_threshold_bytes": 2000,
                "speculative_execution": True,
                "speculative_multiplier": 1.5,
                "speculative_fraction": 1.0,
            }
            if plan is not None:
                config["fault_plan"] = plan
            return Job(
                name="spec-direct",
                mapper=FanOutMapper,
                reducer=CollectReducer,
                num_reducers=4,
                config=config,
                max_attempts=2,
            )

        clean = SerialEngine().run(job(), records, num_map_tasks=4)
        plan = FaultPlan(
            faults=[SlowFault(task_kind="reduce", task_index=1, seconds=1.2)]
        )
        with MultiprocessEngine(max_workers=4, shuffle_mode="direct") as engine:
            raced = engine.run(job(plan), records, num_map_tasks=4)
        assert raced.records == clean.records
