"""Hadoop-Streaming protocol tests (external-process stages)."""

import pytest

from repro.mapreduce.job import Job
from repro.mapreduce.runtime import SerialEngine
from repro.mapreduce.streaming import (
    IDENTITY_COMMAND,
    StreamingMapper,
    StreamingProtocolError,
    StreamingReducer,
    format_record,
    python_command,
)

DOUBLER = python_command(
    "for line in sys.stdin:\n"
    "    k, v = line.rstrip('\\n').split('\\t')\n"
    "    print(f'{k}\\t{int(v) * 2}')"
)

GROUP_SUMMER = python_command(
    "current, total = None, 0\n"
    "def flush():\n"
    "    if current is not None:\n"
    "        print(f'{current}\\t{total}')\n"
    "for line in sys.stdin:\n"
    "    k, v = line.rstrip('\\n').split('\\t')\n"
    "    if k != current:\n"
    "        flush()\n"
    "        current, total = k, 0\n"
    "    total += int(v)\n"
    "flush()"
)

FAILER = python_command("sys.exit(3)")


class TestProtocol:
    def test_format_record(self):
        assert format_record("k", 5) == "k\t5"

    def test_rejects_tab_in_key(self):
        with pytest.raises(StreamingProtocolError):
            format_record("a\tb", 1)

    def test_rejects_newline_in_value(self):
        with pytest.raises(StreamingProtocolError):
            format_record("k", "a\nb")


class TestStreamingMapper:
    def test_external_doubler(self):
        job = Job(
            name="stream-map",
            mapper=StreamingMapper,
            reducer=None,
            num_reducers=0,
            config={"stream.mapper": DOUBLER},
        )
        result = SerialEngine().run(job, [("a", 1), ("b", 2)], num_map_tasks=1)
        assert sorted(result.records) == [("a", "2"), ("b", "4")]

    def test_identity_cat(self):
        job = Job(
            name="cat",
            mapper=StreamingMapper,
            reducer=None,
            num_reducers=0,
            config={"stream.mapper": list(IDENTITY_COMMAND)},
        )
        result = SerialEngine().run(job, [("x", "y")], num_map_tasks=1)
        assert result.records == [("x", "y")]

    def test_command_failure_fails_task(self):
        job = Job(
            name="fail",
            mapper=StreamingMapper,
            reducer=None,
            num_reducers=0,
            config={"stream.mapper": FAILER},
        )
        from repro.mapreduce.job import TaskFailedError

        with pytest.raises(TaskFailedError):
            SerialEngine().run(job, [("a", 1)], num_map_tasks=1)

    def test_subprocess_timeout_enters_retry_path(self, tmp_path):
        """A hung external command fails the task through the engine's
        retry machinery (wrapped StreamingProtocolError, not a raw
        subprocess.TimeoutExpired) and a retry can recover it."""
        flag = tmp_path / "flag"
        sleeper = python_command(
            "import os, time\n"
            f"if not os.path.exists({str(flag)!r}):\n"
            f"    open({str(flag)!r}, 'w').close()\n"
            "    time.sleep(30)\n"
            "for line in sys.stdin:\n"
            "    print(line.rstrip('\\n'))"
        )
        job = Job(
            name="hang-stream",
            mapper=StreamingMapper,
            reducer=None,
            num_reducers=0,
            config={"stream.mapper": sleeper, "stream.timeout_seconds": 0.3},
            max_attempts=2,
        )
        result = SerialEngine().run(job, [("a", 1)], num_map_tasks=1)
        assert result.records == [("a", "1")]

    def test_subprocess_timeout_wrapped_as_protocol_error(self):
        from repro.mapreduce.job import TaskFailedError

        sleeper = python_command("import time\ntime.sleep(30)")
        job = Job(
            name="hang-stream-fatal",
            mapper=StreamingMapper,
            reducer=None,
            num_reducers=0,
            config={"stream.mapper": sleeper, "stream.timeout_seconds": 0.2},
        )
        with pytest.raises(TaskFailedError) as info:
            SerialEngine().run(job, [("a", 1)], num_map_tasks=1)
        assert isinstance(info.value.cause, StreamingProtocolError)
        assert "timeout" in str(info.value.cause)

    def test_counter_tracks_lines(self):
        job = Job(
            name="count",
            mapper=StreamingMapper,
            reducer=None,
            num_reducers=0,
            config={"stream.mapper": DOUBLER},
        )
        result = SerialEngine().run(job, [("a", 1), ("b", 2)], num_map_tasks=1)
        assert result.counters.get("streaming", "mapper_lines_in") == 2


class TestStreamingReducer:
    def test_group_summing(self):
        """The classic streaming wordcount reduce: equal keys adjacent."""
        job = Job(
            name="stream-reduce",
            reducer=StreamingReducer,
            num_reducers=1,
            config={"stream.reducer": GROUP_SUMMER},
        )
        records = [("a", 1), ("b", 5), ("a", 2), ("b", 7), ("a", 4)]
        result = SerialEngine().run(job, records, num_map_tasks=1)
        assert sorted(result.records) == [("a", "7"), ("b", "12")]

    def test_mixed_native_and_streaming_pipeline(self):
        """Native Python map feeding a streaming reduce stage."""
        from repro.mapreduce.job import Mapper
        from repro.mapreduce.pipeline import Pipeline

        class Tokenize(Mapper):
            def map(self, key, value, context):
                for word in value.split():
                    context.emit(word, 1)

        job1 = Job(name="tok", mapper=Tokenize, reducer=None, num_reducers=0)
        job2 = Job(
            name="sum",
            reducer=StreamingReducer,
            num_reducers=2,
            config={"stream.reducer": GROUP_SUMMER},
        )
        result = Pipeline([job1, job2]).run([(0, "x y x"), (1, "y y")])
        assert sorted(result.records) == [("x", "2"), ("y", "3")]
