"""End-to-end spill integrity: SPC1 checksums, injection, recovery.

Every published spill chunk carries an SPC1 header (magic, flags, CRC32,
payload length); extsort run files frame each chunk with length + CRC.
These tests pin the container format's failure modes, the seeded
``corrupt_rate``/``truncate_rate`` injection that damages files *after*
publication, and the driver's Hadoop-style recovery: quarantine the bad
file, replay the producing map attempt, re-dispatch the reducer —
bit-identically and without burning the reducer's retry budget.
"""

import math
import pickle

import pytest

from repro.core.block import BlockScheme
from repro.core.design import DesignScheme
from repro.core.element import results_matrix
from repro.core.pairwise import PairwiseComputation
from repro.mapreduce.extsort import ExternalSorter
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.job import Job, Reducer
from repro.mapreduce.runtime import MultiprocessEngine, SerialEngine
from repro.mapreduce.serialization import (
    SPILL_HEADER_BYTES,
    SpillCorruptionError,
    encode_records,
    read_spill_chunk,
    set_spill_verification,
    write_spill_chunk,
)
from repro.mapreduce.shuffle import iter_spill_records
from repro.mapreduce.spill import parse_spill_file_name, spill_partitions


@pytest.fixture(autouse=True)
def _verification_on():
    set_spill_verification(True)
    yield
    set_spill_verification(True)


def product(a, b):
    return a * b


class SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sum(values))


RECORDS = [(i % 4, i) for i in range(16)]


def clean_run():
    return SerialEngine().run(
        Job(name="clean", reducer=SumReducer, num_reducers=2),
        RECORDS,
        num_map_tasks=4,
    )


class TestSpillContainer:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "x.spill"
        payload = encode_records([(1, 2.0), (3, 4.0)])
        written = write_spill_chunk(path, payload)
        assert written == SPILL_HEADER_BYTES + len(payload)
        assert path.stat().st_size == written
        assert bytes(read_spill_chunk(path)) == payload

    def test_flipped_payload_byte_raises(self, tmp_path):
        path = tmp_path / "x.spill"
        write_spill_chunk(path, encode_records([(1, 2.0)]))
        data = bytearray(path.read_bytes())
        data[SPILL_HEADER_BYTES + 3] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(SpillCorruptionError, match="CRC mismatch"):
            read_spill_chunk(path)

    def test_truncation_raises(self, tmp_path):
        path = tmp_path / "x.spill"
        write_spill_chunk(path, encode_records([(1, 2.0), (3, 4.0)]))
        size = path.stat().st_size
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
        with pytest.raises(SpillCorruptionError, match="truncated payload"):
            read_spill_chunk(path)

    def test_short_header_raises(self, tmp_path):
        path = tmp_path / "x.spill"
        path.write_bytes(b"SPC1\x01")
        with pytest.raises(SpillCorruptionError, match="truncated header"):
            read_spill_chunk(path)

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "x.spill"
        write_spill_chunk(path, encode_records([(1, 2.0)]))
        data = bytearray(path.read_bytes())
        data[:4] = b"NOPE"
        path.write_bytes(bytes(data))
        with pytest.raises(SpillCorruptionError, match="bad magic"):
            read_spill_chunk(path)

    def test_verification_off_still_catches_truncation(self, tmp_path):
        set_spill_verification(False)
        path = tmp_path / "x.spill"
        write_spill_chunk(path, encode_records([(1, 2.0), (3, 4.0)]))
        assert bytes(read_spill_chunk(path))  # flags=0 file reads fine
        size = path.stat().st_size
        with open(path, "r+b") as handle:
            handle.truncate(size - 1)
        with pytest.raises(SpillCorruptionError, match="truncated payload"):
            read_spill_chunk(path)

    def test_iter_spill_records_wraps_undecodable_payload(self, tmp_path):
        # A payload that passes its CRC but cannot decode (the writer
        # checksummed garbage) is still a corruption, not a crash.
        path = tmp_path / "x.spill"
        write_spill_chunk(path, b"not an NPB1 chunk")
        with pytest.raises(SpillCorruptionError, match="undecodable payload"):
            list(iter_spill_records([str(path)]))

    def test_error_pickles_with_fields(self):
        error = SpillCorruptionError("/some/file.spill", "CRC mismatch")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, SpillCorruptionError)
        assert clone.path == "/some/file.spill"
        assert clone.reason == "CRC mismatch"
        assert clone.task_retryable is False


class TestExtsortIntegrity:
    def _spilled_sorter(self, tmp_path):
        sorter = ExternalSorter(memory_budget=128, spill_dir=tmp_path)
        for ordinal in range(200):
            sorter.add(ordinal % 17, float(ordinal))
        assert sorter.num_runs > 1
        return sorter

    def test_corrupt_run_frame_detected(self, tmp_path):
        sorter = self._spilled_sorter(tmp_path)
        run = sorter._runs[0]
        data = bytearray(run.read_bytes())
        data[len(data) // 2] ^= 0xFF
        run.write_bytes(bytes(data))
        with pytest.raises(SpillCorruptionError):
            list(sorter.sorted_records())

    def test_truncated_run_detected(self, tmp_path):
        sorter = self._spilled_sorter(tmp_path)
        run = sorter._runs[0]
        with open(run, "r+b") as handle:
            handle.truncate(run.stat().st_size - 3)
        with pytest.raises(SpillCorruptionError, match="truncated run frame"):
            list(sorter.sorted_records())

    def test_caller_owned_spill_dir_survives_close(self, tmp_path):
        sorter = self._spilled_sorter(tmp_path)
        list(sorter.sorted_records())
        sorter.close()
        assert tmp_path.exists()  # run files gone, caller's dir kept
        assert list(tmp_path.glob("run-*.npb")) == []

    def test_owned_tempdir_removed_on_close(self):
        sorter = ExternalSorter(memory_budget=128)
        for ordinal in range(100):
            sorter.add(ordinal, float(ordinal))
        spill_dir = sorter._spill_dir
        sorter.close()
        assert not spill_dir.exists()


class TestFaultPlanSpillFaults:
    def test_nan_slow_seconds_rejected(self):
        with pytest.raises(ValueError, match="slow_seconds"):
            FaultPlan(slow_seconds=math.nan)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(corrupt_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(truncate_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_rate=math.nan)

    def test_spill_fault_deterministic_and_first_attempt_only(self):
        plan = FaultPlan(corrupt_rate=1.0, seed=9)
        assert plan.spill_fault("map", 0, 1, 0) == "corrupt"
        assert plan.spill_fault("map", 0, 1, 0) == "corrupt"
        assert plan.spill_fault("map", 0, 2, 0) is None  # replays run clean
        assert plan.spill_fault("map", 0, 1, 0, speculative=True) is None

    def test_truncate_drawn_independently(self):
        plan = FaultPlan(truncate_rate=1.0, seed=9)
        assert plan.spill_fault("map", 3, 1, 1) == "truncate"
        assert FaultPlan(seed=9).spill_fault("map", 3, 1, 1) is None

    def test_describe_mentions_spill_rates(self):
        text = FaultPlan(corrupt_rate=0.05, truncate_rate=0.02).describe()
        assert "corrupt_rate=0.05" in text
        assert "truncate_rate=0.02" in text


class TestSpillInjection:
    def test_injection_damages_published_files(self, tmp_path):
        partitions = [[(0, 1.0), (2, 2.0)], [], [(1, 3.0)]]
        counts = [2, 0, 1]
        entries, damaged = spill_partitions(
            partitions,
            counts,
            str(tmp_path),
            "map",
            0,
            1,
            False,
            plan=FaultPlan(corrupt_rate=1.0),
        )
        assert damaged == 2  # every non-empty partition file
        assert entries[1] is None
        for entry in (entries[0], entries[2]):
            with pytest.raises(SpillCorruptionError):
                read_spill_chunk(entry[0])

    def test_file_name_parses_back(self, tmp_path):
        entries, _ = spill_partitions(
            [[(0, 1.0)]], [1], str(tmp_path), "map", 7, 2, True
        )
        name = entries[0][0].rsplit("/", 1)[-1]
        assert parse_spill_file_name(name) == ("map", 7, 0)
        assert parse_spill_file_name("not-a-spill.bin") is None


@pytest.mark.durability
class TestCorruptionRecovery:
    def test_every_file_corrupt_recovers_bit_identical(self):
        plan = FaultPlan(corrupt_rate=1.0, seed=3)
        job = Job(
            name="corrupted",
            reducer=SumReducer,
            num_reducers=2,
            config={"fault_plan": plan},
        )
        with MultiprocessEngine(max_workers=2) as engine:
            result = engine.run(job, RECORDS, num_map_tasks=4)
            reference = clean_run()
            assert result.records == reference.records
            assert result.counters.as_dict() == reference.counters.as_dict()
            stats = engine.stats
            assert stats.spill_files_damaged > 0
            assert stats.spill_corruptions == stats.spill_files_damaged
            assert stats.spill_files_quarantined == stats.spill_corruptions
            assert stats.tasks_replayed == stats.spill_corruptions

    def test_mixed_rates_recover_bit_identical(self):
        plan = FaultPlan(corrupt_rate=0.5, truncate_rate=0.5, seed=11)
        job = Job(
            name="mixed",
            reducer=SumReducer,
            num_reducers=2,
            config={"fault_plan": plan},
        )
        with MultiprocessEngine(max_workers=2) as engine:
            result = engine.run(job, RECORDS, num_map_tasks=4)
            assert result.records == clean_run().records
            stats = engine.stats
            assert stats.spill_files_damaged > 0
            assert stats.spill_corruptions == stats.spill_files_damaged

    @pytest.mark.parametrize(
        "scheme",
        [BlockScheme(12, 3), DesignScheme(13)],
        ids=lambda s: s.name,
    )
    def test_pairwise_parity_at_five_percent_rates(self, scheme):
        """The ISSUE's acceptance rates: every injected corruption is
        detected and recovered; pairwise results stay bit-identical."""
        dataset = list(range(1, scheme.v + 1))
        baseline = PairwiseComputation(scheme, product).run(dataset)
        plan = FaultPlan(corrupt_rate=0.05, truncate_rate=0.05, seed=29)
        with MultiprocessEngine(max_workers=2) as engine:
            faulty = PairwiseComputation(
                scheme,
                product,
                engine=engine,
                runtime_config={"fault_plan": plan},
            ).run(dataset)
            stats = engine.stats
        assert results_matrix(faulty) == results_matrix(baseline)
        # Every injected corruption was detected, quarantined, replayed.
        assert stats.spill_corruptions == stats.spill_files_damaged
        assert stats.spill_files_quarantined == stats.spill_corruptions

    def test_journaled_run_recovers_from_corruption(self, tmp_path):
        plan = FaultPlan(corrupt_rate=1.0, seed=3)
        job = Job(
            name="journaled-corrupt",
            reducer=SumReducer,
            num_reducers=2,
            config={"fault_plan": plan},
        )
        with MultiprocessEngine(
            max_workers=2, journal_dir=tmp_path / "journal"
        ) as engine:
            result = engine.run(job, RECORDS, num_map_tasks=4)
            assert result.records == clean_run().records
            assert engine.stats.spill_corruptions > 0
