"""Control-plane unit tests: attempt lifecycle, tags, events, trace sink."""

import json

import pytest

from repro.mapreduce.controlplane import (
    AttemptTransition,
    BytesMoved,
    EventBus,
    JsonlTraceSink,
    TaskState,
    attempt_tag,
)
from repro.mapreduce.controlplane.attempts import AttemptTracker, TaskAttempt
from repro.mapreduce.job import Job, Mapper, Reducer
from repro.mapreduce.spill import spill_file_path


class TestAttemptTag:
    def test_plain_attempts(self):
        assert attempt_tag(1) == "a1"
        assert attempt_tag(7) == "a7"

    def test_speculative_suffix(self):
        assert attempt_tag(2, speculative=True) == "a2s"

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            attempt_tag(0)

    def test_spill_filename_format_is_locked(self):
        """On-disk spill naming is parsed by tooling; lock it exactly."""
        path = spill_file_path("/scratch", "map", 3, 2, True, 5)
        assert path == "/scratch/map-00003-a2s-p00005.spill"
        plain = spill_file_path("/scratch", "reduce", 0, 1, False, 0)
        assert plain == "/scratch/reduce-00000-a1-p00000.spill"


class TestTaskAttemptStateMachine:
    def make(self):
        return TaskAttempt(kind="map", task_index=0, attempt=1, speculative=False)

    def test_happy_path(self):
        attempt = self.make()
        assert attempt.state is TaskState.PENDING
        attempt.transition(TaskState.DISPATCHED, now=1.0)
        attempt.transition(TaskState.RUNNING, now=2.0)
        attempt.transition(TaskState.SUCCEEDED, now=5.0)
        assert attempt.state.terminal
        assert attempt.duration == pytest.approx(3.0)

    def test_illegal_transition_rejected(self):
        attempt = self.make()
        with pytest.raises(ValueError):
            attempt.transition(TaskState.RUNNING, now=0.0)  # never dispatched

    def test_terminal_states_are_sinks(self):
        attempt = self.make()
        attempt.transition(TaskState.DISPATCHED, now=0.0)
        attempt.transition(TaskState.FAILED, now=1.0)
        with pytest.raises(ValueError):
            attempt.transition(TaskState.RUNNING, now=2.0)

    def test_tag_matches_attempt_number(self):
        attempt = TaskAttempt(kind="map", task_index=0, attempt=3, speculative=True)
        assert attempt.tag == "a3s"


class IdMapper(Mapper):
    pass


class IdReducer(Reducer):
    def reduce(self, key, values, context):
        for value in values:
            context.emit(key, value)


def make_job(**config):
    return Job(name="cp", mapper=IdMapper, reducer=IdReducer, config=config)


class TestAttemptTracker:
    def test_attempt_numbers_advance_on_lost_charge(self):
        tracker = AttemptTracker("map", 2, make_job())
        first = tracker.begin_dispatch(0, now=0.0)
        assert first.attempt == 1
        tracker.kill(first, now=1.0)
        tracker.charge_lost(0)
        second = tracker.begin_dispatch(0, now=2.0)
        assert second.attempt == 2
        tracker.charge_lost(0)
        assert tracker.exhausted(0)  # default max_attempts == 1
        from repro.mapreduce.job import TaskFailedError

        assert isinstance(tracker.lost_error(0, 0), TaskFailedError)

    def test_complete_records_duration_and_completion(self):
        tracker = AttemptTracker("reduce", 1, make_job())
        attempt = tracker.begin_dispatch(0, now=0.0)
        tracker.mark_running(attempt, now=1.0)
        tracker.complete(attempt, now=4.0, worker_pid=123)
        assert 0 in tracker.completed
        assert tracker.durations == [pytest.approx(3.0)]
        assert attempt.worker_pid == 123

    def test_kill_is_noop_on_terminal_attempts(self):
        tracker = AttemptTracker("map", 1, make_job())
        attempt = tracker.begin_dispatch(0, now=0.0)
        tracker.complete(attempt, now=1.0)
        tracker.kill(attempt, now=2.0)  # must not raise
        assert attempt.state is TaskState.SUCCEEDED

    def test_speculation_window_honours_config(self):
        job = make_job(
            speculative_execution=True, speculative_slowest_fraction=0.5
        )
        tracker = AttemptTracker("map", 4, job)
        assert not tracker.in_speculation_window()  # nothing completed yet
        for index in range(3):
            attempt = tracker.begin_dispatch(index, now=0.0)
            tracker.mark_running(attempt, now=0.0)
            tracker.complete(attempt, now=1.0)
        assert tracker.in_speculation_window()
        assert tracker.straggler_threshold() == pytest.approx(2.0)

    def test_events_emitted_on_bus(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        tracker = AttemptTracker("map", 1, make_job(), bus=bus)
        attempt = tracker.begin_dispatch(0, now=0.0)
        tracker.mark_running(attempt, now=0.5)
        tracker.complete(attempt, now=1.0)
        states = [event.state for event in seen]
        assert states == ["DISPATCHED", "RUNNING", "SUCCEEDED"]
        assert all(isinstance(event, AttemptTransition) for event in seen)


class TestEventBus:
    def test_emit_without_subscribers_is_cheap_noop(self):
        bus = EventBus()
        assert len(bus) == 0
        bus.emit(object())  # nothing to deliver, nothing raised

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.unsubscribe(seen.append)
        bus.emit("event")
        assert seen == []


class TestJsonlTraceSink:
    def transitions(self, sink):
        for state, when in (("DISPATCHED", 10.0), ("RUNNING", 10.5), ("SUCCEEDED", 12.0)):
            sink.record(
                AttemptTransition(
                    time=when, kind="map", task_index=0, attempt=1,
                    speculative=False, state=state, worker_pid=42,
                )
            )

    def test_event_lines_are_typed_and_rebased(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            self.transitions(sink)
            sink.record(BytesMoved(time=13.0, channel="map_output", num_bytes=7))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        events = [line for line in lines if "type" in line]
        assert events[0]["type"] == "AttemptTransition"
        assert events[0]["time"] == 0.0  # rebased to first event
        assert events[-1] == {
            "type": "BytesMoved", "time": 3.0, "channel": "map_output",
            "num_bytes": 7,
        }

    def test_span_lines_appended_on_close(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path)
        self.transitions(sink)
        sink.close()
        assert sink.closed
        sink.close()  # idempotent
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        spans = [line for line in lines if "type" not in line]
        assert spans == [
            {"task": 0, "node": 0, "slot": 0, "start": 0.5, "end": 2.0}
        ]

    def test_loads_into_cluster_trace(self, tmp_path):
        from repro.cluster.trace import Trace

        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            self.transitions(sink)
        trace = Trace.from_json(path.read_text())
        assert len(trace.spans) == 1
        assert trace.makespan == pytest.approx(2.0)
        assert "0" in trace.gantt(width=20)
