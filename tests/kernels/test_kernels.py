"""Unit tests for the pair-evaluation kernel subsystem (tier-1)."""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest

from repro.apps.covariance import row_inner_product
from repro.apps.dbscan import euclidean_distance
from repro.apps.docsim import cosine_similarity
from repro.kernels import (
    CovarianceKernel,
    CsrCosineKernel,
    DenseCosineKernel,
    DenseDotKernel,
    DenseEuclideanKernel,
    PairKernel,
    ScalarKernel,
    available_kernels,
    get_kernel,
    kernel_for_comp,
    pair_index_array,
    register_comp,
    register_kernel,
    resolve_kernel,
    select_kernel,
)


def close(got, want, rel=1e-9):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert math.isclose(g, w, rel_tol=rel, abs_tol=1e-12), (g, w)


def all_pairs(v):
    return [(i, j) for i in range(2, v + 1) for j in range(1, i)]


class TestPairIndexArray:
    def test_materializes_tuples(self):
        block = pair_index_array([(2, 1), (3, 1), (3, 2)])
        assert block.shape == (3, 2)
        assert block.dtype == np.int64
        assert block.tolist() == [[2, 1], [3, 1], [3, 2]]

    def test_empty_relation_keeps_shape(self):
        block = pair_index_array([])
        assert block.shape == (0, 2)
        assert block.dtype == np.int64

    def test_ndarray_passthrough(self):
        arr = np.array([[2, 1], [3, 2]], dtype=np.int64)
        assert pair_index_array(arr) is arr

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match=r"\(n, 2\)"):
            pair_index_array([(1, 2, 3)])


class TestScalarKernel:
    def test_matches_loop_in_block_order(self):
        calls = []

        def comp(a, b):
            calls.append((a, b))
            return a - b

        payloads = {1: 10.0, 2: 20.0, 3: 30.0}
        block = pair_index_array([(2, 1), (3, 1), (3, 2)])
        out = ScalarKernel(comp).evaluate_block(payloads, block)
        assert out == [10.0, 20.0, 10.0]
        assert calls == [(20.0, 10.0), (30.0, 10.0), (30.0, 20.0)]

    def test_supports_anything(self):
        kernel = ScalarKernel(lambda a, b: 0)
        assert kernel.supports(object())
        assert kernel.supports(None)

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError, match="callable"):
            ScalarKernel("not-a-function")

    def test_describe_names_comp(self):
        assert "cosine_similarity" in ScalarKernel(cosine_similarity).describe()


class TestDenseKernels:
    @pytest.fixture
    def payloads(self):
        rng = np.random.default_rng(3)
        store = {eid: rng.normal(size=6) for eid in range(1, 11)}
        store[4] = np.zeros(6)  # zero-norm edge case for cosine
        return store

    def _scalar(self, comp, payloads, block):
        return ScalarKernel(comp).evaluate_block(payloads, block)

    def test_dot_matches_scalar(self, payloads):
        block = pair_index_array(all_pairs(10))
        got = DenseDotKernel().evaluate_block(payloads, block)
        close(got, self._scalar(lambda a, b: float(np.dot(a, b)), payloads, block))

    def test_euclidean_matches_scalar(self, payloads):
        block = pair_index_array(all_pairs(10))
        got = DenseEuclideanKernel().evaluate_block(payloads, block)
        close(got, self._scalar(euclidean_distance, payloads, block))

    def test_cosine_matches_scalar_and_zero_norm(self, payloads):
        def cosine(a, b):
            norms = float(np.linalg.norm(a)) * float(np.linalg.norm(b))
            return float(np.dot(a, b)) / norms if norms > 0 else 0.0

        block = pair_index_array(all_pairs(10))
        got = DenseCosineKernel().evaluate_block(payloads, block)
        close(got, self._scalar(cosine, payloads, block))
        zero_row = got[block.tolist().index([4, 1])]
        assert zero_row == 0.0

    def test_covariance_gram_and_gather_paths_agree(self, payloads):
        kernel = CovarianceKernel()
        full = pair_index_array(all_pairs(10))  # 100% coverage → gram
        sparse_block = pair_index_array([(2, 1), (9, 3)])  # 4% → gather
        reference = self._scalar(row_inner_product, payloads, full)
        close(kernel.evaluate_block(payloads, full), reference)
        sparse_ref = self._scalar(row_inner_product, payloads, sparse_block)
        close(kernel.evaluate_block(payloads, sparse_block), sparse_ref)

    def test_empty_block(self, payloads):
        assert DenseDotKernel().evaluate_block(payloads, pair_index_array([])) == []

    def test_supports_dense_only(self):
        kernel = DenseDotKernel()
        assert kernel.supports(np.zeros(3))
        assert kernel.supports([1.0, 2.0])
        assert not kernel.supports({"a": 1.0})
        assert not kernel.supports(np.zeros((2, 2)))
        assert not kernel.supports("text")


class TestCsrCosineKernel:
    @pytest.fixture
    def payloads(self):
        rng = np.random.default_rng(5)
        terms = [f"t{i}" for i in range(40)]
        store = {}
        for eid in range(1, 13):
            chosen = rng.choice(terms, size=8, replace=False)
            vector = {term: float(rng.uniform(0.1, 1.0)) for term in chosen}
            norm = math.sqrt(sum(w * w for w in vector.values()))
            store[eid] = {term: w / norm for term, w in vector.items()}
        store[5] = {}  # empty document
        store[9] = {"t0": 1.0}  # singleton vector
        return store

    def test_matches_scalar_cosine(self, payloads):
        block = pair_index_array(all_pairs(12))
        got = CsrCosineKernel().evaluate_block(payloads, block)
        close(got, ScalarKernel(cosine_similarity).evaluate_block(payloads, block))

    def test_gather_path_matches(self, payloads):
        # 3 pairs of a 12-element triangle ≈ 4.5% coverage → gather path.
        block = pair_index_array([(2, 1), (9, 5), (12, 3)])
        got = CsrCosineKernel().evaluate_block(payloads, block)
        close(got, ScalarKernel(cosine_similarity).evaluate_block(payloads, block))

    def test_all_empty_vectors(self):
        payloads = {1: {}, 2: {}, 3: {}}
        block = pair_index_array(all_pairs(3))
        assert CsrCosineKernel().evaluate_block(payloads, block) == [0.0, 0.0, 0.0]

    def test_dense_fallback_matches(self, payloads, monkeypatch):
        import repro.kernels.sparse as sparse_module

        monkeypatch.setattr(sparse_module, "_sparse", None)
        block = pair_index_array(all_pairs(12))
        got = CsrCosineKernel().evaluate_block(payloads, block)
        close(got, ScalarKernel(cosine_similarity).evaluate_block(payloads, block))
        gather = pair_index_array([(2, 1), (9, 5)])
        got = CsrCosineKernel().evaluate_block(payloads, gather)
        close(got, ScalarKernel(cosine_similarity).evaluate_block(payloads, gather))

    def test_supports(self):
        kernel = CsrCosineKernel()
        assert kernel.supports({"term": 0.5})
        assert kernel.supports({})  # empty document is a valid zero vector
        assert not kernel.supports({1: 0.5})
        assert not kernel.supports(np.zeros(3))
        assert not kernel.supports([0.5])


class TestRegistry:
    def test_builtins_registered(self):
        names = set(available_kernels())
        assert {
            "dense-dot",
            "dense-cosine",
            "dense-euclidean",
            "covariance",
            "csr-cosine",
        } <= names

    def test_get_kernel_unknown_lists_registered(self):
        with pytest.raises(KeyError, match="csr-cosine"):
            get_kernel("no-such-kernel")

    def test_register_kernel_type_checked(self):
        with pytest.raises(TypeError, match="PairKernel"):
            register_kernel(object())

    def test_register_kernel_duplicate_needs_replace(self):
        with pytest.raises(ValueError, match="already registered"):
            register_kernel(CsrCosineKernel())
        register_kernel(CsrCosineKernel(), replace=True)

    def test_register_comp_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            register_comp(lambda a, b: 0, "no-such-kernel")

    def test_app_bindings(self):
        assert kernel_for_comp(cosine_similarity) == "csr-cosine"
        assert kernel_for_comp(row_inner_product) == "covariance"
        assert kernel_for_comp(euclidean_distance) == "dense-euclidean"
        assert kernel_for_comp(lambda a, b: 0) is None

    def test_select_kernel_probes_payload(self):
        assert select_kernel(cosine_similarity, {"a": 1.0}).name == "csr-cosine"
        # bound kernel rejects the payload shape → scalar fallback
        fallback = select_kernel(cosine_similarity, np.zeros(3))
        assert isinstance(fallback, ScalarKernel)
        assert fallback.comp is cosine_similarity

    def test_select_kernel_unbound_comp_is_scalar(self):
        def unbound(a, b):
            return 0

        assert isinstance(select_kernel(unbound, {"a": 1.0}), ScalarKernel)


class TestResolveKernel:
    def test_none_and_scalar_are_bit_identical_default(self):
        for spec in (None, "scalar"):
            kernel = resolve_kernel(spec, cosine_similarity)
            assert isinstance(kernel, ScalarKernel)
            assert kernel.comp is cosine_similarity

    def test_auto_uses_binding(self):
        kernel = resolve_kernel("auto", cosine_similarity, {"a": 1.0})
        assert kernel.name == "csr-cosine"

    def test_auto_without_sample_uses_binding(self):
        assert resolve_kernel("auto", cosine_similarity).name == "csr-cosine"

    def test_named_kernel_strict(self):
        assert resolve_kernel("dense-dot", cosine_similarity).name == "dense-dot"
        with pytest.raises(KeyError):
            resolve_kernel("no-such-kernel", cosine_similarity)

    def test_instance_passthrough(self):
        kernel = DenseDotKernel()
        assert resolve_kernel(kernel, cosine_similarity) is kernel

    def test_bad_spec_type(self):
        with pytest.raises(TypeError, match="kernel"):
            resolve_kernel(42, cosine_similarity)


class TestPicklability:
    """Kernels travel inside job configs to worker processes."""

    @pytest.mark.parametrize(
        "kernel",
        [
            DenseDotKernel(),
            DenseCosineKernel(),
            DenseEuclideanKernel(),
            CovarianceKernel(),
            CsrCosineKernel(),
            ScalarKernel(cosine_similarity),
        ],
        ids=lambda k: k.describe(),
    )
    def test_round_trips(self, kernel):
        clone = pickle.loads(pickle.dumps(kernel))
        assert isinstance(clone, PairKernel)
        assert clone.name == kernel.name
