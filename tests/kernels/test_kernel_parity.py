"""Kernel parity sweeps: every kernel vs the scalar loop vs run_local.

For each registered kernel, across every scheme family and both
``symmetric`` settings, the vectorized pipeline must reproduce the
in-process reference within 1e-9 relative tolerance, and the scalar
(default) pipeline must reproduce it *exactly*.  Also covers the cached
variant, the broadcast one-job path, empty and singleton working sets,
counter semantics, and kernel dispatch across process boundaries.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.apps.covariance import row_inner_product
from repro.apps.dbscan import euclidean_distance
from repro.apps.docsim import build_tfidf, cosine_similarity
from repro.core.broadcast import BroadcastScheme
from repro.core.element import ordered_results, results_matrix
from repro.core.pairwise import EVALUATIONS, PAIRWISE_GROUP, PairwiseComputation
from repro.core.scheme import DistributionScheme, SchemeMetrics
from repro.mapreduce import MultiprocessEngine
from repro.workloads.generator import make_documents

pytestmark = pytest.mark.kernels

V = 23  # matches the any_scheme fixture

REL_TOLERANCE = 1e-9


def dense_dot(a, b):
    return float(np.dot(a, b))


def dense_cosine(a, b):
    norms = float(np.linalg.norm(a)) * float(np.linalg.norm(b))
    return float(np.dot(a, b)) / norms if norms > 0 else 0.0


def make_dense(v: int) -> list[np.ndarray]:
    rng = np.random.default_rng(11)
    rows = [rng.normal(size=5) for _ in range(v)]
    if v > 3:
        rows[3] = np.zeros(5)  # zero-norm row exercises the cosine guard
    return rows


def make_sparse(v: int) -> list[dict[str, float]]:
    vectors = build_tfidf(make_documents(v, vocabulary=60, length=25, seed=11))
    if v > 2:
        vectors[2] = {}  # empty document
    if v > 7:
        vectors[7] = {"only": 1.0}  # singleton vector
    return vectors


#: kernel name → (pair function bound to it, dataset builder)
KERNEL_CASES = {
    "dense-dot": (dense_dot, make_dense),
    "dense-cosine": (dense_cosine, make_dense),
    "dense-euclidean": (euclidean_distance, make_dense),
    "covariance": (row_inner_product, make_dense),
    "csr-cosine": (cosine_similarity, make_sparse),
}


def assert_close_maps(got, want, *, exact=False):
    assert set(got) == set(want)
    for key, reference in want.items():
        if exact:
            assert got[key] == reference, key
        else:
            assert math.isclose(
                got[key], reference, rel_tol=REL_TOLERANCE, abs_tol=1e-12
            ), (key, got[key], reference)


def flatten(merged, symmetric):
    return results_matrix(merged) if symmetric else ordered_results(merged)


@pytest.mark.parametrize("kernel_name", sorted(KERNEL_CASES))
@pytest.mark.parametrize("symmetric", [True, False], ids=["sym", "asym"])
class TestPipelineParity:
    def test_run_and_cached_match_local(self, any_scheme, kernel_name, symmetric):
        comp, build = KERNEL_CASES[kernel_name]
        dataset = build(V)
        reference = flatten(
            PairwiseComputation(
                any_scheme, comp, symmetric=symmetric
            ).run_local(dataset),
            symmetric,
        )
        computation = PairwiseComputation(
            any_scheme, comp, symmetric=symmetric, kernel=kernel_name
        )
        assert_close_maps(flatten(computation.run(dataset), symmetric), reference)
        assert_close_maps(
            flatten(computation.run_cached(dataset), symmetric), reference
        )

    def test_scalar_pipeline_is_bit_identical(self, any_scheme, kernel_name, symmetric):
        comp, build = KERNEL_CASES[kernel_name]
        dataset = build(V)
        reference = flatten(
            PairwiseComputation(
                any_scheme, comp, symmetric=symmetric
            ).run_local(dataset),
            symmetric,
        )
        for spec in (None, "scalar"):
            computation = PairwiseComputation(
                any_scheme, comp, symmetric=symmetric, kernel=spec
            )
            assert_close_maps(
                flatten(computation.run(dataset), symmetric), reference, exact=True
            )


@pytest.mark.parametrize("kernel_name", sorted(KERNEL_CASES))
def test_broadcast_one_job_parity(kernel_name):
    comp, build = KERNEL_CASES[kernel_name]
    dataset = build(V)
    scheme = BroadcastScheme(V, num_tasks=5)
    reference = results_matrix(
        PairwiseComputation(scheme, comp).run_local(dataset)
    )
    merged = PairwiseComputation(scheme, comp, kernel=kernel_name).run_broadcast_job(
        dataset
    )
    assert_close_maps(results_matrix(merged), reference)


def test_auto_matches_explicit_kernel(any_scheme):
    dataset = make_sparse(V)
    auto = PairwiseComputation(any_scheme, cosine_similarity, kernel="auto")
    explicit = PairwiseComputation(
        any_scheme, cosine_similarity, kernel="csr-cosine"
    )
    assert results_matrix(auto.run(dataset)) == results_matrix(explicit.run(dataset))


def test_empty_working_sets():
    """More broadcast tasks than pairs: some tasks evaluate nothing."""
    scheme = BroadcastScheme(2, num_tasks=4)
    dataset = make_dense(2)
    for kernel in (None, "dense-euclidean"):
        merged = PairwiseComputation(
            scheme, euclidean_distance, kernel=kernel
        ).run(dataset)
        pairs = results_matrix(merged)
        assert set(pairs) == {(2, 1)}
        assert math.isclose(
            pairs[(2, 1)],
            euclidean_distance(dataset[1], dataset[0]),
            rel_tol=REL_TOLERANCE,
        )


class SingletonScheme(DistributionScheme):
    """Task 0 sees all elements; task 1 holds element 1 alone (no pairs)."""

    def get_subsets(self, element_id: int) -> list[int]:
        self._check_element_id(element_id)
        return [0, 1] if element_id == 1 else [0]

    def get_pairs(self, subset_id, members):
        self._check_subset_id(subset_id)
        if subset_id == 1:
            return []
        return [(i, j) for i in members for j in members if i > j]

    @property
    def num_tasks(self) -> int:
        return 2

    def metrics(self) -> SchemeMetrics:
        triangle = self.v * (self.v - 1) // 2
        return SchemeMetrics(
            scheme="singleton-test",
            v=self.v,
            num_tasks=2,
            communication_records=2 * (self.v + 1),
            replication_factor=(self.v + 1) / self.v,
            working_set_elements=self.v,
            evaluations_per_task=triangle / 2,
        )


@pytest.mark.parametrize("kernel_name", sorted(KERNEL_CASES))
def test_singleton_working_set(kernel_name):
    """A working set of one element produces no pairs but still merges."""
    comp, build = KERNEL_CASES[kernel_name]
    scheme = SingletonScheme(6)
    dataset = build(6)
    reference = results_matrix(
        PairwiseComputation(scheme, comp).run_local(dataset)
    )
    computation = PairwiseComputation(scheme, comp, kernel=kernel_name)
    for merged in (computation.run(dataset), computation.run_cached(dataset)):
        assert set(merged) == set(range(1, 7))
        assert_close_maps(results_matrix(merged), reference)


@pytest.mark.parametrize("symmetric", [True, False], ids=["sym", "asym"])
def test_evaluation_counter_preserved(any_scheme, symmetric):
    """Vectorized dispatch meters EVALUATIONS exactly like the pair loop."""
    dataset = make_dense(V)
    triangle = V * (V - 1) // 2
    for kernel in (None, "dense-euclidean"):
        computation = PairwiseComputation(
            any_scheme, euclidean_distance, symmetric=symmetric, kernel=kernel
        )
        _merged, pipeline = computation.run(dataset, return_pipeline=True)
        expected = triangle if symmetric else 2 * triangle
        assert pipeline.counters.get(PAIRWISE_GROUP, EVALUATIONS) == expected


def test_kernel_dispatch_across_processes():
    """config['kernel'] travels to pool workers; bindings resolve there."""
    dataset = make_sparse(12)
    scheme = BroadcastScheme(12, num_tasks=4)
    reference = results_matrix(
        PairwiseComputation(scheme, cosine_similarity).run_local(dataset)
    )
    engine = MultiprocessEngine(max_workers=2)
    try:
        merged = PairwiseComputation(
            scheme, cosine_similarity, engine=engine, kernel="auto"
        ).run_cached(dataset)
    finally:
        engine.close()
    assert_close_maps(results_matrix(merged), reference)
