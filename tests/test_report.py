"""ASCII chart renderer tests."""

import pytest

from repro.report.ascii_chart import AsciiChart, loglog_chart


class TestValidation:
    def test_minimum_dimensions(self):
        with pytest.raises(ValueError):
            AsciiChart(width=5, height=10)
        with pytest.raises(ValueError):
            AsciiChart(width=20, height=2)

    def test_empty_series_rejected(self):
        chart = AsciiChart()
        with pytest.raises(ValueError):
            chart.add_series("empty", [])

    def test_log_axis_rejects_nonpositive(self):
        chart = AsciiChart(log_x=True, log_y=True)
        with pytest.raises(ValueError):
            chart.add_series("bad", [(0.0, 1.0)])
        with pytest.raises(ValueError):
            chart.add_series("bad", [(1.0, -1.0)])

    def test_render_without_series_rejected(self):
        with pytest.raises(ValueError):
            AsciiChart().render()


class TestRendering:
    def test_marker_appears(self):
        chart = AsciiChart(width=20, height=6)
        chart.add_series("s", [(0, 0), (1, 1)])
        out = chart.render()
        assert "*" in out
        assert "*=s" in out  # legend

    def test_distinct_markers_per_series(self):
        chart = AsciiChart(width=20, height=6)
        chart.add_series("a", [(0, 0)])
        chart.add_series("b", [(1, 1)])
        out = chart.render()
        assert "*=a" in out and "o=b" in out

    def test_monotone_series_descends(self):
        """A decreasing series' markers move down-right in the grid."""
        chart = AsciiChart(width=30, height=10)
        chart.add_series("down", [(0, 10), (1, 5), (2, 1)])
        lines = chart.render().splitlines()
        plot = [line.split("|", 1)[1] for line in lines if "|" in line]
        positions = [
            (row, col)
            for row, line in enumerate(plot)
            for col, ch in enumerate(line)
            if ch == "*"
        ]
        positions.sort(key=lambda rc: rc[1])  # by column (x)
        rows = [row for row, _col in positions]
        assert rows == sorted(rows)  # lower y → larger row index

    def test_log_axis_tick_labels(self):
        out = loglog_chart({"s": [(10, 100), (1000, 10_000)]})
        assert "1e1" in out and "1e3" in out  # x range
        assert "1e2" in out and "1e4" in out  # y range

    def test_single_point_no_crash(self):
        chart = AsciiChart(width=12, height=4)
        chart.add_series("dot", [(5, 5)])
        assert "*" in chart.render()

    def test_dimensions(self):
        chart = AsciiChart(width=25, height=7)
        chart.add_series("s", [(0, 0), (1, 1)])
        lines = chart.render().splitlines()
        plot_lines = [line for line in lines if "|" in line]
        assert len(plot_lines) == 7
        assert all(len(line.split("|", 1)[1]) == 25 for line in plot_lines)

    def test_axis_labels_present(self):
        chart = AsciiChart(width=20, height=5, x_label="size", y_label="count")
        chart.add_series("s", [(1, 1), (2, 2)])
        out = chart.render()
        assert "size" in out and "count" in out


class TestLogLogHelper:
    def test_multiple_series(self):
        out = loglog_chart(
            {"a": [(1, 1), (10, 10)], "b": [(1, 10), (10, 1)]},
            width=30,
            height=8,
        )
        assert "*=a" in out and "o=b" in out
