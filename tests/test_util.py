"""Tests for the shared utility module."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import (
    GB,
    KB,
    MB,
    TB,
    ceil_div,
    chunked,
    format_bytes,
    isqrt_ceil,
    mean,
    stdev,
    triangle_count,
)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(10, 5) == 2

    def test_rounds_up(self):
        assert ceil_div(11, 5) == 3
        assert ceil_div(1, 5) == 1

    def test_zero_dividend(self):
        assert ceil_div(0, 7) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ceil_div(5, 0)
        with pytest.raises(ValueError):
            ceil_div(-1, 5)

    @given(a=st.integers(min_value=0, max_value=10**12), b=st.integers(min_value=1, max_value=10**6))
    def test_property(self, a, b):
        q = ceil_div(a, b)
        assert (q - 1) * b < a or a == 0
        assert q * b >= a


class TestTriangleCount:
    def test_values(self):
        assert triangle_count(0) == 0
        assert triangle_count(1) == 0
        assert triangle_count(2) == 1
        assert triangle_count(7) == 21

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            triangle_count(-1)


class TestIsqrtCeil:
    def test_perfect_squares(self):
        assert isqrt_ceil(49) == 7

    def test_rounds_up(self):
        assert isqrt_ceil(50) == 8

    def test_zero(self):
        assert isqrt_ceil(0) == 0

    @given(x=st.integers(min_value=0, max_value=10**15))
    def test_property(self, x):
        r = isqrt_ceil(x)
        assert r * r >= x
        assert (r - 1) * (r - 1) < x or x == 0


class TestChunked:
    def test_even_chunks(self):
        assert list(chunked([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_ragged_tail(self):
        assert list(chunked([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_validation(self):
        with pytest.raises(ValueError):
            list(chunked([1], 0))


class TestFormatBytes:
    def test_units(self):
        assert format_bytes(500) == "500B"
        assert format_bytes(500 * KB) == "500KB"
        assert format_bytes(1.5 * MB) == "1.5MB"
        assert format_bytes(2 * GB) == "2GB"
        assert format_bytes(3 * TB) == "3TB"

    def test_negative(self):
        assert format_bytes(-2 * MB) == "-2MB"


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_stdev(self):
        assert stdev([2.0, 2.0]) == 0.0
        assert stdev([0.0, 2.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            stdev([])
