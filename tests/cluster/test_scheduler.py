"""LPT scheduler tests."""

import pytest

from repro.cluster.node import ClusterSpec, NodeSpec
from repro.cluster.scheduler import TaskCost, schedule_lpt, schedule_round_robin


def cluster(nodes=2, slots=2):
    return ClusterSpec.homogeneous(nodes, NodeSpec(slots=slots))


class TestTaskCost:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TaskCost(1, -0.5)


class TestLPT:
    def test_all_tasks_placed(self):
        tasks = [TaskCost(i, float(i + 1)) for i in range(10)]
        assignment = schedule_lpt(tasks, cluster())
        assert set(assignment.placement) == set(range(10))

    def test_makespan_bounded_by_lpt_guarantee(self):
        """LPT ≤ 4/3·OPT; OPT ≥ max(total/slots, longest task)."""
        tasks = [TaskCost(i, float((i * 37) % 19 + 1)) for i in range(40)]
        c = cluster(4, 2)
        assignment = schedule_lpt(tasks, c)
        total = sum(t.seconds for t in tasks)
        opt_lb = max(total / 8, max(t.seconds for t in tasks))
        assert assignment.makespan <= 4 / 3 * opt_lb + 1e-9

    def test_equal_tasks_perfectly_balanced(self):
        tasks = [TaskCost(i, 1.0) for i in range(8)]
        assignment = schedule_lpt(tasks, cluster(2, 2))
        assert assignment.makespan == pytest.approx(2.0)
        assert assignment.imbalance == pytest.approx(1.0)

    def test_single_huge_task_dominates(self):
        tasks = [TaskCost(0, 100.0)] + [TaskCost(i, 1.0) for i in range(1, 5)]
        assignment = schedule_lpt(tasks, cluster(2, 1))
        assert assignment.makespan == pytest.approx(100.0)

    def test_deterministic(self):
        tasks = [TaskCost(i, float((i * 7) % 5 + 1)) for i in range(20)]
        a = schedule_lpt(tasks, cluster())
        b = schedule_lpt(tasks, cluster())
        assert a.placement == b.placement

    def test_empty_tasks(self):
        assignment = schedule_lpt([], cluster())
        assert assignment.makespan == 0.0

    def test_node_loads(self):
        tasks = [TaskCost(i, 1.0) for i in range(4)]
        assignment = schedule_lpt(tasks, cluster(2, 2))
        loads = assignment.node_loads()
        assert set(loads) == {0, 1}


class TestHeterogeneousLPT:
    def _mixed_cluster(self):
        from repro.cluster.node import ClusterSpec, NodeSpec

        return ClusterSpec(
            nodes=[
                NodeSpec(eval_rate=10_000, slots=1),  # reference speed
                NodeSpec(eval_rate=40_000, slots=1),  # 4× faster
            ]
        )

    def test_fast_node_gets_more_work(self):
        from repro.cluster.scheduler import schedule_lpt_heterogeneous

        tasks = [TaskCost(i, 1.0) for i in range(10)]
        assignment = schedule_lpt_heterogeneous(tasks, self._mixed_cluster())
        from collections import Counter

        counts = Counter(node for node, _slot in assignment.placement.values())
        assert counts[1] > counts[0]  # the 4× node takes the majority

    def test_homogeneous_matches_plain_lpt_makespan(self):
        from repro.cluster.scheduler import schedule_lpt, schedule_lpt_heterogeneous

        tasks = [TaskCost(i, float((i * 3) % 7 + 1)) for i in range(20)]
        c = cluster(3, 2)
        plain = schedule_lpt(tasks, c)
        hetero = schedule_lpt_heterogeneous(tasks, c)
        assert hetero.makespan == pytest.approx(plain.makespan, rel=0.25)

    def test_beats_speed_blind_lpt_on_mixed_cluster(self):
        from repro.cluster.scheduler import schedule_lpt, schedule_lpt_heterogeneous

        tasks = [TaskCost(i, 2.0) for i in range(12)]
        mixed = self._mixed_cluster()
        blind = schedule_lpt(tasks, mixed)  # counts loads in reference-seconds
        aware = schedule_lpt_heterogeneous(tasks, mixed)
        # Speed-aware loads are in *wall* seconds; the blind makespan in
        # wall seconds is its slot load divided by that slot's speed-up —
        # node 0 holds 6 tasks × 2 s = 12 s wall either way, while the
        # aware schedule puts ~2.4 s on node 0 and the rest on the 4× node.
        assert aware.makespan < 12.0

    def test_deterministic(self):
        from repro.cluster.scheduler import schedule_lpt_heterogeneous

        tasks = [TaskCost(i, float(i % 4 + 1)) for i in range(15)]
        a = schedule_lpt_heterogeneous(tasks, self._mixed_cluster())
        b = schedule_lpt_heterogeneous(tasks, self._mixed_cluster())
        assert a.placement == b.placement


class TestRoundRobinBaseline:
    def test_lpt_no_worse_than_round_robin(self):
        """On skewed tasks LPT beats (or ties) naive placement."""
        tasks = [TaskCost(i, float(2**(i % 6))) for i in range(24)]
        c = cluster(3, 2)
        lpt = schedule_lpt(tasks, c)
        rr = schedule_round_robin(tasks, c)
        assert lpt.makespan <= rr.makespan + 1e-9

    def test_round_robin_spreads_counts(self):
        tasks = [TaskCost(i, 1.0) for i in range(12)]
        assignment = schedule_round_robin(tasks, cluster(2, 2))
        from collections import Counter

        counts = Counter(assignment.placement.values())
        assert all(count == 3 for count in counts.values())
