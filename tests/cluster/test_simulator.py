"""Cluster-simulator tests: the §6 measurements."""

import pytest

from repro._util import GB, KB, MB, TB
from repro.cluster.node import ClusterSpec, NodeSpec
from repro.cluster.simulator import ClusterSimulator
from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.design import DesignScheme
from repro.core.hierarchical import HierarchicalBlockScheme, SequentialDesignSchedule


def simulator(**kwargs):
    defaults = dict(
        cluster=ClusterSpec.homogeneous(8, NodeSpec(slot_memory=200 * MB, slots=2)),
        maxis=1 * TB,
    )
    defaults.update(kwargs)
    return ClusterSimulator(**defaults)


class TestMeasuredVsTheory:
    def test_block_replication_exact(self):
        """§6: 'results for replication factor and working set sizes showed
        to be close to our theoretic evaluations' — block is exact."""
        scheme = BlockScheme(1000, 10)
        report = simulator().simulate(scheme, element_size=100 * KB)
        comparison = report.compare(scheme.metrics())
        by_name = {row.quantity: row for row in comparison.rows()}
        assert by_name["replication_factor"].relative_error == 0.0
        assert by_name["working_set_elements"].relative_error == 0.0

    def test_design_close_to_sqrt_v_theory(self):
        # v = 993 = 31²+31+1 is an exact plane size, where the paper's √v
        # approximation is tight; heavily truncated planes drift ~q/√v.
        scheme = DesignScheme(993)
        report = simulator().simulate(scheme, element_size=100 * KB)
        comparison = report.compare(DesignScheme.approx_metrics(993))
        by_name = {row.quantity: row for row in comparison.rows()}
        # √v approximations hold within a few percent on real planes.
        assert by_name["replication_factor"].relative_error < 0.05
        assert by_name["working_set_elements"].relative_error < 0.05

    def test_broadcast_ws_equals_dataset(self):
        scheme = BroadcastScheme(500, 16)
        report = simulator().simulate(scheme, element_size=100 * KB)
        assert report.measured.max_working_set_elements == 500
        assert report.measured.max_working_set_bytes == 500 * 100 * KB


class TestLimits:
    def test_overhead_triggers_early_maxws_violation(self):
        """The paper's §6 anecdote: the ws limit is hit *earlier* than the
        pure element count predicts because of runtime overhead."""
        scheme = BroadcastScheme(2000, 16)  # exactly 200 MB of elements
        clean = simulator().simulate(scheme, element_size=100 * KB)
        assert clean.feasible
        padded = simulator(task_overhead_bytes=20 * MB).simulate(
            scheme, element_size=100 * KB
        )
        assert not padded.feasible
        violated = [c for c in padded.limit_checks if not c.ok]
        assert violated and "maxws" in violated[0].name

    def test_maxis_violation_detected(self):
        scheme = DesignScheme(500)
        report = simulator(maxis=1 * GB).simulate(scheme, element_size=1 * MB)
        names = [c.name for c in report.limit_checks if not c.ok]
        assert any("maxis" in name for name in names)

    def test_maxis_check_optional(self):
        sim = ClusterSimulator(ClusterSpec.homogeneous(2))
        report = sim.simulate(BlockScheme(100, 5), element_size=1 * KB)
        assert len(report.limit_checks) == 1  # only maxws

    def test_limit_check_format(self):
        report = simulator().simulate(BlockScheme(100, 5), element_size=1 * KB)
        assert "maxws" in report.limit_checks[0].format()


class TestMakespan:
    def test_more_nodes_faster(self):
        scheme = BlockScheme(500, 10)
        small = simulator(
            cluster=ClusterSpec.homogeneous(2, NodeSpec(slots=2))
        ).simulate(scheme, element_size=10 * KB)
        large = simulator(
            cluster=ClusterSpec.homogeneous(16, NodeSpec(slots=2))
        ).simulate(scheme, element_size=10 * KB)
        assert large.measured.makespan_seconds < small.measured.makespan_seconds

    def test_total_evaluations_conserved(self):
        for scheme in (
            BroadcastScheme(200, 8),
            BlockScheme(200, 5),
            DesignScheme(200),
        ):
            report = simulator().simulate(scheme, element_size=10 * KB)
            assert report.measured.total_evaluations == 200 * 199 // 2

    def test_eval_seconds_override(self):
        scheme = BlockScheme(200, 5)
        fast = simulator().simulate(scheme, element_size=10 * KB, eval_seconds=1e-6)
        slow = simulator().simulate(scheme, element_size=10 * KB, eval_seconds=1e-2)
        assert slow.measured.makespan_seconds > fast.measured.makespan_seconds


class TestSchedules:
    def test_hierarchical_eases_both_limits(self):
        """§7: the two-level scheme reduces peak intermediate AND ws."""
        flat = simulator().simulate(BlockScheme(1000, 4), element_size=1 * MB)
        hier = simulator().simulate_schedule(
            HierarchicalBlockScheme(1000, 4, 4), element_size=1 * MB
        )
        assert hier.measured.intermediate_bytes < flat.measured.intermediate_bytes
        assert (
            hier.measured.max_working_set_bytes
            <= flat.measured.max_working_set_bytes
        )

    def test_sequential_design_reduces_intermediate(self):
        design = DesignScheme(500)
        flat = simulator().simulate(design, element_size=1 * MB)
        seq = simulator().simulate_schedule(
            SequentialDesignSchedule(design, 10), element_size=1 * MB
        )
        assert seq.measured.intermediate_bytes < flat.measured.intermediate_bytes / 5

    def test_schedule_evaluations_conserved(self):
        schedule = HierarchicalBlockScheme(200, 4, 3)
        report = simulator().simulate_schedule(schedule, element_size=10 * KB)
        assert report.measured.total_evaluations == 200 * 199 // 2

    def test_rounds_serialize_makespan(self):
        """Sequential rounds can't be faster than the sum of round bests."""
        schedule = HierarchicalBlockScheme(200, 4, 2)
        report = simulator().simulate_schedule(schedule, element_size=10 * KB)
        assert report.measured.makespan_seconds > 0


class TestInputLocality:
    def test_full_replication_all_local(self):
        """Replication >= node count: every block has a local replica."""
        sim = ClusterSimulator(ClusterSpec.homogeneous(3))
        stats = sim.simulate if False else sim.input_locality(
            1 * GB, dfs_replication=3
        )
        assert stats["local_fraction"] == 1.0
        assert stats["remote_bytes"] == 0.0

    def test_partial_replication_mostly_local(self):
        """3-way replication on 8 nodes: a solid local majority, not all."""
        sim = ClusterSimulator(ClusterSpec.homogeneous(8))
        stats = sim.input_locality(10 * GB, dfs_replication=3, seed=5)
        assert 0.3 < stats["local_fraction"] < 1.0
        assert stats["local_bytes"] + stats["remote_bytes"] == 10 * GB

    def test_single_replica_worst_case(self):
        sim = ClusterSimulator(ClusterSpec.homogeneous(8))
        one = sim.input_locality(10 * GB, dfs_replication=1, seed=1)
        three = sim.input_locality(10 * GB, dfs_replication=3, seed=1)
        assert three["local_fraction"] >= one["local_fraction"]

    def test_read_seconds_positive(self):
        sim = ClusterSimulator(ClusterSpec.homogeneous(4))
        assert sim.input_locality(1 * GB)["read_seconds"] > 0

    def test_validation(self):
        sim = ClusterSimulator(ClusterSpec.homogeneous(2))
        with pytest.raises(ValueError):
            sim.input_locality(0)


class TestValidation:
    def test_bad_element_size(self):
        with pytest.raises(ValueError):
            simulator().simulate(BlockScheme(10, 2), element_size=0)
        with pytest.raises(ValueError):
            simulator().simulate_schedule(
                HierarchicalBlockScheme(10, 2, 2), element_size=0
            )

    def test_bad_overhead(self):
        with pytest.raises(ValueError):
            simulator(task_overhead_bytes=-1)
