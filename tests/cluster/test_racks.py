"""Rack-aware topology tests."""

import pytest

from repro._util import MB
from repro.cluster.racks import (
    Locality,
    RackTopology,
    locality_profile,
    rack_aware_placement,
    read_locality,
    read_seconds,
)


def topo(nodes=8, per_rack=4):
    return RackTopology(num_nodes=nodes, nodes_per_rack=per_rack)


class TestTopology:
    def test_rack_assignment(self):
        t = topo(8, 4)
        assert t.num_racks == 2
        assert t.rack_of(0) == 0
        assert t.rack_of(3) == 0
        assert t.rack_of(4) == 1

    def test_ragged_last_rack(self):
        t = topo(10, 4)
        assert t.num_racks == 3
        assert t.rack_members(2) == [8, 9]

    def test_bandwidth_tiers(self):
        t = topo()
        assert t.bandwidth_between(0, 0) == float("inf")
        assert t.bandwidth_between(0, 1) == t.intra_rack_bandwidth
        assert t.bandwidth_between(0, 5) == t.cross_rack_bandwidth

    def test_validation(self):
        with pytest.raises(ValueError):
            RackTopology(num_nodes=0)
        with pytest.raises(ValueError):
            RackTopology(num_nodes=4, nodes_per_rack=0)
        with pytest.raises(ValueError):
            RackTopology(num_nodes=4, intra_rack_bandwidth=0)
        with pytest.raises(ValueError):
            topo().rack_of(99)


class TestPlacement:
    def test_three_replica_policy(self):
        """Primary on writer; replicas 2+3 together on one *other* rack."""
        t = topo(8, 4)
        placements = rack_aware_placement(t, 16, replication=3, seed=3)
        for block, replicas in enumerate(placements):
            assert len(replicas) == 3
            assert len(set(replicas)) == 3
            primary_rack = t.rack_of(replicas[0])
            other_racks = {t.rack_of(node) for node in replicas[1:]}
            assert len(other_racks) == 1
            assert other_racks != {primary_rack}

    def test_survives_rack_failure(self):
        """The policy's point: no rack holds all replicas of a block."""
        t = topo(12, 4)
        for replicas in rack_aware_placement(t, 30, seed=9):
            racks = {t.rack_of(node) for node in replicas}
            assert len(racks) >= 2

    def test_single_rack_degenerates(self):
        t = topo(4, 4)
        placements = rack_aware_placement(t, 8, replication=3, seed=1)
        for replicas in placements:
            assert len(replicas) == 3
            assert len(set(replicas)) == 3

    def test_replication_capped_by_nodes(self):
        t = topo(2, 1)
        placements = rack_aware_placement(t, 4, replication=5, seed=0)
        assert all(len(r) == 2 for r in placements)

    def test_deterministic(self):
        t = topo()
        assert rack_aware_placement(t, 10, seed=4) == rack_aware_placement(
            t, 10, seed=4
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            rack_aware_placement(topo(), -1)
        with pytest.raises(ValueError):
            rack_aware_placement(topo(), 1, replication=0)


class TestLocality:
    def test_levels(self):
        t = topo(8, 4)
        assert read_locality(t, 0, [0, 5]) is Locality.NODE_LOCAL
        assert read_locality(t, 1, [0, 5]) is Locality.RACK_LOCAL
        assert read_locality(t, 6, [0, 1]) is Locality.OFF_RACK

    def test_empty_replicas_rejected(self):
        with pytest.raises(ValueError):
            read_locality(topo(), 0, [])

    def test_read_time_ordering(self):
        """node-local <= rack-local <= off-rack for the same bytes."""
        t = topo(8, 4)
        size = 64 * MB
        node_local = read_seconds(t, 0, [0], size)
        rack_local = read_seconds(t, 1, [0], size)
        off_rack = read_seconds(t, 6, [0], size)
        assert node_local <= rack_local <= off_rack
        assert off_rack == size / t.cross_rack_bandwidth

    def test_profile_totals(self):
        t = topo(8, 4)
        placements = rack_aware_placement(t, 20, seed=2)
        readers = [block % t.num_nodes for block in range(20)]
        profile = locality_profile(t, placements, readers, 64 * MB)
        assert sum(profile.values()) == 20 * 64 * MB
        # The writer-rotation makes every read node-local here.
        assert profile[Locality.NODE_LOCAL] == 20 * 64 * MB

    def test_profile_with_shifted_readers(self):
        t = topo(8, 4)
        placements = rack_aware_placement(t, 20, seed=2)
        readers = [(block + 1) % t.num_nodes for block in range(20)]
        profile = locality_profile(t, placements, readers, 64 * MB)
        assert profile[Locality.NODE_LOCAL] < 20 * 64 * MB

    def test_mismatched_lengths_rejected(self):
        t = topo()
        with pytest.raises(ValueError):
            locality_profile(t, [[0]], [0, 1], 10)
