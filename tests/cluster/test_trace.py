"""Execution trace / Gantt tests."""

import pytest

from repro.cluster.node import ClusterSpec, NodeSpec
from repro.cluster.scheduler import TaskCost
from repro.cluster.trace import Trace, TaskSpan, build_trace


def cluster(nodes=2, slots=1):
    return ClusterSpec.homogeneous(nodes, NodeSpec(slots=slots))


def sample_trace():
    tasks = [TaskCost(i, float(i % 3 + 1)) for i in range(8)]
    return build_trace(tasks, cluster(2, 2)), tasks


class TestBuildTrace:
    def test_all_tasks_present(self):
        trace, tasks = sample_trace()
        assert sorted(span.task_id for span in trace.spans) == [t.task_id for t in tasks]

    def test_durations_match_costs(self):
        trace, tasks = sample_trace()
        cost = {t.task_id: t.seconds for t in tasks}
        for span in trace.spans:
            assert span.duration == pytest.approx(cost[span.task_id])

    def test_no_overlap_within_slot(self):
        trace, _tasks = sample_trace()
        for node in (0, 1):
            for slot in (0, 1):
                spans = trace.spans_on(node, slot)
                for earlier, later in zip(spans, spans[1:]):
                    assert later.start >= earlier.end - 1e-12

    def test_makespan_matches_lpt(self):
        from repro.cluster.scheduler import schedule_lpt

        tasks = [TaskCost(i, float((i * 7) % 5 + 1)) for i in range(12)]
        c = cluster(3, 1)
        trace = build_trace(tasks, c)
        assert trace.makespan == pytest.approx(schedule_lpt(tasks, c).makespan)

    def test_empty_tasks(self):
        trace = build_trace([], cluster())
        assert trace.makespan == 0.0
        assert trace.gantt() == "(empty trace)"


class TestUtilization:
    def test_perfectly_packed(self):
        tasks = [TaskCost(i, 2.0) for i in range(4)]
        trace = build_trace(tasks, cluster(2, 2))
        util = trace.utilization()
        assert all(value == pytest.approx(1.0) for value in util.values())
        assert trace.mean_utilization() == pytest.approx(1.0)

    def test_idle_slots_lower_mean(self):
        tasks = [TaskCost(0, 10.0), TaskCost(1, 1.0)]
        trace = build_trace(tasks, cluster(2, 1))
        assert trace.mean_utilization() < 1.0


class TestExport:
    def test_json_roundtrip(self):
        trace, _tasks = sample_trace()
        restored = Trace.from_json(trace.to_json())
        assert sorted(restored.spans, key=lambda s: s.task_id) == sorted(
            trace.spans, key=lambda s: s.task_id
        )

    def test_gantt_has_one_row_per_slot(self):
        trace, _tasks = sample_trace()
        lines = trace.gantt(width=40).splitlines()
        slot_rows = [line for line in lines if line.startswith("n")]
        assert len(slot_rows) == 4  # 2 nodes × 2 slots

    def test_gantt_width_validation(self):
        trace, _tasks = sample_trace()
        with pytest.raises(ValueError):
            trace.gantt(width=5)

    def test_gantt_contains_task_digits(self):
        trace = Trace(spans=[TaskSpan(7, 0, 0, 0.0, 5.0)])
        assert "7" in trace.gantt(width=20)


class TestSlotInventory:
    def test_empty_trace_roundtrip_keeps_slots(self):
        trace = Trace(spans=[], slots=[(0, 0), (0, 1), (1, 0)])
        restored = Trace.from_json(trace.to_json())
        assert restored.slots == [(0, 0), (0, 1), (1, 0)]
        assert restored.spans == []
        assert restored.utilization() == {(0, 0): 0.0, (0, 1): 0.0, (1, 0): 0.0}

    def test_single_span_roundtrip(self):
        trace = Trace(spans=[TaskSpan(3, 1, 0, 0.0, 2.5)], slots=[(0, 0), (1, 0)])
        restored = Trace.from_json(trace.to_json())
        assert restored.spans == trace.spans
        assert restored.slots == [(0, 0), (1, 0)]
        # The idle inventoried slot shows up as zero utilization.
        assert restored.utilization()[(0, 0)] == 0.0

    def test_single_bare_span_document(self):
        restored = Trace.from_json(
            '{"task": 1, "node": 0, "slot": 2, "start": 0.0, "end": 1.0}'
        )
        assert restored.spans == [TaskSpan(1, 0, 2, 0.0, 1.0)]

    def test_legacy_span_array_still_loads(self):
        legacy = '[{"task": 1, "node": 0, "slot": 0, "start": 0.0, "end": 1.0}]'
        restored = Trace.from_json(legacy)
        assert restored.spans == [TaskSpan(1, 0, 0, 0.0, 1.0)]
        assert restored.slots == [(0, 0)]

    def test_jsonl_event_stream_loads(self):
        text = "\n".join(
            [
                '{"type": "PhaseMarker", "time": 0.0, "job": "j", '
                '"kind": "map", "num_tasks": 1, "state": "started"}',
                '{"task": 0, "node": 0, "slot": 0, "start": 0.0, "end": 1.0}',
                '{"task": 1, "node": 0, "slot": 1, "start": 0.5, "end": 2.0}',
            ]
        )
        restored = Trace.from_json(text)
        assert len(restored.spans) == 2
        assert restored.makespan == pytest.approx(2.0)

    def test_unrecognized_document_raises(self):
        with pytest.raises(ValueError):
            Trace.from_json('{"not": "a trace"}')

    def test_jsonl_torn_final_line_tolerated(self):
        # A trace sink that dies mid-write leaves a torn last line; the
        # loader keeps everything before it (crash-artifact tolerance).
        text = "\n".join(
            [
                '{"task": 0, "node": 0, "slot": 0, "start": 0.0, "end": 1.0}',
                '{"task": 1, "node": 0, "slot": 1, "start": 0.5, "end": 2.0}',
                '{"task": 2, "node": 0, "slot": 0, "start": 1.0, "e',
            ]
        )
        restored = Trace.from_json(text)
        assert [span.task_id for span in restored.spans] == [0, 1]

    def test_jsonl_interior_corruption_still_raises(self):
        text = "\n".join(
            [
                '{"task": 0, "node": 0, "slot": 0, "start": 0.0, "end": 1.0}',
                '{"task": 1, "torn',
                '{"task": 2, "node": 0, "slot": 0, "start": 1.0, "end": 2.0}',
            ]
        )
        with pytest.raises(ValueError):
            Trace.from_json(text)

    def test_slots_derived_from_spans_when_omitted(self):
        trace = Trace(spans=[TaskSpan(1, 2, 3, 0.0, 1.0)])
        assert trace.slots == [(2, 3)]

    def test_build_trace_inventories_idle_slots(self):
        trace = build_trace([TaskCost(0, 5.0)], cluster(2, 2))
        assert len(trace.slots) == 4
        util = trace.utilization()
        assert sum(1 for value in util.values() if value == 0.0) == 3
