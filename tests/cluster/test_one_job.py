"""One-job broadcast simulation tests (§5.1's distributed-cache form)."""

import pytest

from repro._util import KB, MB, TB
from repro.cluster.node import ClusterSpec, NodeSpec
from repro.cluster.simulator import ClusterSimulator
from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme


def simulator(**kwargs):
    defaults = dict(
        cluster=ClusterSpec.homogeneous(8, NodeSpec(slot_memory=400 * MB, slots=2)),
        maxis=1 * TB,
    )
    defaults.update(kwargs)
    return ClusterSimulator(**defaults)


class TestOneJobSimulation:
    def test_requires_broadcast_scheme(self):
        with pytest.raises(TypeError):
            simulator().simulate_broadcast_one_job(BlockScheme(100, 5), 1 * KB)

    def test_replication_is_node_count(self):
        scheme = BroadcastScheme(500, 16)
        report = simulator().simulate_broadcast_one_job(scheme, 100 * KB)
        # Cache = one dataset copy per node, not per task.
        assert report.measured.replication_factor == 8

    def test_cheaper_intermediate_than_two_job_for_big_elements(self):
        """The one-job form ships results (16 B) instead of element
        copies — a large win when elements are big."""
        scheme = BroadcastScheme(500, 16)
        two_job = simulator().simulate(scheme, 500 * KB)
        one_job = simulator().simulate_broadcast_one_job(scheme, 500 * KB)
        assert (
            one_job.measured.intermediate_bytes
            < two_job.measured.intermediate_bytes
        )

    def test_evaluations_conserved(self):
        scheme = BroadcastScheme(300, 10)
        report = simulator().simulate_broadcast_one_job(scheme, 10 * KB)
        assert report.measured.total_evaluations == 300 * 299 // 2

    def test_broadcast_time_in_makespan(self):
        """A slow network makes the cache broadcast visible in makespan."""
        from repro.cluster.network import NetworkModel

        scheme = BroadcastScheme(500, 16)
        fast = simulator(network=NetworkModel(bandwidth=10_000 * MB)) \
            .simulate_broadcast_one_job(scheme, 1 * MB)
        slow = simulator(network=NetworkModel(bandwidth=10 * MB)) \
            .simulate_broadcast_one_job(scheme, 1 * MB)
        assert slow.measured.makespan_seconds > fast.measured.makespan_seconds

    def test_memory_limit_still_binds(self):
        scheme = BroadcastScheme(5000, 16)  # 5000 × 100 KB = 500 MB > slot
        report = simulator().simulate_broadcast_one_job(scheme, 100 * KB)
        assert not report.feasible

    def test_element_size_validation(self):
        with pytest.raises(ValueError):
            simulator().simulate_broadcast_one_job(BroadcastScheme(10, 2), 0)
