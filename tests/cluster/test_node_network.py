"""Node/cluster spec and network model tests."""

import pytest

from repro._util import MB
from repro.cluster.network import NetworkModel
from repro.cluster.node import ClusterSpec, NodeSpec


class TestNodeSpec:
    def test_defaults_match_paper_environment(self):
        node = NodeSpec()
        assert node.slot_memory == 200 * MB  # the paper's observed maxws

    def test_usable_memory_after_overhead(self):
        node = NodeSpec(slot_memory=200 * MB, memory_overhead=0.1)
        assert node.usable_slot_memory == 180 * MB

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(slot_memory=0)
        with pytest.raises(ValueError):
            NodeSpec(slots=0)
        with pytest.raises(ValueError):
            NodeSpec(eval_rate=0)
        with pytest.raises(ValueError):
            NodeSpec(memory_overhead=1.0)
        with pytest.raises(ValueError):
            NodeSpec(memory_overhead=-0.1)


class TestClusterSpec:
    def test_homogeneous(self):
        cluster = ClusterSpec.homogeneous(8)
        assert cluster.num_nodes == 8
        assert cluster.total_slots == 16

    def test_min_slot_memory_heterogeneous(self):
        cluster = ClusterSpec(
            nodes=[NodeSpec(slot_memory=400 * MB), NodeSpec(slot_memory=200 * MB)]
        )
        assert cluster.min_slot_memory == 200 * MB

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(nodes=[])
        with pytest.raises(ValueError):
            ClusterSpec.homogeneous(0)


class TestNetworkModel:
    def test_transfer_time_alpha_beta(self):
        net = NetworkModel(bandwidth=100 * MB, latency=1e-3)
        assert net.transfer_time(100 * MB) == pytest.approx(1.001)

    def test_zero_bytes_free(self):
        assert NetworkModel().transfer_time(0) == 0.0

    def test_shuffle_scales_with_nodes(self):
        net = NetworkModel(latency=0.0)
        t4 = net.shuffle_time(400 * MB, 4)
        t8 = net.shuffle_time(400 * MB, 8)
        assert t8 == pytest.approx(t4 / 2)

    def test_broadcast_single_node_free(self):
        assert NetworkModel().broadcast_time(100 * MB, 1) == 0.0

    def test_broadcast_dominated_by_volume(self):
        net = NetworkModel(bandwidth=100 * MB, latency=0.0)
        assert net.broadcast_time(200 * MB, 16) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0)
        with pytest.raises(ValueError):
            NetworkModel(latency=-1)
        with pytest.raises(ValueError):
            NetworkModel().transfer_time(-5)
        with pytest.raises(ValueError):
            NetworkModel().shuffle_time(10, 0)
