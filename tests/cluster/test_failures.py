"""Failure-aware simulation: FailureModel, blacklisting, adjusted makespan."""

import math

import pytest

from repro.cluster import (
    ClusterSimulator,
    ClusterSpec,
    FailureModel,
    TaskCost,
    schedule_lpt,
    schedule_lpt_heterogeneous,
    schedule_round_robin,
)
from repro.cluster.node import NodeSpec
from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.design import DesignScheme
from repro.core.hierarchical import HierarchicalBlockScheme


CLUSTER = ClusterSpec.homogeneous(8)


def typical_task_seconds(scheme):
    report = ClusterSimulator(CLUSTER).simulate(scheme, element_size=1024)
    waves = max(1.0, report.measured.num_tasks / CLUSTER.total_slots)
    return report.measured.makespan_seconds / waves


class TestFailureModel:
    def test_probability_monotonic_in_duration(self):
        model = FailureModel(mtbf_seconds=100.0)
        assert model.failure_probability(0.0) == 0.0
        assert 0 < model.failure_probability(1.0) < model.failure_probability(10.0) < 1

    def test_from_rate_roundtrip(self):
        model = FailureModel.from_task_failure_rate(0.1, 5.0)
        assert model.failure_probability(5.0) == pytest.approx(0.1)

    def test_zero_rate_never_fails(self):
        model = FailureModel.from_task_failure_rate(0.0, 5.0)
        assert math.isinf(model.mtbf_seconds)
        assert model.failure_probability(1e9) == 0.0
        assert model.expected_task_seconds(7.0, refetch_seconds=3.0) == 7.0

    def test_expected_seconds_exceed_plain_seconds(self):
        model = FailureModel(mtbf_seconds=10.0, restart_overhead_seconds=0.5)
        assert model.expected_task_seconds(2.0, refetch_seconds=1.0) > 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureModel(mtbf_seconds=0.0)
        with pytest.raises(ValueError):
            FailureModel(mtbf_seconds=1.0, restart_overhead_seconds=-1)
        with pytest.raises(ValueError):
            FailureModel.from_task_failure_rate(1.0, 5.0)


class TestBlacklisting:
    TASKS = [TaskCost(i, float(1 + i % 3)) for i in range(24)]

    def test_blacklisted_node_gets_no_tasks(self):
        assignment = schedule_lpt(self.TASKS, CLUSTER, blacklist={2})
        assert all(node != 2 for node, _slot in assignment.placement.values())

    def test_blacklist_raises_makespan(self):
        base = schedule_lpt(self.TASKS, CLUSTER).makespan
        degraded = schedule_lpt(self.TASKS, CLUSTER, blacklist={0, 1, 2}).makespan
        assert degraded > base

    def test_heterogeneous_blacklist(self):
        mixed = ClusterSpec(
            nodes=[NodeSpec(), NodeSpec(eval_rate=20_000.0), NodeSpec()]
        )
        assignment = schedule_lpt_heterogeneous(self.TASKS, mixed, blacklist={1})
        assert all(node != 1 for node, _slot in assignment.placement.values())

    def test_round_robin_blacklist(self):
        assignment = schedule_round_robin(self.TASKS, CLUSTER, blacklist={5})
        assert all(node != 5 for node, _slot in assignment.placement.values())

    def test_everything_blacklisted_rejected(self):
        with pytest.raises(ValueError, match="blacklisted"):
            schedule_lpt(self.TASKS, CLUSTER, blacklist=set(range(8)))

    def test_out_of_range_blacklist_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            schedule_lpt(self.TASKS, CLUSTER, blacklist={99})

    def test_simulator_blacklist_slows_scheme(self):
        scheme = DesignScheme(13)
        base = ClusterSimulator(CLUSTER).simulate(scheme, element_size=1024)
        degraded = ClusterSimulator(CLUSTER, blacklist={0, 1, 2, 3}).simulate(
            scheme, element_size=1024
        )
        assert degraded.measured.makespan_seconds > base.measured.makespan_seconds


class TestFailureAdjustedMakespan:
    def test_no_model_is_identity(self):
        measured = ClusterSimulator(CLUSTER).simulate(
            DesignScheme(13), element_size=1024
        ).measured
        assert measured.makespan_failure_adjusted == measured.makespan_seconds
        assert measured.expected_reexecutions == 0.0
        assert measured.recovery_overhead_seconds == 0.0

    def test_monotonic_in_failure_rate(self):
        scheme = DesignScheme(13)
        typical = typical_task_seconds(scheme)
        previous = -1.0
        for rate in (0.0, 0.05, 0.15, 0.40):
            model = FailureModel.from_task_failure_rate(rate, typical)
            measured = ClusterSimulator(CLUSTER, failure_model=model).simulate(
                scheme, element_size=1024
            ).measured
            assert measured.makespan_failure_adjusted >= measured.makespan_seconds
            assert measured.makespan_failure_adjusted >= previous
            previous = measured.makespan_failure_adjusted
        assert previous > ClusterSimulator(CLUSTER).simulate(
            scheme, element_size=1024
        ).measured.makespan_seconds

    def test_deterministic(self):
        model = FailureModel(mtbf_seconds=5.0)
        runs = [
            ClusterSimulator(CLUSTER, failure_model=model)
            .simulate(BlockScheme(12, 3), element_size=1024)
            .measured
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_broadcast_one_job_reports_failure_fields(self):
        scheme = BroadcastScheme(64, 16)
        model = FailureModel(mtbf_seconds=1.0)
        measured = ClusterSimulator(
            CLUSTER, failure_model=model
        ).simulate_broadcast_one_job(scheme, element_size=4096).measured
        assert measured.expected_reexecutions > 0
        assert measured.recovery_overhead_seconds > 0
        assert (
            measured.makespan_failure_adjusted
            == pytest.approx(
                measured.makespan_seconds + measured.recovery_overhead_seconds
            )
        )

    def test_schedule_accumulates_over_rounds(self):
        schedule = HierarchicalBlockScheme(24, 3, 2)
        model = FailureModel(mtbf_seconds=1.0)
        plain = ClusterSimulator(CLUSTER).simulate_schedule(
            schedule, element_size=4096
        ).measured
        failing = ClusterSimulator(CLUSTER, failure_model=model).simulate_schedule(
            schedule, element_size=4096
        ).measured
        assert failing.makespan_seconds == plain.makespan_seconds
        assert failing.makespan_failure_adjusted > plain.makespan_failure_adjusted

    def test_recovery_cost_tracks_working_set_size(self):
        """Per re-execution, a broadcast task (whole dataset refetch) pays
        more recovery overhead than a design task (small working set)."""
        v, element_size = 64, 4096
        model = FailureModel(mtbf_seconds=2.0)
        sim = ClusterSimulator(CLUSTER, failure_model=model)
        broadcast = sim.simulate_broadcast_one_job(
            BroadcastScheme(v, 16), element_size=element_size
        ).measured
        design = sim.simulate(DesignScheme(57), element_size=element_size).measured
        per_reexec_broadcast = (
            broadcast.recovery_overhead_seconds / broadcast.expected_reexecutions
        )
        per_reexec_design = (
            design.recovery_overhead_seconds / design.expected_reexecutions
        )
        assert per_reexec_broadcast > per_reexec_design
