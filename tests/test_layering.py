"""Architecture layering checks (AST-level, no imports executed).

The control-plane extraction draws two hard lines:

- ``repro.mapreduce.controlplane`` is the engine-agnostic layer: it must
  not import the engines (``repro.mapreduce.runtime``), the worker-side
  task code, or anything from ``repro.cluster`` — the simulator and the
  engines both sit *on top of* it.
- ``repro.cluster`` models execution abstractly: it may use the shared
  control-plane vocabulary, but must not reach into the real execution
  machinery (``runtime`` / ``tasks`` / ``spill`` / ``fusion``).

These are enforced over the import *statements* of every module in each
package, with relative imports resolved to absolute module paths.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

#: modules that constitute the real execution machinery
ENGINE_MODULES = (
    "repro.mapreduce.runtime",
    "repro.mapreduce.tasks",
    "repro.mapreduce.spill",
    "repro.mapreduce.fusion",
)


def imported_modules(path: Path) -> set[str]:
    """Absolute module names imported anywhere in ``path`` (incl. lazily)."""
    package_parts = path.relative_to(SRC).with_suffix("").parts
    if package_parts[-1] == "__init__":
        package_parts = package_parts[:-1]
    tree = ast.parse(path.read_text(encoding="utf-8"))
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            out.update(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                # Resolve "from ..x import y" against this module's package.
                anchor = package_parts[: len(package_parts) - node.level]
                base = ".".join(anchor + tuple(filter(None, [node.module])))
            out.add(base)
            out.update(f"{base}.{alias.name}" for alias in node.names)
    return out


def package_imports(package: str) -> dict[str, set[str]]:
    root = SRC / Path(*package.split("."))
    return {
        str(path.relative_to(SRC)): imported_modules(path)
        for path in sorted(root.rglob("*.py"))
    }


def violations(package: str, forbidden: tuple[str, ...]) -> list[str]:
    found = []
    for module, imports in package_imports(package).items():
        for name in sorted(imports):
            if any(name == f or name.startswith(f + ".") for f in forbidden):
                found.append(f"{module} imports {name}")
    return found


class TestControlPlaneLayer:
    def test_does_not_import_engines(self):
        assert violations("repro.mapreduce.controlplane", ENGINE_MODULES) == []

    def test_does_not_import_cluster(self):
        assert violations("repro.mapreduce.controlplane", ("repro.cluster",)) == []


class TestClusterLayer:
    def test_does_not_import_engine_internals(self):
        assert violations("repro.cluster", ENGINE_MODULES) == []


class TestSanity:
    def test_walker_sees_real_imports(self):
        """The checker itself must not be vacuous."""
        imports = package_imports("repro.cluster")["repro/cluster/scheduler.py"]
        assert "repro.mapreduce.controlplane.policy" in imports
