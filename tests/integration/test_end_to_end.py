"""Integration scenarios: multiple subsystems exercised together."""

import math

import numpy as np
import pytest

from repro import MB, TB
from repro.apps import (
    build_tfidf,
    cluster_from_neighbors,
    cosine_similarity,
    dbscan_reference,
)
from repro.cluster import ClusterSimulator, ClusterSpec, NodeSpec, TaskCost, build_trace
from repro.core import (
    BlockScheme,
    CyclicDesignScheme,
    PairwiseComputation,
    ThresholdAggregator,
    results_matrix,
)
from repro.core.fileflow import (
    load_elements,
    run_pairwise_on_files,
    write_element_files,
)
from repro.core.runner import auto_pairwise, estimate_element_size
from repro.mapreduce import MultiprocessEngine
from repro.workloads import make_blobs, make_documents


def euclid(a, b):
    return float(np.linalg.norm(np.asarray(a) - np.asarray(b)))


class TestAutoRunner:
    def test_small_scalars_pick_broadcast(self):
        data = [float(x) for x in range(30)]
        merged, choice = auto_pairwise(data, lambda a, b: abs(a - b))
        assert choice.scheme.name == "broadcast"
        assert len(results_matrix(merged)) == 30 * 29 // 2

    def test_declared_sizes_drive_choice(self):
        """SizedPayloads let tiny in-process data simulate huge elements."""
        from repro.mapreduce import SizedPayload

        data = [SizedPayload(50 * MB, tag=i) for i in range(60)]
        merged, choice = auto_pairwise(
            data,
            lambda a, b: abs(a.tag - b.tag),
            maxws=200 * MB,
            maxis=1 * TB,
        )
        # 60 × 50 MB = 3 GB: too big to broadcast, block takes it.
        assert choice.scheme.name == "block"
        assert len(results_matrix(merged)) == 60 * 59 // 2

    def test_estimator_sanity(self):
        assert estimate_element_size([0.5] * 100) < 200
        with pytest.raises(ValueError):
            estimate_element_size([])

    def test_too_small_dataset(self):
        with pytest.raises(ValueError):
            auto_pairwise([1.0], lambda a, b: 0.0)

    def test_hierarchical_path_runs_rounds(self):
        """Huge declared elements force the §7 fallback; results still exact."""
        from repro.mapreduce import SizedPayload
        from repro.core.hierarchical import HierarchicalBlockScheme

        data = [SizedPayload(40 * MB, tag=i) for i in range(30)]
        merged, choice = auto_pairwise(
            data,
            lambda a, b: abs(a.tag - b.tag),
            maxws=100 * MB,   # only two elements fit a slot at once
            maxis=600 * MB,   # flat replication cannot fit
        )
        assert isinstance(choice.scheme, HierarchicalBlockScheme)
        pairs = results_matrix(merged)
        assert len(pairs) == 30 * 29 // 2
        assert pairs[(30, 1)] == 29


class TestDbscanOverFilesMultiprocess:
    """The full production shape: files in, multiprocess MR, DBSCAN out."""

    def test_pipeline(self, tmp_path):
        points = make_blobs(40, num_clusters=3, spread=0.3, seed=23)
        eps, min_pts = 1.5, 3

        input_paths = write_element_files(tmp_path / "in", points, files=4)
        computation = PairwiseComputation(
            BlockScheme(40, 5),
            euclid,
            aggregator=ThresholdAggregator(eps),
            engine=MultiprocessEngine(max_workers=2),
        )
        out_paths, report = run_pairwise_on_files(
            computation, input_paths, tmp_path / "work"
        )
        elements = load_elements(out_paths)
        neighbors = {eid: sorted(el.results) for eid, el in elements.items()}
        got = cluster_from_neighbors(neighbors, min_pts)

        expected = dbscan_reference(points, eps, min_pts)
        assert got.labels == expected.labels
        # The file flow measured block replication = h on disk.
        assert report.disk_replication_factor == 5


class TestDocsimCyclicDesign:
    """Document similarity through the O(√v)-memory cyclic design scheme."""

    def test_topical_documents_most_similar_within_topic(self):
        docs = make_documents(24, num_topics=3, topic_strength=0.9, seed=31)
        vectors = build_tfidf(docs)
        computation = PairwiseComputation(CyclicDesignScheme(24), cosine_similarity)
        merged = computation.run(vectors)
        sims = results_matrix(merged)
        # Mean same-topic similarity must dominate cross-topic similarity.
        # (Topics were assigned randomly by the generator; recover them
        # through the planted vocabulary slices.)
        def topic_of(doc_index):
            slice_votes = {}
            for token in docs[doc_index]:
                rank = int(token[1:])
                slice_votes[rank // (500 // 3)] = slice_votes.get(rank // (500 // 3), 0) + 1
            return max(slice_votes, key=slice_votes.get)

        same, cross = [], []
        for (i, j), sim in sims.items():
            (same if topic_of(i - 1) == topic_of(j - 1) else cross).append(sim)
        assert sum(same) / len(same) > 3 * (sum(cross) / len(cross))


class TestSimulateThenTrace:
    """Chooser → simulator → trace: the capacity-planning loop closed."""

    def test_workflow(self):
        from repro.core import choose_scheme

        choice = choose_scheme(
            2_000, 100_000, maxws=200 * MB, maxis=1 * TB, num_nodes=4
        )
        scheme = choice.scheme
        cluster = ClusterSpec.homogeneous(4, NodeSpec(slots=2))
        simulator = ClusterSimulator(cluster, maxis=1 * TB)
        report = simulator.simulate(scheme, 100_000)
        assert report.feasible

        costs = [
            TaskCost(t, max(1e-9, scheme.task_profile(t).num_evaluations / 10_000))
            for t in range(scheme.num_tasks)
        ]
        trace = build_trace(costs, cluster)
        assert math.isclose(
            trace.makespan, report.assignment.makespan, rel_tol=0.5
        ) or trace.makespan > 0
        assert trace.mean_utilization() > 0.5  # LPT packs a balanced scheme well
        gantt = trace.gantt(width=60)
        assert gantt.count("\n") >= 8  # 4 nodes × 2 slots rows


class TestEngineMeasuredWorkingSet:
    def test_gauge_matches_scheme_prediction(self):
        """The real engine's max-working-set gauge equals the scheme's
        Table-1 working set (records)."""
        from repro.core.pairwise import MAX_WORKING_SET_RECORDS, PAIRWISE_GROUP

        data = [float(x) for x in range(40)]
        scheme = BlockScheme(40, 4)
        computation = PairwiseComputation(scheme, lambda a, b: abs(a - b))
        _merged, pipeline = computation.run(data, return_pipeline=True)
        gauge = pipeline.stages[0].counters.get(
            PAIRWISE_GROUP, MAX_WORKING_SET_RECORDS
        )
        assert gauge == scheme.metrics().working_set_elements
