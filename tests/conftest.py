"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.design import DesignScheme


def abs_diff(a, b):
    """Module-level symmetric pair function (picklable for MP engines)."""
    return abs(a - b)


def pair_tuple(a, b):
    """Pair function whose result records its (sorted) inputs — makes the
    evaluated pair identifiable in result maps."""
    return (min(a, b), max(a, b))


@pytest.fixture
def small_dataset():
    """23 scalar payloads — small enough for brute force, big enough for
    non-trivial block/design structure."""
    return [float((x * 7 + 3) % 23) for x in range(23)]


@pytest.fixture(params=["broadcast", "block", "block-paired", "design"])
def any_scheme(request):
    """One instance of every scheme family over v=23."""
    v = 23
    if request.param == "broadcast":
        return BroadcastScheme(v, num_tasks=5)
    if request.param == "block":
        return BlockScheme(v, h=4)
    if request.param == "block-paired":
        return BlockScheme(v, h=4, pair_diagonals=True)
    return DesignScheme(v)
