"""DBSCAN application tests."""

import numpy as np
import pytest

from repro.apps.dbscan import (
    NOISE,
    cluster_from_neighbors,
    dbscan_pairwise,
    dbscan_reference,
    euclidean_distance,
)
from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.design import DesignScheme
from repro.workloads import make_blobs


class TestDistance:
    def test_symmetric(self):
        a, b = np.array([0.0, 0.0]), np.array([3.0, 4.0])
        assert euclidean_distance(a, b) == euclidean_distance(b, a) == 5.0

    def test_zero_for_identical(self):
        p = np.array([1.5, -2.0])
        assert euclidean_distance(p, p) == 0.0


class TestClusterFromNeighbors:
    def test_two_obvious_clusters(self):
        # 1-2-3 chained, 4-5 chained, 6 isolated.
        neighbors = {1: [2], 2: [1, 3], 3: [2], 4: [5], 5: [4], 6: []}
        result = cluster_from_neighbors(neighbors, min_pts=2)
        assert result.labels[1] == result.labels[2] == result.labels[3]
        assert result.labels[4] == result.labels[5]
        assert result.labels[1] != result.labels[4]
        assert result.labels[6] == NOISE
        assert result.num_clusters == 2

    def test_border_point_not_core(self):
        # 1 and 2 are core (2 neighbours + self >= 3); 3 is border.
        neighbors = {1: [2, 3], 2: [1, 3], 3: [1, 2]}
        result = cluster_from_neighbors(neighbors, min_pts=3)
        assert {1, 2, 3} <= set(result.labels)
        assert 3 in result.core  # 2 neighbours + itself = 3 ≥ min_pts

    def test_min_pts_one_makes_everything_core(self):
        neighbors = {1: [], 2: []}
        result = cluster_from_neighbors(neighbors, min_pts=1)
        assert result.labels[1] != NOISE
        assert result.labels[2] != NOISE
        assert result.num_clusters == 2

    def test_rejects_bad_min_pts(self):
        with pytest.raises(ValueError):
            cluster_from_neighbors({}, 0)


class TestEndToEnd:
    @pytest.mark.parametrize(
        "scheme_factory",
        [
            lambda v: BroadcastScheme(v, 4),
            lambda v: BlockScheme(v, 4),
            lambda v: DesignScheme(v),
        ],
    )
    def test_matches_reference_all_schemes(self, scheme_factory):
        points = make_blobs(30, num_clusters=3, spread=0.3, seed=11)
        ref = dbscan_reference(points, eps=1.5, min_pts=3)
        got = dbscan_pairwise(points, 1.5, 3, scheme_factory(30))
        assert got.labels == ref.labels
        assert got.core == ref.core

    def test_use_local_fast_path(self):
        points = make_blobs(25, num_clusters=2, seed=3)
        ref = dbscan_reference(points, eps=2.0, min_pts=3)
        got = dbscan_pairwise(points, 2.0, 3, BlockScheme(25, 3), use_local=True)
        assert got.labels == ref.labels

    def test_recovers_planted_clusters(self):
        points = make_blobs(60, num_clusters=3, spread=0.2, box=20.0, seed=5)
        result = dbscan_reference(points, eps=1.5, min_pts=4)
        assert result.num_clusters == 3

    def test_noise_points_labelled(self):
        points = make_blobs(
            50, num_clusters=2, spread=0.2, box=20.0, noise_fraction=0.2, seed=9
        )
        result = dbscan_reference(points, eps=1.0, min_pts=4)
        noise = [eid for eid, label in result.labels.items() if label == NOISE]
        assert noise  # background points exist and are flagged

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            dbscan_reference([np.zeros(2)], eps=0.0, min_pts=1)
        with pytest.raises(ValueError):
            dbscan_pairwise([np.zeros(2)] * 4, 0.0, 1, BlockScheme(4, 2))

    def test_members_helper(self):
        points = make_blobs(20, num_clusters=1, spread=0.1, seed=1)
        result = dbscan_reference(points, eps=2.0, min_pts=2)
        assert result.members(0) == sorted(
            eid for eid, label in result.labels.items() if label == 0
        )
