"""Cross-document co-reference tests."""

import pytest

from repro.apps.coreference import (
    CoreferenceComp,
    Mention,
    b_cubed,
    chains_from_scores,
    context_cosine,
    coreference_reference,
    name_compatibility,
)
from repro.core.block import BlockScheme
from repro.core.pairwise import pairwise_results
from repro.workloads.generator import make_mentions


def m(name, *context):
    return Mention(name=name, context=tuple(context))


class TestNameCompatibility:
    def test_exact_match(self):
        assert name_compatibility(m("John Smith"), m("john smith")) == 1.0

    def test_containment(self):
        assert name_compatibility(m("Smith"), m("John Smith")) == 0.8

    def test_initials(self):
        assert name_compatibility(m("J. Smith"), m("John Smith")) == 0.7

    def test_incompatible(self):
        assert name_compatibility(m("John Smith"), m("Mary Garcia")) == 0.0

    def test_different_initials_incompatible(self):
        assert name_compatibility(m("K. Smith"), m("John Smith")) == 0.0

    def test_empty_name(self):
        assert name_compatibility(m(""), m("John")) == 0.0

    def test_symmetric(self):
        pairs = [
            (m("J. Smith"), m("John Smith")),
            (m("Smith"), m("John Smith")),
            (m("A B"), m("C D")),
        ]
        for a, b in pairs:
            assert name_compatibility(a, b) == name_compatibility(b, a)


class TestContextCosine:
    def test_identical(self):
        a = m("X", "w1", "w2")
        assert context_cosine(a, a) == pytest.approx(1.0)

    def test_disjoint(self):
        assert context_cosine(m("X", "a"), m("X", "b")) == 0.0

    def test_empty(self):
        assert context_cosine(m("X"), m("X", "a")) == 0.0


class TestComp:
    def test_blocking_short_circuits(self):
        comp = CoreferenceComp()
        a = m("John Smith", "shared", "context")
        b = m("Mary Garcia", "shared", "context")
        assert comp(a, b) == 0.0  # names incompatible, context ignored

    def test_blend(self):
        comp = CoreferenceComp(name_weight=0.5)
        a = m("John Smith", "w")
        b = m("John Smith", "w")
        assert comp(a, b) == pytest.approx(0.5 * 1.0 + 0.5 * 1.0)

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            CoreferenceComp(name_weight=1.5)

    def test_picklable(self):
        import pickle

        comp = pickle.loads(pickle.dumps(CoreferenceComp(0.3)))
        assert comp.name_weight == 0.3


class TestChains:
    def test_transitive_merging(self):
        # 1~2 and 2~3 link; 1-3 may not directly, still one chain.
        scores = {(2, 1): 0.9, (3, 2): 0.9, (3, 1): 0.1}
        chains = chains_from_scores(scores, 3, threshold=0.5)
        assert chains.chains == [[1, 2, 3]]

    def test_singletons_preserved(self):
        chains = chains_from_scores({(2, 1): 0.1}, 3, threshold=0.5)
        assert chains.chains == [[1], [2], [3]]

    def test_bad_pair_key(self):
        with pytest.raises(ValueError):
            chains_from_scores({(1, 2): 0.9}, 3, threshold=0.5)

    def test_labels(self):
        chains = chains_from_scores({(2, 1): 0.9}, 3, threshold=0.5)
        labels = chains.as_labels()
        assert labels[1] == labels[2] != labels[3]

    def test_chain_of_missing(self):
        chains = chains_from_scores({}, 2, 0.5)
        with pytest.raises(KeyError):
            chains.chain_of(5)


class TestBCubed:
    def test_perfect(self):
        chains = chains_from_scores({(2, 1): 0.9}, 3, 0.5)
        truth = {1: 0, 2: 0, 3: 1}
        assert b_cubed(chains, truth) == (1.0, 1.0, 1.0)

    def test_everything_merged_hurts_precision(self):
        chains = chains_from_scores({(2, 1): 0.9, (3, 1): 0.9}, 3, 0.5)
        truth = {1: 0, 2: 0, 3: 1}
        p, r, f1 = b_cubed(chains, truth)
        assert r == 1.0
        assert p < 1.0

    def test_everything_split_hurts_recall(self):
        chains = chains_from_scores({}, 3, 0.5)
        truth = {1: 0, 2: 0, 3: 0}
        p, r, f1 = b_cubed(chains, truth)
        assert p == 1.0
        assert r < 1.0

    def test_mismatched_mentions_rejected(self):
        chains = chains_from_scores({}, 2, 0.5)
        with pytest.raises(ValueError):
            b_cubed(chains, {1: 0})


class TestEndToEnd:
    def test_pipeline_matches_reference(self):
        mentions, _truth = make_mentions(5, 4, seed=9)
        ref = coreference_reference(mentions, threshold=0.45)
        scores = pairwise_results(
            mentions, CoreferenceComp(0.5), BlockScheme(len(mentions), 4)
        )
        chains = chains_from_scores(scores, len(mentions), 0.45)
        assert chains.chains == ref.chains

    def test_recovers_entities_well(self):
        mentions, truth = make_mentions(8, 6, noise=0.25, seed=3)
        chains = coreference_reference(mentions, threshold=0.45)
        _p, _r, f1 = b_cubed(chains, truth)
        assert f1 > 0.85  # strong recovery on the synthetic workload

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            make_mentions(0, 3)
        with pytest.raises(ValueError):
            make_mentions(3, 3, noise=2.0)
        with pytest.raises(ValueError):
            make_mentions(10_000, 1)  # exceeds the name pool
