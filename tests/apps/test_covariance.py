"""Covariance / PCA application tests."""

import numpy as np
import pytest

from repro.apps.covariance import (
    assemble_covariance,
    center_rows,
    covariance_reference,
    pca_from_covariance,
    row_inner_product,
)
from repro.core.block import BlockScheme
from repro.core.pairwise import pairwise_results
from repro.workloads import make_matrix


class TestCentering:
    def test_rows_have_zero_mean(self):
        rows = center_rows(make_matrix(5, 20, seed=0))
        for row in rows:
            assert row.mean() == pytest.approx(0.0, abs=1e-12)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            center_rows(np.zeros(5))


class TestAssembly:
    def test_matches_numpy_cov(self):
        A = make_matrix(8, 30, seed=1)
        rows = center_rows(A)
        products = pairwise_results(rows, row_inner_product, BlockScheme(8, 3))
        cov = assemble_covariance(products, rows)
        assert np.allclose(cov, covariance_reference(A))

    def test_symmetric_output(self):
        A = make_matrix(6, 25, seed=2)
        rows = center_rows(A)
        products = pairwise_results(rows, row_inner_product, BlockScheme(6, 2))
        cov = assemble_covariance(products, rows)
        assert np.allclose(cov, cov.T)

    def test_bad_pair_key_rejected(self):
        rows = center_rows(make_matrix(3, 10, seed=0))
        with pytest.raises(ValueError):
            assemble_covariance({(5, 1): 1.0}, rows)

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            assemble_covariance({}, [np.array([1.0])])

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            assemble_covariance({}, [])


class TestPCA:
    def test_low_rank_signal_detected(self):
        """A rank-3 matrix's covariance has exactly 3 significant eigenvalues."""
        A = make_matrix(10, 40, rank=3, seed=3)
        cov = covariance_reference(A)
        result = pca_from_covariance(cov)
        significant = (result.eigenvalues > 1e-8).sum()
        assert significant == 3

    def test_eigenvalues_descending(self):
        cov = covariance_reference(make_matrix(7, 30, seed=4))
        values = pca_from_covariance(cov).eigenvalues
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_components_orthonormal(self):
        cov = covariance_reference(make_matrix(6, 30, seed=5))
        components = pca_from_covariance(cov).components
        gram = components @ components.T
        assert np.allclose(gram, np.eye(len(components)), atol=1e-10)

    def test_k_truncation(self):
        cov = covariance_reference(make_matrix(6, 30, seed=5))
        result = pca_from_covariance(cov, k=2)
        assert result.eigenvalues.shape == (2,)
        assert result.components.shape == (2, 6)

    def test_explained_variance_ratio_sums_to_one(self):
        cov = covariance_reference(make_matrix(6, 30, seed=6))
        ratio = pca_from_covariance(cov).explained_variance_ratio
        assert ratio.sum() == pytest.approx(1.0)

    def test_sign_convention_deterministic(self):
        cov = covariance_reference(make_matrix(6, 30, seed=7))
        a = pca_from_covariance(cov).components
        b = pca_from_covariance(cov).components
        assert np.array_equal(a, b)
        for row in a:
            assert row[np.argmax(np.abs(row))] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            pca_from_covariance(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            pca_from_covariance(np.eye(3), k=0)
        with pytest.raises(ValueError):
            pca_from_covariance(np.eye(3), k=4)

    def test_reconstruction_against_numpy_eig(self):
        A = make_matrix(9, 50, seed=8)
        cov = covariance_reference(A)
        ours = pca_from_covariance(cov).eigenvalues
        numpy_values = np.sort(np.linalg.eigvalsh(cov))[::-1]
        assert np.allclose(ours, numpy_values)
