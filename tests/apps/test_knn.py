"""kNN-graph application tests."""

import pytest

from repro.apps.knn import (
    average_neighbor_distance,
    degree_histogram,
    knn_graph,
    knn_reference,
    recall_at_k,
)
from repro.core.block import BlockScheme
from repro.core.design import CyclicDesignScheme
from repro.workloads import make_blobs


@pytest.fixture
def points():
    return make_blobs(30, num_clusters=3, spread=0.4, seed=17)


class TestConstruction:
    def test_matches_reference(self, points):
        ref = knn_reference(points, k=4)
        got = knn_graph(points, 4, BlockScheme(30, 4))
        assert got.neighbors == ref.neighbors
        assert recall_at_k(got, ref) == 1.0

    def test_cyclic_design_scheme(self, points):
        ref = knn_reference(points, k=3)
        got = knn_graph(points, 3, CyclicDesignScheme(30), use_local=True)
        assert got.neighbors == ref.neighbors

    def test_tied_distances_match_reference(self):
        # Symmetric 1-D points produce exact distance ties; the heap
        # selection must break them like the reference's full sort
        # (ascending partner id).
        import numpy as np

        tied = [np.array([float(x)]) for x in (0, 1, -1, 2, -2, 3, -3, 4)]
        ref = knn_reference(tied, k=3)
        got = knn_graph(tied, 3, BlockScheme(len(tied), 2))
        assert got.neighbors == ref.neighbors

    def test_every_node_has_k_neighbors(self, points):
        graph = knn_reference(points, k=5)
        assert all(len(partners) == 5 for partners in graph.neighbors.values())

    def test_neighbors_ascending_distance(self, points):
        graph = knn_reference(points, k=6)
        for partners in graph.neighbors.values():
            distances = [d for _eid, d in partners]
            assert distances == sorted(distances)

    def test_validation(self, points):
        with pytest.raises(ValueError):
            knn_graph(points, 0, BlockScheme(30, 3))
        with pytest.raises(ValueError):
            knn_graph(points, 30, BlockScheme(30, 3))
        with pytest.raises(ValueError):
            knn_reference(points, 0)


class TestGraphOps:
    def test_edge_set_size(self, points):
        graph = knn_reference(points, k=3)
        assert len(graph.edge_set()) == 30 * 3

    def test_mutual_edges_subset(self, points):
        graph = knn_reference(points, k=4)
        mutual = graph.mutual_edges()
        directed = graph.edge_set()
        for i, j in mutual:
            assert (i, j) in directed and (j, i) in directed
            assert i > j

    def test_clustered_points_mostly_mutual(self, points):
        """Tight blobs: most nearest-neighbour relations are reciprocal."""
        graph = knn_reference(points, k=4)
        assert len(graph.mutual_edges()) > 30 * 4 / 2 * 0.5

    def test_recall_requires_same_k(self, points):
        with pytest.raises(ValueError):
            recall_at_k(knn_reference(points, 2), knn_reference(points, 3))

    def test_average_distance_grows_with_k(self, points):
        near = average_neighbor_distance(knn_reference(points, 2))
        far = average_neighbor_distance(knn_reference(points, 10))
        assert far > near

    def test_degree_histogram_totals(self, points):
        graph = knn_reference(points, k=3)
        histogram = degree_histogram(graph)
        assert sum(count * times for count, times in histogram.items()) == 30 * 3
        assert sum(histogram.values()) == 30

    def test_to_networkx(self, points):
        graph = knn_reference(points, k=2)
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 30
        assert nx_graph.number_of_edges() == 60
        # Edge weights carried over.
        edge = next(iter(nx_graph.edges(data=True)))
        assert "distance" in edge[2]
