"""Document similarity tests (generic pairwise and Elsayed baseline)."""

import math

import pytest

from repro.apps.docsim import (
    brute_force_similarity,
    build_tfidf,
    cosine_similarity,
    elsayed_similarity,
    most_similar,
    tokenize,
)
from repro.core.design import DesignScheme
from repro.core.pairwise import pairwise_results
from repro.workloads import make_documents


def _tokenize_char_loop(text: str) -> list[str]:
    """The historical char-by-char tokenizer: isalnum runs, rest separates."""
    tokens: list[str] = []
    current: list[str] = []
    for char in text.lower():
        if char.isalnum():
            current.append(char)
        elif current:
            tokens.append("".join(current))
            current = []
    if current:
        tokens.append("".join(current))
    return tokens


class TestTokenize:
    def test_basic(self):
        assert tokenize("Hello, World! 2x") == ["hello", "world", "2x"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("...!!!") == []

    @pytest.mark.parametrize(
        "text",
        [
            "Hello, World! 2x",
            "snake_case is two tokens",  # underscore is not isalnum
            "unicode: déjà-vu, naïve café",
            "digits ² and ½ are isalnum but not \\w-digits",  # Py_UNICODE_ISALNUM
            "tabs\tnewlines\nand\r\nmixed   whitespace",
            "ends mid-token",
            "ΣΙΣΥΦΟΣ λίθος 漢字かな交じり文",
            "a_b__c___d",
            "'quoted' \"double\" (bracketed) [all] {of} <them>",
            "",
            "....",
            "x",
        ],
    )
    def test_identical_to_char_loop(self, text):
        """The compiled regex must reproduce the char-by-char loop exactly."""
        assert tokenize(text) == _tokenize_char_loop(text)


class TestTfIdf:
    def test_vectors_normalized(self):
        docs = [["a", "b", "a"], ["b", "c"], ["c", "d"]]
        for vector in build_tfidf(docs):
            if vector:
                norm = math.sqrt(sum(w * w for w in vector.values()))
                assert norm == pytest.approx(1.0)

    def test_ubiquitous_term_zero_weight(self):
        docs = [["common", "x"], ["common", "y"], ["common", "z"]]
        vectors = build_tfidf(docs)
        assert all("common" not in v for v in vectors)  # idf = ln(1) = 0

    def test_empty_input(self):
        assert build_tfidf([]) == []


class TestCosine:
    def test_identical_vectors(self):
        v = {"a": 0.6, "b": 0.8}
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_symmetric(self):
        a, b = {"x": 0.5, "y": 0.5}, {"y": 1.0}
        assert cosine_similarity(a, b) == cosine_similarity(b, a)


class TestElsayedBaseline:
    def test_matches_brute_force(self):
        docs = make_documents(15, seed=2)
        vectors = build_tfidf(docs)
        brute = brute_force_similarity(vectors, threshold=1e-12)
        baseline, _result = elsayed_similarity(vectors, threshold=1e-12)
        assert set(baseline) == set(brute)
        for pair in baseline:
            assert baseline[pair] == pytest.approx(brute[pair])

    def test_matches_generic_pairwise(self):
        """The paper's generic method and the §2 baseline agree on shared-term pairs."""
        docs = make_documents(12, seed=8)
        vectors = build_tfidf(docs)
        generic = pairwise_results(vectors, cosine_similarity, DesignScheme(12))
        baseline, _ = elsayed_similarity(vectors, threshold=1e-12)
        for pair, sim in baseline.items():
            assert generic[pair] == pytest.approx(sim)
        # Pairs the baseline skipped really have (near-)zero similarity.
        for pair, sim in generic.items():
            if pair not in baseline:
                assert sim == pytest.approx(0.0, abs=1e-9)

    def test_threshold_prunes(self):
        docs = make_documents(12, seed=8)
        vectors = build_tfidf(docs)
        low, _ = elsayed_similarity(vectors, threshold=0.0)
        high, _ = elsayed_similarity(vectors, threshold=0.5)
        assert set(high) <= set(low)
        assert all(sim > 0.5 for sim in high.values())

    def test_df_prune_drops_hot_terms(self):
        # "hot" in 9 of 10 docs: idf > 0 (unlike a ubiquitous term, which
        # tf-idf removes by itself), so the df cut has something to prune.
        docs = [["hot", f"unique{i}"] for i in range(9)] + [["only", "rare"]]
        vectors = build_tfidf(docs)
        _pruned, result = elsayed_similarity(vectors, df_prune=5)
        assert result.counters.get("docsim", "pruned_terms") >= 1

    def test_partial_product_count(self):
        """Work = Σ_t |postings(t)|·(|postings(t)|−1)/2, visible in counters."""
        docs = make_documents(10, seed=4)
        vectors = build_tfidf(docs)
        _sims, result = elsayed_similarity(vectors)
        expected = 0
        from collections import Counter

        df: Counter = Counter()
        for vector in vectors:
            df.update(vector.keys())
        expected = sum(n * (n - 1) // 2 for n in df.values())
        assert result.counters.get("docsim", "partial_products") == expected


class TestMostSimilar:
    def test_ranking(self):
        sims = {(2, 1): 0.9, (3, 1): 0.5, (3, 2): 0.7}
        assert most_similar(sims, 1, k=2) == [(2, 0.9), (3, 0.5)]

    def test_k_cap(self):
        sims = {(2, 1): 0.9, (3, 1): 0.5}
        assert len(most_similar(sims, 1, k=1)) == 1

    def test_heap_selection_identical_to_full_sort(self):
        # Tied similarities on purpose: the heap path must reproduce the
        # historical sorted(key=(-sim, id))[:k] order exactly.
        sims = {
            (doc, 1): [0.9, 0.5, 0.9, 0.2, 0.5][doc - 2]
            for doc in range(2, 7)
        }
        scores = {doc: sim for (doc, _), sim in sims.items()}
        for k in (1, 2, 3, 10):
            want = sorted(
                scores.items(), key=lambda item: (-item[1], item[0])
            )[:k]
            assert most_similar(sims, 1, k=k) == want
