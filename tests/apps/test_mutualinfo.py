"""Mutual information / relevance network tests."""

import numpy as np
import pytest

from repro.apps.mutualinfo import (
    MutualInformationComp,
    build_relevance_network,
    brute_force_mi,
    mutual_information,
)
from repro.core.design import DesignScheme
from repro.core.pairwise import pairwise_results
from repro.workloads import make_expression_matrix


class TestEstimator:
    def test_symmetric(self):
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=100), rng.normal(size=100)
        assert mutual_information(x, y) == pytest.approx(mutual_information(y, x))

    def test_self_information_is_entropy_scale(self):
        """MI(x, x) is maximal: ln(bins) for a uniform spread."""
        x = np.linspace(0, 1, 800)
        mi = mutual_information(x, x, bins=8)
        assert mi == pytest.approx(np.log(8), rel=0.02)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(1)
        x, y = rng.normal(size=5000), rng.normal(size=5000)
        assert mutual_information(x, y, bins=6) < 0.05

    def test_dependent_larger_than_independent(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=500)
        noisy_copy = x + rng.normal(0, 0.1, size=500)
        independent = rng.normal(size=500)
        assert mutual_information(x, noisy_copy) > 5 * mutual_information(x, independent)

    def test_constant_profile_zero(self):
        x = np.zeros(50)
        y = np.linspace(0, 1, 50)
        assert mutual_information(x, y) == pytest.approx(0.0, abs=1e-12)

    def test_non_negative(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            x, y = rng.normal(size=40), rng.normal(size=40)
            assert mutual_information(x, y) >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            mutual_information(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            mutual_information(np.zeros(0), np.zeros(0))
        with pytest.raises(ValueError):
            mutual_information(np.zeros(3), np.zeros(3), bins=0)

    def test_comp_wrapper_picklable(self):
        import pickle

        comp = MutualInformationComp(bins=6)
        clone = pickle.loads(pickle.dumps(comp))
        x, y = np.arange(20.0), np.arange(20.0) ** 2
        assert clone(x, y) == comp(x, y)

    def test_comp_wrapper_validation(self):
        with pytest.raises(ValueError):
            MutualInformationComp(bins=0)


class TestRelevanceNetwork:
    def _network(self):
        matrix = make_expression_matrix(12, 80, num_linked_pairs=3, seed=4)
        profiles = [matrix[i] for i in range(12)]
        mi = brute_force_mi(profiles)
        return build_relevance_network(mi, 12, threshold=0.8)

    def test_planted_pairs_recovered(self):
        net = self._network()
        found = {(i, j) for i, j, _mi in net.edges}
        assert {(2, 1), (4, 3), (6, 5)} <= found

    def test_background_mostly_absent(self):
        net = self._network()
        # Mostly the 3 planted edges; allow an occasional false positive.
        assert len(net.edges) <= 6

    def test_degree_and_neighbors(self):
        net = self._network()
        assert net.degree(1) >= 1
        assert 2 in net.neighbors(1)

    def test_components(self):
        net = self._network()
        components = net.components()
        assert sum(len(c) for c in components) == 12
        # Planted pairs form (at least) 2-element components.
        assert any({1, 2} <= c for c in components)

    def test_to_networkx(self):
        net = self._network()
        graph = net.to_networkx()
        assert graph.number_of_nodes() == 12
        assert graph.number_of_edges() == len(net.edges)
        for i, j, mi in net.edges:
            assert graph.edges[i, j]["mi"] == mi

    def test_pipeline_matches_brute_force(self):
        matrix = make_expression_matrix(10, 50, num_linked_pairs=2, seed=6)
        profiles = [matrix[i] for i in range(10)]
        got = pairwise_results(profiles, MutualInformationComp(8), DesignScheme(10))
        brute = brute_force_mi(profiles, bins=8)
        for pair in brute:
            assert got[pair] == pytest.approx(brute[pair])
