"""Bound-soundness properties of the sketch summaries (DESIGN.md §3.1.7).

Every pruning decision rests on three inequalities, each checked here
against brute force over seeded random payloads:

- sparse:  ``similarity_upper(i, j) >= cosine(i, j)``;
- dense:   ``distance_lower <= distance <= distance_upper`` and
  ``similarity_upper >= dot / cosine``;
- top-k:   ``taus[i] >=`` element i's true k-th smallest distance.

Plus the component guarantees they compose from: count-min never
underestimates, MinHash is deterministic, and the whole suite pickles
(it rides the distributed cache).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.apps.dbscan import euclidean_distance
from repro.apps.docsim import build_tfidf, cosine_similarity
from repro.sketches import (
    BOUND_GUARD,
    CountMinSketch,
    SketchSuite,
    ThresholdPruner,
    TopKPruner,
    build_dense_sketch,
    build_sketches,
    build_sparse_cosine_sketch,
    build_topk_taus,
    minhash_signatures,
    register_sketch,
    sketch_kind_for_comp,
    stable_term_hash,
    stable_term_hashes,
)
from repro.workloads.generator import make_documents, make_vectors

pytestmark = pytest.mark.sketches


def all_pairs(v: int) -> np.ndarray:
    return np.asarray(
        [(i, j) for i in range(2, v + 1) for j in range(1, i)], dtype=np.int64
    )


def sparse_payloads(v: int, seed: int = 7) -> dict:
    docs = make_documents(
        v, vocabulary=120, length=30, num_topics=6, topic_strength=0.8, seed=seed
    )
    vectors = build_tfidf(docs)
    if v > 2:
        vectors[2] = {}  # empty document exercises the zero-norm guard
    return {i + 1: vectors[i] for i in range(v)}


def dense_payloads(v: int, dim: int = 16, seed: int = 3) -> dict:
    rows = make_vectors(v, dim, seed=seed)
    if v > 4:
        rows[4] = np.zeros(dim)  # zero vector exercises the cosine guard
    return {i + 1: rows[i] for i in range(v)}


class TestSparseBounds:
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_upper_bound_dominates_cosine(self, seed):
        payloads = sparse_payloads(40, seed=seed)
        suite = build_sparse_cosine_sketch(payloads, seed=seed)
        block = all_pairs(40)
        upper = suite.similarity_upper(block)
        true = np.asarray(
            [cosine_similarity(payloads[i], payloads[j]) for i, j in block]
        )
        assert (upper >= true - BOUND_GUARD).all()

    def test_fewer_buckets_still_sound(self):
        # Soundness must not depend on the bucket count — only tightness does.
        payloads = sparse_payloads(30)
        block = all_pairs(30)
        true = np.asarray(
            [cosine_similarity(payloads[i], payloads[j]) for i, j in block]
        )
        for num_buckets in (2, 8, 48):
            suite = build_sparse_cosine_sketch(payloads, num_buckets=num_buckets)
            assert (suite.similarity_upper(block) >= true - BOUND_GUARD).all()

    def test_heavy_terms_capped(self):
        payloads = sparse_payloads(40)
        suite = build_sparse_cosine_sketch(payloads, max_heavy=3)
        assert suite.num_heavy_buckets <= 3
        assert len(suite.heavy_terms) == suite.num_heavy_buckets

    def test_sound_mode_skips_signatures(self):
        payloads = sparse_payloads(20)
        suite = build_sparse_cosine_sketch(payloads, num_hashes=0)
        assert suite.signatures is None


class TestDenseBounds:
    @pytest.mark.parametrize("kind", ["dense-euclidean", "dense-dot", "dense-cosine"])
    @pytest.mark.parametrize("proj_dim", [4, 12])
    def test_bounds_bracket_truth(self, kind, proj_dim):
        payloads = dense_payloads(30)
        suite = build_dense_sketch(payloads, kind, proj_dim=proj_dim)
        block = all_pairs(30)
        if kind == "dense-euclidean":
            true = np.asarray(
                [euclidean_distance(payloads[i], payloads[j]) for i, j in block]
            )
            assert (suite.distance_lower(block) <= true + BOUND_GUARD).all()
            assert (suite.distance_upper(block) >= true - BOUND_GUARD).all()
        else:
            if kind == "dense-dot":
                true = np.asarray(
                    [float(np.dot(payloads[i], payloads[j])) for i, j in block]
                )
            else:
                def cos(a, b):
                    norms = float(np.linalg.norm(a)) * float(np.linalg.norm(b))
                    return float(np.dot(a, b)) / norms if norms > 0 else 0.0

                true = np.asarray([cos(payloads[i], payloads[j]) for i, j in block])
            assert (suite.similarity_upper(block) >= true - BOUND_GUARD).all()

    def test_full_rank_projection_is_exact(self):
        # proj_dim >= dim: the projection is the identity, residuals vanish,
        # and the two-sided distance bounds collapse onto the true value.
        payloads = dense_payloads(20, dim=6)
        suite = build_dense_sketch(payloads, "dense-euclidean", proj_dim=6)
        block = all_pairs(20)
        true = np.asarray(
            [euclidean_distance(payloads[i], payloads[j]) for i, j in block]
        )
        np.testing.assert_allclose(suite.distance_lower(block), true, atol=1e-9)
        np.testing.assert_allclose(suite.distance_upper(block), true, atol=1e-9)


class TestTopKTaus:
    def test_taus_cap_true_kth_distance(self):
        v, k = 30, 4
        payloads = dense_payloads(v)
        suite = build_dense_sketch(payloads, "dense-euclidean", proj_dim=6)
        taus = build_topk_taus(suite, k)
        for i in range(1, v + 1):
            distances = sorted(
                euclidean_distance(payloads[i], payloads[j])
                for j in range(1, v + 1)
                if j != i
            )
            assert taus[i] >= distances[k - 1] - BOUND_GUARD

    def test_pruner_keeps_all_true_neighbors(self):
        v, k = 30, 4
        payloads = dense_payloads(v)
        suite = build_dense_sketch(payloads, "dense-euclidean", proj_dim=6)
        pruner = TopKPruner(k, build_topk_taus(suite, k))
        block = all_pairs(v)
        keep = pruner.keep_mask(suite, block)
        kept = {tuple(pair) for pair, flag in zip(block.tolist(), keep) if flag}
        for i in range(1, v + 1):
            ranked = sorted(
                (euclidean_distance(payloads[i], payloads[j]), j)
                for j in range(1, v + 1)
                if j != i
            )
            for _dist, j in ranked[:k]:
                pair = (max(i, j), min(i, j))
                assert pair in kept, f"true neighbor pair {pair} was pruned"

    def test_validation(self):
        payloads = dense_payloads(10)
        suite = build_dense_sketch(payloads, "dense-euclidean")
        with pytest.raises(ValueError):
            build_topk_taus(suite, 0)
        with pytest.raises(ValueError):
            build_topk_taus(suite, 10)  # k must be <= v - 1
        sparse = build_sparse_cosine_sketch(sparse_payloads(10))
        with pytest.raises(ValueError):
            build_topk_taus(sparse, 2)


class TestThresholdPruner:
    def test_sound_mode_never_drops_qualifying_pairs(self):
        payloads = sparse_payloads(40)
        suite = build_sparse_cosine_sketch(payloads)
        block = all_pairs(40)
        for threshold in (0.1, 0.3, 0.6):
            pruner = ThresholdPruner(threshold, keep_below=False)
            assert pruner.sound
            keep = pruner.keep_mask(suite, block)
            for (i, j), flag in zip(block.tolist(), keep):
                if cosine_similarity(payloads[i], payloads[j]) > threshold:
                    assert flag, f"qualifying pair ({i}, {j}) pruned at {threshold}"

    def test_estimate_mode_is_marked_unsound(self):
        payloads = sparse_payloads(20)
        suite = build_sparse_cosine_sketch(payloads)
        pruner = ThresholdPruner(0.3, keep_below=False, estimate=True)
        assert not pruner.sound
        block = all_pairs(20)
        sound = ThresholdPruner(0.3, keep_below=False).keep_mask(suite, block)
        estimated = pruner.keep_mask(suite, block)
        # Estimate mode only ever prunes *more*.
        assert (estimated <= sound).all()

    def test_distance_orientation(self):
        payloads = dense_payloads(20)
        suite = build_dense_sketch(payloads, "dense-euclidean", proj_dim=5)
        block = all_pairs(20)
        pruner = ThresholdPruner(2.0, keep_below=True)
        keep = pruner.keep_mask(suite, block)
        for (i, j), flag in zip(block.tolist(), keep):
            if euclidean_distance(payloads[i], payloads[j]) < 2.0:
                assert flag


class TestCountMin:
    def test_never_underestimates(self):
        sketch = CountMinSketch(width=64, depth=4, seed=1)
        rng = np.random.default_rng(0)
        truth: dict[str, int] = {}
        for _ in range(500):
            key = f"k{int(rng.integers(0, 200))}"
            sketch.add(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_add_bulk_matches_streaming(self):
        streaming = CountMinSketch(width=128, depth=3, seed=2)
        bulk = CountMinSketch(width=128, depth=3, seed=2)
        counts = {f"t{i}": (i % 5) + 1 for i in range(50)}
        for key, count in counts.items():
            for _ in range(count):
                streaming.add(key)
        keys = sorted(counts)
        bulk.add_bulk(keys, [counts[key] for key in keys])
        np.testing.assert_array_equal(streaming.table, bulk.table)
        np.testing.assert_array_equal(
            streaming.table.min(axis=0), bulk.table.min(axis=0)
        )

    def test_estimate_bulk_matches_scalar(self):
        sketch = CountMinSketch(width=64, depth=4)
        keys = [f"w{i}" for i in range(30)]
        sketch.add_bulk(keys, list(range(1, 31)))
        bulk = sketch.estimate_bulk(keys)
        assert bulk.tolist() == [sketch.estimate(key) for key in keys]

    def test_merge_is_linear(self):
        a = CountMinSketch(width=32, depth=2, seed=3)
        b = CountMinSketch(width=32, depth=2, seed=3)
        a.add("x", 5)
        b.add("x", 7)
        b.add("y", 1)
        a.merge(b)
        assert a.estimate("x") >= 12
        with pytest.raises(ValueError):
            a.merge(CountMinSketch(width=16, depth=2, seed=3))

    def test_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)
        with pytest.raises(ValueError):
            CountMinSketch(depth=9)
        sketch = CountMinSketch()
        with pytest.raises(ValueError):
            sketch.add_bulk(["a"], [1, 2])


class TestMinHashAndHashing:
    def test_stable_hash_is_process_independent(self):
        # blake2b-derived, never Python hash(): the same term must map to
        # the same value in every interpreter (retries, other workers).
        assert stable_term_hash("w1") == stable_term_hash("w1")
        assert stable_term_hash("w1") != stable_term_hash("w1", salt=1)
        row = stable_term_hashes(["a", "b"])
        assert row.dtype == np.uint64
        assert row[0] == stable_term_hash("a")

    def test_signatures_deterministic(self):
        rows = [stable_term_hashes([f"w{i}" for i in range(j + 1)]) for j in range(5)]
        first = minhash_signatures(rows, 16, seed=9)
        second = minhash_signatures(rows, 16, seed=9)
        np.testing.assert_array_equal(first, second)
        assert not np.array_equal(first, minhash_signatures(rows, 16, seed=10))

    def test_empty_row_gets_max_signature(self):
        rows = [stable_term_hashes([]), stable_term_hashes(["a"])]
        signatures = minhash_signatures(rows, 8)
        assert (signatures[0] == np.iinfo(np.uint64).max).all()

    def test_identical_sets_estimate_one(self):
        payloads = {1: {"a": 1.0, "b": 2.0}, 2: {"a": 3.0, "b": 0.5}, 3: {"c": 1.0}}
        suite = build_sparse_cosine_sketch(payloads, num_hashes=32)
        block = np.asarray([(2, 1), (3, 1)], dtype=np.int64)
        estimates = suite.estimated_jaccard(block)
        assert estimates[0] == 1.0  # same term set
        assert estimates[1] == 0.0  # disjoint term sets


class TestSuitePlumbing:
    def test_suite_pickles(self):
        suite = build_sparse_cosine_sketch(sparse_payloads(15))
        clone = pickle.loads(pickle.dumps(suite))
        np.testing.assert_array_equal(clone.bucket_norms, suite.bucket_norms)
        assert clone.kind == suite.kind
        assert clone.nbytes == suite.nbytes > 0

    def test_pruners_pickle(self):
        payloads = dense_payloads(12)
        suite = build_dense_sketch(payloads, "dense-euclidean")
        for pruner in (
            ThresholdPruner(0.5, keep_below=True),
            TopKPruner(2, build_topk_taus(suite, 2)),
        ):
            clone = pickle.loads(pickle.dumps(pruner))
            block = all_pairs(12)
            np.testing.assert_array_equal(
                clone.keep_mask(suite, block), pruner.keep_mask(suite, block)
            )

    def test_registry_dispatch(self):
        assert sketch_kind_for_comp(cosine_similarity) == "sparse-cosine"
        assert sketch_kind_for_comp(euclidean_distance) == "dense-euclidean"
        assert sketch_kind_for_comp(lambda a, b: 0.0) is None
        with pytest.raises(ValueError):
            register_sketch(cosine_similarity, "no-such-kind")
        with pytest.raises(ValueError):
            build_sketches({1: {"a": 1.0}}, "no-such-kind")

    def test_builder_validation(self):
        with pytest.raises(ValueError):
            build_sparse_cosine_sketch({})
        with pytest.raises(ValueError):
            build_sparse_cosine_sketch({0: {"a": 1.0}})
        with pytest.raises(TypeError):
            build_sparse_cosine_sketch({1: np.zeros(3)})
        with pytest.raises(ValueError):
            build_sparse_cosine_sketch({1: {"a": 1.0}}, num_buckets=1)
        with pytest.raises(ValueError):
            build_dense_sketch({1: np.zeros(3)}, "no-such-kind")
        with pytest.raises(ValueError):
            build_dense_sketch({1: np.zeros(3), 2: np.zeros(4)}, "dense-euclidean")

    def test_describe_mentions_kind(self):
        suite = build_sparse_cosine_sketch(sparse_payloads(10))
        assert "sparse-cosine" in suite.describe()
        assert isinstance(SketchSuite.__dataclass_fields__, dict)
