"""Pruning across execution paths: engines, data planes, faults.

The sketch suite is built once driver-side and shipped through the
distributed cache, and every pruning input (blake2b hashing, frozen
arrays, seeded builders) is process-independent — so pruned output must
be identical across SerialEngine, MultiprocessEngine, both broadcast
data planes, the broadcast one-job path, and under injected faults
(retries and speculative attempts prune against the same frozen state).
"""

from __future__ import annotations

import pytest

from repro.apps.docsim import (
    brute_force_similarity,
    build_tfidf,
    cosine_similarity,
)
from repro.core.block import BlockScheme
from repro.core.broadcast import BroadcastScheme
from repro.core.element import results_matrix
from repro.core.pairwise import (
    EVALUATIONS,
    PAIRS_PRUNED,
    PAIRWISE_GROUP,
    PairwiseComputation,
)
from repro.mapreduce import MultiprocessEngine
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.shm import shm_available
from repro.workloads.generator import make_documents

pytestmark = pytest.mark.sketches

V = 23
THRESHOLD = 0.3


def sparse_vectors(v: int = V):
    return build_tfidf(
        make_documents(
            v, vocabulary=120, length=30, num_topics=4, topic_strength=0.85, seed=11
        )
    )


def serial_reference(vectors):
    computation = PairwiseComputation(
        BlockScheme(len(vectors), 4),
        cosine_similarity,
        threshold=THRESHOLD,
        pruning="sketch",
    )
    return results_matrix(computation.run_cached(list(vectors)))


class TestDataPlaneParity:
    @pytest.mark.parametrize(
        "data_plane",
        [
            "default",
            pytest.param(
                "shm",
                marks=pytest.mark.skipif(
                    not shm_available(),
                    reason="POSIX shared memory unavailable",
                ),
            ),
        ],
    )
    def test_multiprocess_matches_serial(self, data_plane):
        vectors = sparse_vectors()
        reference = serial_reference(vectors)
        with PairwiseComputation(
            BlockScheme(V, 4),
            cosine_similarity,
            threshold=THRESHOLD,
            pruning="sketch",
            data_plane=data_plane,
        ) as computation:
            pooled = results_matrix(computation.run_cached(list(vectors)))
        assert pooled == reference

    def test_run_and_run_cached_agree(self):
        vectors = sparse_vectors()
        computation = PairwiseComputation(
            BlockScheme(V, 4),
            cosine_similarity,
            threshold=THRESHOLD,
            pruning="sketch",
        )
        assert results_matrix(computation.run(list(vectors))) == results_matrix(
            computation.run_cached(list(vectors))
        )


class TestBroadcastOneJob:
    def test_one_job_path_prunes_and_matches(self):
        vectors = sparse_vectors()
        computation = PairwiseComputation(
            BroadcastScheme(V, num_tasks=5),
            cosine_similarity,
            threshold=THRESHOLD,
            pruning="sketch",
        )
        merged, result = computation.run_broadcast_job(
            list(vectors), return_result=True
        )
        want = brute_force_similarity(vectors, threshold=THRESHOLD)
        assert results_matrix(merged).keys() == want.keys()
        evaluations = result.counters.get(PAIRWISE_GROUP, EVALUATIONS)
        pruned = result.counters.get(PAIRWISE_GROUP, PAIRS_PRUNED)
        assert pruned > 0
        assert evaluations + pruned == V * (V - 1) // 2


class TestFaultDeterminism:
    """Retried/speculative attempts must reach identical pruning decisions.

    Rate faults hit first attempts only, so ``max_attempts=3`` absorbs a
    5% crash rate; what this actually checks is that a *re-run* task —
    fresh process, fresh interpreter — rebuilds the exact same pair
    survivor set from the cached suite (blake2b hashing, no ``hash()``).
    """

    def test_pruned_results_survive_injected_crashes(self):
        vectors = sparse_vectors()
        reference = serial_reference(vectors)
        plan = FaultPlan(crash_rate=0.05, seed=13)
        with MultiprocessEngine(max_workers=2) as engine:
            computation = PairwiseComputation(
                BlockScheme(V, 4),
                cosine_similarity,
                threshold=THRESHOLD,
                pruning="sketch",
                engine=engine,
                runtime_config={"fault_plan": plan},
                max_attempts=3,
            )
            merged, result = computation.run_cached(
                list(vectors), return_pipeline=True
            )
        assert results_matrix(merged) == reference
        # The ledger survives retries too: replayed attempts must not
        # double-count pruned pairs in the final conservation check.
        evaluations = result.counters.get(PAIRWISE_GROUP, EVALUATIONS)
        pruned = result.counters.get(PAIRWISE_GROUP, PAIRS_PRUNED)
        assert evaluations + pruned == V * (V - 1) // 2

    def test_higher_crash_rate_still_identical(self):
        vectors = sparse_vectors()
        reference = serial_reference(vectors)
        plan = FaultPlan(crash_rate=0.3, seed=29)
        with MultiprocessEngine(max_workers=2) as engine:
            merged = PairwiseComputation(
                BlockScheme(V, 4),
                cosine_similarity,
                threshold=THRESHOLD,
                pruning="sketch",
                engine=engine,
                runtime_config={"fault_plan": plan},
                max_attempts=4,
            ).run_cached(list(vectors))
        assert results_matrix(merged) == reference
