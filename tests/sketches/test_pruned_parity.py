"""Pruned output parity: ``pruning="sketch"`` must change nothing.

The exact-fallback contract (DESIGN.md §3.1.7): with sound bounds only,
the pruned pipeline returns exactly the unpruned pipeline's output — on
the scalar kernel bit-for-bit, on vectorized kernels within the repo's
established 1e-9 relative kernel-parity tolerance (vectorized per-pair
floats legitimately depend on block composition, pruned or not).  Plus
the counter ledger: pruning must tile the pair relation exactly
(``EVALUATIONS + PAIRS_PRUNED == v(v−1)/2``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.covariance import row_inner_product
from repro.apps.dbscan import (
    dbscan_pairwise,
    dbscan_reference,
    euclidean_distance,
)
from repro.apps.docsim import (
    brute_force_similarity,
    build_tfidf,
    cosine_similarity,
    pairwise_similarity,
)
from repro.apps.knn import knn_graph, knn_reference
from repro.core.block import BlockScheme
from repro.core.element import results_matrix
from repro.core.pairwise import (
    EVALUATIONS,
    PAIRS_PRUNED,
    PAIRWISE_GROUP,
    PRUNE_FALSE_POSITIVES,
    SKETCH_BYTES,
    PairwiseComputation,
)
from repro.core.runner import auto_pairwise
from repro.workloads.generator import make_blobs, make_documents, make_matrix

pytestmark = pytest.mark.sketches

V = 23  # matches the any_scheme fixture
REL_TOLERANCE = 1e-9  # the repo's vectorized kernel-parity contract


def sparse_vectors(v: int = V):
    return build_tfidf(
        make_documents(
            v, vocabulary=120, length=30, num_topics=4, topic_strength=0.85, seed=11
        )
    )


def dense_points(v: int = V):
    return make_blobs(v, dim=3, num_clusters=3, spread=0.7, seed=11)


def assert_same_pairs(got: dict, want: dict, *, exact: bool) -> None:
    assert got.keys() == want.keys()
    if exact:
        assert got == want
    else:
        for key in want:
            assert got[key] == pytest.approx(want[key], rel=REL_TOLERANCE)


class TestThresholdJoinParity:
    @pytest.mark.parametrize("threshold", [0.1, 0.3, 0.6])
    def test_scalar_kernel_bit_identical(self, threshold):
        vectors = sparse_vectors()
        scheme = BlockScheme(V, 4)
        unpruned = pairwise_similarity(
            vectors, scheme, kernel=None, threshold=threshold
        )
        pruned = pairwise_similarity(
            vectors, scheme, kernel=None, threshold=threshold, pruning="sketch"
        )
        # Scalar kernel: per-pair evaluation is block-independent, so the
        # surviving pairs' floats are bit-for-bit the unpruned ones.
        assert pruned == unpruned
        assert pruned.keys() == brute_force_similarity(
            vectors, threshold=threshold
        ).keys()

    def test_vectorized_kernel_within_parity_tolerance(self):
        vectors = sparse_vectors()
        scheme = BlockScheme(V, 4)
        unpruned = pairwise_similarity(vectors, scheme, kernel="auto", threshold=0.3)
        pruned = pairwise_similarity(
            vectors, scheme, kernel="auto", threshold=0.3, pruning="sketch"
        )
        assert_same_pairs(pruned, unpruned, exact=False)

    def test_cross_scheme_parity(self, any_scheme):
        vectors = sparse_vectors(any_scheme.v)
        want = brute_force_similarity(vectors, threshold=0.3)
        pruned = pairwise_similarity(
            vectors, any_scheme, threshold=0.3, pruning="sketch"
        )
        assert pruned.keys() == want.keys()
        for key in want:
            assert pruned[key] == pytest.approx(want[key], rel=REL_TOLERANCE)

    def test_estimate_mode_returns_subset(self):
        vectors = sparse_vectors()
        scheme = BlockScheme(V, 4)
        exact = pairwise_similarity(
            vectors, scheme, kernel=None, threshold=0.3, pruning="exact"
        )
        estimated = pairwise_similarity(
            vectors,
            scheme,
            kernel=None,
            threshold=0.3,
            pruning="sketch",
            exact_fallback=False,
            sketch_params={"margin": 0.1},
        )
        assert estimated.keys() <= exact.keys()
        for key in estimated:
            assert estimated[key] == exact[key]


class TestAppParity:
    def test_dbscan_matches_reference(self):
        points = dense_points(30)
        scheme = BlockScheme(30, 5)
        pruned = dbscan_pairwise(points, 1.5, 3, scheme, pruning="sketch")
        assert pruned == dbscan_reference(points, 1.5, 3)

    def test_knn_matches_reference(self):
        points = dense_points(30)
        scheme = BlockScheme(30, 5)
        pruned = knn_graph(points, 4, scheme, pruning="sketch")
        unpruned = knn_graph(points, 4, scheme)
        reference = knn_reference(points, 4)
        assert pruned.neighbors == unpruned.neighbors == reference.neighbors

    def test_covariance_thresholded_dot(self):
        rows = [row for row in make_matrix(20, 12, seed=5)]
        scheme = BlockScheme(20, 4)
        unpruned = PairwiseComputation(
            scheme, row_inner_product, threshold=1.0, pruning="off"
        ).run(list(rows))
        pruned = PairwiseComputation(
            scheme, row_inner_product, threshold=1.0, pruning="sketch"
        ).run(list(rows))
        assert results_matrix(pruned) == results_matrix(unpruned)


class TestCounterLedger:
    def test_conservation_invariant(self):
        vectors = sparse_vectors()
        scheme = BlockScheme(V, 4)
        computation = PairwiseComputation(
            scheme, cosine_similarity, threshold=0.5, pruning="sketch"
        )
        merged, pipeline = computation.run_cached(
            list(vectors), return_pipeline=True
        )
        evaluations = pipeline.counters.get(PAIRWISE_GROUP, EVALUATIONS)
        pruned = pipeline.counters.get(PAIRWISE_GROUP, PAIRS_PRUNED)
        assert evaluations + pruned == V * (V - 1) // 2
        assert pipeline.counters.get(PAIRWISE_GROUP, SKETCH_BYTES) > 0

    def test_false_positives_metered(self):
        vectors = sparse_vectors()
        scheme = BlockScheme(V, 4)
        computation = PairwiseComputation(
            scheme, cosine_similarity, threshold=0.5, pruning="sketch"
        )
        merged, pipeline = computation.run_cached(
            list(vectors), return_pipeline=True
        )
        evaluations = pipeline.counters.get(PAIRWISE_GROUP, EVALUATIONS)
        false_positives = pipeline.counters.get(
            PAIRWISE_GROUP, PRUNE_FALSE_POSITIVES
        )
        output_pairs = len(results_matrix(merged))
        # Every survivor either qualified or is a metered false positive.
        assert false_positives == evaluations - output_pairs

    def test_unpruned_run_reports_zero_pruning(self):
        vectors = sparse_vectors()
        scheme = BlockScheme(V, 4)
        computation = PairwiseComputation(
            scheme, cosine_similarity, threshold=0.5, pruning="exact"
        )
        _, pipeline = computation.run_cached(list(vectors), return_pipeline=True)
        assert pipeline.counters.get(PAIRWISE_GROUP, EVALUATIONS) == V * (V - 1) // 2
        assert pipeline.counters.get(PAIRWISE_GROUP, PAIRS_PRUNED) == 0


class TestObjectiveValidation:
    def test_threshold_and_top_k_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            PairwiseComputation(
                BlockScheme(V, 4), cosine_similarity, threshold=0.5, top_k=3
            )

    def test_pruning_needs_objective(self):
        with pytest.raises(ValueError, match="objective"):
            PairwiseComputation(
                BlockScheme(V, 4), cosine_similarity, pruning="sketch"
            )

    def test_unknown_pruning_mode(self):
        with pytest.raises(ValueError, match="pruning"):
            PairwiseComputation(
                BlockScheme(V, 4), cosine_similarity, threshold=0.5, pruning="maybe"
            )

    def test_unregistered_comp_rejected(self):
        def anonymous(a, b):
            return 0.0

        with pytest.raises(ValueError, match="register_sketch"):
            PairwiseComputation(BlockScheme(V, 4), anonymous, threshold=0.5)

    def test_explicit_aggregator_conflicts(self):
        from repro.core.aggregate import ConcatAggregator

        with pytest.raises(ValueError, match="aggregator"):
            PairwiseComputation(
                BlockScheme(V, 4),
                cosine_similarity,
                threshold=0.5,
                aggregator=ConcatAggregator(),
            )

    def test_sketch_pruning_requires_symmetric(self):
        with pytest.raises(ValueError, match="symmetric"):
            PairwiseComputation(
                BlockScheme(V, 4),
                cosine_similarity,
                threshold=0.5,
                pruning="sketch",
                symmetric=False,
            )

    def test_top_k_similarity_not_implemented(self):
        with pytest.raises(NotImplementedError):
            PairwiseComputation(
                BlockScheme(V, 4), cosine_similarity, top_k=3, pruning="sketch"
            )

    def test_run_local_applies_objective_without_pruning(self):
        vectors = sparse_vectors()
        computation = PairwiseComputation(
            BlockScheme(V, 4), cosine_similarity, threshold=0.5, pruning="sketch"
        )
        local = computation.run_local(list(vectors))
        want = brute_force_similarity(vectors, threshold=0.5)
        assert results_matrix(local) == want


class TestAutoPairwise:
    def test_flat_forwards_pruning(self):
        vectors = sparse_vectors()
        merged, choice = auto_pairwise(
            list(vectors), cosine_similarity, threshold=0.5, pruning="sketch"
        )
        assert results_matrix(merged) == brute_force_similarity(
            vectors, threshold=0.5
        )

    def test_hierarchical_rejects_pruning(self):
        # Huge declared elements force the §7 hierarchical fallback, which
        # has no pruning hook yet — must refuse loudly, not silently skip.
        MB = 1024 * 1024
        vectors = sparse_vectors(30)
        with pytest.raises(NotImplementedError, match="hierarchical"):
            auto_pairwise(
                list(vectors),
                cosine_similarity,
                element_size=40 * MB,
                maxws=100 * MB,
                maxis=600 * MB,
                threshold=0.5,
                pruning="sketch",
            )
