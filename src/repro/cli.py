"""Command-line interface: validate schemes, print metrics, plan capacity.

Subcommands::

    python -m repro metrics  --v 10000 --element-size 500KB --tasks 16 --h 20
    python -m repro validate --scheme block --v 100 --h 5
    python -m repro plan     --v 50000 --element-size 100KB \\
                             --maxws 200MB --maxis 1TB
    python -m repro figures  --which 9b
    python -m repro replication --v 58 --element-size 64KB
    python -m repro demo     --app dbscan

Size arguments accept suffixes KB/MB/GB/TB (decimal, the paper's units).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from ._util import GB, KB, MB, TB, format_bytes


def parse_size(text: str) -> int:
    """'500KB' → 500_000; bare integers are bytes."""
    text = text.strip().upper()
    for suffix, factor in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB), ("B", 1)):
        if text.endswith(suffix):
            number = text[: -len(suffix)].strip()
            try:
                value = float(number)
            except ValueError:
                raise argparse.ArgumentTypeError(f"bad size: {text!r}") from None
            result = int(value * factor)
            if result < 1:
                raise argparse.ArgumentTypeError(f"size must be positive: {text!r}")
            return result
    try:
        result = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad size: {text!r}") from None
    if result < 1:
        raise argparse.ArgumentTypeError(f"size must be positive: {text!r}")
    return result


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pairwise Element Computation with MapReduce (HPDC 2010) tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    metrics = sub.add_parser("metrics", help="print the Table-1 rows")
    metrics.add_argument("--v", type=int, required=True, help="dataset cardinality")
    metrics.add_argument("--element-size", type=parse_size, default=500 * KB)
    metrics.add_argument("--tasks", type=int, default=16, help="broadcast task count")
    metrics.add_argument("--h", type=int, default=20, help="block blocking factor")
    metrics.add_argument("--nodes", type=int, default=None, help="2vn cap for design")

    validate = sub.add_parser("validate", help="exhaustively check a scheme")
    validate.add_argument(
        "--scheme", choices=["broadcast", "block", "design", "quorum"], required=True
    )
    validate.add_argument("--v", type=int, required=True)
    validate.add_argument("--tasks", type=int, default=8)
    validate.add_argument("--h", type=int, default=4)
    validate.add_argument("--prime-powers", action="store_true")

    plan = sub.add_parser("plan", help="recommend a scheme for a workload")
    plan.add_argument("--v", type=int, required=True)
    plan.add_argument("--element-size", type=parse_size, required=True)
    plan.add_argument("--maxws", type=parse_size, default=200 * MB)
    plan.add_argument("--maxis", type=parse_size, default=1 * TB)
    plan.add_argument("--nodes", type=int, default=8)

    figures = sub.add_parser("figures", help="print a paper figure's series")
    figures.add_argument(
        "--which", choices=["8a", "8b", "9a", "9b"], required=True
    )

    replication = sub.add_parser(
        "replication",
        help="compare each scheme's replication to the lower bound",
    )
    replication.add_argument("--v", type=int, required=True)
    replication.add_argument("--element-size", type=parse_size, default=500 * KB)
    replication.add_argument("--tasks", type=int, default=8, help="broadcast tasks")
    replication.add_argument("--h", type=int, default=4, help="block factor")
    replication.add_argument("--prime-powers", action="store_true")

    demo = sub.add_parser("demo", help="run a small application demo")
    demo.add_argument(
        "--app",
        choices=["dbscan", "docsim", "genes", "covariance", "coreference"],
        required=True,
    )

    simulate = sub.add_parser(
        "simulate", help="plan a workload, simulate it, show the Gantt"
    )
    simulate.add_argument("--v", type=int, required=True)
    simulate.add_argument("--element-size", type=parse_size, required=True)
    simulate.add_argument("--maxws", type=parse_size, default=200 * MB)
    simulate.add_argument("--maxis", type=parse_size, default=1 * TB)
    simulate.add_argument("--nodes", type=int, default=8)
    simulate.add_argument("--slots", type=int, default=2)
    simulate.add_argument("--gantt", action="store_true", help="print the task Gantt")
    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------

def cmd_metrics(args: argparse.Namespace) -> int:
    from .core.cost_model import block_row, broadcast_row, design_row

    rows = [
        broadcast_row(args.v, args.tasks),
        block_row(args.v, args.h),
        design_row(args.v, num_nodes=args.nodes),
    ]
    print(f"Table 1 at v={args.v}, s={format_bytes(args.element_size)}:")
    for row in rows:
        print(" ", row.summary(args.element_size))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from .core.block import BlockScheme
    from .core.broadcast import BroadcastScheme
    from .core.design import DesignScheme
    from .core.quorum import QuorumScheme
    from .core.validate import balance_report, check_exactly_once

    if args.scheme == "broadcast":
        scheme = BroadcastScheme(args.v, args.tasks)
    elif args.scheme == "block":
        scheme = BlockScheme(args.v, args.h)
    elif args.scheme == "quorum":
        scheme = QuorumScheme(args.v)
    else:
        scheme = DesignScheme(args.v, allow_prime_powers=args.prime_powers)

    report = check_exactly_once(scheme)
    print(scheme.describe())
    if report.ok:
        balance = balance_report(scheme)
        print(
            f"  exactly-once: OK ({report.total_pairs_seen} pairs); "
            f"imbalance {balance.eval_imbalance:.3f}, "
            f"replication {balance.replication_mean:.2f}, "
            f"max working set {balance.ws_max}"
        )
        return 0
    print(f"  exactly-once: FAILED — missing={report.missing[:3]} "
          f"duplicated={report.duplicated[:3]}")
    return 1


def cmd_plan(args: argparse.Namespace) -> int:
    from .core.chooser import InfeasibleWorkloadError, choose_scheme

    try:
        choice = choose_scheme(
            args.v,
            args.element_size,
            maxws=args.maxws,
            maxis=args.maxis,
            num_nodes=args.nodes,
        )
    except InfeasibleWorkloadError as exc:
        print(f"infeasible: {exc}")
        return 1
    print(choice.explain())
    kind = type(choice.scheme).__name__
    print(f"→ recommended: {kind}")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from .core.cost_model import (
        PAPER_MAXIS,
        PAPER_MAXWS,
        block_h_bounds,
        fig9b_curves,
        log_spaced_sizes,
        max_v_broadcast,
        max_v_design_storage,
    )

    sizes = log_spaced_sizes(10 * KB, 10 * MB, per_decade=3)
    if args.which == "8a":
        print("elem_size  maxv@200MB  maxv@400MB  maxv@1GB")
        for s in sizes:
            print(
                f"{format_bytes(s):>9}  {max_v_broadcast(s, 200 * MB):>10}  "
                f"{max_v_broadcast(s, 400 * MB):>10}  {max_v_broadcast(s, GB):>8}"
            )
    elif args.which == "8b":
        print("elem_size  maxv@100GB  maxv@1TB  maxv@10TB")
        for s in sizes:
            print(
                f"{format_bytes(s):>9}  {max_v_design_storage(s, 100 * GB):>10}  "
                f"{max_v_design_storage(s, TB):>8}  {max_v_design_storage(s, 10 * TB):>9}"
            )
    elif args.which == "9a":
        print("dataset  h_min  h_max  feasible")
        for vs in log_spaced_sizes(GB, 100 * GB, per_decade=3):
            bounds = block_h_bounds(vs, PAPER_MAXWS, PAPER_MAXIS)
            print(
                f"{format_bytes(vs):>7}  {bounds.h_min:>5}  {bounds.h_max:>5}  "
                f"{'yes' if bounds.feasible else 'no'}"
            )
    else:
        print("elem_size  broadcast  block  design")
        for point in fig9b_curves(sizes):
            print(
                f"{format_bytes(point.element_size):>9}  {point.broadcast:>9}  "
                f"{point.block:>6}  {point.design:>6}"
            )
    return 0


def cmd_replication(args: argparse.Namespace) -> int:
    from .core.block import BlockScheme
    from .core.broadcast import BroadcastScheme
    from .core.design import DesignScheme
    from .core.quorum import QuorumScheme
    from .designs.difference_covers import difference_cover

    schemes = [
        BroadcastScheme(args.v, args.tasks),
        BlockScheme(args.v, min(args.h, args.v)),
        DesignScheme(args.v, allow_prime_powers=args.prime_powers),
        QuorumScheme(args.v),
    ]
    print(
        f"replication vs the (v-1)/(capacity-1) lower bound at v={args.v}, "
        f"s={format_bytes(args.element_size)}:"
    )
    print(f"{'scheme':>10}  {'capacity':>8}  {'achieved':>8}  "
          f"{'bound':>7}  {'ratio':>6}  shuffle floor")
    for scheme in schemes:
        report = scheme.replication_report()
        floor = report.shuffle_bytes_floor(args.element_size)
        print(
            f"{report.scheme:>10}  {report.capacity_elements:>8}  "
            f"{report.replication_achieved:>8.2f}  "
            f"{report.replication_lower_bound:>7.2f}  "
            f"{report.optimality_ratio:>6.2f}  {format_bytes(floor)}"
        )
    cover = difference_cover(args.v)
    print(
        f"quorum cover: |D|={cover.size} ({cover.kind}), "
        f"D={sorted(cover.residues)}"
    )
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    if args.app == "dbscan":
        from .apps.dbscan import dbscan_pairwise
        from .core.block import BlockScheme
        from .workloads import make_blobs

        points = make_blobs(60, num_clusters=3, spread=0.3, seed=1)
        result = dbscan_pairwise(points, 1.5, 3, BlockScheme(60, 5))
        print(f"dbscan: {result.num_clusters} clusters, "
              f"{sum(1 for l in result.labels.values() if l == -1)} noise points")
    elif args.app == "docsim":
        from .apps.docsim import build_tfidf, elsayed_similarity
        from .workloads import make_documents

        vectors = build_tfidf(make_documents(30, seed=1))
        sims, _ = elsayed_similarity(vectors, threshold=0.2)
        print(f"docsim: {len(sims)} document pairs above cosine 0.2")
    elif args.app == "genes":
        from .apps.mutualinfo import brute_force_mi, build_relevance_network
        from .workloads import make_expression_matrix

        matrix = make_expression_matrix(16, 80, num_linked_pairs=4, seed=1)
        mi = brute_force_mi([matrix[i] for i in range(16)])
        network = build_relevance_network(mi, 16, threshold=0.8)
        print(f"genes: {len(network.edges)} relevance edges")
    elif args.app == "covariance":
        import numpy as np

        from .apps.covariance import (
            assemble_covariance,
            center_rows,
            covariance_reference,
        )
        from .core.block import BlockScheme
        from .core.pairwise import pairwise_results
        from .apps.covariance import row_inner_product
        from .workloads import make_matrix

        A = make_matrix(12, 50, rank=3, seed=1)
        rows = center_rows(A)
        cov = assemble_covariance(
            pairwise_results(rows, row_inner_product, BlockScheme(12, 3)), rows
        )
        err = float(np.abs(cov - covariance_reference(A)).max())
        print(f"covariance: 12×12 matrix assembled, max |Δ| vs numpy = {err:.2e}")
    else:
        from .apps.coreference import CoreferenceComp, b_cubed, chains_from_scores
        from .core.design import DesignScheme
        from .core.pairwise import pairwise_results
        from .workloads.generator import make_mentions

        mentions, truth = make_mentions(6, 5, seed=1)
        scores = pairwise_results(
            mentions, CoreferenceComp(), DesignScheme(len(mentions))
        )
        chains = chains_from_scores(scores, len(mentions), 0.45)
        p, r, f1 = b_cubed(chains, truth)
        print(f"coreference: {chains.num_chains} chains, B³ F1 = {f1:.3f}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from .cluster import ClusterSimulator, ClusterSpec, NodeSpec, TaskCost, build_trace
    from .core.chooser import InfeasibleWorkloadError, choose_scheme
    from .core.hierarchical import HierarchicalBlockScheme

    try:
        choice = choose_scheme(
            args.v, args.element_size,
            maxws=args.maxws, maxis=args.maxis, num_nodes=args.nodes,
        )
    except InfeasibleWorkloadError as exc:
        print(f"infeasible: {exc}")
        return 1
    cluster = ClusterSpec.homogeneous(
        args.nodes, NodeSpec(slot_memory=args.maxws, slots=args.slots)
    )
    simulator = ClusterSimulator(cluster, maxis=args.maxis)
    scheme = choice.scheme
    print(choice.explain())
    if isinstance(scheme, HierarchicalBlockScheme):
        report = simulator.simulate_schedule(scheme, args.element_size)
        print(f"simulated {scheme.num_rounds} sequential rounds")
    else:
        report = simulator.simulate(scheme, args.element_size)
        print(f"simulated {scheme.describe()}")
    m = report.measured
    print(
        f"  makespan {m.makespan_seconds:.1f}s  replication "
        f"{m.replication_factor:.2f}  max ws {format_bytes(m.max_working_set_bytes)}  "
        f"intermediate {format_bytes(m.intermediate_bytes)}"
    )
    for check in report.limit_checks:
        print("  " + check.format())
    if args.gantt and not isinstance(scheme, HierarchicalBlockScheme):
        node = cluster.nodes[0]
        costs = [
            TaskCost(
                t, scheme.task_profile(t).num_evaluations / node.eval_rate + 1e-9
            )
            for t in range(scheme.num_tasks)
        ]
        trace = build_trace(costs, cluster)
        print(trace.gantt(width=64))
        print(f"  mean slot utilization: {trace.mean_utilization():.1%}")
    return 0 if report.feasible else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "metrics": cmd_metrics,
        "validate": cmd_validate,
        "plan": cmd_plan,
        "figures": cmd_figures,
        "replication": cmd_replication,
        "demo": cmd_demo,
        "simulate": cmd_simulate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - module execution path
    sys.exit(main())
