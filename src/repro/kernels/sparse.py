"""CSR sparse-matrix kernel for tf-idf dict vectors (document similarity).

The docsim pair function evaluates one cosine per Python call over
``dict[str, float]`` payloads — the slowest possible realization of the
paper's §1 cross-referencing workload.  This kernel converts a working
set's dict vectors into one CSR matrix (a per-working-set vocabulary maps
terms to columns), then evaluates the whole pair block with sparse matrix
algebra:

- **Gram path** (pair block covers most of the triangle, e.g. broadcast
  tasks): one ``A @ A.T`` product and a fancy-indexed gather — the cost
  of the block no longer depends on the number of Python-level pairs.
- **Gather path** (sparse blocks): row-gather the pair's left/right CSR
  slices and reduce with an element-wise multiply + row sum, so work
  stays proportional to the block's own nonzeros.

The conversion happens once per working set, so the kernel wins when the
pair count per working set is large relative to its member count (the
broadcast/block regime); with tiny design-scheme working sets the scalar
loop can be competitive — the kernel benchmark sweeps exactly this.

SciPy accelerates both paths when importable; otherwise the kernel falls
back to an equivalent dense-matrix realization (same vocabulary mapping,
same results) so the subsystem works on a NumPy-only install.
"""

from __future__ import annotations

import operator
from typing import Any, Mapping

import numpy as np

from .base import PairKernel

try:  # gated: scipy is optional, the dense fallback below covers its absence
    from scipy import sparse as _sparse
except Exception:  # pragma: no cover - exercised only on scipy-less installs
    _sparse = None


class CsrCosineKernel(PairKernel):
    """Cosine (dot product) of L2-normalized sparse dict vectors, batched.

    Payloads are ``{term: weight}`` mappings as produced by
    :func:`repro.apps.docsim.build_tfidf`; because those vectors are
    normalized, the pairwise dot products *are* the cosines — identical
    semantics to :func:`repro.apps.docsim.cosine_similarity`, within
    float tolerance (different summation order).
    """

    name = "csr-cosine"

    #: Gram path when ``n_pairs >= GRAM_COVERAGE * k(k-1)/2``
    GRAM_COVERAGE = 0.25

    def supports(self, payload: Any) -> bool:
        if not isinstance(payload, Mapping):
            return False
        for term, weight in payload.items():
            return isinstance(term, str) and isinstance(weight, (int, float))
        return True  # the empty vector is a valid (zero) document

    def evaluate_block(
        self, payloads: Mapping[int, Any], pairs: np.ndarray
    ) -> list[Any]:
        if len(pairs) == 0:
            return []
        ids = np.unique(pairs)
        vectors = [payloads[int(eid)] for eid in ids]
        data, cols, indptr, num_terms = self._to_csr_arrays(vectors)
        rows_l = np.searchsorted(ids, pairs[:, 0])
        rows_r = np.searchsorted(ids, pairs[:, 1])
        k = len(ids)
        use_gram = len(pairs) >= self.GRAM_COVERAGE * (k * (k - 1) / 2)
        if _sparse is not None:
            matrix = _sparse.csr_matrix(
                (data, cols, indptr), shape=(k, num_terms), copy=False
            )
            if use_gram:
                gram = (matrix @ matrix.T).toarray()
                out = gram[rows_l, rows_r]
            else:
                left = matrix[rows_l]
                right = matrix[rows_r]
                out = np.asarray(left.multiply(right).sum(axis=1)).ravel()
        else:
            dense = np.zeros((k, num_terms))
            for row in range(k):
                lo, hi = indptr[row], indptr[row + 1]
                dense[row, cols[lo:hi]] = data[lo:hi]
            if use_gram:
                gram = dense @ dense.T
                out = gram[rows_l, rows_r]
            else:
                out = np.einsum("ij,ij->i", dense[rows_l], dense[rows_r])
        return [float(x) for x in out]

    @staticmethod
    def _to_csr_arrays(
        vectors: list[Mapping[str, float]],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """One CSR conversion per working set, over its union vocabulary.

        Term→column mapping is built with C-speed set/dict operations and
        the per-vector column lookup with a single ``itemgetter`` call —
        the conversion is the kernel's fixed cost, so it must stay far
        below one scalar pass over the same dicts.
        """
        lengths = [len(vector) for vector in vectors]
        vocabulary = dict(
            zip(
                set().union(*[vector.keys() for vector in vectors])
                if vectors
                else (),
                range(sum(lengths)),
            )
        )
        # int32 indices whenever they fit: scipy's csr_matrix(copy=False)
        # keeps them as-is, where int64 would be downcast-copied.
        index_dtype = np.int32 if sum(lengths) < 2**31 else np.int64
        indptr = np.zeros(len(vectors) + 1, dtype=index_dtype)
        np.cumsum(lengths, out=indptr[1:])
        nnz = int(indptr[-1])
        cols = np.empty(nnz, dtype=index_dtype)
        data = np.empty(nnz, dtype=np.float64)
        position = 0
        for vector, length in zip(vectors, lengths):
            if length == 0:
                continue
            if length == 1:
                ((term, weight),) = vector.items()
                cols[position] = vocabulary[term]
                data[position] = weight
            else:
                cols[position : position + length] = operator.itemgetter(
                    *vector.keys()
                )(vocabulary)
                data[position : position + length] = np.fromiter(
                    vector.values(), np.float64, length
                )
            position += length
        return data, cols, indptr, len(vocabulary)
