"""NumPy kernels for dense vector payloads (rows, points, centered rows).

All four kernels share one strategy: stack the block's referenced payloads
into a ``(k, m)`` matrix once per working set, gather the left/right rows
of every pair with fancy indexing, and reduce along the feature axis with
a single vectorized expression — ``n`` pair evaluations for the price of
one NumPy call instead of ``n`` Python calls.

:class:`CovarianceKernel` additionally switches to one BLAS Gram-matrix
product (``X @ X.T``) when the pair block covers most of the working
set's triangle — the shape of the paper's §1 covariance workload, where
every working set evaluates *all* its pairs.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from .base import PairKernel


def _is_dense_vector(payload: Any) -> bool:
    """True for 1-D numeric array-likes (ndarray rows, lists of floats)."""
    if isinstance(payload, np.ndarray):
        return payload.ndim == 1 and payload.dtype.kind in "fiub"
    if isinstance(payload, (list, tuple)):
        try:
            arr = np.asarray(payload, dtype=float)
        except (TypeError, ValueError):
            return False
        return arr.ndim == 1
    return False


class _DenseVectorKernel(PairKernel):
    """Shared stack/gather machinery for dense 1-D payloads."""

    def supports(self, payload: Any) -> bool:
        return _is_dense_vector(payload)

    def _gather(
        self, payloads: Mapping[int, Any], pairs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Left/right row matrices for the pair block (one stack per call).

        ``np.asarray(..., dtype=float)`` on a float64 payload row is a
        zero-copy pass-through — rows living in a shared-memory segment
        or an mmapped spill file are read (never copied) straight from
        the shared buffer; the stack into the ``(k, m)`` working matrix
        is the block's single gather copy.
        """
        ids = np.unique(pairs)
        matrix = np.stack(
            [np.asarray(payloads[int(eid)], dtype=float) for eid in ids]
        )
        left = matrix[np.searchsorted(ids, pairs[:, 0])]
        right = matrix[np.searchsorted(ids, pairs[:, 1])]
        return left, right

    def evaluate_block(
        self, payloads: Mapping[int, Any], pairs: np.ndarray
    ) -> list[Any]:
        if len(pairs) == 0:
            return []
        left, right = self._gather(payloads, pairs)
        return [float(x) for x in self._reduce(left, right)]

    def _reduce(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class DenseDotKernel(_DenseVectorKernel):
    """Inner products of dense vectors: ``sum_k l[k] * r[k]`` per pair."""

    name = "dense-dot"

    def _reduce(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        return np.einsum("ij,ij->i", left, right)


class DenseCosineKernel(_DenseVectorKernel):
    """Cosine similarity of dense vectors; zero-norm vectors score 0.0."""

    name = "dense-cosine"

    def _reduce(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        dots = np.einsum("ij,ij->i", left, right)
        norms = np.linalg.norm(left, axis=1) * np.linalg.norm(right, axis=1)
        out = np.zeros_like(dots)
        np.divide(dots, norms, out=out, where=norms > 0)
        return out


class DenseEuclideanKernel(_DenseVectorKernel):
    """L2 distances of dense vectors (the kNN/DBSCAN pair function)."""

    name = "dense-euclidean"

    def _reduce(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        diff = left - right
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))


class CovarianceKernel(_DenseVectorKernel):
    """Inner products of (centered) rows for the covariance workload.

    Same results as :class:`DenseDotKernel`; when the pair block covers at
    least a quarter of the working set's triangle the kernel computes one
    ``X @ X.T`` Gram matrix (a single BLAS call over the whole working
    set) and gathers pair entries from it, which beats the row-gather path
    for the all-pairs blocks the covariance application produces.
    """

    name = "covariance"

    #: Gram path when ``n_pairs >= GRAM_COVERAGE * k(k-1)/2``
    GRAM_COVERAGE = 0.25

    def evaluate_block(
        self, payloads: Mapping[int, Any], pairs: np.ndarray
    ) -> list[Any]:
        if len(pairs) == 0:
            return []
        ids = np.unique(pairs)
        k = len(ids)
        triangle = k * (k - 1) // 2
        if triangle == 0 or len(pairs) < self.GRAM_COVERAGE * triangle:
            left, right = self._gather(payloads, pairs)
            return [float(x) for x in self._reduce(left, right)]
        matrix = np.stack(
            [np.asarray(payloads[int(eid)], dtype=float) for eid in ids]
        )
        gram = matrix @ matrix.T
        rows = np.searchsorted(ids, pairs[:, 0])
        cols = np.searchsorted(ids, pairs[:, 1])
        return [float(x) for x in gram[rows, cols]]

    def _reduce(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        return np.einsum("ij,ij->i", left, right)
