"""Kernel registry: name lookup, pair-function bindings, auto-selection.

Two tables drive dispatch:

- **name → kernel instance** — every importable kernel registers itself
  once (the package ``__init__`` registers the built-ins); job configs may
  then name a kernel as a plain string, which keeps configs picklable and
  engine-agnostic.
- **pair function → kernel name** — applications *bind* their pair
  function to the kernel that vectorizes it (docsim binds
  ``cosine_similarity`` to ``csr-cosine``, covariance binds
  ``row_inner_product`` to ``covariance``, …).  With
  ``config["kernel"] = "auto"`` the reducers look the binding up and
  probe one sample payload via :meth:`PairKernel.supports`; any miss
  falls back to :class:`~repro.kernels.base.ScalarKernel`, so auto mode
  never breaks an application — it only accelerates the ones that opted
  in.

``config["kernel"]`` resolution (:func:`resolve_kernel`):

========================  =================================================
``None`` / ``"scalar"``   :class:`ScalarKernel` wrapping ``comp``
                          (bit-identical to the historical pair loop)
``"auto"``                binding lookup + payload probe, scalar fallback
any other string          registered kernel of that name (strict)
a ``PairKernel``          used as-is
========================  =================================================
"""

from __future__ import annotations

from typing import Any

from .base import PairFunction, PairKernel, ScalarKernel

_KERNELS: dict[str, PairKernel] = {}
_COMP_BINDINGS: dict[Any, str] = {}


def register_kernel(kernel: PairKernel, *, replace: bool = False) -> PairKernel:
    """Register a kernel instance under its :attr:`~PairKernel.name`."""
    if not isinstance(kernel, PairKernel):
        raise TypeError(f"expected a PairKernel, got {type(kernel).__name__}")
    if kernel.name in _KERNELS and not replace:
        raise ValueError(f"kernel {kernel.name!r} already registered")
    _KERNELS[kernel.name] = kernel
    return kernel


def register_comp(comp: PairFunction, kernel_name: str) -> None:
    """Bind a pair function to a registered kernel for auto-selection.

    Applications call this next to the pair function's definition; the
    binding keys on the function object itself, which survives pickling
    to worker processes (module-level functions unpickle to the same
    object).  Unhashable ``comp`` objects simply cannot be bound.
    """
    if kernel_name not in _KERNELS:
        raise ValueError(
            f"cannot bind to unknown kernel {kernel_name!r}; "
            f"registered: {sorted(_KERNELS)}"
        )
    _COMP_BINDINGS[comp] = kernel_name


def get_kernel(name: str) -> PairKernel:
    """The registered kernel of that name (KeyError lists what exists)."""
    try:
        return _KERNELS[name]
    except KeyError:
        raise KeyError(
            f"no kernel named {name!r}; registered: {sorted(_KERNELS)}"
        ) from None


def available_kernels() -> dict[str, PairKernel]:
    """Snapshot of the name → kernel table (for introspection/tests)."""
    return dict(_KERNELS)


def kernel_for_comp(comp: PairFunction) -> str | None:
    """The kernel name bound to a pair function, if any."""
    try:
        return _COMP_BINDINGS.get(comp)
    except TypeError:  # unhashable comp can never have been bound
        return None


def select_kernel(comp: PairFunction, sample_payload: Any = None) -> PairKernel:
    """Auto-selection: bound kernel if it supports the payload, else scalar."""
    name = kernel_for_comp(comp)
    if name is not None:
        kernel = _KERNELS.get(name)
        if kernel is not None and (
            sample_payload is None or kernel.supports(sample_payload)
        ):
            return kernel
    return ScalarKernel(comp)


def resolve_kernel(
    spec: Any, comp: PairFunction, sample_payload: Any = None
) -> PairKernel:
    """Resolve a job's ``config["kernel"]`` entry to a kernel instance."""
    if spec is None or spec == "scalar":
        return ScalarKernel(comp)
    if spec == "auto":
        return select_kernel(comp, sample_payload)
    if isinstance(spec, str):
        return get_kernel(spec)
    if isinstance(spec, PairKernel):
        return spec
    raise TypeError(
        "config['kernel'] must be None, 'scalar', 'auto', a kernel name, "
        f"or a PairKernel instance; got {type(spec).__name__}"
    )
