"""repro.kernels — vectorized batch pair-evaluation for the compute phase.

The compute reducers of :mod:`repro.core.pairwise` materialize each
working set's pair relation into an index block and dispatch it to a
:class:`PairKernel`; the built-in kernels below evaluate whole blocks
with NumPy/SciPy instead of one Python call per pair, which is what makes
the paper's replication-vs-computation trade-offs measurable at
realistically large ``v``.

Built-ins (registered here, selectable by name in ``config["kernel"]``):

==================  ========================================================
``scalar``          wrap any ``comp``; bit-identical to the per-pair loop
``dense-dot``       inner products of dense vectors (einsum gather)
``dense-cosine``    cosine of dense vectors, zero-norm safe
``dense-euclidean`` L2 distance (the kNN/DBSCAN pair function)
``covariance``      centered-row inner products; BLAS Gram fast path
``csr-cosine``      tf-idf dict vectors → one CSR matrix per working set
==================  ========================================================

Applications bind their pair functions via :func:`register_comp` so that
``kernel="auto"`` picks the right kernel from the payload type; anything
unbound (or with an unsupported payload) falls back to ``scalar``.
"""

from .base import PairFunction, PairKernel, ScalarKernel, pair_index_array
from .dense import (
    CovarianceKernel,
    DenseCosineKernel,
    DenseDotKernel,
    DenseEuclideanKernel,
)
from .registry import (
    available_kernels,
    get_kernel,
    kernel_for_comp,
    register_comp,
    register_kernel,
    resolve_kernel,
    select_kernel,
)
from .sparse import CsrCosineKernel

# Built-in kernels are always available by name.  ``replace=True`` keeps
# re-imports (e.g. importlib.reload in tests) idempotent.
register_kernel(DenseDotKernel(), replace=True)
register_kernel(DenseCosineKernel(), replace=True)
register_kernel(DenseEuclideanKernel(), replace=True)
register_kernel(CovarianceKernel(), replace=True)
register_kernel(CsrCosineKernel(), replace=True)

__all__ = [
    "CovarianceKernel",
    "CsrCosineKernel",
    "DenseCosineKernel",
    "DenseDotKernel",
    "DenseEuclideanKernel",
    "PairFunction",
    "PairKernel",
    "ScalarKernel",
    "available_kernels",
    "get_kernel",
    "kernel_for_comp",
    "pair_index_array",
    "register_comp",
    "register_kernel",
    "resolve_kernel",
    "select_kernel",
]
