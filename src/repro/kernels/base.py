"""The pair-evaluation kernel contract and the scalar fallback.

The paper's cost model (§3, and the bounds literature it sits in — Afrati
et al.'s replication/computation trade-off, Ullman's "some pairs"
problems) treats the per-pair evaluation cost of ``comp(si, sj)`` as the
dominant term of the compute phase.  The reducers of
:mod:`repro.core.pairwise` therefore no longer hard-code a Python-level
``comp`` call per pair: they materialize a working set's pair relation
into an index array and hand the whole block to a :class:`PairKernel`.

A kernel answers one question — *evaluate this block of pairs over these
payloads* — and is free to vectorize however it likes (NumPy gathers,
sparse-matrix products, BLAS grams).  :class:`ScalarKernel` wraps any
existing pair function in the same interface, evaluating pairs one by one
in block order, so every scheme and application keeps working unchanged;
it is the default and its results are bit-identical to the historical
per-pair loop.

Kernel instances travel inside ``job.config`` to worker processes, so
they must be picklable and stateless across calls (any conversion state
is built per :meth:`~PairKernel.evaluate_block` invocation, i.e. once per
working set).
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

PairFunction = Callable[[Any, Any], Any]


def pair_index_array(pairs: Iterable[Sequence[int]] | np.ndarray) -> np.ndarray:
    """Materialize a pair relation into an ``(n, 2)`` int64 index array.

    Accepts what ``scheme.get_pairs`` returns (a list of ``(i, j)`` id
    tuples) or an existing array.  An empty relation becomes a ``(0, 2)``
    array so kernels can rely on the shape unconditionally.
    """
    if isinstance(pairs, np.ndarray):
        arr = pairs.astype(np.int64, copy=False)
    else:
        arr = np.asarray(list(pairs), dtype=np.int64)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"pair index array must have shape (n, 2), got {arr.shape}")
    return arr


class PairKernel(abc.ABC):
    """Evaluate a block of pairs over a payload store in one call.

    Implementations are registered under :attr:`name` in
    :mod:`repro.kernels.registry`; the reducers resolve the job's
    ``config["kernel"]`` entry (``None`` → scalar, ``"auto"`` →
    registry selection by pair function, a name or an instance →
    explicit) once per working set and dispatch the whole pair block.
    """

    #: short machine-readable identifier used by the registry
    name: str = "abstract"

    @abc.abstractmethod
    def supports(self, payload: Any) -> bool:
        """Whether a payload of this shape can be evaluated by this kernel.

        Auto-selection probes one sample payload; a ``False`` answer makes
        the dispatch fall back to :class:`ScalarKernel`.
        """

    @abc.abstractmethod
    def evaluate_block(
        self, payloads: Mapping[int, Any], pairs: np.ndarray
    ) -> list[Any]:
        """Evaluate ``comp(payloads[i], payloads[j])`` for every pair row.

        ``pairs`` is an ``(n, 2)`` int64 array of element ids (the output
        of :func:`pair_index_array`); the return value has exactly ``n``
        results, aligned with the rows.  ``payloads`` may contain more
        ids than the pairs reference (the cached reducer hands the whole
        store); kernels must only touch referenced ids.

        Payload arrays may be **read-only zero-copy views** over a shared
        data plane (a shared-memory segment or an mmapped spill file —
        see :mod:`repro.mapreduce.shm`): kernels must never write to a
        payload buffer, and their ingest conversions must pass matching
        dtypes through as views (``np.asarray`` on a float64 row shares
        memory) rather than forcing private copies.
        """

    def describe(self) -> str:
        """Human-readable kernel description."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.describe()!r})"


class ScalarKernel(PairKernel):
    """Fallback kernel: call the wrapped pair function once per pair.

    Evaluation order, argument order and result objects are exactly those
    of the historical per-pair reducer loop, so runs configured with the
    scalar kernel (the default) are bit-identical to pre-kernel builds.
    """

    name = "scalar"

    def __init__(self, comp: PairFunction):
        if not callable(comp):
            raise TypeError(f"comp must be callable, got {type(comp).__name__}")
        self.comp = comp

    def supports(self, payload: Any) -> bool:
        """Any payload the wrapped pair function accepts."""
        return True

    def evaluate_block(
        self, payloads: Mapping[int, Any], pairs: np.ndarray
    ) -> list[Any]:
        comp = self.comp
        return [comp(payloads[int(i)], payloads[int(j)]) for i, j in pairs]

    def describe(self) -> str:
        comp_name = getattr(self.comp, "__name__", repr(self.comp))
        return f"scalar({comp_name})"
