"""Count-min sketch for heavy-hitter term detection.

The classic Cormode–Muthukrishnan structure: ``depth`` hash rows of
``width`` counters; :meth:`estimate` takes the minimum over rows, so it
**never underestimates** a key's true count (every row holds the true
count plus non-negative collision noise).  The sparse sketch builder
streams document frequencies through one of these to pick the
heavy-hitter terms that get dedicated norm buckets — the overestimate
direction is exactly right there: a false heavy-hitter only spends a
bucket, it never loosens a bound.

Hashing is blake2b-derived (one digest per key yields all rows), so
estimates are identical across processes — the determinism the fault
tests lean on.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

#: blake2b digests cap at 64 bytes = 8 rows of 8-byte indices.
MAX_DEPTH = 8


class CountMinSketch:
    """Conservative frequency counter: ``estimate(k) >= true_count(k)``."""

    __slots__ = ("width", "depth", "seed", "table")

    def __init__(self, width: int = 1024, depth: int = 4, seed: int = 0):
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if not 1 <= depth <= MAX_DEPTH:
            raise ValueError(f"depth must be in [1, {MAX_DEPTH}], got {depth}")
        self.width = width
        self.depth = depth
        self.seed = seed
        self.table = np.zeros((depth, width), dtype=np.int64)

    def _indices(self, key: str) -> np.ndarray:
        digest = hashlib.blake2b(
            key.encode("utf-8"),
            digest_size=8 * self.depth,
            salt=self.seed.to_bytes(8, "little"),
        ).digest()
        return np.frombuffer(digest, dtype=np.uint64) % np.uint64(self.width)

    def add(self, key: str, count: int = 1) -> int:
        """Count ``key``; returns the post-update estimate (for HH tracking)."""
        idx = self._indices(key)
        rows = np.arange(self.depth)
        self.table[rows, idx] += count
        return int(self.table[rows, idx].min())

    def add_many(self, keys: Iterable[str]) -> None:
        for key in keys:
            self.add(key)

    def add_bulk(self, keys: Sequence[str], counts: Sequence[int]) -> None:
        """One scatter-add for many (key, count) pairs.

        The sketch is linear, so pre-aggregating a key's occurrences
        (combiner-style) and bulk-adding is state-identical to streaming
        them one at a time — and orders of magnitude cheaper in Python.
        """
        if len(keys) != len(counts):
            raise ValueError("keys and counts must have equal length")
        if not keys:
            return
        idx = np.stack([self._indices(key) for key in keys])  # (n, depth)
        amounts = np.asarray(counts, dtype=np.int64)
        rows = np.broadcast_to(np.arange(self.depth), idx.shape)
        np.add.at(self.table, (rows.ravel(), idx.ravel()), np.repeat(amounts, self.depth))

    def estimate(self, key: str) -> int:
        idx = self._indices(key)
        return int(self.table[np.arange(self.depth), idx].min())

    def estimate_bulk(self, keys: Sequence[str]) -> np.ndarray:
        """Vectorized :meth:`estimate` over many keys."""
        if not keys:
            return np.zeros(0, dtype=np.int64)
        idx = np.stack([self._indices(key) for key in keys])
        return self.table[np.arange(self.depth), idx].min(axis=1)

    def merge(self, other: "CountMinSketch") -> None:
        """Fold another sketch over the same (width, depth, seed) into this one."""
        if (self.width, self.depth, self.seed) != (
            other.width,
            other.depth,
            other.seed,
        ):
            raise ValueError(
                "can only merge count-min sketches with identical "
                "(width, depth, seed)"
            )
        self.table += other.table

    @property
    def nbytes(self) -> int:
        return self.table.nbytes
