"""Sketch suite container and stable term hashing.

Everything a pruner needs travels in one :class:`SketchSuite`: plain
metadata plus contiguous ndarrays indexed by element id (row 0 unused —
elements are 1-indexed like the rest of the pairwise layer).  The suite
is a picklable dataclass of ndarrays, so it rides the distributed cache
like any other cache object and the shm data plane shares its buffers
zero-copy (pickle protocol 5 out-of-band buffers).

Term hashing goes through blake2b, **not** ``hash(str)``: Python string
hashing is salted per process (PYTHONHASHSEED), and pruning decisions
must be identical across workers, retries and speculative attempts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from typing import Iterable, Sequence

import numpy as np

_UINT64_MAX = np.uint64(0xFFFFFFFFFFFFFFFF)


def stable_term_hash(term: str, salt: int = 0) -> int:
    """64-bit hash of a term, stable across processes and Python runs."""
    digest = hashlib.blake2b(
        term.encode("utf-8"), digest_size=8, salt=salt.to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little")


def stable_term_hashes(terms: Iterable[str], salt: int = 0) -> np.ndarray:
    """Vector of :func:`stable_term_hash` values as uint64."""
    return np.fromiter(
        (stable_term_hash(term, salt) for term in terms), dtype=np.uint64
    )


@dataclass(frozen=True)
class SketchSuite:
    """All per-element summaries for one dataset, one sketch kind.

    Arrays are indexed by element id; which ones are populated depends on
    ``kind`` (see :mod:`repro.sketches.builders`):

    - sparse kinds: ``bucket_norms`` (v+1, B), optional ``signatures``
      (v+1, S) uint64;
    - dense kinds: ``coords`` (v+1, m) in an orthonormal basis,
      ``residuals`` (v+1,) — the payload's norm outside that basis.

    ``norms`` (the full L2 norm per element) is always present.  The
    bound methods take an (n, 2) block of pair ids and return one float64
    per pair; their soundness is the whole point — see each docstring.
    """

    kind: str
    v: int
    seed: int
    norms: np.ndarray
    bucket_norms: np.ndarray | None = None
    signatures: np.ndarray | None = None
    coords: np.ndarray | None = None
    residuals: np.ndarray | None = None
    num_heavy_buckets: int = 0
    heavy_terms: tuple[str, ...] = ()

    @property
    def nbytes(self) -> int:
        """Total sketch footprint in bytes (the SKETCH_BYTES gauge)."""
        total = 0
        for field in fields(self):
            value = getattr(self, field.name)
            if isinstance(value, np.ndarray):
                total += value.nbytes
        return total

    # -- sound bounds ----------------------------------------------------------
    def similarity_upper(self, block: np.ndarray) -> np.ndarray:
        """Sound upper bound on the similarity of each pair in ``block``.

        - ``sparse-cosine``: the dot product of two sparse vectors split
          over term buckets obeys per-bucket Cauchy–Schwarz,
          ``dot(a, b) = Σ_b dot(a_b, b_b) ≤ Σ_b ‖a_b‖·‖b_b‖``, for *any*
          partition of the vocabulary into buckets — heavy-hitter terms
          in dedicated buckets only tighten it.  (The docsim vectors are
          L2-normalized upstream, so this bounds their cosine too.)
        - ``dense-cosine`` / ``dense-dot``: with ``P`` the orthonormal
          projector, ``⟨a, b⟩ = ⟨Pa, Pb⟩ + ⟨a−Pa, b−Pb⟩`` and the
          residual term is at most ``ρ_i·ρ_j`` by Cauchy–Schwarz.
        """
        i = block[:, 0]
        j = block[:, 1]
        if self.kind == "sparse-cosine":
            return np.einsum(
                "ij,ij->i", self.bucket_norms[i], self.bucket_norms[j]
            )
        if self.kind in ("dense-cosine", "dense-dot"):
            dot_upper = (
                np.einsum("ij,ij->i", self.coords[i], self.coords[j])
                + self.residuals[i] * self.residuals[j]
            )
            if self.kind == "dense-dot":
                return dot_upper
            denom = self.norms[i] * self.norms[j]
            out = np.zeros(len(block), dtype=np.float64)
            nonzero = denom > 0
            out[nonzero] = dot_upper[nonzero] / denom[nonzero]
            return out
        raise ValueError(
            f"sketch kind {self.kind!r} has no similarity upper bound"
        )

    def _projected_gap(self, block: np.ndarray) -> tuple[np.ndarray, ...]:
        if self.coords is None:
            raise ValueError(
                f"sketch kind {self.kind!r} has no distance bounds"
            )
        i = block[:, 0]
        j = block[:, 1]
        diff = self.coords[i] - self.coords[j]
        return np.einsum("ij,ij->i", diff, diff), self.residuals[i], self.residuals[j]

    def distance_lower(self, block: np.ndarray) -> np.ndarray:
        """Sound lower bound on the euclidean distance of each pair.

        ``‖a−b‖² = ‖P(a−b)‖² + ‖r_a−r_b‖²`` with orthonormal ``P`` and
        residuals ``r``; ``‖r_a−r_b‖ ≥ |ρ_i−ρ_j|`` (reverse triangle
        inequality), so the bound never exceeds the true distance.
        """
        gap, res_i, res_j = self._projected_gap(block)
        return np.sqrt(gap + (res_i - res_j) ** 2)

    def distance_upper(self, block: np.ndarray) -> np.ndarray:
        """Sound upper bound on the euclidean distance (``‖r_a−r_b‖ ≤ ρ_i+ρ_j``)."""
        gap, res_i, res_j = self._projected_gap(block)
        return np.sqrt(gap + (res_i + res_j) ** 2)

    # -- estimates (NOT bounds) ------------------------------------------------
    def estimated_jaccard(self, block: np.ndarray) -> np.ndarray:
        """MinHash Jaccard estimate per pair — an estimate, never a bound."""
        if self.signatures is None:
            raise ValueError("suite was built without MinHash signatures")
        i = block[:, 0]
        j = block[:, 1]
        return (self.signatures[i] == self.signatures[j]).mean(axis=1)

    def describe(self) -> str:
        """One-line human summary (benches print it)."""
        parts = [f"kind={self.kind}", f"v={self.v}", f"bytes={self.nbytes}"]
        if self.bucket_norms is not None:
            parts.append(
                f"buckets={self.bucket_norms.shape[1]}"
                f" (heavy={self.num_heavy_buckets})"
            )
        if self.signatures is not None:
            parts.append(f"signatures={self.signatures.shape[1]}")
        if self.coords is not None:
            parts.append(f"proj_dim={self.coords.shape[1]}")
        return "SketchSuite(" + ", ".join(parts) + ")"


def empty_signature_row(num_hashes: int) -> np.ndarray:
    """Signature of the empty set: no term ever beats UINT64_MAX."""
    return np.full(num_hashes, _UINT64_MAX, dtype=np.uint64)


def as_pair_block(pairs: Sequence[tuple[int, int]]) -> np.ndarray:
    """(n, 2) int64 view of a pair list (mirrors kernels.pair_index_array)."""
    return np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
