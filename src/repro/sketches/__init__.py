"""repro.sketches — per-element summaries for candidate-pair pruning.

The pairwise contract evaluates all v(v−1)/2 pairs exactly once; for
threshold and top-k objectives most of those evaluations are provably
wasted.  This package builds cheap numpy-vectorized summaries of every
element once per run — a :class:`SketchSuite` — and a
:class:`PairPruner` that, given a block of candidate pair indices,
returns the surviving subset *before* the kernel runs.

Three summary families:

- **bucket norms** (sparse tf-idf vectors): per-bucket L2 norms with
  count-min-selected heavy-hitter terms in dedicated buckets; a sound
  upper bound on the sparse dot product by per-bucket Cauchy–Schwarz;
- **projection coordinates** (dense vectors): coordinates in a seeded
  orthonormal basis plus the residual norm outside it; sound two-sided
  bounds on euclidean distance and a sound upper bound on dot/cosine;
- **MinHash signatures** (sparse vectors): estimated Jaccard overlap —
  an *estimate*, not a bound, used only when ``exact_fallback=False``
  trades recall for extra pruning.

Soundness contract: every pruner advertises ``sound``; a sound pruner
never drops a pair whose true score could pass the objective, so
``pruning="sketch", exact_fallback=True`` output is identical to the
unpruned run (DESIGN.md §3.1.7 has the argument).

Pair functions bind to a sketch kind via :func:`register_sketch`,
mirroring the kernel registry; the apps register their comps at import.
"""

from .base import SketchSuite, stable_term_hash, stable_term_hashes
from .builders import build_dense_sketch, build_sparse_cosine_sketch
from .countmin import CountMinSketch
from .minhash import estimated_jaccard, minhash_signatures
from .pruners import (
    BOUND_GUARD,
    PRUNING_MODES,
    PairPruner,
    ThresholdPruner,
    TopKPruner,
    build_topk_taus,
)
from .registry import (
    DENSE_COSINE,
    DENSE_DOT,
    DENSE_EUCLIDEAN,
    DISTANCE_KINDS,
    SKETCH_KINDS,
    SPARSE_COSINE,
    build_sketches,
    register_sketch,
    sketch_kind_for_comp,
)

__all__ = [
    "BOUND_GUARD",
    "CountMinSketch",
    "DENSE_COSINE",
    "DENSE_DOT",
    "DENSE_EUCLIDEAN",
    "DISTANCE_KINDS",
    "PRUNING_MODES",
    "PairPruner",
    "SKETCH_KINDS",
    "SPARSE_COSINE",
    "SketchSuite",
    "ThresholdPruner",
    "TopKPruner",
    "build_dense_sketch",
    "build_sketches",
    "build_sparse_cosine_sketch",
    "build_topk_taus",
    "estimated_jaccard",
    "minhash_signatures",
    "register_sketch",
    "sketch_kind_for_comp",
    "stable_term_hash",
    "stable_term_hashes",
]
