"""Sketch-kind registry: pair function → summary family.

Mirrors the kernel registry (:mod:`repro.kernels.registry`): apps bind
their pair functions to a sketch kind at import time, and
``PairwiseComputation(threshold=... / top_k=...)`` resolves the kind —
which also tells it whether the objective is a distance (keep below)
or a similarity (keep above).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from .base import SketchSuite
from .builders import build_dense_sketch, build_sparse_cosine_sketch

SPARSE_COSINE = "sparse-cosine"
DENSE_COSINE = "dense-cosine"
DENSE_DOT = "dense-dot"
DENSE_EUCLIDEAN = "dense-euclidean"

SKETCH_KINDS = (SPARSE_COSINE, DENSE_COSINE, DENSE_DOT, DENSE_EUCLIDEAN)

#: kinds whose score is a distance — threshold keeps *below*, top-k keeps smallest
DISTANCE_KINDS = frozenset({DENSE_EUCLIDEAN})

_SKETCH_BINDINGS: dict[Any, str] = {}


def register_sketch(comp: Callable[[Any, Any], Any], kind: str) -> None:
    """Bind a pair function to the sketch kind that bounds it."""
    if kind not in SKETCH_KINDS:
        raise ValueError(
            f"unknown sketch kind {kind!r}; known kinds: {SKETCH_KINDS}"
        )
    _SKETCH_BINDINGS[comp] = kind


def sketch_kind_for_comp(comp: Callable[[Any, Any], Any]) -> str | None:
    """The registered sketch kind for ``comp``, or None."""
    try:
        return _SKETCH_BINDINGS.get(comp)
    except TypeError:  # unhashable callable
        return None


def build_sketches(
    payloads: Mapping[int, Any], kind: str, **params: Any
) -> SketchSuite:
    """Build the suite for one payload store under the named kind."""
    if kind == SPARSE_COSINE:
        return build_sparse_cosine_sketch(payloads, **params)
    if kind in (DENSE_COSINE, DENSE_DOT, DENSE_EUCLIDEAN):
        return build_dense_sketch(payloads, kind, **params)
    raise ValueError(f"unknown sketch kind {kind!r}; known kinds: {SKETCH_KINDS}")
