"""MinHash signatures over stable term hashes.

Each of ``num_hashes`` permutations is a multiply-shift map over the
term's blake2b hash — ``h_k(t) = a_k·t + b_k (mod 2⁶⁴)`` with odd
``a_k`` drawn from a seeded generator — and the signature keeps the
minimum over a document's terms.  The collision probability of one
signature slot approximates the Jaccard overlap of the term sets, so
averaging slot agreements estimates it.

This is the suite's one **unsound** summary: MinHash estimates overlap,
it bounds nothing.  The pruners only consult it when the caller opted
out of the exact-fallback guarantee.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import empty_signature_row


def _permutation_params(num_hashes: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    # Odd multipliers make x → a·x a bijection mod 2^64.
    a = rng.integers(1, 1 << 63, size=num_hashes, dtype=np.uint64) | np.uint64(1)
    b = rng.integers(0, 1 << 63, size=num_hashes, dtype=np.uint64)
    return a, b


def minhash_signatures(
    term_hash_rows: Sequence[np.ndarray], num_hashes: int, seed: int = 0
) -> np.ndarray:
    """(n_rows, num_hashes) uint64 signature matrix.

    ``term_hash_rows[r]`` is the uint64 hash array of row r's term set
    (:func:`repro.sketches.base.stable_term_hashes`); an empty set gets
    the all-max signature (no term ever attains it).
    """
    if num_hashes < 1:
        raise ValueError(f"num_hashes must be >= 1, got {num_hashes}")
    a, b = _permutation_params(num_hashes, seed)
    signatures = np.empty((len(term_hash_rows), num_hashes), dtype=np.uint64)
    for row, hashes in enumerate(term_hash_rows):
        if hashes.size:
            # uint64 arithmetic wraps mod 2^64 — that wrap IS the hash.
            signatures[row] = (hashes[:, None] * a[None, :] + b[None, :]).min(
                axis=0
            )
        else:
            signatures[row] = empty_signature_row(num_hashes)
    return signatures


def estimated_jaccard(
    signatures: np.ndarray, block: np.ndarray
) -> np.ndarray:
    """Per-pair fraction of agreeing signature slots (the Jaccard estimate)."""
    i = block[:, 0]
    j = block[:, 1]
    return (signatures[i] == signatures[j]).mean(axis=1)
