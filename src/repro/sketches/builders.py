"""Sketch-suite builders — one cheap vectorized pre-pass per run.

Both builders take the pairwise layer's ``{eid: payload}`` store (ids
1..v) and return a :class:`~repro.sketches.base.SketchSuite` whose
arrays are indexed by element id.  They run driver-side, once, before
job submission; the suite then rides the distributed cache so every
task — including retries and speculative attempts — prunes against the
same frozen summaries.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

import numpy as np

from .base import SketchSuite, stable_term_hash, stable_term_hashes
from .countmin import CountMinSketch
from .minhash import minhash_signatures


def _sorted_eids(payloads: Mapping[int, Any]) -> list[int]:
    eids = sorted(payloads)
    if not eids:
        raise ValueError("cannot sketch an empty payload store")
    if eids[0] < 1:
        raise ValueError(f"element ids must be >= 1, got {eids[0]}")
    return eids


def build_sparse_cosine_sketch(
    payloads: Mapping[int, Mapping[str, float]],
    *,
    num_buckets: int = 96,
    heavy_fraction: float = 0.05,
    max_heavy: int = 24,
    cm_width: int = 2048,
    cm_depth: int = 4,
    num_hashes: int = 32,
    seed: int = 0,
) -> SketchSuite:
    """Bucket-norm + MinHash suite for sparse term-weight vectors.

    One streaming pass feeds distinct terms through a count-min sketch;
    terms whose estimated document frequency reaches
    ``heavy_fraction · v`` get dedicated buckets (at most ``max_heavy``,
    always leaving ≥ 1 shared bucket), everything else hashes into the
    remaining buckets.  A second pass accumulates per-bucket squared
    weights.  Any bucket assignment keeps the dot-product bound sound;
    isolating heavy terms just stops the vocabulary head from inflating
    every shared bucket's norm.

    ``num_hashes=0`` skips the MinHash signatures (they are only
    consulted in estimate mode, so the exact-fallback path can skip the
    build cost).
    """
    if num_buckets < 2:
        raise ValueError(f"num_buckets must be >= 2, got {num_buckets}")
    if not 0.0 < heavy_fraction <= 1.0:
        raise ValueError(
            f"heavy_fraction must be in (0, 1], got {heavy_fraction}"
        )
    eids = _sorted_eids(payloads)
    v = len(eids)
    sample = payloads[eids[0]]
    if not isinstance(sample, Mapping):
        raise TypeError(
            "sparse-cosine sketches need Mapping[str, float] payloads, got "
            f"{type(sample).__name__}"
        )

    # Pass 1: count-min document frequencies → heavy-hitter terms.  Per-
    # document occurrences are pre-aggregated combiner-style (the sketch
    # is linear, so bulk-adding a term's df is state-identical to
    # streaming each document's increment) and the candidate set is the
    # terms whose final estimate clears the cut.
    df_sketch = CountMinSketch(width=cm_width, depth=cm_depth, seed=seed)
    df_counts: dict[str, int] = {}
    for eid in eids:
        for term in payloads[eid]:
            df_counts[term] = df_counts.get(term, 0) + 1
    terms = sorted(df_counts)
    df_sketch.add_bulk(terms, [df_counts[term] for term in terms])
    estimates = df_sketch.estimate_bulk(terms)
    cut = max(2, math.ceil(heavy_fraction * v))
    candidates = {
        term: int(estimate)
        for term, estimate in zip(terms, estimates)
        if estimate >= cut
    }
    budget = min(max_heavy, num_buckets - 1)
    heavy = tuple(
        sorted(candidates, key=lambda term: (-candidates[term], term))[:budget]
    )
    num_heavy = len(heavy)
    shared = num_buckets - num_heavy

    # One bucket (and one stable hash) per vocabulary term, then a single
    # scatter-add over every (document, term) incidence.
    term_hash = {term: stable_term_hash(term) for term in terms}
    bucket_of = {
        term: num_heavy + term_hash[term] % shared for term in terms
    }
    for index, term in enumerate(heavy):
        bucket_of[term] = index

    size = eids[-1] + 1
    squared = np.zeros((size, num_buckets), dtype=np.float64)
    row_idx: list[int] = []
    col_idx: list[int] = []
    weights: list[float] = []
    hash_rows: list[np.ndarray] = []
    for eid in eids:
        vector = payloads[eid]
        row_idx.extend([eid] * len(vector))
        col_idx.extend(bucket_of[term] for term in vector)
        weights.extend(vector.values())
        if num_hashes:
            hash_rows.append(
                np.fromiter(
                    (term_hash[term] for term in sorted(vector)),
                    dtype=np.uint64,
                    count=len(vector),
                )
            )
    np.add.at(
        squared,
        (np.asarray(row_idx), np.asarray(col_idx)),
        np.square(np.asarray(weights, dtype=np.float64)),
    )
    norms = np.sqrt(squared.sum(axis=1))

    signatures = None
    if num_hashes:
        packed = minhash_signatures(hash_rows, num_hashes, seed=seed)
        signatures = np.zeros((size, num_hashes), dtype=np.uint64)
        signatures[eids] = packed

    return SketchSuite(
        kind="sparse-cosine",
        v=v,
        seed=seed,
        norms=norms,
        bucket_norms=np.sqrt(squared),
        signatures=signatures,
        num_heavy_buckets=num_heavy,
        heavy_terms=heavy,
    )


def build_dense_sketch(
    payloads: Mapping[int, Any],
    kind: str,
    *,
    proj_dim: int = 12,
    seed: int = 0,
) -> SketchSuite:
    """Orthonormal-projection suite for dense vector payloads.

    Projects every payload onto a seeded orthonormal basis ``Q`` (QR of
    a Gaussian draw) and records the residual norm ``ρ = ‖x − QQᵀx‖``.
    Because the basis is orthonormal, ``‖P(a−b)‖ ≤ ‖a−b‖`` exactly and
    the residual cross-terms are Cauchy–Schwarz-bounded by ``ρ_i·ρ_j`` —
    the two facts behind every dense bound in
    :class:`~repro.sketches.base.SketchSuite`.  When ``proj_dim >= d``
    the projection is the identity and all bounds are exact.
    """
    if kind not in ("dense-cosine", "dense-dot", "dense-euclidean"):
        raise ValueError(f"unknown dense sketch kind {kind!r}")
    if proj_dim < 1:
        raise ValueError(f"proj_dim must be >= 1, got {proj_dim}")
    eids = _sorted_eids(payloads)
    rows = []
    dim = None
    for eid in eids:
        row = np.asarray(payloads[eid], dtype=np.float64).ravel()
        if dim is None:
            dim = row.shape[0]
        elif row.shape[0] != dim:
            raise ValueError(
                "dense sketches need equal-length vectors; element "
                f"{eid} has {row.shape[0]} components, expected {dim}"
            )
        rows.append(row)
    matrix = np.stack(rows)
    v = len(eids)
    m = min(proj_dim, dim)
    if m == dim:
        projected = matrix
        residual = np.zeros(v, dtype=np.float64)
    else:
        rng = np.random.default_rng(seed)
        basis, _ = np.linalg.qr(rng.standard_normal((dim, m)))
        projected = matrix @ basis
        full_sq = np.einsum("ij,ij->i", matrix, matrix)
        proj_sq = np.einsum("ij,ij->i", projected, projected)
        residual = np.sqrt(np.maximum(full_sq - proj_sq, 0.0))

    size = eids[-1] + 1
    coords = np.zeros((size, m), dtype=np.float64)
    residuals = np.zeros(size, dtype=np.float64)
    norms = np.zeros(size, dtype=np.float64)
    coords[eids] = projected
    residuals[eids] = residual
    norms[eids] = np.sqrt(np.einsum("ij,ij->i", matrix, matrix))

    return SketchSuite(
        kind=kind,
        v=v,
        seed=seed,
        norms=norms,
        coords=coords,
        residuals=residuals,
    )
