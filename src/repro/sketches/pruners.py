"""Pair pruners: from sound bounds to surviving candidate pairs.

A :class:`PairPruner` is the object the compute reducers consult: given
the :class:`~repro.sketches.base.SketchSuite` and an (n, 2) block of
candidate pair ids, :meth:`~PairPruner.keep_mask` marks the pairs whose
true score could still pass the objective.  Pruners are small picklable
value objects built driver-side once per run — every task, retry and
speculative attempt sees the same frozen decisions.

``sound`` is the contract bit: a sound pruner never drops a pair whose
true score could clear the objective, so the pruned run's output equals
the unpruned run's.  :class:`ThresholdPruner` is sound unless built in
estimate mode (MinHash margin pruning, ``exact_fallback=False``);
:class:`TopKPruner` is always sound.

Bound comparisons carry a relative float guard (``BOUND_GUARD``): a
pair is only dropped when its bound fails the threshold by more than
the guard, so last-ulp noise in the vectorized bound arithmetic can
never flip a keep decision into a drop.
"""

from __future__ import annotations

import abc

import numpy as np

from .base import SketchSuite

#: relative slack applied to every bound-vs-threshold comparison
BOUND_GUARD = 1e-9

#: the PairwiseComputation pruning modes
PRUNING_MODES = ("off", "sketch", "exact")


class PairPruner(abc.ABC):
    """Decide, per candidate pair, whether the kernel must evaluate it."""

    @property
    def sound(self) -> bool:
        """True when no pair that could pass the objective is ever dropped."""
        return True

    @abc.abstractmethod
    def keep_mask(self, suite: SketchSuite, block: np.ndarray) -> np.ndarray:
        """Boolean mask over ``block`` rows; True = evaluate the pair."""


class ThresholdPruner(PairPruner):
    """Prune pairs that provably cannot pass a threshold objective.

    ``keep_below=True`` (distances, keep ``value < threshold``) drops a
    pair when its distance *lower* bound already reaches the threshold;
    ``keep_below=False`` (similarities, keep ``value > threshold``)
    drops when the similarity *upper* bound cannot reach it.  Both
    directions are sound given the suite's bounds.

    ``estimate=True`` additionally drops pairs whose MinHash overlap
    estimate sits more than ``margin`` below the threshold — extra
    pruning with no guarantee (``sound`` turns False).
    """

    def __init__(
        self,
        threshold: float,
        *,
        keep_below: bool,
        estimate: bool = False,
        margin: float = 0.15,
    ):
        self.threshold = float(threshold)
        self.keep_below = keep_below
        self.estimate = estimate
        if margin < 0:
            raise ValueError(f"margin must be >= 0, got {margin}")
        self.margin = float(margin)

    @property
    def sound(self) -> bool:
        return not self.estimate

    def keep_mask(self, suite: SketchSuite, block: np.ndarray) -> np.ndarray:
        guard = BOUND_GUARD * (1.0 + abs(self.threshold))
        if self.keep_below:
            keep = suite.distance_lower(block) < self.threshold + guard
        else:
            keep = suite.similarity_upper(block) > self.threshold - guard
        if self.estimate and not self.keep_below and suite.signatures is not None:
            keep &= suite.estimated_jaccard(block) > self.threshold - self.margin
        return keep


class TopKPruner(PairPruner):
    """Prune pairs provably outside *both* endpoints' k nearest partners.

    ``taus[i]`` is an upper bound on element i's k-th smallest true
    distance (see :func:`build_topk_taus`).  If a pair's distance lower
    bound exceeds both endpoints' taus, its true distance is strictly
    greater than each endpoint's k-th best, so neither side can select
    it — ties included, because the aggregator ranks by value before the
    id tie-break.
    """

    def __init__(self, k: int, taus: np.ndarray):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.taus = np.asarray(taus, dtype=np.float64)

    def keep_mask(self, suite: SketchSuite, block: np.ndarray) -> np.ndarray:
        lower = suite.distance_lower(block)
        tau_i = self.taus[block[:, 0]]
        tau_j = self.taus[block[:, 1]]
        guard = BOUND_GUARD * (1.0 + np.maximum(np.abs(tau_i), np.abs(tau_j)))
        return (lower <= tau_i + guard) | (lower <= tau_j + guard)


def build_topk_taus(
    suite: SketchSuite, k: int, *, chunk_size: int = 256
) -> np.ndarray:
    """Per-element upper bound on the k-th smallest true distance.

    For each element, the k-th smallest *distance upper bound* over all
    partners: at least k partners have true distance at most that value,
    so the true k-th nearest distance cannot exceed it.  Computed in
    row chunks against all columns — O(v²) bound arithmetic, but pure
    vectorized float work, orders of magnitude cheaper than the kernels
    plus shuffle it lets the run skip.
    """
    if suite.coords is None:
        raise ValueError(
            f"top-k taus need a dense distance suite, got kind={suite.kind!r}"
        )
    v = suite.v
    if not 1 <= k <= v - 1:
        raise ValueError(f"need 1 <= k <= v-1, got k={k}, v={v}")
    coords = suite.coords[1 : v + 1]
    residuals = suite.residuals[1 : v + 1]
    sq = np.einsum("ij,ij->i", coords, coords)
    taus = np.zeros(v + 1, dtype=np.float64)
    for start in range(0, v, chunk_size):
        stop = min(start + chunk_size, v)
        gap = sq[start:stop, None] + sq[None, :] - 2.0 * (
            coords[start:stop] @ coords.T
        )
        np.maximum(gap, 0.0, out=gap)
        upper = np.sqrt(
            gap + (residuals[start:stop, None] + residuals[None, :]) ** 2
        )
        # An element is not its own partner.
        upper[np.arange(stop - start), np.arange(start, stop)] = np.inf
        taus[start + 1 : stop + 1] = np.partition(upper, k - 1, axis=1)[:, k - 1]
    return taus
