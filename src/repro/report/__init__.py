"""Text-based reporting: ASCII charts for the reproduced figures."""

from .ascii_chart import AsciiChart, loglog_chart

__all__ = [
    "AsciiChart",
    "loglog_chart",
]
