"""ASCII log-log charts for the paper's figures.

The paper's Figs 8–9 are log-log capacity charts.  The bench harness
regenerates their *series*; this module renders those series as terminal
charts so the reproduced figures are visually comparable, not just
tabular.  Pure text, no plotting dependency.

>>> chart = AsciiChart(width=40, height=10, log_x=True, log_y=True)
>>> chart.add_series("block", [(1e4, 1e6), (1e7, 1e3)])
>>> print(chart.render())  # doctest: +SKIP
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

#: marker characters assigned to series in insertion order
MARKERS = "*o+x#@%&"


@dataclass
class _Series:
    label: str
    points: list[tuple[float, float]]
    marker: str


@dataclass
class AsciiChart:
    """A multi-series scatter/line chart rendered to monospace text.

    ``log_x`` / ``log_y`` put the corresponding axis on a log10 scale
    (every point's coordinate must then be positive).  The plot area is
    ``width × height`` characters; axes, tick labels, and a legend are
    added around it.
    """

    width: int = 60
    height: int = 20
    log_x: bool = False
    log_y: bool = False
    x_label: str = "x"
    y_label: str = "y"
    _series: list[_Series] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.width < 10 or self.height < 4:
            raise ValueError("chart needs width >= 10 and height >= 4")

    def add_series(self, label: str, points: Sequence[tuple[float, float]]) -> None:
        """Add a named series; at least one point required."""
        if not points:
            raise ValueError(f"series {label!r} has no points")
        for x, y in points:
            if self.log_x and x <= 0:
                raise ValueError(f"log x-axis needs positive x, got {x}")
            if self.log_y and y <= 0:
                raise ValueError(f"log y-axis needs positive y, got {y}")
        marker = MARKERS[len(self._series) % len(MARKERS)]
        self._series.append(_Series(label, list(points), marker))

    # -- scaling -----------------------------------------------------------
    def _tx(self, x: float) -> float:
        return math.log10(x) if self.log_x else x

    def _ty(self, y: float) -> float:
        return math.log10(y) if self.log_y else y

    def _bounds(self) -> tuple[float, float, float, float]:
        xs = [self._tx(x) for s in self._series for x, _y in s.points]
        ys = [self._ty(y) for s in self._series for _x, y in s.points]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        return x_lo, x_hi, y_lo, y_hi

    # -- rendering -----------------------------------------------------------
    def render(self) -> str:
        """The chart as a multi-line string."""
        if not self._series:
            raise ValueError("no series added")
        x_lo, x_hi, y_lo, y_hi = self._bounds()
        grid = [[" "] * self.width for _ in range(self.height)]

        def place(x: float, y: float, marker: str) -> None:
            col = round((self._tx(x) - x_lo) / (x_hi - x_lo) * (self.width - 1))
            row = round((self._ty(y) - y_lo) / (y_hi - y_lo) * (self.height - 1))
            grid[self.height - 1 - row][col] = marker

        for series in self._series:
            for x, y in series.points:
                place(x, y, series.marker)

        def fmt(value: float, is_log: bool) -> str:
            if is_log:
                return f"1e{value:.0f}" if value == int(value) else f"1e{value:.1f}"
            return f"{value:g}"

        lines = []
        y_top = fmt(y_hi, self.log_y)
        y_bottom = fmt(y_lo, self.log_y)
        label_width = max(len(y_top), len(y_bottom))
        for index, row in enumerate(grid):
            if index == 0:
                prefix = y_top.rjust(label_width)
            elif index == self.height - 1:
                prefix = y_bottom.rjust(label_width)
            else:
                prefix = " " * label_width
            lines.append(f"{prefix} |{''.join(row)}")
        lines.append(" " * label_width + " +" + "-" * self.width)
        x_left = fmt(x_lo, self.log_x)
        x_right = fmt(x_hi, self.log_x)
        gap = self.width - len(x_left) - len(x_right)
        lines.append(
            " " * (label_width + 2) + x_left + " " * max(1, gap) + x_right
        )
        lines.append(
            " " * (label_width + 2)
            + f"{self.x_label}  (y: {self.y_label})"
        )
        legend = "  ".join(f"{s.marker}={s.label}" for s in self._series)
        lines.append(" " * (label_width + 2) + legend)
        return "\n".join(lines)


def loglog_chart(
    series: dict[str, Sequence[tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """One-call helper: a log-log chart of several named series."""
    chart = AsciiChart(
        width=width, height=height, log_x=True, log_y=True,
        x_label=x_label, y_label=y_label,
    )
    for label, points in series.items():
        chart.add_series(label, points)
    return chart.render()
