"""repro — Pairwise Element Computation with MapReduce (HPDC 2010).

A full reproduction of Kiefer, Volk & Lehner's parallel pairwise
computation system: the generic two-MR-job algorithm, the broadcast /
block / design distribution schemes, the hierarchical §7 extensions, a
local MapReduce runtime, a cluster simulator for the §6 evaluation, the
combinatorial-design substrate, and the §1 motivating applications.

Quickstart::

    from repro import BlockScheme, PairwiseComputation

    def distance(a, b):
        return abs(a - b)

    scheme = BlockScheme(v=100, h=5)
    computation = PairwiseComputation(scheme, distance)
    elements = computation.run([float(x) for x in range(100)])
    # elements[1].results == {2: 1.0, 3: 2.0, ...}
"""

from . import apps, cluster, core, designs, kernels, mapreduce, workloads
from ._util import GB, KB, MB, TB
from .cluster import ClusterSimulator, ClusterSpec, NetworkModel, NodeSpec
from .kernels import PairKernel, ScalarKernel, available_kernels, resolve_kernel
from .core import (
    BlockScheme,
    BroadcastScheme,
    ConcatAggregator,
    CyclicDesignScheme,
    DesignScheme,
    DistributionScheme,
    Element,
    HierarchicalBlockScheme,
    PairwiseComputation,
    SchemeMetrics,
    SequentialDesignSchedule,
    ThresholdAggregator,
    TopKAggregator,
    assert_valid_scheme,
    balance_report,
    brute_force_results,
    check_exactly_once,
    pairwise_results,
    results_matrix,
    run_rounds,
)
from .mapreduce import Job, MultiprocessEngine, Pipeline, SerialEngine

__version__ = "1.0.0"

__all__ = [
    "BlockScheme",
    "BroadcastScheme",
    "ClusterSimulator",
    "ClusterSpec",
    "ConcatAggregator",
    "CyclicDesignScheme",
    "DesignScheme",
    "DistributionScheme",
    "Element",
    "GB",
    "HierarchicalBlockScheme",
    "Job",
    "KB",
    "MB",
    "MultiprocessEngine",
    "NetworkModel",
    "NodeSpec",
    "PairKernel",
    "PairwiseComputation",
    "Pipeline",
    "ScalarKernel",
    "SchemeMetrics",
    "SequentialDesignSchedule",
    "SerialEngine",
    "TB",
    "ThresholdAggregator",
    "TopKAggregator",
    "apps",
    "assert_valid_scheme",
    "available_kernels",
    "balance_report",
    "brute_force_results",
    "check_exactly_once",
    "cluster",
    "core",
    "designs",
    "kernels",
    "mapreduce",
    "pairwise_results",
    "resolve_kernel",
    "results_matrix",
    "run_rounds",
    "workloads",
]
