"""Cyclic-quorum distribution scheme: near-optimal replication for any v.

The design scheme (§5.3) is replication-optimal only when v is exactly a
projective-plane size ``q² + q + 1``; everywhere else it pads to the next
plane and pays the padded ``q + 1`` replication.  The quorum scheme drops
the prime-power constraint entirely: working set *t* is the translate
``{(t + d) mod v : d ∈ D}`` of a cyclic difference cover ``D`` (the
cyclic quorums of Kleinheksel & Somani), giving exactly v tasks of
``|D| ≈ √v`` elements for **arbitrary** v.

**Exactly-once pair ownership.**  A relaxed cover may express a
difference several ways, so two elements can share more than one quorum.
Ownership is therefore made canonical per *difference class*: for every
δ ∈ 1…⌊v/2⌋ one fixed representation ``d_i − d_j ≡ δ (mod v)`` with
``d_i, d_j ∈ D`` is chosen at construction, and quorum *t* evaluates the
single pair ``{(t + d_i) mod v, (t + d_j) mod v}`` for each class.  As t
ranges over Z_v this enumerates each unordered residue pair at cyclic
distance δ exactly once — except the self-paired class δ = v/2 of even v,
which translates t and t + v/2 both generate; the smaller translate owns
it.  Both endpoints lie in quorum t by construction, every pair has a
difference class, hence every pair is evaluated exactly once, in any
quorum, for any verified cover.  Work is perfectly balanced: every task
evaluates ⌊(v−1)/2⌋ or ⌈(v−1)/2⌉ pairs (truncated-design blocks range
from 1 to q+1 choose 2).

**Skew-aware assignment** (``element_sizes=``).  The residue an element
occupies decides which |D| quorums replicate it, so heterogeneous
element sizes (Afrati et al.'s different-sized-inputs regime) are
handled by choosing the residue↔element permutation: elements are
bin-packed in descending size order, each onto the free residue that
minimizes the worst resulting per-quorum byte load.  Pair coverage is
permutation-invariant — only per-task *bytes* change — and
:meth:`QuorumScheme.replication_report` reports the achieved max/mean
task-bytes skew.
"""

from __future__ import annotations

import statistics
from typing import Mapping, Sequence

from ..designs.difference_covers import DifferenceCover, difference_cover
from .scheme import (
    DistributionScheme,
    Pair,
    ReplicationReport,
    SchemeMetrics,
    TaskProfile,
    replication_lower_bound,
)

#: above this many free residues, the skew-aware packer scores a strided
#: sample instead of every free residue, keeping construction ~O(v·k·256)
#: instead of O(v²·k) for large v.
_SKEW_SCAN_LIMIT = 256


def _normalize_sizes(v: int, element_sizes) -> list[int]:
    """Accept a length-v sequence (index eid−1) or an eid→size mapping."""
    if isinstance(element_sizes, Mapping):
        sizes = [int(element_sizes.get(eid, 0)) for eid in range(1, v + 1)]
    else:
        sizes = [int(s) for s in element_sizes]
        if len(sizes) != v:
            raise ValueError(
                f"element_sizes must have one entry per element: got {len(sizes)}, need {v}"
            )
    if any(s < 0 for s in sizes):
        raise ValueError("element sizes must be non-negative")
    return sizes


class QuorumScheme(DistributionScheme):
    """Difference-cover quorum scheme (tasks = translates of D mod v).

    Parameters
    ----------
    v:
        Number of elements; any v ≥ 2 (no prime-power constraint).
    element_sizes:
        Optional per-element byte sizes (sequence indexed by ``eid − 1``
        or mapping ``eid → bytes``).  Enables the skew-aware residue
        assignment; omit for the identity assignment.
    cover:
        Optional explicit :class:`DifferenceCover` (or bare residue
        iterable) overriding the cached per-v construction — used by
        tests to pin a specific cover.
    """

    name = "quorum"

    def __init__(
        self,
        v: int,
        *,
        element_sizes: Sequence[int] | Mapping[int, int] | None = None,
        cover: DifferenceCover | Sequence[int] | None = None,
    ):
        super().__init__(v)
        if cover is None:
            cover = difference_cover(v)
        elif not isinstance(cover, DifferenceCover):
            from ..designs.difference_covers import verify_difference_cover

            residues = tuple(sorted(set(int(r) % v for r in cover)))
            if not verify_difference_cover(residues, v):
                raise ValueError(f"not a difference cover of Z_{v}: {residues}")
            cover = DifferenceCover(v=v, residues=residues, kind="explicit")
        elif cover.v != v:
            raise ValueError(f"cover is for v={cover.v}, scheme has v={v}")
        self.cover = cover
        self.residues = cover.residues
        self._reps = self._canonical_reps()
        self.element_sizes = (
            None if element_sizes is None else _normalize_sizes(v, element_sizes)
        )
        if self.element_sizes is None:
            # identity assignment: element eid sits at residue eid − 1
            self._element_at: list[int] | None = None
            self._residue_of: list[int] | None = None
        else:
            self._element_at, self._residue_of = self._pack_by_size(self.element_sizes)

    # -- construction helpers -------------------------------------------------
    def _canonical_reps(self) -> list[Pair]:
        """``reps[δ−1] = (d_i, d_j)`` with ``d_i − d_j ≡ δ (mod v)``.

        First hit in the sorted double scan wins, so the table is
        deterministic for a given cover.  A verified cover realizes every
        non-zero residue, so all ⌊v/2⌋ classes get a representative.
        """
        v = self.v
        by_delta: dict[int, Pair] = {}
        for d_j in self.residues:
            for d_i in self.residues:
                if d_i == d_j:
                    continue
                delta = (d_i - d_j) % v
                if delta not in by_delta:
                    by_delta[delta] = (d_i, d_j)
        try:
            return [by_delta[delta] for delta in range(1, v // 2 + 1)]
        except KeyError as exc:  # pragma: no cover - covers are pre-verified
            raise ValueError(f"cover does not realize difference {exc} mod {v}") from exc

    def _pack_by_size(self, sizes: list[int]) -> tuple[list[int], list[int]]:
        """Greedy byte-balanced residue assignment (deterministic).

        Heaviest element first, each placed on the free residue whose
        |D| containing quorums end up with the smallest worst-case byte
        load.  The tie-break is the *total* load across the touched
        quorums: once two heavy elements must share a quorum (any two
        residues co-occur somewhere — that is the covering property),
        the secondary criterion spreads the forced meetings over
        different quorums instead of stacking a third heavy onto one.
        Final tie → smallest residue, keeping the packing deterministic.
        For large v only a ~256-residue strided sample of the free set
        is scored per element.
        """
        v = self.v
        quorums_of = [[(r - d) % v for d in self.residues] for r in range(v)]
        order = sorted(range(1, v + 1), key=lambda eid: (-sizes[eid - 1], eid))
        loads = [0] * v
        element_at = [0] * v
        residue_of = [0] * (v + 1)
        free: list[int] = list(range(v))
        for eid in order:
            size = sizes[eid - 1]
            stride = max(1, len(free) // _SKEW_SCAN_LIMIT)
            best_r = -1
            best_key = None
            for idx in range(0, len(free), stride):
                r = free[idx]
                touched = [loads[q] for q in quorums_of[r]]
                key = (max(touched) + size, sum(touched), r)
                if best_key is None or key < best_key:
                    best_key, best_r = key, r
            free.remove(best_r)
            element_at[best_r] = eid
            residue_of[eid] = best_r
            for q in quorums_of[best_r]:
                loads[q] += size
        return element_at, residue_of

    # -- residue <-> element mapping ------------------------------------------
    def _residue(self, element_id: int) -> int:
        if self._residue_of is None:
            return element_id - 1
        return self._residue_of[element_id]

    def _element(self, residue: int) -> int:
        if self._element_at is None:
            return residue + 1
        return self._element_at[residue]

    # -- the two functions of paper §4 ----------------------------------------
    def get_subsets(self, element_id: int) -> list[int]:
        self._check_element_id(element_id)
        p = self._residue(element_id)
        v = self.v
        return sorted({(p - d) % v for d in self.residues})

    def get_pairs(self, subset_id: int, members: Sequence[int]) -> list[Pair]:
        """One pair per difference class, owned by translate ``subset_id``.

        Closed-form like broadcast/block: ``members`` is ignored (the
        reducer's arrived set is validated upstream by the exactly-once
        checker and the working-set assertions).
        """
        self._check_subset_id(subset_id)
        t = subset_id
        v = self.v
        half = v // 2
        even = v % 2 == 0
        pairs: list[Pair] = []
        for delta in range(1, half + 1):
            if even and delta == half and t >= half:
                continue  # the t + v/2 translate generates the same pair
            d_i, d_j = self._reps[delta - 1]
            a = self._element((t + d_i) % v)
            b = self._element((t + d_j) % v)
            pairs.append((a, b) if a > b else (b, a))
        return pairs

    # -- structure -------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        return self.v

    def subset_members(self, subset_id: int) -> list[int]:
        self._check_subset_id(subset_id)
        v = self.v
        return sorted(self._element((subset_id + d) % v) for d in self.residues)

    def task_profile(self, subset_id: int) -> TaskProfile:
        self._check_subset_id(subset_id)
        v = self.v
        half = v // 2
        evals = half
        if v % 2 == 0 and subset_id >= half:
            evals -= 1
        payload = None
        if self.element_sizes is not None:
            payload = sum(
                self.element_sizes[self._element((subset_id + d) % v) - 1]
                for d in self.residues
            )
        return TaskProfile(
            subset_id=subset_id,
            num_members=len(self.residues),
            num_evaluations=evals,
            payload_bytes=payload,
        )

    def replication_of(self, element_id: int) -> int:
        """Copies made of one element — |D| for every element."""
        self._check_element_id(element_id)
        return len(self.residues)

    def metrics(self) -> SchemeMetrics:
        v = self.v
        k = len(self.residues)
        return SchemeMetrics(
            scheme=self.name,
            v=v,
            num_tasks=v,
            communication_records=2 * v * k,
            replication_factor=float(k),
            working_set_elements=k,
            evaluations_per_task=(v - 1) / 2,
        )

    def replication_report(self) -> ReplicationReport:
        k = len(self.residues)
        max_bytes = mean_bytes = None
        if self.element_sizes is not None:
            task_bytes = [
                self.task_profile(t).payload_bytes or 0 for t in range(self.v)
            ]
            max_bytes = max(task_bytes)
            mean_bytes = statistics.fmean(task_bytes)
        return ReplicationReport(
            scheme=self.name,
            v=self.v,
            capacity_elements=k,
            replication_achieved=float(k),
            replication_lower_bound=replication_lower_bound(self.v, k),
            max_task_bytes=max_bytes,
            mean_task_bytes=mean_bytes,
        )

    def describe(self) -> str:
        skew = ", skew-aware" if self.element_sizes is not None else ""
        return (
            f"quorum(v={self.v}, |D|={len(self.residues)}, "
            f"cover={self.cover.kind}{skew}, tasks={self.num_tasks})"
        )


def measure_task_bytes(
    scheme: DistributionScheme,
    element_sizes: Sequence[int] | Mapping[int, int],
) -> tuple[int, float]:
    """``(max, mean)`` working-set bytes over a scheme's tasks.

    Works for any scheme by materializing each working set — the
    apples-to-apples skew measurement the replication bench uses to
    compare the skew-aware quorum against design/block on the same
    heavy-tailed sizes.
    """
    sizes = _normalize_sizes(scheme.v, element_sizes)
    totals = [
        sum(sizes[eid - 1] for eid in members) for _, members in scheme.iter_subsets()
    ]
    return max(totals), statistics.fmean(totals)
