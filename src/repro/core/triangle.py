"""Exact enumeration of the strict upper triangle of the pair matrix (Fig. 5).

The broadcast scheme (paper §5.1) enumerates all unordered pairs of a
``v``-element set by labelling the strict upper triangle of the v×v matrix
column by column:

    p(i, j) = (i − 1)(i − 2) / 2 + j        for  i > j ≥ 1

so that pair (2,1) gets label 1, (3,1) label 2, (3,2) label 3, (4,1) label
4, … (the paper's Figure 5).  Labels run 1 … T where T = v(v−1)/2.

This module provides the labelling, its exact integer inverse, and range
iterators used to carve the triangle into per-task chunks.  Everything is
pure integer arithmetic: the inverse uses ``math.isqrt``, so it is exact for
arbitrarily large v (no float round-off at the billion-pair scale the
paper's datasets imply).
"""

from __future__ import annotations

import math
from typing import Iterator

from .._util import ceil_div, triangle_count

Pair = tuple[int, int]


def pair_label(i: int, j: int) -> int:
    """Label ``p(i, j)`` of the pair (s_i, s_j) with i > j >= 1 (Fig. 5)."""
    if j < 1 or i <= j:
        raise ValueError(f"expected i > j >= 1, got (i={i}, j={j})")
    return (i - 1) * (i - 2) // 2 + j


def label_to_pair(p: int) -> Pair:
    """Invert :func:`pair_label`: the (i, j) with ``pair_label(i, j) == p``.

    ``i`` is the smallest integer with ``i(i−1)/2 >= p`` (the column of the
    triangle that contains label p), and ``j = p − (i−1)(i−2)/2``.
    """
    if p < 1:
        raise ValueError(f"pair labels start at 1, got {p}")
    # Solve i(i-1)/2 >= p exactly: i = ceil((1 + sqrt(1 + 8p)) / 2).
    root = math.isqrt(8 * p - 7)  # sqrt of discriminant of (i-1)(i-2)/2 < p
    i = (root + 3) // 2
    # Exact fix-up for the isqrt floor (at most one step either way).
    while (i - 1) * (i - 2) // 2 >= p:
        i -= 1
    while i * (i - 1) // 2 < p:
        i += 1
    j = p - (i - 1) * (i - 2) // 2
    return (i, j)


def total_pairs(v: int) -> int:
    """Total number of labels for a v-element set: T = v(v−1)/2."""
    return triangle_count(v)


def labels_for_task(task: int, num_tasks: int, v: int) -> range:
    """Label range of broadcast task ``task`` (0-indexed) out of ``num_tasks``.

    The paper assigns node l (1-indexed) labels ``(l−1)h + 1 … min(l·h, T)``
    with ``h = ⌈T / n⌉``; this helper is the 0-indexed equivalent.  The
    returned range may be empty for trailing tasks when T < num_tasks · h.
    """
    if not 0 <= task < num_tasks:
        raise ValueError(f"task index {task} out of range [0, {num_tasks})")
    T = triangle_count(v)
    if T == 0:
        return range(1, 1)
    h = ceil_div(T, num_tasks)
    lo = task * h + 1
    hi = min((task + 1) * h, T)
    return range(lo, hi + 1)


def pairs_in_labels(labels: range) -> Iterator[Pair]:
    """Yield the (i, j) pairs for a contiguous label range.

    Walks the triangle incrementally (one inverse computation at the start,
    then constant-time steps) rather than inverting every label.
    """
    if len(labels) == 0:
        return
    i, j = label_to_pair(labels.start)
    for _ in labels:
        yield (i, j)
        j += 1
        if j >= i:  # column exhausted: move to next column of the triangle
            i += 1
            j = 1


def pairs_for_task(task: int, num_tasks: int, v: int) -> Iterator[Pair]:
    """All pairs assigned to a broadcast task, in label order."""
    yield from pairs_in_labels(labels_for_task(task, num_tasks, v))


def elements_in_labels(labels: range) -> set[int]:
    """The set of element ids touched by a contiguous label range.

    Used to compute the *effective* working set of a broadcast task — the
    scheme ships all v elements, but a task only reads these.
    """
    touched: set[int] = set()
    for i, j in pairs_in_labels(labels):
        touched.add(i)
        touched.add(j)
    return touched
