"""The distribution-scheme interface (paper §5).

A *distribution scheme* answers the two questions a concrete pairwise
algorithm needs (paper §4):

1. **getSubsets** — which working sets does element ``s_i`` belong to?
   (drives the map phase of the distribution job), and
2. **getPairs** — which pairs does working set ``D_l`` evaluate?
   (drives the reduce phase).

Together they define the systems ``D`` (working sets) and ``P`` (pair
relations) of §5's formal problem, subject to:

  (a) balanced work across tasks, and
  (b) every unordered pair evaluated **exactly once** over all tasks.

Task/working-set ids are 0-indexed ints in ``[0, num_tasks)``; element ids
are 1-indexed (``s1 … sv``) as in the paper.  :class:`SchemeMetrics`
captures a scheme's Table-1 row — the analytic values; the cluster
simulator measures the empirical counterparts.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator, Sequence

from .._util import format_bytes

Pair = tuple[int, int]


@dataclass(frozen=True)
class SchemeMetrics:
    """One row of the paper's Table 1, in element/record units.

    - ``num_tasks`` — p, the degree of parallelism.
    - ``communication_records`` — total element records shipped over the
      network across both jobs (the paper's "communication costs" counts
      each replica once for the computation and once for the aggregation,
      e.g. 2vh for the block scheme).
    - ``replication_factor`` — copies made of each element.
    - ``working_set_elements`` — elements a single task holds in memory.
    - ``evaluations_per_task`` — pair evaluations per task.
    """

    scheme: str
    v: int
    num_tasks: int
    communication_records: int
    replication_factor: float
    working_set_elements: int
    evaluations_per_task: float

    def communication_bytes(self, element_size: int) -> int:
        """Communication volume in bytes for a given element payload size."""
        return int(self.communication_records * element_size)

    def working_set_bytes(self, element_size: int) -> int:
        """Per-task memory footprint in bytes for a given element size."""
        return int(self.working_set_elements * element_size)

    def intermediate_bytes(self, element_size: int) -> int:
        """Materialized intermediate data: all replicas at once (paper §6).

        This is what the paper compares against ``maxis``: the replicated
        dataset written between the two jobs, ``v · s · replication``.
        """
        return int(self.v * element_size * self.replication_factor)

    def summary(self, element_size: int | None = None) -> str:
        """One-line human-readable report (used by the bench harness)."""
        parts = [
            f"{self.scheme}: tasks={self.num_tasks}",
            f"comm={self.communication_records} recs",
            f"repl={self.replication_factor:g}",
            f"ws={self.working_set_elements} elems",
            f"evals/task={self.evaluations_per_task:g}",
        ]
        if element_size is not None:
            parts.append(f"ws_bytes={format_bytes(self.working_set_bytes(element_size))}")
            parts.append(f"interm={format_bytes(self.intermediate_bytes(element_size))}")
        return "  ".join(parts)


@dataclass(frozen=True)
class TaskProfile:
    """Per-task size profile used by the cluster simulator.

    ``payload_bytes`` is the exact byte footprint of the task's working
    set when the scheme knows per-element sizes (the skew-aware quorum
    variant); ``None`` means only the cardinality is known and
    :meth:`working_set_bytes` falls back to ``members × element_size``.
    """

    subset_id: int
    num_members: int
    num_evaluations: int
    payload_bytes: int | None = None

    def working_set_bytes(self, element_size: int) -> int:
        if self.payload_bytes is not None:
            return self.payload_bytes
        return self.num_members * element_size


def replication_lower_bound(v: int, capacity: int) -> float:
    """Afrati/Ullman replication-rate lower bound ``r ≥ (v−1)/(q−1)``.

    A reducer holding ``q_l ≤ q`` elements covers at most
    ``q_l (q−1) / 2`` pairs, so summing over reducers:
    ``v(v−1)/2 ≤ (q−1)/2 · Σ q_l`` and the replication rate
    ``r = Σ q_l / v`` is at least ``(v−1)/(q−1)``.  A perfect difference
    set (``v = q̂² + q̂ + 1``, capacity ``q̂ + 1``) meets it with equality;
    the coarser form the mapping-schema paper quotes, ``v/(2q)``, is this
    bound weakened by a factor ≈ 2.
    """
    if v < 2:
        raise ValueError(f"need v >= 2, got {v}")
    if capacity < 2:
        raise ValueError(f"reducer capacity must be >= 2 elements, got {capacity}")
    return (v - 1) / (capacity - 1)


@dataclass(frozen=True)
class ReplicationReport:
    """Achieved replication vs the capacity-matched theoretical floor.

    Produced by :meth:`DistributionScheme.replication_report` for every
    scheme; the engine counters and the ``repro replication`` CLI
    subcommand are thin views over this.  ``capacity_elements`` is the
    scheme's own working-set size — the bound is evaluated at the
    capacity the scheme actually uses, so ``optimality_ratio`` isolates
    distribution quality from the capacity choice itself.

    ``max_task_bytes`` / ``mean_task_bytes`` are filled only when the
    scheme knows per-element sizes (skew-aware quorum); ``bytes_skew``
    is their ratio — 1.0 means perfectly byte-balanced tasks.
    """

    scheme: str
    v: int
    capacity_elements: int
    replication_achieved: float
    replication_lower_bound: float
    max_task_bytes: int | None = None
    mean_task_bytes: float | None = None

    @property
    def optimality_ratio(self) -> float:
        """``achieved / bound`` — 1.0 is replication-optimal."""
        return self.replication_achieved / self.replication_lower_bound

    @property
    def bytes_skew(self) -> float | None:
        """``max / mean`` task bytes, when per-element sizes are known."""
        if self.max_task_bytes is None or not self.mean_task_bytes:
            return None
        return self.max_task_bytes / self.mean_task_bytes

    def shuffle_bytes_floor(self, element_size: int) -> int:
        """Minimum bytes one shuffle leg must move at this capacity.

        Every replica crosses the network once per leg, and any
        exactly-once scheme must emit at least ``bound × v`` replicas.
        """
        return int(self.replication_lower_bound * self.v * element_size)

    def summary(self) -> str:
        parts = [
            f"{self.scheme}: repl={self.replication_achieved:g}",
            f"bound={self.replication_lower_bound:.2f}",
            f"ratio={self.optimality_ratio:.3f}",
            f"capacity={self.capacity_elements}",
        ]
        skew = self.bytes_skew
        if skew is not None:
            parts.append(f"bytes_skew={skew:.2f}")
        return "  ".join(parts)


class DistributionScheme(abc.ABC):
    """Abstract base for the broadcast, block, and design schemes.

    Subclasses must be deterministic: the same ``(v, parameters)`` must
    always produce the same working sets and pair relations, because the
    map phase (get_subsets) and the reduce phase (get_pairs) run on
    different nodes and must agree on the partitioning.
    """

    #: short machine-readable name ("broadcast" / "block" / "design" / ...)
    name: str = "abstract"

    def __init__(self, v: int):
        if v < 2:
            raise ValueError(f"pairwise computation needs v >= 2 elements, got {v}")
        self.v = v

    # -- the two functions of paper §4 ---------------------------------------
    @abc.abstractmethod
    def get_subsets(self, element_id: int) -> list[int]:
        """Working-set ids (0-indexed tasks) that element ``element_id`` joins."""

    @abc.abstractmethod
    def get_pairs(self, subset_id: int, members: Sequence[int]) -> list[Pair]:
        """Pairs ``(i, j)`` with i > j that task ``subset_id`` must evaluate.

        ``members`` is the sorted list of element ids that arrived at the
        reducer for this working set; schemes may use it (design) or ignore
        it in favour of closed-form index math (broadcast, block).
        """

    # -- structure ------------------------------------------------------------
    @property
    @abc.abstractmethod
    def num_tasks(self) -> int:
        """Number of working sets b (= independent tasks)."""

    @abc.abstractmethod
    def metrics(self) -> SchemeMetrics:
        """The analytic Table-1 row for this scheme instance."""

    # -- derived helpers (shared implementations) -----------------------------
    def task_profile(self, subset_id: int) -> "TaskProfile":
        """Size profile of one task: member count and evaluation count.

        The default materializes the members and pairs; every concrete
        scheme overrides this with closed-form O(1) math so the cluster
        simulator can profile millions of tasks cheaply.
        """
        members = self.subset_members(subset_id)
        return TaskProfile(
            subset_id=subset_id,
            num_members=len(members),
            num_evaluations=len(self.get_pairs(subset_id, members)),
        )

    def subset_members(self, subset_id: int) -> list[int]:
        """All element ids of working set ``subset_id``, ascending.

        Default implementation inverts :meth:`get_subsets` by scanning all
        elements — O(v · replication).  Subclasses with closed-form working
        sets override this with direct construction.
        """
        self._check_subset_id(subset_id)
        return [
            eid for eid in range(1, self.v + 1) if subset_id in self.get_subsets(eid)
        ]

    def iter_subsets(self) -> Iterator[tuple[int, list[int]]]:
        """Yield ``(subset_id, members)`` for every working set."""
        for subset_id in range(self.num_tasks):
            yield subset_id, self.subset_members(subset_id)

    def all_pairs(self) -> Iterator[Pair]:
        """Every pair the scheme evaluates, across all tasks (for validation)."""
        for subset_id, members in self.iter_subsets():
            yield from self.get_pairs(subset_id, members)

    def replication_report(self) -> ReplicationReport:
        """Achieved replication vs the lower bound at this scheme's capacity.

        The default derives both sides from :meth:`metrics`; schemes that
        know per-element byte sizes (skew-aware quorum) override to fill
        the task-bytes skew fields as well.
        """
        m = self.metrics()
        capacity = max(2, m.working_set_elements)
        return ReplicationReport(
            scheme=self.name,
            v=self.v,
            capacity_elements=capacity,
            replication_achieved=m.replication_factor,
            replication_lower_bound=replication_lower_bound(self.v, capacity),
        )

    def describe(self) -> str:
        """Human-readable description of the configured scheme."""
        return f"{self.name}(v={self.v}, tasks={self.num_tasks})"

    def _check_subset_id(self, subset_id: int) -> None:
        if not 0 <= subset_id < self.num_tasks:
            raise ValueError(
                f"subset id {subset_id} out of range [0, {self.num_tasks})"
            )

    def _check_element_id(self, element_id: int) -> None:
        if not 1 <= element_id <= self.v:
            raise ValueError(
                f"element id {element_id} out of range [1, {self.v}]"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
