"""Scheme validation: exactly-once coverage and balance statistics.

The formal demands of paper §5 are checked exhaustively here:

(a) *balance* — all working sets similar in size, all tasks similar in
    evaluation count (reported as :class:`BalanceReport` statistics), and
(b) *exactly-once* — for any two elements s_i, s_j there is exactly one
    working set D_l with (s_i, s_j) ∈ P_l, *and* both endpoints of every
    pair actually belong to that working set (a pair a task cannot
    evaluate locally would violate the no-online-communication execution
    model of §3).

These checkers are O(v²) and intended for tests and the coverage bench,
not for production-size datasets.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .._util import mean, stdev, triangle_count
from .scheme import DistributionScheme


@dataclass(frozen=True)
class CoverageReport:
    """Result of the exactly-once check."""

    ok: bool
    total_pairs_expected: int
    total_pairs_seen: int
    missing: tuple[tuple[int, int], ...]
    duplicated: tuple[tuple[int, int], ...]
    #: pairs emitted by a task that lacks one of the endpoints
    unservable: tuple[tuple[int, int], ...]
    #: working sets inconsistent between get_subsets and subset_members
    membership_mismatches: tuple[str, ...]


@dataclass(frozen=True)
class BalanceReport:
    """Distribution statistics over tasks (paper demand (a))."""

    num_tasks: int
    evals_min: int
    evals_max: int
    evals_mean: float
    evals_stdev: float
    ws_min: int
    ws_max: int
    ws_mean: float
    replication_min: int
    replication_max: int
    replication_mean: float

    @property
    def eval_imbalance(self) -> float:
        """max/mean ratio of evaluations per task (1.0 = perfectly even)."""
        return self.evals_max / self.evals_mean if self.evals_mean else 1.0


def check_exactly_once(
    scheme: DistributionScheme, *, max_reported: int = 20
) -> CoverageReport:
    """Verify paper demand (b): every pair evaluated exactly once, locally.

    Walks every working set exactly as the MR reduce phase would (members
    from :meth:`subset_members`, pairs from :meth:`get_pairs`) and
    cross-checks against :meth:`get_subsets` — the map-side view — since
    both sides must agree for the two-job implementation to work.
    """
    v = scheme.v
    coverage: Counter = Counter()
    unservable: list[tuple[int, int]] = []
    membership_mismatches: list[str] = []

    # Map-side view: element -> subsets.
    map_side: dict[int, set[int]] = {
        eid: set(scheme.get_subsets(eid)) for eid in range(1, v + 1)
    }

    for subset_id, members in scheme.iter_subsets():
        member_set = set(members)
        # Reduce-side membership must match the map-side emission exactly.
        for eid in members:
            if subset_id not in map_side[eid]:
                if len(membership_mismatches) < max_reported:
                    membership_mismatches.append(
                        f"element {eid} in subset {subset_id} per subset_members "
                        "but not per get_subsets"
                    )
        for i, j in scheme.get_pairs(subset_id, members):
            if i <= j:
                raise AssertionError(
                    f"scheme emitted non-canonical pair ({i}, {j}) in subset {subset_id}"
                )
            if i not in member_set or j not in member_set:
                if len(unservable) < max_reported:
                    unservable.append((i, j))
            coverage[(i, j)] += 1

    # Reverse check: every subset claimed by get_subsets must list the element.
    members_cache = {sid: set(scheme.subset_members(sid)) for sid in range(scheme.num_tasks)}
    for eid, subsets in map_side.items():
        for sid in subsets:
            if eid not in members_cache[sid]:
                if len(membership_mismatches) < max_reported:
                    membership_mismatches.append(
                        f"get_subsets({eid}) includes subset {sid} "
                        "but subset_members omits the element"
                    )

    expected = triangle_count(v)
    missing = []
    for i in range(2, v + 1):
        for j in range(1, i):
            if (i, j) not in coverage:
                missing.append((i, j))
                if len(missing) >= max_reported:
                    break
        if len(missing) >= max_reported:
            break
    duplicated = [pair for pair, count in coverage.items() if count > 1][:max_reported]

    ok = (
        not missing
        and not duplicated
        and not unservable
        and not membership_mismatches
        and sum(coverage.values()) == expected
    )
    return CoverageReport(
        ok=ok,
        total_pairs_expected=expected,
        total_pairs_seen=sum(coverage.values()),
        missing=tuple(missing),
        duplicated=tuple(duplicated),
        unservable=tuple(unservable),
        membership_mismatches=tuple(membership_mismatches),
    )


def balance_report(scheme: DistributionScheme) -> BalanceReport:
    """Measure demand (a): per-task evaluations/working sets, per-element replication."""
    evals: list[int] = []
    ws: list[int] = []
    replication: Counter = Counter()
    for subset_id, members in scheme.iter_subsets():
        evals.append(len(scheme.get_pairs(subset_id, members)))
        ws.append(len(members))
        for eid in members:
            replication[eid] += 1
    rep_values = [replication.get(eid, 0) for eid in range(1, scheme.v + 1)]
    return BalanceReport(
        num_tasks=scheme.num_tasks,
        evals_min=min(evals),
        evals_max=max(evals),
        evals_mean=mean(evals),
        evals_stdev=stdev(evals),
        ws_min=min(ws),
        ws_max=max(ws),
        ws_mean=mean(ws),
        replication_min=min(rep_values),
        replication_max=max(rep_values),
        replication_mean=mean(rep_values),
    )


def assert_valid_scheme(scheme: DistributionScheme) -> None:
    """Raise AssertionError with diagnostics unless the scheme is valid."""
    report = check_exactly_once(scheme)
    if not report.ok:
        raise AssertionError(
            f"{scheme.describe()} violates exactly-once coverage: "
            f"expected {report.total_pairs_expected} pairs, saw "
            f"{report.total_pairs_seen}; missing={report.missing[:5]} "
            f"duplicated={report.duplicated[:5]} "
            f"unservable={report.unservable[:5]} "
            f"mismatches={report.membership_mismatches[:3]}"
        )
