"""Elements and their per-pair result lists (the storage layout of Fig. 2).

An :class:`Element` carries a unique integer id, an opaque payload, and the
results of the pairwise evaluations it has participated in so far, keyed by
the partner element's id::

    s1  <payload...>  {s2: comp(s1,s2), s3: comp(s1,s3), ...}

Because the distribution schemes replicate elements into several working
sets, multiple *copies* of an element accumulate disjoint partial result
maps; :func:`merge_copies` (used by the aggregation job, Algorithm 2) fuses
them back into one element.  A partner id appearing in two copies signals a
pair evaluated twice — a violation of the schemes' exactly-once guarantee —
and raises :class:`DuplicatePairError` unless the caller opts out.

:func:`element_size_bytes` reproduces the §3 storage arithmetic (the
"10,000 × 500 KB elements → 6.5 GB, not 50 TB" example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping


class DuplicatePairError(RuntimeError):
    """A pair was evaluated in more than one working set."""


@dataclass
class Element:
    """One dataset element: identity, payload, and accumulated pair results.

    ``eid`` is 1-indexed to match the paper's ``s1 … sv`` notation; the
    workload generators hand out contiguous ids.  ``results`` maps partner
    id → evaluation result.
    """

    eid: int
    payload: Any = None
    results: dict[int, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.eid < 1:
            raise ValueError(f"element ids are 1-indexed, got {self.eid}")

    def add_result(self, partner: int, value: Any) -> None:
        """Record ``comp(self, partner) = value`` (Algorithm 1's addResult)."""
        if partner == self.eid:
            raise ValueError(f"element {self.eid} paired with itself")
        if partner in self.results:
            raise DuplicatePairError(
                f"pair ({self.eid}, {partner}) evaluated more than once"
            )
        self.results[partner] = value

    def copy_without_results(self) -> "Element":
        """A fresh copy sharing the payload but with an empty result map.

        This is what the distribution map phase emits: each working set gets
        its own copy so that parallel reducers never share mutable state.
        """
        return Element(self.eid, self.payload)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Element(eid={self.eid}, results={len(self.results)})"


def merge_copies(
    copies: Iterable[Element],
    *,
    on_duplicate: str = "error",
    combine: Callable[[Any, Any], Any] | None = None,
) -> Element:
    """Fuse all copies of one element into a single element (Algorithm 2).

    ``on_duplicate`` controls what happens when two copies both carry a
    result for the same partner (which the schemes guarantee never happens):

    - ``"error"``   — raise :class:`DuplicatePairError` (default; catches
      scheme bugs in tests),
    - ``"keep"``    — keep the first value seen,
    - ``"combine"`` — apply ``combine(old, new)``.
    """
    if on_duplicate not in ("error", "keep", "combine"):
        raise ValueError(f"unknown duplicate policy: {on_duplicate!r}")
    if on_duplicate == "combine" and combine is None:
        raise ValueError("on_duplicate='combine' requires a combine function")

    merged: Element | None = None
    for copy in copies:
        if merged is None:
            merged = Element(copy.eid, copy.payload, dict(copy.results))
            continue
        if copy.eid != merged.eid:
            raise ValueError(
                f"cannot merge copies of different elements "
                f"({merged.eid} vs {copy.eid})"
            )
        if merged.payload is None and copy.payload is not None:
            merged.payload = copy.payload
        for partner, value in copy.results.items():
            if partner in merged.results:
                if on_duplicate == "error":
                    raise DuplicatePairError(
                        f"pair ({merged.eid}, {partner}) appears in multiple copies"
                    )
                if on_duplicate == "combine":
                    merged.results[partner] = combine(merged.results[partner], value)  # type: ignore[misc]
                # "keep": leave the existing value
            else:
                merged.results[partner] = value
    if merged is None:
        raise ValueError("merge_copies got an empty iterable")
    return merged


def element_size_bytes(
    payload_size: int,
    num_results: int,
    *,
    id_bytes: int = 8,
    result_bytes: int = 8,
) -> int:
    """Post-computation element size per the paper's §3 model.

    Each stored result costs one partner id plus one result value
    (``id_bytes + result_bytes``, 16 B with the paper's defaults), so an
    element of payload size ``payload_size`` that was compared against
    ``num_results`` partners occupies
    ``payload_size + num_results · (id_bytes + result_bytes)`` bytes.
    """
    if payload_size < 0 or num_results < 0:
        raise ValueError("sizes must be non-negative")
    return payload_size + num_results * (id_bytes + result_bytes)


def dataset_size_bytes(
    v: int,
    payload_size: int,
    *,
    with_results: bool = False,
    id_bytes: int = 8,
    result_bytes: int = 8,
) -> int:
    """Total dataset size before or after the pairwise computation (§3).

    ``with_results=True`` adds the full result lists (v−1 partners per
    element) — the paper's example: v = 10,000 and payload 500 KB gives
    5 GB before and ≈ 6.5 GB after (instead of the 50 TB a naive quadratic
    materialization would need).
    """
    if v < 0:
        raise ValueError(f"v must be non-negative, got {v}")
    per_element = payload_size
    if with_results and v > 0:
        per_element = element_size_bytes(
            payload_size, v - 1, id_bytes=id_bytes, result_bytes=result_bytes
        )
    return v * per_element


def make_elements(payloads: Iterable[Any]) -> list[Element]:
    """Wrap raw payloads into elements with ids 1, 2, 3, …"""
    return [Element(i + 1, payload) for i, payload in enumerate(payloads)]


def ordered_results(
    elements: Mapping[int, Element] | Iterable[Element],
) -> dict[tuple[int, int], Any]:
    """Flatten result maps keeping orientation: ``(i, j) → i's result for j``.

    The non-symmetric counterpart of :func:`results_matrix` — no symmetry
    check, both orientations kept as distinct keys.
    """
    items = list(elements.values()) if isinstance(elements, Mapping) else list(elements)
    out: dict[tuple[int, int], Any] = {}
    for element in items:
        for partner, value in element.results.items():
            out[(element.eid, partner)] = value
    return out


def results_matrix(elements: Mapping[int, Element] | Iterable[Element]) -> dict[tuple[int, int], Any]:
    """Flatten per-element result maps into one canonical (i>j) pair map.

    Verifies symmetry on the way: if both orientations of a pair are stored
    they must agree.
    """
    if isinstance(elements, Mapping):
        items = list(elements.values())
    else:
        items = list(elements)
    out: dict[tuple[int, int], Any] = {}
    for element in items:
        for partner, value in element.results.items():
            key = (element.eid, partner) if element.eid > partner else (partner, element.eid)
            if key in out:
                if out[key] != value:
                    raise ValueError(
                        f"asymmetric results for pair {key}: {out[key]!r} vs {value!r}"
                    )
            else:
                out[key] = value
    return out
