"""Parallel speedup and efficiency analysis of the distribution schemes.

The paper argues "there will always be many more tasks than nodes
(p ≥ v > n) so that no node should ever be idle" — a scalability claim
this module makes quantitative.  From a scheme's Table-1 row and the
machine model, it predicts

    T(n) = T_comm(n) + T_comp(n)
         = communication / (n · bandwidth)  +  evaluations · t_eval / n·slots
           (+ the scheme's per-task floor: the largest single task
            cannot be split, so T(n) ≥ max_task_time)

and derives speedup ``S(n) = T(1)/T(n)``, efficiency ``S(n)/n``, and the
knee where communication overtakes computation — the point the paper's
communication-cost row (2vp vs 2vh vs 2v√v) starts to matter.

Predictions are cross-checked against the discrete
:class:`~repro.cluster.simulator.ClusterSimulator` in the bench harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .._util import MB
from .scheme import SchemeMetrics


@dataclass(frozen=True)
class MachineModel:
    """The per-node constants of the speedup model."""

    eval_seconds: float = 1e-4  #: time per pair evaluation
    bandwidth: float = 100 * MB  #: bytes/second per node link
    slots_per_node: int = 2

    def __post_init__(self) -> None:
        if self.eval_seconds <= 0 or self.bandwidth <= 0:
            raise ValueError("eval_seconds and bandwidth must be positive")
        if self.slots_per_node < 1:
            raise ValueError(f"slots_per_node must be >= 1, got {self.slots_per_node}")


@dataclass(frozen=True)
class SpeedupPoint:
    """Model prediction at one cluster size."""

    nodes: int
    compute_seconds: float
    comm_seconds: float
    total_seconds: float
    speedup: float
    efficiency: float

    @property
    def comm_fraction(self) -> float:
        return self.comm_seconds / self.total_seconds if self.total_seconds else 0.0


def predicted_makespan(
    metrics: SchemeMetrics,
    element_size: int,
    nodes: int,
    machine: MachineModel = MachineModel(),
) -> tuple[float, float]:
    """(compute_seconds, comm_seconds) of one scheme run on ``nodes``.

    Compute parallelizes over all slots but is floored by the largest
    indivisible task; communication is the scheme's Table-1 volume spread
    over per-node links.
    """
    if nodes < 1:
        raise ValueError(f"nodes must be >= 1, got {nodes}")
    if element_size < 1:
        raise ValueError(f"element_size must be >= 1, got {element_size}")
    total_evals = metrics.evaluations_per_task * metrics.num_tasks
    slots = nodes * machine.slots_per_node
    per_task_floor = metrics.evaluations_per_task * machine.eval_seconds
    compute = max(total_evals * machine.eval_seconds / slots, per_task_floor)
    comm_bytes = metrics.communication_bytes(element_size)
    comm = comm_bytes / (nodes * machine.bandwidth)
    return compute, comm


def speedup_curve(
    metrics: SchemeMetrics,
    element_size: int,
    node_counts: Sequence[int],
    machine: MachineModel = MachineModel(),
) -> list[SpeedupPoint]:
    """Model S(n) over the given cluster sizes (baseline: 1 node)."""
    if not node_counts:
        raise ValueError("need at least one node count")
    base_compute, base_comm = predicted_makespan(metrics, element_size, 1, machine)
    baseline = base_compute + base_comm
    points = []
    for nodes in node_counts:
        compute, comm = predicted_makespan(metrics, element_size, nodes, machine)
        total = compute + comm
        speedup = baseline / total if total else float("inf")
        points.append(
            SpeedupPoint(
                nodes=nodes,
                compute_seconds=compute,
                comm_seconds=comm,
                total_seconds=total,
                speedup=speedup,
                efficiency=speedup / nodes,
            )
        )
    return points


def scalability_knee(
    metrics: SchemeMetrics,
    element_size: int,
    machine: MachineModel = MachineModel(),
    *,
    max_nodes: int = 4096,
) -> int:
    """Smallest n where adding a node improves total time by < 5 %.

    Past the knee the per-task floor (or the task count itself) caps the
    useful parallelism — the quantitative form of the paper's "p ≥ v > n"
    requirement: schemes with more tasks keep scaling longer.
    """
    previous = None
    for nodes in range(1, max_nodes + 1):
        compute, comm = predicted_makespan(metrics, element_size, nodes, machine)
        total = compute + comm
        if previous is not None and previous - total < 0.05 * previous:
            return nodes - 1
        previous = total
    return max_nodes


def max_useful_nodes(metrics: SchemeMetrics, slots_per_node: int = 2) -> int:
    """Nodes beyond which slots outnumber tasks (guaranteed idle slots)."""
    if slots_per_node < 1:
        raise ValueError(f"slots_per_node must be >= 1, got {slots_per_node}")
    return max(1, -(-metrics.num_tasks // slots_per_node))
