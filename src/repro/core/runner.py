"""One-call pairwise execution with automatic scheme selection.

:func:`auto_pairwise` glues the pieces a user would otherwise assemble by
hand: estimate the element size, let :func:`repro.core.chooser.choose_scheme`
pick the scheme the paper's analysis recommends for the environment, and
run it — through the two-job pipeline for flat schemes or round-by-round
for a hierarchical schedule.  Returns the merged elements together with
the :class:`~repro.core.chooser.SchemeChoice` so callers can log the
decision trail.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Sequence

from .._util import GB, MB, TB, ceil_div
from .chooser import SchemeChoice, choose_scheme
from .element import Element
from .hierarchical import HierarchicalBlockScheme, run_rounds, run_rounds_mr
from .pairwise import PairwiseComputation
from .scheme import DistributionScheme


def _forced_choice(
    v: int,
    scheme: Any,
    *,
    element_size: int,
    maxws: int,
    num_nodes: int,
) -> SchemeChoice:
    """Build the SchemeChoice for an explicit ``scheme=`` override."""
    if isinstance(scheme, DistributionScheme):
        if scheme.v != v:
            raise ValueError(
                f"supplied scheme is for v={scheme.v}, dataset has {v} elements"
            )
        return SchemeChoice(
            scheme, [f"scheme forced by caller: {scheme.describe()}"]
        )
    name = str(scheme)
    if name == "broadcast":
        from .broadcast import BroadcastScheme

        built: DistributionScheme = BroadcastScheme(v, max(1, 2 * num_nodes))
    elif name == "block":
        from .block import BlockScheme

        h = min(v, max(1, ceil_div(2 * v * element_size, maxws)))
        built = BlockScheme(v, h)
    elif name == "design":
        from .design import DesignScheme

        built = DesignScheme(v, num_nodes=num_nodes)
    elif name == "quorum":
        from .quorum import QuorumScheme

        built = QuorumScheme(v)
    else:
        raise ValueError(
            f"unknown scheme family {name!r}: expected broadcast/block/"
            "design/quorum, or a DistributionScheme instance"
        )
    return SchemeChoice(
        built,
        [f"scheme forced by caller: {built.describe()} (feasibility checks skipped)"],
    )


def estimate_element_size(dataset: Sequence[Any], sample: int = 8) -> int:
    """Pickled size of a small sample's mean element, in bytes (min 1).

    Honors :class:`~repro.mapreduce.serialization.SizedPayload`
    declarations via the same accounting the engine uses.
    """
    if not dataset:
        raise ValueError("cannot estimate element size of an empty dataset")
    from ..mapreduce.serialization import declared_size

    sizes = []
    step = max(1, len(dataset) // sample)
    for index in range(0, len(dataset), step):
        payload = dataset[index]
        declared = declared_size(payload)
        if declared is not None:
            sizes.append(declared)
        else:
            sizes.append(len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)))
        if len(sizes) >= sample:
            break
    return max(1, sum(sizes) // len(sizes))


def auto_pairwise(
    dataset: Sequence[Any],
    comp: Callable[[Any, Any], Any],
    *,
    element_size: int | None = None,
    maxws: int = 200 * MB,
    maxis: int = 1 * TB,
    num_nodes: int = 8,
    aggregator=None,
    engine=None,
    symmetric: bool = True,
    auto_engine: bool = False,
    scheduling_policy=None,
    trace_sink=None,
    data_plane: str | None = None,
    journal_dir=None,
    threshold: float | None = None,
    top_k: int | None = None,
    pruning: str = "off",
    exact_fallback: bool = True,
    sketch_params=None,
    scheme: str | Any = None,
) -> tuple[dict[int, Element], SchemeChoice]:
    """Evaluate all pairs of ``dataset`` under an auto-chosen scheme.

    ``element_size`` defaults to a pickled-size estimate of the payloads;
    pass the real deployment size when simulating capacity decisions for
    data bigger than the in-process sample.

    ``scheme`` overrides the chooser: a family name (``"broadcast"`` /
    ``"block"`` / ``"design"`` / ``"quorum"``) builds that scheme with
    default parameters for v, or pass a ready
    :class:`~repro.core.scheme.DistributionScheme` instance (e.g. a
    skew-aware ``QuorumScheme(v, element_sizes=...)``) to use it as-is.
    Forced schemes skip the maxws/maxis feasibility analysis — the
    rationale records that.

    ``auto_engine=True`` (flat schemes, ``engine=None``) sizes the engine
    too, through the same :func:`repro.mapreduce.runtime.choose_engine`
    crossover :meth:`Engine.auto` uses, keyed on the chosen scheme's
    ``metrics().communication_records``; ``comp`` must then be picklable
    in case the multiprocess engine is selected.  The built engine is
    closed before returning.  ``scheduling_policy`` / ``trace_sink`` /
    ``data_plane`` / ``journal_dir`` are forwarded to whichever engine
    this call builds (pass them on your own ``engine`` instead when
    supplying one; ``data_plane`` and ``journal_dir`` additionally
    require ``auto_engine=True``, since only a pooled engine has a
    broadcast data plane to pick or a direct shuffle to journal —
    ``journal_dir`` forces the pooled engine regardless of scale).

    ``threshold`` / ``top_k`` / ``pruning`` / ``exact_fallback`` /
    ``sketch_params`` forward to :class:`PairwiseComputation` on flat
    schemes — the declarative objective plus sketch-based candidate
    pruning (DESIGN.md §3.1.7).  Hierarchical schedules raise
    ``NotImplementedError`` for them.
    """
    if len(dataset) < 2:
        raise ValueError("pairwise computation needs at least two elements")
    if engine is not None and (
        scheduling_policy is not None
        or trace_sink is not None
        or data_plane is not None
        or journal_dir is not None
    ):
        raise ValueError(
            "pass scheduling_policy/trace_sink/data_plane/journal_dir to "
            "the engine itself when supplying an explicit engine"
        )
    if data_plane is not None and not auto_engine:
        raise ValueError("data_plane requires auto_engine=True or an explicit engine")
    if journal_dir is not None and not auto_engine:
        raise ValueError(
            "journal_dir requires auto_engine=True or an explicit engine"
        )
    if element_size is None:
        element_size = estimate_element_size(dataset)
    if scheme is None:
        choice = choose_scheme(
            len(dataset), element_size, maxws=maxws, maxis=maxis, num_nodes=num_nodes
        )
    else:
        choice = _forced_choice(
            len(dataset),
            scheme,
            element_size=element_size,
            maxws=maxws,
            num_nodes=num_nodes,
        )
    if isinstance(choice.scheme, HierarchicalBlockScheme):
        if not symmetric:
            raise NotImplementedError(
                "hierarchical schedules currently run symmetric functions only"
            )
        if threshold is not None or top_k is not None or pruning != "off":
            raise NotImplementedError(
                "hierarchical schedules do not support threshold=/top_k=/"
                "pruning yet; pick a flat scheme (raise maxws) for pruned runs"
            )
        if engine is not None:
            # Round-by-round MR execution: a persistent-pool engine reuses
            # its workers across every round's two jobs.
            merged = run_rounds_mr(
                dataset, comp, choice.scheme, aggregator=aggregator, engine=engine
            )
        else:
            if data_plane is not None or journal_dir is not None:
                raise ValueError(
                    "data_plane/journal_dir need a pooled engine; hierarchical "
                    "schedules without an explicit engine run in-process"
                )
            merged = run_rounds(dataset, comp, choice.scheme, aggregator=aggregator)
    else:
        owned_engine = None
        if engine is None and auto_engine:
            from ..mapreduce.runtime import choose_engine

            owned_engine = choose_engine(
                choice.scheme.metrics().communication_records,
                scheduling_policy=scheduling_policy,
                trace_sink=trace_sink,
                data_plane=data_plane,
                journal_dir=journal_dir,
            )
            scheduling_policy = trace_sink = None
        try:
            computation = PairwiseComputation(
                choice.scheme,
                comp,
                aggregator=aggregator,
                engine=engine or owned_engine,
                symmetric=symmetric,
                scheduling_policy=scheduling_policy,
                trace_sink=trace_sink,
                threshold=threshold,
                top_k=top_k,
                pruning=pruning,
                exact_fallback=exact_fallback,
                sketch_params=sketch_params,
            )
            merged = computation.run(list(dataset))
        finally:
            if owned_engine is not None:
                owned_engine.close()
    return merged, choice
