"""File-backed pairwise execution: the deployment shape of the paper.

The execution model (§3) has the dataset arriving as files written by a
preceding job, the intermediate data *materialized* between the two MR
jobs (that materialization is exactly what the maxis limit constrains),
and results written back as files.  :func:`run_pairwise_on_files` runs
that full shape on local disk:

1. element files → job 1 (distribute + compute), its output **written to
   disk** as the materialized intermediate,
2. intermediate files → job 2 (aggregate) → ``part-r-*.jsonl`` outputs,

and reports the *actual on-disk byte sizes* of each stage, so the
Table-1 intermediate-storage prediction (``v·s·replication``) can be
checked against a real filesystem, not just the simulator's model.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from ..mapreduce.runtime import Engine, SerialEngine
from ..mapreduce.splits import Split
from ..mapreduce.textio import (
    read_records,
    write_partitioned,
    write_records,
)
from .element import Element
from .pairwise import PairwiseComputation


@dataclass(frozen=True)
class FileFlowReport:
    """Byte- and record-level accounting of one file-backed run."""

    input_files: int
    input_bytes: int
    input_records: int
    intermediate_files: int
    intermediate_bytes: int
    intermediate_records: int
    output_files: int
    output_bytes: int
    output_records: int

    @property
    def disk_replication_factor(self) -> float:
        """Measured replication: intermediate records per input record."""
        if self.input_records == 0:
            return 0.0
        return self.intermediate_records / self.input_records


def write_element_files(
    directory: Path | str,
    payloads: Sequence,
    *,
    files: int = 4,
) -> list[Path]:
    """Write a dataset as element files (the 'preceding job's' output).

    Elements get ids 1..v; records are ``(eid, Element)`` spread over
    ``files`` JSONL files round-robin — mimicking a DFS directory.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if files < 1:
        raise ValueError(f"files must be >= 1, got {files}")
    buckets: list[list] = [[] for _ in range(files)]
    for index, payload in enumerate(payloads):
        eid = index + 1
        buckets[index % files].append((eid, Element(eid, payload)))
    paths = []
    for index, bucket in enumerate(buckets):
        path = directory / f"elements-{index:04d}.jsonl"
        write_records(path, bucket)
        paths.append(path)
    return paths


def _dir_bytes(paths: Sequence[Path]) -> int:
    return sum(path.stat().st_size for path in paths)


def run_pairwise_on_files(
    computation: PairwiseComputation,
    input_paths: Sequence[Path | str],
    work_dir: Path | str,
    *,
    engine: Engine | None = None,
) -> tuple[list[Path], FileFlowReport]:
    """Run the two-job pairwise pipeline with on-disk intermediates.

    Returns ``(output part paths, accounting report)``.  The intermediate
    directory (``work_dir/intermediate``) holds job 1's full output — one
    file per reduce task — and is left in place for inspection, exactly
    like Hadoop's materialized job output between chained jobs.
    """
    input_paths = [Path(p) for p in input_paths]
    if not input_paths:
        raise ValueError("need at least one input file")
    work_dir = Path(work_dir)
    engine = engine or computation.engine or SerialEngine()
    job1, job2 = computation.build_jobs()

    # --- Job 1: distribute + compute, one split per input file -------------
    splits = [Split(records=list(read_records(path))) for path in input_paths]
    input_records = sum(len(split.records) for split in splits)
    result1 = engine.run(job1, splits=splits)

    # Materialize the intermediate (the maxis-constrained data!).
    inter_dir = work_dir / "intermediate"
    num_parts = max(1, result1.num_reduce_tasks)
    from ..mapreduce.shuffle import hash_partition

    partitioner = job1.partitioner or hash_partition
    buckets: list[list] = [[] for _ in range(num_parts)]
    for key, value in result1.records:
        buckets[partitioner(key, num_parts)].append((key, value))
    inter_paths = write_partitioned(inter_dir, buckets)

    # --- Job 2: aggregate, reading the materialized intermediate -----------
    splits2 = [Split(records=list(read_records(path))) for path in inter_paths]
    result2 = engine.run(job2, splits=splits2)
    out_dir = work_dir / "output"
    out_buckets: list[list] = [[] for _ in range(max(1, result2.num_reduce_tasks))]
    for key, value in result2.records:
        out_buckets[partitioner(key, len(out_buckets))].append((key, value))
    output_paths = write_partitioned(out_dir, out_buckets)

    report = FileFlowReport(
        input_files=len(input_paths),
        input_bytes=_dir_bytes(input_paths),
        input_records=input_records,
        intermediate_files=len(inter_paths),
        intermediate_bytes=_dir_bytes(inter_paths),
        intermediate_records=len(result1.records),
        output_files=len(output_paths),
        output_bytes=_dir_bytes(output_paths),
        output_records=len(result2.records),
    )
    return output_paths, report


def load_elements(paths: Sequence[Path | str]) -> dict[int, Element]:
    """Read final elements back from output part files."""
    out: dict[int, Element] = {}
    for path in paths:
        for key, value in read_records(path):
            if not isinstance(value, Element):
                raise TypeError(
                    f"{path}: expected Element records, got {type(value).__name__}"
                )
            if key in out:
                raise ValueError(f"duplicate element id {key} across part files")
            out[key] = value
    return out
