"""Hierarchical distribution schemes (the paper's §7 outlook, implemented).

The flat schemes hit hard dataset-size limits (Figs 8–9).  §7 sketches the
remedy: process *coarse-grained* partitions **sequentially** — each round
materializes only its own replicas — while parallelizing *within* a round
with a fine-grained scheme, then aggregate before the next round starts.
This eases both limits at once:

- working set per task shrinks to the fine granularity, and
- intermediate storage holds one round's replication instead of all of it.

Two schedules are provided:

:class:`HierarchicalBlockScheme`
    First-level blocks from a coarse factor ``H`` (the §7 example); each
    coarse block — a pair of element groups, or one group on the diagonal —
    is tiled by a second-level factor ``f`` into parallel tasks.

:class:`SequentialDesignSchedule`
    The §7 variant for the design scheme: the plane's blocks are processed
    in ``R`` sequential batches, dividing the materialized replication by
    ``≈ R``.

Both expose rounds of tasks (``Round`` → ``ScheduledTask``) rather than the
flat :class:`DistributionScheme` interface, since sequential rounds are the
whole point; :func:`run_rounds` executes a schedule in-process, and
:func:`check_schedule_exactly_once` validates global coverage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from .._util import ceil_div, chunked, triangle_count
from .design import DesignScheme
from .element import Element
from .scheme import Pair


@dataclass(frozen=True)
class ScheduledTask:
    """One parallel task within a round."""

    round_index: int
    task_index: int
    members: tuple[int, ...]
    pairs: tuple[Pair, ...]


@dataclass(frozen=True)
class Round:
    """One sequential round: tasks that may run in parallel together."""

    index: int
    tasks: tuple[ScheduledTask, ...]

    @property
    def replicas(self) -> int:
        """Element copies materialized by this round (its shuffle volume)."""
        return sum(len(task.members) for task in self.tasks)

    @property
    def max_working_set(self) -> int:
        return max((len(task.members) for task in self.tasks), default=0)

    @property
    def evaluations(self) -> int:
        return sum(len(task.pairs) for task in self.tasks)


class Schedule:
    """Base: an ordered sequence of rounds over elements 1..v."""

    def __init__(self, v: int):
        if v < 2:
            raise ValueError(f"need v >= 2, got {v}")
        self.v = v

    def rounds(self) -> Iterator[Round]:
        raise NotImplementedError

    @property
    def num_rounds(self) -> int:
        raise NotImplementedError

    # -- derived analytics ------------------------------------------------------
    def peak_round_replicas(self) -> int:
        """Max replicas alive at once — the §7 eased maxis quantity."""
        return max(r.replicas for r in self.rounds())

    def max_working_set(self) -> int:
        return max(r.max_working_set for r in self.rounds())

    def total_evaluations(self) -> int:
        return sum(r.evaluations for r in self.rounds())


class HierarchicalBlockScheme(Schedule):
    """Two-level block scheme: coarse rounds, fine parallel tiles.

    Parameters
    ----------
    v:
        Dataset cardinality.
    coarse_h:
        First-level blocking factor H; the ``H(H+1)/2`` coarse blocks each
        become one sequential round.
    fine_h:
        Second-level factor f; a diagonal round (one group of ``E=⌈v/H⌉``
        elements) is tiled by a triangle of ``f(f+1)/2`` tasks, an
        off-diagonal round (two groups) by an ``f × f`` task grid.
    """

    def __init__(self, v: int, coarse_h: int, fine_h: int):
        super().__init__(v)
        if coarse_h < 1 or coarse_h > v:
            raise ValueError(f"coarse factor must be in [1, {v}], got {coarse_h}")
        if fine_h < 1:
            raise ValueError(f"fine factor must be >= 1, got {fine_h}")
        self.E = ceil_div(v, coarse_h)  # coarse group edge
        self.coarse_h = ceil_div(v, self.E)  # effective H
        self.fine_h = fine_h

    @property
    def num_rounds(self) -> int:
        return self.coarse_h * (self.coarse_h + 1) // 2

    def _coarse_group(self, g: int) -> list[int]:
        lo = (g - 1) * self.E + 1
        hi = min(g * self.E, self.v)
        return list(range(lo, hi + 1))

    def _fine_chunks(self, members: Sequence[int]) -> list[Sequence[int]]:
        size = ceil_div(len(members), self.fine_h)
        return list(chunked(list(members), size))

    def rounds(self) -> Iterator[Round]:
        round_index = 0
        for I in range(1, self.coarse_h + 1):
            for J in range(1, I + 1):
                if I == J:
                    yield self._diagonal_round(round_index, I)
                else:
                    yield self._cross_round(round_index, I, J)
                round_index += 1

    def _diagonal_round(self, round_index: int, g: int) -> Round:
        """Pairs within one coarse group, tiled by a fine triangle."""
        members = self._coarse_group(g)
        chunks = self._fine_chunks(members)
        tasks: list[ScheduledTask] = []
        task_index = 0
        for a in range(len(chunks)):
            for b in range(a + 1):
                if a == b:
                    chunk = list(chunks[a])
                    pairs = tuple(
                        (chunk[x], chunk[y])
                        for x in range(len(chunk))
                        for y in range(x)
                    )
                    task_members = tuple(chunk)
                else:
                    hi, lo = list(chunks[a]), list(chunks[b])
                    pairs = tuple((i, j) for i in hi for j in lo)
                    task_members = tuple(lo + hi)
                tasks.append(
                    ScheduledTask(round_index, task_index, task_members, pairs)
                )
                task_index += 1
        return Round(round_index, tuple(tasks))

    def _cross_round(self, round_index: int, I: int, J: int) -> Round:
        """All cross pairs between coarse groups I > J, tiled f × f."""
        cols = self._fine_chunks(self._coarse_group(I))
        rows = self._fine_chunks(self._coarse_group(J))
        tasks: list[ScheduledTask] = []
        task_index = 0
        for col_chunk in cols:
            for row_chunk in rows:
                pairs = tuple((c, r) for c in col_chunk for r in row_chunk)
                members = tuple(list(row_chunk) + list(col_chunk))
                tasks.append(ScheduledTask(round_index, task_index, members, pairs))
                task_index += 1
        return Round(round_index, tuple(tasks))


class SequentialDesignSchedule(Schedule):
    """Design scheme processed in sequential batches of blocks (§7).

    ``num_rounds`` batches of the underlying plane's blocks; intermediate
    storage per round is ``≈ replication/num_rounds`` of the flat scheme's.
    """

    def __init__(self, design: DesignScheme, num_rounds: int):
        super().__init__(design.v)
        if num_rounds < 1:
            raise ValueError(f"num_rounds must be >= 1, got {num_rounds}")
        self.design = design
        self._num_rounds = min(num_rounds, design.num_tasks)
        self.batch = ceil_div(design.num_tasks, self._num_rounds)

    @property
    def num_rounds(self) -> int:
        return self._num_rounds

    def rounds(self) -> Iterator[Round]:
        for round_index in range(self._num_rounds):
            lo = round_index * self.batch
            hi = min((round_index + 1) * self.batch, self.design.num_tasks)
            tasks = []
            for task_index, subset_id in enumerate(range(lo, hi)):
                members = tuple(self.design.subset_members(subset_id))
                pairs = tuple(self.design.get_pairs(subset_id, members))
                tasks.append(ScheduledTask(round_index, task_index, members, pairs))
            yield Round(round_index, tuple(tasks))


# ---------------------------------------------------------------------------
# Execution and validation over schedules
# ---------------------------------------------------------------------------

def run_rounds(
    dataset: Sequence[Any],
    comp: Callable[[Any, Any], Any],
    schedule: Schedule,
    *,
    aggregator: Callable[[Sequence[Element]], Element] | None = None,
) -> dict[int, Element]:
    """Execute a schedule round by round, aggregating between rounds (§7).

    After each round the per-round copies are merged into the running
    elements — "each block is aggregated before the next one is processed"
    — so at no time do more than one round's replicas exist.
    """
    from .aggregate import ConcatAggregator  # local import avoids cycle

    if len(dataset) != schedule.v:
        raise ValueError(
            f"dataset has {len(dataset)} elements, schedule expects {schedule.v}"
        )
    aggregate = aggregator or ConcatAggregator()
    if dataset and isinstance(dataset[0], Element):
        current = {e.eid: Element(e.eid, e.payload, dict(e.results)) for e in dataset}  # type: ignore[union-attr]
    else:
        current = {i + 1: Element(i + 1, payload) for i, payload in enumerate(dataset)}

    for round_ in schedule.rounds():
        copies: dict[int, list[Element]] = {}
        for task in round_.tasks:
            local = {
                eid: current[eid].copy_without_results() for eid in task.members
            }
            for i, j in task.pairs:
                result = comp(local[i].payload, local[j].payload)
                local[i].add_result(j, result)
                local[j].add_result(i, result)
            for eid, copy in local.items():
                copies.setdefault(eid, []).append(copy)
        # Aggregation barrier: merge this round's copies into the elements.
        for eid, element_copies in copies.items():
            carried = Element(
                current[eid].eid, current[eid].payload, dict(current[eid].results)
            )
            merged = aggregate([carried] + element_copies)
            current[eid] = merged
    return current


class _RoundScheme:
    """Adapter: one schedule round presented as a DistributionScheme-alike.

    Only the members/pairs surface the MR jobs need — built from the
    round's explicit task list, so get_subsets/get_pairs are exact.
    Element ids are global (1..v); tasks are the round's task indices.
    """

    name = "schedule-round"

    def __init__(self, v: int, round_: Round):
        self.v = v
        self._tasks = round_.tasks
        index: dict[int, list[int]] = {}
        for task in round_.tasks:
            for eid in task.members:
                index.setdefault(eid, []).append(task.task_index)
        self._subsets_of = index

    @property
    def num_tasks(self) -> int:
        return len(self._tasks)

    def get_subsets(self, element_id: int) -> list[int]:
        return list(self._subsets_of.get(element_id, []))

    def get_pairs(self, subset_id: int, members=None) -> list[Pair]:
        return list(self._tasks[subset_id].pairs)

    def subset_members(self, subset_id: int) -> list[int]:
        return sorted(self._tasks[subset_id].members)

    def iter_subsets(self):
        for task in self._tasks:
            yield task.task_index, sorted(task.members)


def run_rounds_mr(
    dataset: Sequence[Any],
    comp: Callable[[Any, Any], Any],
    schedule: Schedule,
    *,
    aggregator: Callable[[Sequence[Element]], Element] | None = None,
    engine=None,
) -> dict[int, Element]:
    """Execute a §7 schedule with each round as a real two-MR-job run.

    The deployment shape the paper sketches: per round, job 1 distributes
    the round's working sets and evaluates, job 2 aggregates — then the
    next round starts from the merged state.  Elements in no working set
    of a round skip that round's jobs entirely (no wasted shipping).
    """
    from .aggregate import ConcatAggregator
    from .pairwise import PairwiseComputation

    if len(dataset) != schedule.v:
        raise ValueError(
            f"dataset has {len(dataset)} elements, schedule expects {schedule.v}"
        )
    aggregate = aggregator or ConcatAggregator()
    if dataset and isinstance(dataset[0], Element):
        current = {e.eid: Element(e.eid, e.payload, dict(e.results)) for e in dataset}  # type: ignore[union-attr]
    else:
        current = {i + 1: Element(i + 1, payload) for i, payload in enumerate(dataset)}

    for round_ in schedule.rounds():
        scheme = _RoundScheme(schedule.v, round_)
        participating = sorted(scheme._subsets_of)
        if not participating:
            continue
        # Compact ids 1..k for the round's participants (the MR pairwise
        # layer requires contiguous ids); remap pairs accordingly.
        to_local = {eid: i + 1 for i, eid in enumerate(participating)}
        to_global = {local: eid for eid, local in to_local.items()}

        local_round = Round(
            index=round_.index,
            tasks=tuple(
                ScheduledTask(
                    round_index=task.round_index,
                    task_index=task.task_index,
                    members=tuple(sorted(to_local[eid] for eid in task.members)),
                    pairs=tuple(
                        (max(to_local[i], to_local[j]), min(to_local[i], to_local[j]))
                        for i, j in task.pairs
                    ),
                )
                for task in round_.tasks
            ),
        )
        local_scheme = _RoundScheme(len(participating), local_round)
        computation = PairwiseComputation(
            local_scheme,  # type: ignore[arg-type]
            comp,
            engine=engine,
        )
        payloads = [current[to_global[i + 1]].payload for i in range(len(participating))]
        merged_local = computation.run(payloads)
        # Fold the round's results back into the global elements.
        for local_id, local_element in merged_local.items():
            global_element = current[to_global[local_id]]
            carried = Element(
                global_element.eid, global_element.payload, dict(global_element.results)
            )
            contribution = Element(global_element.eid, global_element.payload)
            for local_partner, result in local_element.results.items():
                contribution.results[to_global[local_partner]] = result
            current[global_element.eid] = aggregate([carried, contribution])
    return current


def check_schedule_exactly_once(schedule: Schedule) -> tuple[bool, str]:
    """Global exactly-once coverage across all rounds of a schedule."""
    seen: dict[Pair, int] = {}
    for round_ in schedule.rounds():
        for task in round_.tasks:
            member_set = set(task.members)
            for i, j in task.pairs:
                if i <= j:
                    return False, f"non-canonical pair ({i}, {j}) in round {round_.index}"
                if i not in member_set or j not in member_set:
                    return False, (
                        f"pair ({i}, {j}) not locally servable in round "
                        f"{round_.index} task {task.task_index}"
                    )
                seen[(i, j)] = seen.get((i, j), 0) + 1
    expected = triangle_count(schedule.v)
    if len(seen) != expected:
        return False, f"covered {len(seen)} pairs, expected {expected}"
    duplicates = [pair for pair, count in seen.items() if count != 1]
    if duplicates:
        return False, f"duplicated pairs: {duplicates[:5]}"
    return True, "ok"


# ---------------------------------------------------------------------------
# §7 analytic model: how much the limits ease
# ---------------------------------------------------------------------------

def hierarchical_block_limits(
    v: int, coarse_h: int, fine_h: int, element_size: int
) -> dict[str, float]:
    """Working-set and per-round intermediate bytes of the two-level scheme.

    Flat block needs ``ws = 2⌈v/h⌉·s`` and ``is = v·s·h`` simultaneously;
    the hierarchy needs only ``ws = 2⌈E/f⌉·s`` and ``is ≈ 2E·f·s`` where
    ``E = ⌈v/H⌉`` — both shrink with H, at the price of ``H(H+1)/2``
    sequential rounds.
    """
    E = ceil_div(v, coarse_h)
    e2 = ceil_div(E, fine_h)
    return {
        "coarse_group": E,
        "fine_edge": e2,
        "working_set_bytes": 2 * e2 * element_size,
        "round_intermediate_bytes": 2 * E * fine_h * element_size,
        "num_rounds": coarse_h * (coarse_h + 1) / 2,
    }


def hierarchical_max_dataset_bytes(
    maxws: int, maxis: int, coarse_h: int
) -> float:
    """Largest dataset (vs bytes) feasible with coarse factor H (cf. Fig 9a).

    Per round the block feasibility condition applies to the coarse group
    (≈ 2·vs/H of data when two groups meet), so
    ``vs ≤ (H/2)·sqrt(maxws·maxis/2)`` — a factor H/2 beyond the flat bound.
    """
    if coarse_h < 1:
        raise ValueError(f"coarse factor must be >= 1, got {coarse_h}")
    flat = math.sqrt(maxws * maxis / 2)
    return flat * coarse_h / 2 if coarse_h > 1 else flat
