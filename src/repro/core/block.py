"""The block distribution scheme (paper §5.2).

The element indices ``1 … v`` are cut into ``h`` contiguous groups of edge
length ``e = ⌈v/h⌉``, tiling the upper triangle of the pair matrix with
``h(h+1)/2`` rectangular blocks (Fig. 6).  Block ``p`` sits at grid
position ``(I, J)``, ``I ≥ J``, recovered from

    p(I, J) = I(I − 1)/2 + J

and owns working set ``D_p = R_p ∪ C_p`` — the row group ``J`` plus the
column group ``I`` — evaluating every cross pair (or, on the diagonal
``I = J``, the half-triangle within the single group).

Table-1 characteristics: tasks ``h(h+1)/2``, communication ``2vh``,
replication ``h``, working set ``2⌈v/h⌉``, up to ``⌈v/h⌉²`` evaluations per
task.  The blocking factor ``h`` is the scheme's tuning knob: it trades
working-set size (``∝ 1/h``) against intermediate storage (``∝ h``), the
subject of Fig. 9a.

The paper notes diagonal blocks do only half the work "if always two such
diagonal blocks are processed together"; ``pair_diagonals=True`` implements
exactly that fusion.
"""

from __future__ import annotations

from typing import Sequence

from .._util import ceil_div
from .scheme import DistributionScheme, Pair, SchemeMetrics


class BlockScheme(DistributionScheme):
    """Block scheme over a grid of ``h × h`` element groups.

    Parameters
    ----------
    v:
        Dataset cardinality.
    h:
        Blocking factor, ``1 <= h <= v``.  If ``⌈v/h⌉`` groups don't fill
        ``h`` rows (small v), the effective factor shrinks to the actual
        group count; :attr:`h` reflects the effective value.
    pair_diagonals:
        Fuse diagonal blocks pairwise — (1,1)+(2,2), (3,3)+(4,4), … — so
        every task performs ≈ e² evaluations (paper §5.2's balancing note).
    """

    name = "block"

    def __init__(self, v: int, h: int, *, pair_diagonals: bool = False):
        super().__init__(v)
        if h < 1:
            raise ValueError(f"blocking factor must be >= 1, got {h}")
        if h > v:
            raise ValueError(f"blocking factor {h} exceeds dataset size {v}")
        self.h_requested = h
        #: group edge length e = ⌈v/h⌉
        self.e = ceil_div(v, h)
        #: effective blocking factor: number of non-empty groups
        self.h = ceil_div(v, self.e)
        self.pair_diagonals = pair_diagonals
        self._num_blocks = self.h * (self.h + 1) // 2
        if pair_diagonals:
            self._build_paired_tasks()

    # -- grid arithmetic -------------------------------------------------------
    def group_of(self, element_id: int) -> int:
        """1-indexed group g containing element s_id: g = ⌈id / e⌉."""
        self._check_element_id(element_id)
        return (element_id - 1) // self.e + 1

    def group_members(self, group: int) -> list[int]:
        """Element ids of group ``g``: (g−1)e+1 … min(ge, v)."""
        if not 1 <= group <= self.h:
            raise ValueError(f"group {group} out of range [1, {self.h}]")
        lo = (group - 1) * self.e + 1
        hi = min(group * self.e, self.v)
        return list(range(lo, hi + 1))

    def block_position(self, block: int) -> tuple[int, int]:
        """Grid position (I, J), I >= J >= 1, of 1-indexed block id ``p``.

        Inverts ``p = I(I−1)/2 + J``: I is the largest integer with
        ``I(I−1)/2 < p``.
        """
        if not 1 <= block <= self._num_blocks:
            raise ValueError(f"block {block} out of range [1, {self._num_blocks}]")
        I = 1
        while (I + 1) * I // 2 < block:
            I += 1
        J = block - I * (I - 1) // 2
        return (I, J)

    def block_id(self, I: int, J: int) -> int:
        """1-indexed block id of grid position (I, J) with I >= J >= 1."""
        if not 1 <= J <= I <= self.h:
            raise ValueError(f"invalid block position (I={I}, J={J}) for h={self.h}")
        return I * (I - 1) // 2 + J

    def blocks_of_element(self, element_id: int) -> list[int]:
        """1-indexed block ids whose working set contains the element.

        Element in group g appears in row position J=g of blocks (I, g) for
        I = g…h and in column position of blocks (g, J) for J = 1…g−1 —
        exactly ``h`` blocks, the scheme's replication factor.
        """
        g = self.group_of(element_id)
        blocks = [self.block_id(g, J) for J in range(1, g + 1)]
        blocks.extend(self.block_id(I, g) for I in range(g + 1, self.h + 1))
        return blocks

    def block_members(self, block: int) -> list[int]:
        """Working set D_p = R_p ∪ C_p of a 1-indexed block id."""
        I, J = self.block_position(block)
        if I == J:
            return self.group_members(I)
        return self.group_members(J) + self.group_members(I)

    def block_pairs(self, block: int) -> list[Pair]:
        """Pair relation P_p of one block: cross pairs, or the diagonal half."""
        I, J = self.block_position(block)
        if I == J:
            members = self.group_members(I)
            return [
                (members[a], members[b])
                for a in range(len(members))
                for b in range(a)
            ]
        rows = self.group_members(J)
        cols = self.group_members(I)
        # Column ids are strictly greater than row ids (I > J), so (c, r)
        # is already in canonical i > j orientation.
        return [(c, r) for c in cols for r in rows]

    # -- task fusion for paired diagonals ---------------------------------------
    def _build_paired_tasks(self) -> None:
        """Task table fusing diagonal blocks pairwise (trailing one stays solo)."""
        tasks: list[list[int]] = []
        # Off-diagonal blocks: one task each.
        for p in range(1, self._num_blocks + 1):
            I, J = self.block_position(p)
            if I != J:
                tasks.append([p])
        # Diagonal blocks fused two at a time.
        diagonals = [self.block_id(g, g) for g in range(1, self.h + 1)]
        for idx in range(0, len(diagonals) - 1, 2):
            tasks.append([diagonals[idx], diagonals[idx + 1]])
        if len(diagonals) % 2 == 1:
            tasks.append([diagonals[-1]])
        self._tasks = tasks
        self._block_to_task = {
            block: task_id for task_id, blocks in enumerate(tasks) for block in blocks
        }

    # -- DistributionScheme interface --------------------------------------------
    @property
    def num_tasks(self) -> int:
        if self.pair_diagonals:
            return len(self._tasks)
        return self._num_blocks

    def get_subsets(self, element_id: int) -> list[int]:
        blocks = self.blocks_of_element(element_id)
        if self.pair_diagonals:
            # A fused task may contain two of the element's blocks (both
            # diagonals can't hold the same element, but stay defensive).
            seen: dict[int, None] = {}
            for block in blocks:
                seen.setdefault(self._block_to_task[block], None)
            return list(seen)
        return [block - 1 for block in blocks]  # 0-indexed task ids

    def get_pairs(self, subset_id: int, members: Sequence[int] = ()) -> list[Pair]:
        """Pairs of the task; derived from grid math, ``members`` unused."""
        self._check_subset_id(subset_id)
        if self.pair_diagonals:
            pairs: list[Pair] = []
            for block in self._tasks[subset_id]:
                pairs.extend(self.block_pairs(block))
            return pairs
        return self.block_pairs(subset_id + 1)

    def subset_members(self, subset_id: int) -> list[int]:
        self._check_subset_id(subset_id)
        if self.pair_diagonals:
            members: set[int] = set()
            for block in self._tasks[subset_id]:
                members.update(self.block_members(block))
            return sorted(members)
        return sorted(self.block_members(subset_id + 1))

    def _group_size(self, group: int) -> int:
        """Cardinality of group g without materializing it."""
        lo = (group - 1) * self.e + 1
        hi = min(group * self.e, self.v)
        return hi - lo + 1

    def _block_profile(self, block: int) -> tuple[int, int]:
        """(members, evaluations) of one 1-indexed block, O(1)."""
        I, J = self.block_position(block)
        if I == J:
            n = self._group_size(I)
            return n, n * (n - 1) // 2
        rows, cols = self._group_size(J), self._group_size(I)
        return rows + cols, rows * cols

    def task_profile(self, subset_id: int):
        from .scheme import TaskProfile

        self._check_subset_id(subset_id)
        if self.pair_diagonals:
            members = evals = 0
            for block in self._tasks[subset_id]:
                m, ev = self._block_profile(block)
                members += m
                evals += ev
            return TaskProfile(subset_id, members, evals)
        members, evals = self._block_profile(subset_id + 1)
        return TaskProfile(subset_id, members, evals)

    def metrics(self) -> SchemeMetrics:
        h, e = self.h, self.e
        num_tasks = self.num_tasks
        total_pairs = self.v * (self.v - 1) / 2
        return SchemeMetrics(
            scheme=self.name,
            v=self.v,
            num_tasks=num_tasks,
            communication_records=2 * self.v * h,
            replication_factor=float(h),
            working_set_elements=2 * e,
            evaluations_per_task=float(e * e) if not self.pair_diagonals
            else total_pairs / num_tasks,
        )

    def describe(self) -> str:
        tag = ", paired-diagonals" if self.pair_diagonals else ""
        return (
            f"block(v={self.v}, h={self.h}, e={self.e}, "
            f"tasks={self.num_tasks}{tag})"
        )
