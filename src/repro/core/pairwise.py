"""The generic parallel pairwise algorithm (paper §4, Algorithms 1 & 2).

Three execution paths, all driven by a :class:`DistributionScheme`:

1. :meth:`PairwiseComputation.run` — the faithful **two-MR-job** pipeline:

   - *Job 1* (Algorithm 1): the map phase calls ``getSubsets`` and emits a
     copy of each element per working set; the shuffle groups working
     sets onto reducers; each reducer calls ``getPairs``, evaluates them,
     attaches both orientations of every result (``addResult``), and
     re-emits the copies keyed by element id.
   - *Job 2* (Algorithm 2): identity map; the shuffle groups an element's
     copies; the reducer applies ``aggregateResults``.

2. :meth:`PairwiseComputation.run_broadcast_job` — the paper's optimized
   **one-job** form for the broadcast scheme: the dataset travels in the
   distributed cache, map tasks evaluate their label chunk, the single
   reduce phase aggregates per element.

3. :meth:`PairwiseComputation.run_cached` — the two-job pipeline with the
   payload store in the **distributed cache**: the shuffle routes element
   ids and partial result maps only, and a pooled engine broadcasts the
   store once per worker instead of once per task.  Works with *any*
   scheme (it generalizes the broadcast optimization's cache usage).

4. :meth:`PairwiseComputation.run_local` — the same three abstract steps
   without the MR machinery (fast in-process reference; tests compare the
   MR paths against it).

The pair function ``comp(payload_i, payload_j)`` must be symmetric (§1's
standing assumption) and picklable for the multiprocess engine.

**Kernels.**  The compute phases no longer hard-code one ``comp`` call
per pair: each working set's pair relation is materialized into an index
block and dispatched to a :mod:`repro.kernels` :class:`~repro.kernels.PairKernel`
(``config["kernel"]``; ``None`` → the scalar kernel, bit-identical to the
historical loop; ``"auto"`` → registry selection from the pair function
and payload type).  ``run_local`` always evaluates scalar — it is the
reference the vectorized paths are parity-tested against.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..kernels import pair_index_array, resolve_kernel
from ..mapreduce.job import Context, Job, Mapper, Reducer
from ..mapreduce.pipeline import Pipeline, PipelineResult
from ..mapreduce.runtime import Engine, MultiprocessEngine, SerialEngine
from ..mapreduce.serialization import record_size
from ..sketches import (
    DISTANCE_KINDS,
    PRUNING_MODES,
    PairPruner,
    ThresholdPruner,
    TopKPruner,
    build_sketches,
    build_topk_taus,
    sketch_kind_for_comp,
)
from .aggregate import (
    Aggregator,
    ConcatAggregator,
    ThresholdAggregator,
    TopKAggregator,
)
from .broadcast import BroadcastScheme
from .element import Element, merge_copies
from .scheme import DistributionScheme

PairFunction = Callable[[Any, Any], Any]

#: counter group for application-level metering
PAIRWISE_GROUP = "pairwise"
EVALUATIONS = "evaluations"
REPLICAS_EMITTED = "replicas_emitted"
MAX_WORKING_SET_RECORDS = "max_working_set_records"
MAX_WORKING_SET_BYTES = "max_working_set_bytes"
#: pairs dropped by the sketch pruner before kernel dispatch;
#: EVALUATIONS + PAIRS_PRUNED == v(v−1)/2 on every symmetric pruned run
PAIRS_PRUNED = "pairs_pruned"
#: sketch-suite footprint gauge (max across tasks; it is one shared object)
SKETCH_BYTES = "max_sketch_bytes"
#: survivors of a threshold pruner whose true score then failed the
#: threshold anyway — the bound's looseness, measured
PRUNE_FALSE_POSITIVES = "prune_false_positives"


class DistributeMapper(Mapper):
    """Algorithm 1's map: emit (working set, element copy) per getSubsets."""

    def map(self, key: Any, value: Element, context: Context) -> None:
        scheme: DistributionScheme = context.config["scheme"]
        for subset_id in scheme.get_subsets(value.eid):
            context.emit(subset_id, value.copy_without_results())
            context.counters.increment(PAIRWISE_GROUP, REPLICAS_EMITTED)


def _apply_pruner(
    pairs: Sequence[tuple[int, int]], context: Context
) -> Sequence[tuple[int, int]]:
    """Intersect a working set's pair block with the configured pruner.

    No-op without a ``config["pruner"]``.  The pruner and the sketch
    suite (``cache["sketches"]``) are both built driver-side before job
    submission, so the surviving subset is a pure function of the pair
    block — identical across workers, retries and speculative attempts.
    Meters ``PAIRS_PRUNED`` (the skipped evaluations) and the
    ``SKETCH_BYTES`` footprint gauge.
    """
    pruner: PairPruner | None = context.config.get("pruner")
    if pruner is None or not pairs:
        return pairs
    suite = context.cache_file("sketches")
    context.counters.set_max(PAIRWISE_GROUP, SKETCH_BYTES, suite.nbytes)
    keep = pruner.keep_mask(suite, pair_index_array(pairs))
    kept = int(np.count_nonzero(keep))
    if kept != len(pairs):
        context.counters.increment(
            PAIRWISE_GROUP, PAIRS_PRUNED, len(pairs) - kept
        )
        pairs = [pair for pair, flag in zip(pairs, keep) if flag]
    return pairs


def _meter_false_positives(
    forward: Sequence[Any], context: Context
) -> None:
    """Count threshold-pruner survivors whose true score failed anyway."""
    pruner = context.config.get("pruner")
    threshold = getattr(pruner, "threshold", None)
    if threshold is None:
        return
    if pruner.keep_below:
        misses = sum(1 for value in forward if not value < threshold)
    else:
        misses = sum(1 for value in forward if not value > threshold)
    if misses:
        context.counters.increment(
            PAIRWISE_GROUP, PRUNE_FALSE_POSITIVES, misses
        )


def _evaluate_pairs(
    pairs: Sequence[tuple[int, int]],
    payloads: Mapping[int, Any],
    context: Context,
) -> tuple[list[Any], list[Any]]:
    """Evaluate one working set's pair block through the configured kernel.

    Returns ``(forward, backward)`` result lists aligned with ``pairs``:
    ``forward[k] = comp(s_i, s_j)`` for pair ``(i, j)``; with
    ``symmetric=True`` (the paper's standing assumption) ``backward`` *is*
    ``forward``, otherwise it holds the opposite orientation
    ``comp(s_j, s_i)`` (§1's "marginal modification").  Meters
    ``EVALUATIONS`` exactly like the historical per-pair loop: one per
    pair, two when both orientations are computed.
    """
    comp: PairFunction = context.config["comp"]
    symmetric: bool = context.config.get("symmetric", True)
    sample = payloads[pairs[0][0]] if pairs else None
    kernel = resolve_kernel(context.config.get("kernel"), comp, sample)
    block = pair_index_array(pairs)
    forward = kernel.evaluate_block(payloads, block)
    context.counters.increment(PAIRWISE_GROUP, EVALUATIONS, len(pairs))
    _meter_false_positives(forward, context)
    if symmetric:
        return forward, forward
    backward = kernel.evaluate_block(payloads, block[:, ::-1])
    context.counters.increment(PAIRWISE_GROUP, EVALUATIONS, len(pairs))
    return forward, backward


class ComputeReducer(Reducer):
    """Algorithm 1's reduce: getPairs, batch-evaluate, addResult both ways.

    The pair relation is materialized once and dispatched to the
    configured :mod:`repro.kernels` kernel (scalar by default — see
    :func:`_evaluate_pairs`).  With ``symmetric=False`` in the job config
    (the paper's "marginal modification" for non-symmetric evaluations,
    §1) each unordered pair is still *visited* once — the schemes
    guarantee that — but both orientations are computed: element i stores
    ``comp(sᵢ, sⱼ)`` and element j stores ``comp(sⱼ, sᵢ)``.
    """

    def setup(self, context: Context) -> None:
        # Element payloads are identical across the working sets a task
        # handles (copies share the payload, results are empty at compute
        # time), so each element's accounting size is measured once per
        # task instead of re-pickled on every reduce call.
        self._element_sizes: dict[int, int] = {}

    def _element_size(self, element: Element) -> int:
        size = self._element_sizes.get(element.eid)
        if size is None:
            size = record_size(element.eid, element)
            self._element_sizes[element.eid] = size
        return size

    def reduce(self, key: int, values: Any, context: Context) -> None:
        scheme: DistributionScheme = context.config["scheme"]
        elements: dict[int, Element] = {}
        for element in values:
            if element.eid in elements:
                raise ValueError(
                    f"working set {key} received element {element.eid} twice"
                )
            elements[element.eid] = element
        member_ids = sorted(elements)
        # §6's measured quantity: the peak working set actually held by a
        # reduce task — records and (declared) bytes — as a max-gauge.
        context.counters.set_max(
            PAIRWISE_GROUP, MAX_WORKING_SET_RECORDS, len(elements)
        )
        context.counters.set_max(
            PAIRWISE_GROUP,
            MAX_WORKING_SET_BYTES,
            sum(self._element_size(el) for el in elements.values()),
        )
        pairs = _apply_pruner(scheme.get_pairs(key, member_ids), context)
        if pairs:
            payloads = {eid: el.payload for eid, el in elements.items()}
            forward, backward = _evaluate_pairs(pairs, payloads, context)
            for (i, j), fwd, bwd in zip(pairs, forward, backward):
                elements[i].add_result(j, fwd)
                elements[j].add_result(i, bwd)
        for eid in member_ids:
            context.emit(eid, elements[eid])


class AggregateReducer(Reducer):
    """Algorithm 2's reduce: fuse all copies of one element."""

    def reduce(self, key: int, values: Any, context: Context) -> None:
        aggregator: Aggregator = context.config["aggregator"]
        context.emit(key, aggregator(list(values)))


class CachedDistributeMapper(Mapper):
    """Algorithm 1's map for cache-resident payloads: emit ids only.

    When the dataset rides the distributed cache (broadcast once per
    worker by a pooled engine), the shuffle only needs to route element
    *ids* into working sets — the replication cost drops from
    ``b·k`` payload copies to ``b·k`` integers.
    """

    def map(self, key: int, value: Any, context: Context) -> None:
        scheme: DistributionScheme = context.config["scheme"]
        for subset_id in scheme.get_subsets(key):
            context.emit(subset_id, key)
            context.counters.increment(PAIRWISE_GROUP, REPLICAS_EMITTED)


class CachedComputeReducer(Reducer):
    """Algorithm 1's reduce against the cached payload store.

    Same pair relation and orientation semantics as
    :class:`ComputeReducer`; emits per-element *partial result maps*
    (partner id → result) instead of full element copies.
    """

    def setup(self, context: Context) -> None:
        # The payload store is immutable for the task's lifetime, so each
        # element's size is measured once even when getSubsets places it
        # in many of the task's working sets.
        self._payload_sizes: dict[int, int] = {}

    def _payload_size(self, eid: int, payloads: Mapping[int, Any]) -> int:
        size = self._payload_sizes.get(eid)
        if size is None:
            size = record_size(eid, payloads[eid])
            self._payload_sizes[eid] = size
        return size

    def reduce(self, key: int, values: Any, context: Context) -> None:
        scheme: DistributionScheme = context.config["scheme"]
        payloads: Mapping[int, Any] = context.cache_file("dataset")
        seen: set[int] = set()
        for eid in values:
            if eid in seen:
                raise ValueError(
                    f"working set {key} received element {eid} twice"
                )
            seen.add(eid)
        member_ids = sorted(seen)
        results: dict[int, dict[int, Any]] = {eid: {} for eid in member_ids}
        context.counters.set_max(
            PAIRWISE_GROUP, MAX_WORKING_SET_RECORDS, len(member_ids)
        )
        context.counters.set_max(
            PAIRWISE_GROUP,
            MAX_WORKING_SET_BYTES,
            sum(self._payload_size(eid, payloads) for eid in member_ids),
        )
        pairs = _apply_pruner(scheme.get_pairs(key, member_ids), context)
        if pairs:
            forward, backward = _evaluate_pairs(pairs, payloads, context)
            for (i, j), fwd, bwd in zip(pairs, forward, backward):
                results[i][j] = fwd
                results[j][i] = bwd
        for eid in member_ids:
            context.emit(eid, results[eid])


class CachedAggregateReducer(Reducer):
    """Algorithm 2's reduce for the cached variant: fuse partial maps.

    Rebuilds the element from the cached payload store and folds every
    working set's partial result map into it; duplicate pairs still raise
    through :meth:`Element.add_result` (the exactly-once guarantee).

    An aggregator may declare ``needs_payload = False`` (e.g.
    :class:`~repro.core.aggregate.ReduceAggregator`, a pure fold over
    result values): the payload lookup is then skipped and the output
    elements are payload-free — the aggregate phase never touches the
    cached store at all.
    """

    def reduce(self, key: int, values: Any, context: Context) -> None:
        aggregator: Aggregator = context.config["aggregator"]
        if getattr(aggregator, "needs_payload", True):
            payloads: Mapping[int, Any] = context.cache_file("dataset")
            element = Element(key, payloads[key])
        else:
            element = Element(key)
        for partial in values:
            for partner, result in partial.items():
                element.add_result(partner, result)
        context.emit(key, aggregator([element]))


class BroadcastPairMapper(Mapper):
    """One-job broadcast map: evaluate a task's label chunk from the cache.

    Input records are ``(task_id, None)`` descriptors; the dataset comes
    from the distributed cache as ``{eid: payload}``.  Emits partial
    results keyed by element id — both orientations, like addResult.
    """

    def map(self, key: int, value: Any, context: Context) -> None:
        scheme: BroadcastScheme = context.config["scheme"]
        payloads: Mapping[int, Any] = context.cache_file("dataset")
        pairs = _apply_pruner(scheme.get_pairs(key), context)
        if not pairs:
            return
        forward, backward = _evaluate_pairs(pairs, payloads, context)
        for (i, j), fwd, bwd in zip(pairs, forward, backward):
            context.emit(i, (j, fwd))
            context.emit(j, (i, bwd))


class BroadcastAggregateReducer(Reducer):
    """One-job broadcast reduce: rebuild the element, aggregate its results."""

    def reduce(self, key: int, values: Any, context: Context) -> None:
        aggregator: Aggregator = context.config["aggregator"]
        payloads: Mapping[int, Any] = context.cache_file("dataset")
        element = Element(key, payloads[key])
        for partner, result in values:
            element.add_result(partner, result)
        context.emit(key, aggregator([element]))


class PairwiseComputation:
    """End-to-end pairwise evaluation under a distribution scheme.

    Parameters
    ----------
    scheme:
        Any :class:`DistributionScheme`; its ``v`` must equal the dataset
        cardinality passed to the run methods.
    comp:
        Symmetric pair function over element payloads.  Must be defined at
        module level (picklable) to use :class:`MultiprocessEngine`.
    aggregator:
        ``aggregateResults`` strategy; default concatenates partial maps
        and treats duplicate evaluations as errors.
    engine:
        MapReduce engine; default :class:`SerialEngine`.
    num_reduce_tasks:
        Reducer parallelism for both jobs (default: a reducer per 8 tasks,
        at least 1 — working sets are spread over reducers like Hadoop
        spreads partitions over reduce slots).
    symmetric:
        ``True`` (the paper's standing assumption): one evaluation serves
        both elements of a pair.  ``False``: ``comp`` is order-sensitive
        and both orientations are evaluated — element i receives
        ``comp(sᵢ, sⱼ)``, element j receives ``comp(sⱼ, sᵢ)`` (the §1
        footnote's "marginal modification").
    kernel:
        Batch pair-evaluation strategy for the compute phases (see
        :mod:`repro.kernels`).  ``None`` (default) evaluates through the
        scalar kernel — bit-identical to the historical per-pair loop;
        ``"auto"`` selects a vectorized kernel from the pair function's
        registry binding and the payload type (scalar fallback when
        nothing matches); a kernel name or :class:`~repro.kernels.PairKernel`
        instance forces that kernel.  Vectorized kernels match
        :meth:`run_local` within float tolerance, not bit-for-bit.
    runtime_config:
        Extra ``job.config`` entries merged into every job this
        computation builds — the pass-through for the engine's
        fault-tolerance knobs (``task_timeout_seconds``,
        ``speculative_execution``, ``fault_plan``, …; see
        :class:`~repro.mapreduce.job.Job`).  Application keys
        (``scheme``/``comp``/``aggregator``/``symmetric``) always win.
    max_attempts:
        Task retry budget applied to every job built here (Hadoop's
        ``mapred.map.max.attempts``); default 1, i.e. fail fast.
    scheduling_policy, trace_sink:
        Control-plane knobs forwarded to the engine this computation
        builds when ``engine`` is not supplied (see
        :class:`~repro.mapreduce.runtime.Engine`).  Passing either
        together with an explicit ``engine`` raises — configure the
        engine directly in that case.
    data_plane:
        Broadcast data plane when this computation builds its own engine:
        a non-``None`` value (``"default"`` or ``"shm"``) builds an owned
        :class:`~repro.mapreduce.runtime.MultiprocessEngine` with that
        plane (``"shm"`` shares the cached payload store once per machine
        — the natural pairing with :meth:`run_cached` /
        :meth:`run_broadcast_job`).  Raises with an explicit ``engine``,
        like the other engine-construction knobs.  Close the owned engine
        with :meth:`close` (the computation is a context manager).
    journal_dir:
        Durable job journal directory when this computation builds its
        own engine: a non-``None`` value builds an owned journaled
        :class:`~repro.mapreduce.runtime.MultiprocessEngine`, so a
        driver killed mid-computation can be resumed with
        :func:`repro.mapreduce.journal.resume_job`.  Composes with
        ``data_plane``; raises with an explicit ``engine``, like the
        other engine-construction knobs.
    threshold, top_k:
        Declarative objective (mutually exclusive): keep only results
        passing ``threshold``, or each element's ``top_k`` best.  The
        matching aggregator is built automatically — a
        :class:`~repro.core.aggregate.ThresholdAggregator` /
        :class:`~repro.core.aggregate.TopKAggregator` oriented by the
        comp's registered sketch kind (distances keep below / smallest,
        similarities above / largest; see
        :func:`repro.sketches.register_sketch`) — so passing an explicit
        ``aggregator`` alongside either knob raises.  Declaring the
        objective is what lets ``pruning="sketch"`` skip evaluations.
    pruning:
        ``"off"`` (default) evaluates every pair; ``"sketch"`` builds a
        :class:`~repro.sketches.SketchSuite` driver-side, ships it in
        the distributed cache, and drops pairs whose bounds prove they
        cannot pass the objective *before* kernel dispatch (requires
        ``symmetric=True`` and a sketch-registered comp); ``"exact"``
        names the reference arm — every pair evaluated, the objective
        applied in aggregation only (identical to ``"off"`` plus an
        objective; benches compare ``"sketch"`` against it).
    exact_fallback:
        ``True`` (default) restricts pruning to **sound** bounds: the
        pruned output is identical to the unpruned run (DESIGN.md
        §3.1.7's recall proof).  ``False`` additionally prunes on the
        MinHash overlap estimate with a safety ``margin``
        (``sketch_params``) — more pruning, recall no longer guaranteed.
    sketch_params:
        Extra keyword arguments for the sketch builders (``num_buckets``,
        ``proj_dim``, ``seed``, …) plus ``margin`` for estimate mode.
    """

    def __init__(
        self,
        scheme: DistributionScheme,
        comp: PairFunction,
        *,
        aggregator: Aggregator | None = None,
        engine: Engine | None = None,
        num_reduce_tasks: int | None = None,
        symmetric: bool = True,
        kernel: Any = None,
        runtime_config: Mapping[str, Any] | None = None,
        max_attempts: int = 1,
        scheduling_policy: Any = None,
        trace_sink: Any = None,
        data_plane: str | None = None,
        journal_dir: Any = None,
        threshold: float | None = None,
        top_k: int | None = None,
        pruning: str = "off",
        exact_fallback: bool = True,
        sketch_params: Mapping[str, Any] | None = None,
    ):
        self.scheme = scheme
        self.comp = comp
        self.symmetric = symmetric
        self.kernel = kernel
        if pruning not in PRUNING_MODES:
            raise ValueError(
                f"pruning must be one of {PRUNING_MODES}, got {pruning!r}"
            )
        if threshold is not None and top_k is not None:
            raise ValueError("threshold and top_k are mutually exclusive")
        if pruning != "off" and threshold is None and top_k is None:
            raise ValueError(
                f"pruning={pruning!r} needs a threshold= or top_k= objective"
            )
        self.threshold = threshold
        self.top_k = top_k
        self.pruning = pruning
        self.exact_fallback = exact_fallback
        self.sketch_params = dict(sketch_params or {})
        self._sketch_kind: str | None = None
        if threshold is not None or top_k is not None:
            if aggregator is not None:
                raise ValueError(
                    "threshold=/top_k= build their own aggregator; drop the "
                    "explicit aggregator (or apply the objective yourself)"
                )
            kind = sketch_kind_for_comp(comp)
            if kind is None:
                raise ValueError(
                    f"{getattr(comp, '__name__', comp)!r} has no registered "
                    "sketch kind, so the objective's orientation is unknown; "
                    "call repro.sketches.register_sketch(comp, kind) or pass "
                    "an explicit aggregator without threshold=/top_k="
                )
            keep_below = kind in DISTANCE_KINDS
            if pruning == "sketch":
                if not symmetric:
                    raise ValueError(
                        "sketch pruning requires symmetric=True (one sound "
                        "decision must cover both orientations)"
                    )
                if top_k is not None and not keep_below:
                    raise NotImplementedError(
                        "top-k pruning is implemented for distance sketches "
                        f"only; {kind!r} is a similarity kind"
                    )
                self._sketch_kind = kind
            if threshold is not None:
                aggregator = ThresholdAggregator(threshold, keep_below=keep_below)
            else:
                aggregator = TopKAggregator(top_k, smallest=keep_below)
        self.aggregator = aggregator or ConcatAggregator()
        if engine is not None and (
            scheduling_policy is not None
            or trace_sink is not None
            or data_plane is not None
            or journal_dir is not None
        ):
            raise ValueError(
                "pass scheduling_policy/trace_sink/data_plane/journal_dir to "
                "the engine itself when supplying an explicit engine"
            )
        self._owns_engine = engine is None
        if engine is not None:
            self.engine = engine
        elif data_plane is not None or journal_dir is not None:
            self.engine = MultiprocessEngine(
                data_plane=data_plane or "default",
                scheduling_policy=scheduling_policy,
                trace_sink=trace_sink,
                journal_dir=journal_dir,
            )
        else:
            self.engine = SerialEngine(
                scheduling_policy=scheduling_policy, trace_sink=trace_sink
            )
        if num_reduce_tasks is None:
            num_reduce_tasks = max(1, scheme.num_tasks // 8)
        if num_reduce_tasks < 1:
            raise ValueError(f"num_reduce_tasks must be >= 1, got {num_reduce_tasks}")
        self.num_reduce_tasks = num_reduce_tasks
        self.runtime_config = dict(runtime_config or {})
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = max_attempts

    def _job_config(self, **app_keys: Any) -> dict[str, Any]:
        """Runtime knobs first, application keys on top (apps win)."""
        return {**self.runtime_config, **app_keys}

    def _build_pruning(
        self, payloads: Mapping[int, Any]
    ) -> tuple[Any, PairPruner] | None:
        """Sketch suite + pruner for one run, or None when pruning is off.

        Built driver-side exactly once per run and shipped through the
        distributed cache / job config, so every task attempt — retries
        and speculative launches included — prunes against the same
        frozen state.
        """
        if self.pruning != "sketch":
            return None
        params = {
            key: value
            for key, value in self.sketch_params.items()
            if key != "margin"
        }
        if (
            self._sketch_kind == "sparse-cosine"
            and self.exact_fallback
            and "num_hashes" not in params
        ):
            # Sound mode never consults MinHash; skip the signature build.
            params["num_hashes"] = 0
        suite = build_sketches(payloads, self._sketch_kind, **params)
        if self.top_k is not None:
            pruner: PairPruner = TopKPruner(
                self.top_k, build_topk_taus(suite, self.top_k)
            )
        else:
            pruner = ThresholdPruner(
                self.threshold,
                keep_below=self._sketch_kind in DISTANCE_KINDS,
                estimate=not self.exact_fallback,
                margin=self.sketch_params.get("margin", 0.15),
            )
        return suite, pruner

    def _meter_replication(
        self, counters: Any, elements: Sequence[Element], *, legs: int
    ) -> None:
        """Record achieved-vs-bound replication after a pipeline completes.

        Sets the three :class:`~repro.mapreduce.stats.EngineStats`
        replication meters (pooled engines only — the serial engine has
        no stats object) and emits a
        :class:`~repro.mapreduce.controlplane.events.ReplicationMeasured`
        event on the engine's bus, which the JSONL trace sink serializes
        like every other event.  ``legs`` is how many shuffle legs the
        executed path has (2 for the two-job pipelines, 1 for the one-job
        broadcast form); the byte floor scales with it.  Cached runs
        shuffle ids instead of payloads, so their ``shuffle_bytes_vs_bound``
        dropping far below 1.0 is the meter showing the cache optimization
        beating the naive payload-shuffle floor.
        """
        report_hook = getattr(self.scheme, "replication_report", None)
        if report_hook is None:
            return  # ad-hoc schemes (hierarchical round wrappers) aren't metered
        report = report_hook()
        v = self.scheme.v
        replicas = counters.get(PAIRWISE_GROUP, REPLICAS_EMITTED)
        achieved = replicas / v if replicas else report.replication_achieved
        bound = report.replication_lower_bound
        from ..mapreduce.counters import FRAMEWORK_GROUP, SHUFFLE_BYTES

        shuffle_bytes = counters.get(FRAMEWORK_GROUP, SHUFFLE_BYTES)
        from .runner import estimate_element_size  # local import avoids cycle

        element_size = estimate_element_size([el.payload for el in elements])
        floor = legs * report.shuffle_bytes_floor(element_size)
        vs_bound = shuffle_bytes / floor if floor and shuffle_bytes else 0.0
        stats = getattr(self.engine, "stats", None)
        if stats is not None:
            stats.replication_factor_achieved = achieved
            stats.replication_lower_bound = bound
            stats.shuffle_bytes_vs_bound = vs_bound
        events = getattr(self.engine, "events", None)
        if events is not None:
            from ..mapreduce.controlplane.events import ReplicationMeasured

            events.emit(
                ReplicationMeasured(
                    time=time.monotonic(),
                    scheme=self.scheme.name,
                    v=v,
                    capacity_elements=report.capacity_elements,
                    replication_achieved=achieved,
                    replication_lower_bound=bound,
                    optimality_ratio=achieved / bound,
                    shuffle_bytes=shuffle_bytes,
                    shuffle_bytes_floor=floor,
                    shuffle_bytes_vs_bound=vs_bound,
                )
            )

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Close the engine this computation built (noop for a supplied one)."""
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "PairwiseComputation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- input handling --------------------------------------------------------
    def _as_elements(self, dataset: Sequence[Any]) -> list[Element]:
        """Accept Elements or raw payloads; enforce ids 1..v and v == scheme.v."""
        if len(dataset) != self.scheme.v:
            raise ValueError(
                f"dataset has {len(dataset)} elements but the scheme was "
                f"built for v={self.scheme.v}"
            )
        if dataset and isinstance(dataset[0], Element):
            elements = list(dataset)  # type: ignore[arg-type]
            ids = sorted(element.eid for element in elements)
            if ids != list(range(1, len(elements) + 1)):
                raise ValueError(
                    "element ids must be exactly 1..v; "
                    f"got min={ids[0]}, max={ids[-1]}, count={len(ids)}"
                )
            return elements
        return [Element(i + 1, payload) for i, payload in enumerate(dataset)]

    # -- execution paths --------------------------------------------------------
    def build_jobs(self) -> tuple[Job, Job]:
        """The two MR jobs of the generic algorithm (for inspection/chaining)."""
        config = self._job_config(
            scheme=self.scheme,
            comp=self.comp,
            aggregator=self.aggregator,
            symmetric=self.symmetric,
            kernel=self.kernel,
        )
        job1 = Job(
            name="pairwise-distribute-compute",
            mapper=DistributeMapper,
            reducer=ComputeReducer,
            num_reducers=self.num_reduce_tasks,
            config=config,
            max_attempts=self.max_attempts,
        )
        job2 = Job(
            name="pairwise-aggregate",
            reducer=AggregateReducer,
            num_reducers=self.num_reduce_tasks,
            config=config,
            max_attempts=self.max_attempts,
        )
        return job1, job2

    def run(
        self,
        dataset: Sequence[Any],
        *,
        num_map_tasks: int | None = None,
        return_pipeline: bool = False,
    ) -> dict[int, Element] | tuple[dict[int, Element], PipelineResult]:
        """Run the faithful two-job pipeline; returns ``{eid: Element}``.

        ``return_pipeline=True`` additionally returns the
        :class:`PipelineResult` with per-stage counters (shuffle volume,
        evaluations — the measured Table-1 quantities); it also disables
        stage fusion so every stage's records are materialized for
        inspection.  Without it, a direct-shuffle engine fuses Job 1's
        reduce into Job 2's (identity) map — same merged elements, no
        driver round-trip for the intermediate copies.
        """
        elements = self._as_elements(dataset)
        job1, job2 = self.build_jobs()
        pruning = self._build_pruning(
            {element.eid: element.payload for element in elements}
        )
        if pruning is not None:
            suite, pruner = pruning
            job1.config = {**job1.config, "pruner": pruner}
            job1.cache = {**job1.cache, "sketches": suite}
        pipeline = Pipeline([job1, job2], engine=self.engine)
        input_records = [(element.eid, element) for element in elements]
        result = pipeline.run(
            input_records,
            num_map_tasks=num_map_tasks,
            fuse=False if return_pipeline else None,
        )
        self._meter_replication(result.counters, elements, legs=2)
        merged = {key: value for key, value in result.records}
        if return_pipeline:
            return merged, result
        return merged

    def run_cached(
        self,
        dataset: Sequence[Any],
        *,
        num_map_tasks: int | None = None,
        return_pipeline: bool = False,
    ) -> dict[int, Element] | tuple[dict[int, Element], PipelineResult]:
        """Two-job pipeline with the payload store in the distributed cache.

        Semantically identical to :meth:`run` (same pair relation, same
        merged elements), but element payloads never flow through the
        shuffle: both jobs attach ``{eid: payload}`` to the distributed
        cache, Job 1 shuffles bare ids into working sets and emits partial
        result maps, Job 2 rebuilds each element from the store.  On a
        :class:`~repro.mapreduce.runtime.MultiprocessEngine` the store is
        broadcast **once per worker per job** instead of once per task —
        the dispatch-cost profile the engine-scaling bench measures.
        """
        elements = self._as_elements(dataset)
        payloads = {element.eid: element.payload for element in elements}
        cache = {"dataset": payloads}
        config = self._job_config(
            scheme=self.scheme,
            comp=self.comp,
            aggregator=self.aggregator,
            symmetric=self.symmetric,
            kernel=self.kernel,
        )
        pruning = self._build_pruning(payloads)
        if pruning is not None:
            suite, pruner = pruning
            # Same cache dict for both jobs → one broadcast / shm segment.
            cache["sketches"] = suite
            config = {**config, "pruner": pruner}
        job1 = Job(
            name="pairwise-distribute-compute-cached",
            mapper=CachedDistributeMapper,
            reducer=CachedComputeReducer,
            num_reducers=self.num_reduce_tasks,
            cache=cache,
            config=config,
            max_attempts=self.max_attempts,
        )
        job2 = Job(
            name="pairwise-aggregate-cached",
            reducer=CachedAggregateReducer,
            num_reducers=self.num_reduce_tasks,
            cache=cache,
            config=config,
            max_attempts=self.max_attempts,
        )
        pipeline = Pipeline([job1, job2], engine=self.engine)
        input_records = [(element.eid, None) for element in elements]
        result = pipeline.run(
            input_records,
            num_map_tasks=num_map_tasks,
            fuse=False if return_pipeline else None,
        )
        self._meter_replication(result.counters, elements, legs=2)
        merged = {key: value for key, value in result.records}
        if return_pipeline:
            return merged, result
        return merged

    def run_broadcast_job(
        self,
        dataset: Sequence[Any],
        *,
        return_result: bool = False,
    ):
        """The broadcast scheme's one-job optimization (paper §5.1).

        Requires a :class:`BroadcastScheme`; the dataset is attached to the
        distributed cache and map tasks do the evaluations directly.
        """
        if not isinstance(self.scheme, BroadcastScheme):
            raise TypeError(
                "run_broadcast_job requires a BroadcastScheme, got "
                f"{type(self.scheme).__name__}"
            )
        elements = self._as_elements(dataset)
        payloads = {element.eid: element.payload for element in elements}
        cache = {"dataset": payloads}
        config = self._job_config(
            scheme=self.scheme,
            comp=self.comp,
            aggregator=self.aggregator,
            symmetric=self.symmetric,
            kernel=self.kernel,
        )
        pruning = self._build_pruning(payloads)
        if pruning is not None:
            suite, pruner = pruning
            cache["sketches"] = suite
            config = {**config, "pruner": pruner}
        job = Job(
            name="pairwise-broadcast",
            mapper=BroadcastPairMapper,
            reducer=BroadcastAggregateReducer,
            num_reducers=self.num_reduce_tasks,
            cache=cache,
            config=config,
            max_attempts=self.max_attempts,
        )
        # One input record per task; one split per task mirrors Hadoop's
        # one-mapper-per-task launch of the paper's implementation.
        task_records = [(task, None) for task in range(self.scheme.num_tasks)]
        result = self.engine.run(job, task_records, num_map_tasks=self.scheme.num_tasks)
        self._meter_replication(result.counters, elements, legs=1)
        merged = {key: value for key, value in result.records}
        if return_result:
            return merged, result
        return merged

    def run_local(self, dataset: Sequence[Any]) -> dict[int, Element]:
        """In-process reference: same three steps, no MR framework.

        Step 1 builds the working sets, step 2 evaluates each pair relation
        on copies, step 3 merges copies per element — exactly the semantics
        of the two-job pipeline, minus serialization.  Pruning is never
        applied here: this is the reference every pruned path is compared
        against (the threshold/top-k objective still applies, through the
        aggregator).
        """
        elements = self._as_elements(dataset)
        by_id = {element.eid: element for element in elements}
        copies: dict[int, list[Element]] = {eid: [] for eid in by_id}

        for subset_id, member_ids in self.scheme.iter_subsets():
            local = {eid: by_id[eid].copy_without_results() for eid in member_ids}
            for i, j in self.scheme.get_pairs(subset_id, member_ids):
                result = self.comp(local[i].payload, local[j].payload)
                local[i].add_result(j, result)
                if self.symmetric:
                    local[j].add_result(i, result)
                else:
                    local[j].add_result(i, self.comp(local[j].payload, local[i].payload))
            for eid, copy in local.items():
                copies[eid].append(copy)

        merged: dict[int, Element] = {}
        for eid, element_copies in copies.items():
            if element_copies:
                merged[eid] = self.aggregator(element_copies)
            else:  # element in no working set (can't happen for valid schemes)
                merged[eid] = self.aggregator([by_id[eid].copy_without_results()])
        return merged


def pairwise_results(
    dataset: Sequence[Any],
    comp: PairFunction,
    scheme: DistributionScheme,
    **kwargs: Any,
) -> dict[tuple[int, int], Any]:
    """Convenience: run the two-job pipeline and return the flat pair map.

    Returns ``{(i, j): comp(s_i, s_j)}`` with i > j, 1-indexed ids.
    """
    from .element import results_matrix  # local import avoids cycle at module load

    computation = PairwiseComputation(scheme, comp, **kwargs)
    merged = computation.run(dataset)
    return results_matrix(merged)


def brute_force_results(
    dataset: Sequence[Any], comp: PairFunction
) -> dict[tuple[int, int], Any]:
    """Single-machine reference: evaluate all pairs directly (for tests)."""
    out: dict[tuple[int, int], Any] = {}
    for i in range(2, len(dataset) + 1):
        for j in range(1, i):
            out[(i, j)] = comp(dataset[i - 1], dataset[j - 1])
    return out


def brute_force_asymmetric(
    dataset: Sequence[Any], comp: PairFunction
) -> dict[tuple[int, int], Any]:
    """Reference for non-symmetric ``comp``: all *ordered* pairs i ≠ j."""
    out: dict[tuple[int, int], Any] = {}
    v = len(dataset)
    for i in range(1, v + 1):
        for j in range(1, v + 1):
            if i != j:
                out[(i, j)] = comp(dataset[i - 1], dataset[j - 1])
    return out
