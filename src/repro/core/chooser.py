"""Automatic scheme selection — Fig 9b's decision logic as an API.

Given the workload (cardinality v, element size s) and the environment
limits (maxws, maxis, node count), pick the distribution scheme the
paper's own analysis recommends:

1. **broadcast** when the whole dataset fits a task slot (``v·s ≤ maxws``)
   — cheapest structure, one-job execution;
2. otherwise **block** when a valid blocking factor exists
   (``v·s ≤ sqrt(maxws·maxis/2)``), choosing h inside the Fig 9a
   interval (minimal h ⇒ minimal replication/communication by Table 1,
   optionally balanced against a minimum task count for parallelism);
3. otherwise **quorum** when v is *not* an exact plane size — the design
   scheme would pad v up to the next prime plane and replicate ``q + 1``
   times, while a difference cover of Z_v exists for the exact v at
   ``|D| ≈ √v``; chosen when the cover fits both limits and strictly
   beats the padded design replication;
4. otherwise **design** when its working set and intermediate storage
   both fit;
5. otherwise a **hierarchical** two-level block schedule with the
   smallest coarse factor H whose per-round requirements fit (§7).

The returned :class:`SchemeChoice` carries the configured scheme (or
schedule) plus a rationale trail suitable for logging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from .._util import ceil_div, format_bytes
from .block import BlockScheme
from .broadcast import BroadcastScheme
from .cost_model import (
    block_h_bounds,
    max_v_broadcast,
    max_v_design_memory,
    max_v_design_storage,
)
from .design import DesignScheme
from .hierarchical import HierarchicalBlockScheme
from .quorum import QuorumScheme
from .scheme import DistributionScheme


class InfeasibleWorkloadError(RuntimeError):
    """No scheme (flat or hierarchical, within the round cap) fits."""


@dataclass
class SchemeChoice:
    """Outcome of automatic selection."""

    scheme: Union[DistributionScheme, HierarchicalBlockScheme]
    rationale: list[str] = field(default_factory=list)

    @property
    def is_hierarchical(self) -> bool:
        return isinstance(self.scheme, HierarchicalBlockScheme)

    def explain(self) -> str:
        return "\n".join(self.rationale)


def choose_scheme(
    v: int,
    element_size: int,
    *,
    maxws: int,
    maxis: int,
    num_nodes: int = 8,
    min_tasks: int | None = None,
    max_rounds: int = 10_000,
    allow_prime_powers: bool = False,
) -> SchemeChoice:
    """Pick and configure the scheme the paper's analysis recommends.

    ``min_tasks`` (default: 2× the node count) is the parallelism floor;
    broadcast task count and the block factor are raised to meet it when
    the limits allow.  ``max_rounds`` caps the hierarchical fallback's
    sequential rounds before declaring the workload infeasible.
    """
    if v < 2:
        raise ValueError(f"pairwise computation needs v >= 2, got {v}")
    if element_size < 1 or maxws < 1 or maxis < 1:
        raise ValueError("element_size, maxws and maxis must be positive")
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    if min_tasks is None:
        min_tasks = 2 * num_nodes

    rationale: list[str] = [
        f"workload: v={v}, s={format_bytes(element_size)} "
        f"(dataset {format_bytes(v * element_size)}); "
        f"limits: maxws={format_bytes(maxws)}, maxis={format_bytes(maxis)}, "
        f"n={num_nodes}"
    ]
    dataset_bytes = v * element_size

    # 1. Broadcast: dataset fits one task slot.
    if v <= max_v_broadcast(element_size, maxws):
        tasks = max(min_tasks, num_nodes)
        # Replication = tasks; keep intermediate storage honest too.
        if dataset_bytes * tasks <= maxis:
            rationale.append(
                f"broadcast: dataset fits a slot ({format_bytes(dataset_bytes)} "
                f"<= {format_bytes(maxws)}); p={tasks} tasks"
            )
            return SchemeChoice(BroadcastScheme(v, tasks), rationale)
        rationale.append(
            "broadcast working set fits but p-fold intermediate storage "
            "would exceed maxis; falling through to block"
        )
    else:
        rationale.append(
            f"broadcast infeasible: working set {format_bytes(dataset_bytes)} "
            f"> maxws {format_bytes(maxws)}"
        )

    # 2. Block: valid h interval (Fig 9a), pick the smallest h that also
    #    reaches the parallelism floor.
    bounds = block_h_bounds(dataset_bytes, maxws, maxis)
    if bounds.feasible:
        h = bounds.h_min
        # h(h+1)/2 tasks; raise h (within the interval) for parallelism.
        while h < bounds.h_max and h * (h + 1) // 2 < min_tasks:
            h += 1
        # The analytic lower bound uses the continuous 2vs/h; the real
        # working set is 2⌈v/h⌉·s, which can exceed maxws by one group's
        # rounding — bump h until the discrete working set fits too.
        while h < min(bounds.h_max, v) and 2 * ceil_div(v, h) * element_size > maxws:
            h += 1
        h = min(h, v)  # a factor beyond v is meaningless
        if 2 * ceil_div(v, h) * element_size <= maxws:
            rationale.append(
                f"block: h ∈ [{bounds.h_min}, {bounds.h_max}] valid; chose h={h} "
                f"({h * (h + 1) // 2} tasks, replication {h})"
            )
            return SchemeChoice(BlockScheme(v, h), rationale)
        rationale.append(
            "block: analytic h interval exists but the discrete working set "
            "2⌈v/h⌉·s never fits; falling through"
        )
    rationale.append(
        f"block infeasible: no valid h (needs vs <= "
        f"{format_bytes(int((maxws * maxis / 2) ** 0.5))})"
    )

    # 3. Quorum: exact-v difference-cover working sets, preferred over a
    #    padded design when the cover replicates strictly less.
    from ..designs.difference_covers import difference_cover
    from ..designs.primes import plane_order_for, plane_size

    q = plane_order_for(v, allow_prime_powers=allow_prime_powers)
    if plane_size(q) == v:
        rationale.append(
            f"quorum not needed: v={v} is exactly the q={q} plane, "
            "design pays no padding"
        )
    else:
        cover = difference_cover(v)
        k = cover.size
        if k >= q + 1:
            rationale.append(
                f"quorum not competitive: |D|={k} ({cover.kind} cover) vs "
                f"padded design replication {q + 1}"
            )
        elif k * element_size > maxws:
            rationale.append(
                f"quorum infeasible: working set |D|·s = "
                f"{format_bytes(k * element_size)} > maxws"
            )
        elif v * k * element_size > maxis:
            rationale.append(
                f"quorum infeasible: intermediate v·|D|·s = "
                f"{format_bytes(v * k * element_size)} > maxis"
            )
        else:
            rationale.append(
                f"quorum: design would pad v={v} to the q={q} plane "
                f"(replication {q + 1}); {cover.kind} difference cover of "
                f"Z_{v} replicates only |D|={k} — {v} tasks, working set "
                f"{format_bytes(k * element_size)}"
            )
            return SchemeChoice(QuorumScheme(v, cover=cover), rationale)

    # 4. Design: both its limits must hold.
    if v <= max_v_design_storage(element_size, maxis) and v <= max_v_design_memory(
        element_size, maxws
    ):
        rationale.append(
            "design: √v working set and v√v·s intermediate both fit"
        )
        return SchemeChoice(
            DesignScheme(v, allow_prime_powers=allow_prime_powers, num_nodes=num_nodes),
            rationale,
        )
    rationale.append("design infeasible: √v·s or v^{3/2}·s exceeds a limit")

    # 5. Hierarchical fallback: smallest H whose rounds fit both limits.
    for H in range(2, v + 1):
        E = ceil_div(v, H)  # coarse group size
        # Fine factor must shrink 2E elements under maxws...
        f_min = max(1, ceil_div(2 * E * element_size, maxws))
        if f_min > E:
            continue  # cannot tile finely enough
        # ...while one round's replicas (≈ 2E·f) stay under maxis.
        if 2 * E * f_min * element_size > maxis:
            continue
        rounds = H * (H + 1) // 2
        if rounds > max_rounds:
            break
        rationale.append(
            f"hierarchical block: H={H} (E={E}, {rounds} sequential rounds), "
            f"fine factor f={f_min}"
        )
        return SchemeChoice(HierarchicalBlockScheme(v, H, f_min), rationale)

    raise InfeasibleWorkloadError(
        "no scheme fits: " + "; ".join(rationale)
    )
