"""Incremental pairwise maintenance: extend results when elements arrive.

The paper computes all pairs of a *fixed* set; real datasets grow.  When
``w`` new elements join a set of ``v`` already-computed elements, only

- the ``v × w`` **cross pairs** (old against new), and
- the ``w(w−1)/2`` **fresh pairs** (new against new)

need evaluation — ``v·w + w(w−1)/2`` evaluations instead of re-running
the full ``(v+w)(v+w−1)/2``.  Both phases reuse the paper's machinery:
the cross pairs run under a :mod:`bipartite <repro.core.bipartite>`
scheme (the §1 two-set generalization), the fresh pairs under any flat
scheme over the new elements; exactly-once over the *union* follows from
the three phases partitioning the enlarged triangle.

:class:`IncrementalPairwise` owns the merged element state across
batches and is the unit a long-running pairwise service would persist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from .._util import triangle_count
from .bipartite import BipartiteBlockScheme
from .block import BlockScheme
from .element import Element
from .pairwise import PairwiseComputation
from .scheme import DistributionScheme


@dataclass(frozen=True)
class BatchReport:
    """What one :meth:`IncrementalPairwise.add_batch` call did."""

    new_elements: int
    cross_evaluations: int
    fresh_evaluations: int
    total_elements: int

    @property
    def evaluations(self) -> int:
        return self.cross_evaluations + self.fresh_evaluations

    def savings_vs_recompute(self) -> float:
        """Fraction of a full recompute avoided by incrementality."""
        full = triangle_count(self.total_elements)
        return 1.0 - self.evaluations / full if full else 0.0


class IncrementalPairwise:
    """Maintain all-pairs results across element arrivals.

    Parameters
    ----------
    comp:
        Symmetric pair function.
    flat_scheme_factory:
        ``v → DistributionScheme`` used for within-batch pairs (default:
        a block scheme with h ≈ √v).
    cross_factors:
        ``(vr, vs) → (hr, hs)`` grid factors for the old × new bipartite
        block scheme (default: ≈ square tiles of ~64 elements).
    """

    def __init__(
        self,
        comp: Callable[[Any, Any], Any],
        *,
        flat_scheme_factory: Callable[[int], DistributionScheme] | None = None,
        cross_factors: Callable[[int, int], tuple[int, int]] | None = None,
    ):
        self.comp = comp
        self._flat_factory = flat_scheme_factory or _default_flat_scheme
        self._cross_factors = cross_factors or _default_cross_factors
        self._elements: dict[int, Element] = {}

    # -- state -------------------------------------------------------------
    @property
    def v(self) -> int:
        return len(self._elements)

    @property
    def elements(self) -> dict[int, Element]:
        """The merged elements (live references; treat as read-only)."""
        return self._elements

    def results(self) -> dict[tuple[int, int], Any]:
        """Canonical (i > j) pair map over everything computed so far."""
        from .element import results_matrix

        return results_matrix(self._elements)

    # -- growth -------------------------------------------------------------
    def add_batch(self, payloads: Sequence[Any]) -> BatchReport:
        """Add new elements; evaluate exactly the pairs they introduce.

        New elements receive ids ``v+1 … v+w`` in arrival order.
        """
        if not payloads:
            raise ValueError("batch must contain at least one element")
        old_v = self.v
        new_elements = [
            Element(old_v + index + 1, payload)
            for index, payload in enumerate(payloads)
        ]

        cross_evals = 0
        if old_v > 0:
            cross_evals = self._evaluate_cross(new_elements)

        fresh_evals = 0
        if len(new_elements) >= 2:
            fresh_evals = self._evaluate_fresh(new_elements)

        for element in new_elements:
            self._elements[element.eid] = element
        return BatchReport(
            new_elements=len(new_elements),
            cross_evaluations=cross_evals,
            fresh_evaluations=fresh_evals,
            total_elements=self.v,
        )

    # -- phases --------------------------------------------------------------
    def _evaluate_cross(self, new_elements: list[Element]) -> int:
        """Old × new pairs under a bipartite block scheme."""
        old_ids = sorted(self._elements)
        vr, vs = len(old_ids), len(new_elements)
        hr, hs = self._cross_factors(vr, vs)
        scheme = BipartiteBlockScheme(vr, vs, hr, hs)
        count = 0
        for task in range(scheme.num_tasks):
            for r_index, s_index in scheme.get_pairs(task):
                old = self._elements[old_ids[r_index - 1]]
                new = new_elements[s_index - 1]
                result = self.comp(old.payload, new.payload)
                old.add_result(new.eid, result)
                new.add_result(old.eid, result)
                count += 1
        return count

    def _evaluate_fresh(self, new_elements: list[Element]) -> int:
        """New × new pairs under a flat scheme over the batch."""
        w = len(new_elements)
        scheme = self._flat_factory(w)
        if scheme.v != w:
            raise ValueError(
                f"flat scheme factory returned v={scheme.v} for batch of {w}"
            )
        computation = PairwiseComputation(scheme, self.comp)
        merged = computation.run_local([element.payload for element in new_elements])
        count = 0
        for local_id, local_element in merged.items():
            target = new_elements[local_id - 1]
            for local_partner, result in local_element.results.items():
                partner_eid = new_elements[local_partner - 1].eid
                target.add_result(partner_eid, result)
            count += len(local_element.results)
        return count // 2  # each pair contributed two result entries


def _default_flat_scheme(v: int) -> DistributionScheme:
    if v < 2:
        raise ValueError(f"flat scheme needs v >= 2, got {v}")
    h = max(1, round(v**0.5))
    return BlockScheme(v, min(h, v))


def _default_cross_factors(vr: int, vs: int) -> tuple[int, int]:
    tile = 64
    hr = max(1, min(vr, -(-vr // tile)))
    hs = max(1, min(vs, -(-vs // tile)))
    return hr, hs
