"""Result aggregation strategies (Algorithm 2's ``aggregateResults``).

The second MR job groups all copies of an element and applies an
application-defined aggregation (§4).  An aggregator is a picklable
callable ``list[Element] → Element``; the strategies here cover the
applications the paper motivates:

- :class:`ConcatAggregator` — union of the copies' partial result maps
  (the generic case; duplicate partners indicate a scheme bug and raise);
- :class:`ThresholdAggregator` — keep only results passing a threshold,
  e.g. DBSCAN's "distance below ε" pruning (§3's note that some
  applications prune uninteresting evaluations);
- :class:`TopKAggregator` — keep each element's k best partners (nearest
  neighbours, most-similar documents);
- :class:`ReduceAggregator` — fold all results into a single value per
  element (e.g. row of a covariance matrix reduced to a norm).

All are plain classes with data-only attributes so they cross process
boundaries intact.
"""

from __future__ import annotations

import heapq
import operator
from typing import Any, Callable, Iterable, Sequence

from .element import Element, merge_copies

Aggregator = Callable[[Sequence[Element]], Element]


class ConcatAggregator:
    """Union of all copies' result maps; the default aggregation.

    ``on_duplicate`` follows :func:`repro.core.element.merge_copies`:
    "error" (default) treats a twice-evaluated pair as a bug.
    """

    def __init__(self, on_duplicate: str = "error"):
        self.on_duplicate = on_duplicate

    def __call__(self, copies: Sequence[Element]) -> Element:
        return merge_copies(copies, on_duplicate=self.on_duplicate)


class ThresholdAggregator:
    """Keep only results that compare favourably against a threshold.

    ``keep_below=True`` keeps results ``< threshold`` (distances),
    ``False`` keeps ``> threshold`` (similarities).  ``key`` extracts the
    comparable magnitude from a result value (identity by default).
    """

    def __init__(
        self,
        threshold: float,
        *,
        keep_below: bool = True,
        key: Callable[[Any], float] | None = None,
    ):
        self.threshold = threshold
        self.keep_below = keep_below
        self.key = key

    def __call__(self, copies: Sequence[Element]) -> Element:
        merged = merge_copies(copies)
        compare = operator.lt if self.keep_below else operator.gt
        extract = self.key or (lambda value: value)
        merged.results = {
            partner: value
            for partner, value in merged.results.items()
            if compare(extract(value), self.threshold)
        }
        return merged


class TopKAggregator:
    """Keep each element's k best partners.

    ``smallest=True`` keeps the k smallest values (nearest neighbours by
    distance); ``False`` the k largest (highest similarity).  Ties break on
    partner id for determinism.
    """

    def __init__(
        self,
        k: int,
        *,
        smallest: bool = True,
        key: Callable[[Any], float] | None = None,
    ):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.smallest = smallest
        self.key = key

    def __call__(self, copies: Sequence[Element]) -> Element:
        merged = merge_copies(copies)
        extract = self.key or (lambda value: value)
        # Heap selection is O(v log k) instead of O(v log v); nsmallest /
        # nlargest under the (value, id) key keep exactly the pairs the
        # historical full sort kept, ties included.
        select = heapq.nsmallest if self.smallest else heapq.nlargest
        ranked = select(
            self.k,
            merged.results.items(),
            key=lambda item: (extract(item[1]), item[0]),
        )
        merged.results = dict(ranked)
        return merged


class ReduceAggregator:
    """Fold all of an element's results into one value under key ``name``.

    After merging, ``results`` is replaced by ``{0: folded}`` where
    ``folded = reduce(fn, values, initial)`` — partner identity is
    discarded, which suits per-element summaries (counts, sums, extremes).
    Partner id 0 never collides with real 1-indexed elements.

    ``needs_payload`` declares whether the fold reads the element's
    payload.  It defaults to False — a pure fold over result values —
    which lets the cached pipeline's aggregate phase skip rebuilding the
    element from the payload store entirely (the output elements then
    carry ``payload=None``).  Pass True when ``fn`` (or a downstream
    consumer) inspects payloads.
    """

    def __init__(
        self,
        fn: Callable[[Any, Any], Any],
        initial: Any = None,
        *,
        needs_payload: bool = False,
    ):
        self.fn = fn
        self.initial = initial
        self.needs_payload = needs_payload

    def __call__(self, copies: Sequence[Element]) -> Element:
        merged = merge_copies(copies)
        values: Iterable[Any] = (
            value for _partner, value in sorted(merged.results.items())
        )
        folded = self.initial
        first = folded is None
        for value in values:
            if first:
                folded = value
                first = False
            else:
                folded = self.fn(folded, value)
        merged.results = {0: folded}
        return merged


def count_neighbors(copies: Sequence[Element]) -> Element:
    """Tiny ready-made aggregator: result map → ``{0: partner count}``."""
    merged = merge_copies(copies)
    merged.results = {0: len(merged.results)}
    return merged
