"""Two-set pairwise computation (the paper's §1 generalization).

The paper notes "it is possible to generalize some of the approaches such
that elements of one set can be paired with elements of another set" —
the R × S cross product (a θ-join's evaluation pattern) instead of the
S × S triangle.  This module carries that generalization through:

- :class:`BipartiteBroadcastScheme` — one side (the smaller, by
  convention R) is replicated to every task; the rectangle of pairs is
  enumerated row-major and chunked, exactly like §5.1's triangle chunks.
- :class:`BipartiteBlockScheme` — the rectangle is tiled into an
  ``h_r × h_s`` grid of blocks, each task receiving one R-chunk and one
  S-chunk; replication is h_s for R-elements and h_r for S-elements
  (§5.2 without the diagonal special case, which a rectangle doesn't
  have).

There is no natural design-scheme analogue: a projective plane's
exactly-once property is about 2-subsets of *one* point set.  (The
algebraic counterpart — transversal designs / orthogonal arrays — reduces
to exactly the grid tiling the block scheme already provides.)

Element addressing: side ``"r"`` ids ``1..vr``, side ``"s"`` ids
``1..vs``.  Pairs are ``(r_id, s_id)`` tuples; working-set members are
``(side, id)`` tuples.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator, Sequence

from .._util import ceil_div

SideId = tuple[str, int]  #: ("r", 3) or ("s", 17)
CrossPair = tuple[int, int]  #: (r_id, s_id)


@dataclass(frozen=True)
class BipartiteMetrics:
    """Table-1-style characteristics for a two-set scheme."""

    scheme: str
    vr: int
    vs: int
    num_tasks: int
    communication_records: int
    replication_r: float
    replication_s: float
    working_set_elements: int
    evaluations_per_task: float


class BipartiteScheme(abc.ABC):
    """Partition the rectangle R × S into tasks, each pair exactly once."""

    name = "bipartite-abstract"

    def __init__(self, vr: int, vs: int):
        if vr < 1 or vs < 1:
            raise ValueError(f"both sides need >= 1 element, got vr={vr}, vs={vs}")
        self.vr = vr
        self.vs = vs

    @property
    @abc.abstractmethod
    def num_tasks(self) -> int:
        """Number of independent tasks."""

    @abc.abstractmethod
    def get_subsets(self, side: str, element_id: int) -> list[int]:
        """Tasks the element of the given side joins."""

    @abc.abstractmethod
    def get_pairs(self, subset_id: int) -> list[CrossPair]:
        """Cross pairs (r_id, s_id) task ``subset_id`` evaluates."""

    @abc.abstractmethod
    def subset_members(self, subset_id: int) -> list[SideId]:
        """All (side, id) members of a task's working set."""

    @abc.abstractmethod
    def metrics(self) -> BipartiteMetrics:
        """Analytic characteristics."""

    # -- shared helpers ----------------------------------------------------------
    def _check_side(self, side: str, element_id: int) -> None:
        if side == "r":
            bound = self.vr
        elif side == "s":
            bound = self.vs
        else:
            raise ValueError(f"side must be 'r' or 's', got {side!r}")
        if not 1 <= element_id <= bound:
            raise ValueError(
                f"element id {element_id} out of range [1, {bound}] for side {side}"
            )

    def _check_subset(self, subset_id: int) -> None:
        if not 0 <= subset_id < self.num_tasks:
            raise ValueError(f"subset id {subset_id} out of range [0, {self.num_tasks})")

    def iter_subsets(self) -> Iterator[tuple[int, list[SideId]]]:
        for subset_id in range(self.num_tasks):
            yield subset_id, self.subset_members(subset_id)

    def total_pairs(self) -> int:
        return self.vr * self.vs

    def describe(self) -> str:
        return f"{self.name}(vr={self.vr}, vs={self.vs}, tasks={self.num_tasks})"


class BipartiteBroadcastScheme(BipartiteScheme):
    """Replicate side R everywhere; chunk the rectangle's pair labels.

    Pair label ``p(r, s) = (s − 1)·vr + r`` enumerates the rectangle
    column-by-column (all of R against s₁, then against s₂, …); task l
    takes labels ``l·h+1 … (l+1)·h`` with ``h = ⌈vr·vs / p⌉``.  Like the
    §5.1 triangle form, every task needs all of R but only the S-slice
    its chunk touches — and R travels once via the distributed cache in
    the one-job implementation.
    """

    name = "bipartite-broadcast"

    def __init__(self, vr: int, vs: int, num_tasks: int):
        super().__init__(vr, vs)
        if num_tasks < 1:
            raise ValueError(f"num_tasks must be >= 1, got {num_tasks}")
        self._num_tasks = num_tasks
        self.chunk = ceil_div(vr * vs, num_tasks)

    @property
    def num_tasks(self) -> int:
        return self._num_tasks

    def task_labels(self, subset_id: int) -> range:
        self._check_subset(subset_id)
        total = self.vr * self.vs
        lo = subset_id * self.chunk + 1
        hi = min((subset_id + 1) * self.chunk, total)
        return range(lo, hi + 1)

    def label_to_pair(self, p: int) -> CrossPair:
        if not 1 <= p <= self.vr * self.vs:
            raise ValueError(f"label {p} out of range [1, {self.vr * self.vs}]")
        s_id = (p - 1) // self.vr + 1
        r_id = (p - 1) % self.vr + 1
        return (r_id, s_id)

    def get_pairs(self, subset_id: int) -> list[CrossPair]:
        return [self.label_to_pair(p) for p in self.task_labels(subset_id)]

    def get_subsets(self, side: str, element_id: int) -> list[int]:
        self._check_side(side, element_id)
        if side == "r":
            return list(range(self._num_tasks))  # R is broadcast
        # Side S: only tasks whose label chunk touches column element_id.
        first_label = (element_id - 1) * self.vr + 1
        last_label = element_id * self.vr
        first_task = (first_label - 1) // self.chunk
        last_task = min((last_label - 1) // self.chunk, self._num_tasks - 1)
        return list(range(first_task, last_task + 1))

    def subset_members(self, subset_id: int) -> list[SideId]:
        labels = self.task_labels(subset_id)
        members: list[SideId] = [("r", r) for r in range(1, self.vr + 1)]
        s_ids = sorted({(p - 1) // self.vr + 1 for p in labels})
        members.extend(("s", s) for s in s_ids)
        return members

    def metrics(self) -> BipartiteMetrics:
        p = self._num_tasks
        # Every S element is in ⌈its column span⌉ tasks ≈ 1 + vr/chunk.
        s_repl = sum(len(self.get_subsets("s", s)) for s in range(1, self.vs + 1)) / self.vs
        max_ws = max(len(self.subset_members(t)) for t in range(p))
        return BipartiteMetrics(
            scheme=self.name,
            vr=self.vr,
            vs=self.vs,
            num_tasks=p,
            communication_records=2 * (self.vr * p + int(round(s_repl * self.vs))),
            replication_r=float(p),
            replication_s=s_repl,
            working_set_elements=max_ws,
            evaluations_per_task=self.vr * self.vs / p,
        )


class BipartiteBlockScheme(BipartiteScheme):
    """Tile R × S with an ``h_r × h_s`` grid of rectangular blocks.

    Task ``(a, b)`` (0-indexed, id ``a·h_s + b``) pairs R-chunk ``a``
    against S-chunk ``b``: every R element appears in ``h_s`` tasks and
    every S element in ``h_r`` — the bipartite analogue of §5.2's
    "replication factor h".
    """

    name = "bipartite-block"

    def __init__(self, vr: int, vs: int, hr: int, hs: int):
        super().__init__(vr, vs)
        if not 1 <= hr <= vr:
            raise ValueError(f"hr must be in [1, {vr}], got {hr}")
        if not 1 <= hs <= vs:
            raise ValueError(f"hs must be in [1, {vs}], got {hs}")
        self.er = ceil_div(vr, hr)
        self.es = ceil_div(vs, hs)
        self.hr = ceil_div(vr, self.er)  # effective factors
        self.hs = ceil_div(vs, self.es)

    @property
    def num_tasks(self) -> int:
        return self.hr * self.hs

    def _chunk(self, side: str, index: int) -> list[int]:
        """1-indexed element ids of chunk ``index`` (0-indexed) on a side."""
        edge = self.er if side == "r" else self.es
        bound = self.vr if side == "r" else self.vs
        lo = index * edge + 1
        hi = min((index + 1) * edge, bound)
        return list(range(lo, hi + 1))

    def task_position(self, subset_id: int) -> tuple[int, int]:
        self._check_subset(subset_id)
        return divmod(subset_id, self.hs)

    def get_pairs(self, subset_id: int) -> list[CrossPair]:
        a, b = self.task_position(subset_id)
        return [(r, s) for r in self._chunk("r", a) for s in self._chunk("s", b)]

    def get_subsets(self, side: str, element_id: int) -> list[int]:
        self._check_side(side, element_id)
        if side == "r":
            a = (element_id - 1) // self.er
            return [a * self.hs + b for b in range(self.hs)]
        b = (element_id - 1) // self.es
        return [a * self.hs + b for a in range(self.hr)]

    def subset_members(self, subset_id: int) -> list[SideId]:
        a, b = self.task_position(subset_id)
        members: list[SideId] = [("r", r) for r in self._chunk("r", a)]
        members.extend(("s", s) for s in self._chunk("s", b))
        return members

    def metrics(self) -> BipartiteMetrics:
        return BipartiteMetrics(
            scheme=self.name,
            vr=self.vr,
            vs=self.vs,
            num_tasks=self.num_tasks,
            communication_records=2 * (self.vr * self.hs + self.vs * self.hr),
            replication_r=float(self.hs),
            replication_s=float(self.hr),
            working_set_elements=self.er + self.es,
            evaluations_per_task=float(self.er * self.es),
        )


# ---------------------------------------------------------------------------
# Validation and execution
# ---------------------------------------------------------------------------

def check_bipartite_exactly_once(scheme: BipartiteScheme) -> tuple[bool, str]:
    """Every (r, s) pair exactly once, locally servable, views consistent."""
    seen: dict[CrossPair, int] = {}
    for subset_id, members in scheme.iter_subsets():
        member_set = set(members)
        for r, s in scheme.get_pairs(subset_id):
            if ("r", r) not in member_set or ("s", s) not in member_set:
                return False, f"pair ({r}, {s}) not servable in task {subset_id}"
            seen[(r, s)] = seen.get((r, s), 0) + 1
    expected = scheme.total_pairs()
    if len(seen) != expected:
        return False, f"covered {len(seen)} pairs, expected {expected}"
    duplicates = [pair for pair, count in seen.items() if count != 1]
    if duplicates:
        return False, f"duplicated pairs: {duplicates[:5]}"
    # Map-side / reduce-side agreement.
    for side, bound in (("r", scheme.vr), ("s", scheme.vs)):
        for eid in range(1, bound + 1):
            for subset_id in scheme.get_subsets(side, eid):
                if (side, eid) not in set(scheme.subset_members(subset_id)):
                    return False, (
                        f"get_subsets({side}, {eid}) claims task {subset_id} "
                        "but subset_members disagrees"
                    )
    return True, "ok"


def run_bipartite(
    r_payloads: Sequence,
    s_payloads: Sequence,
    comp,
    scheme: BipartiteScheme,
) -> dict[CrossPair, object]:
    """Evaluate ``comp(r, s)`` on every cross pair under the scheme.

    In-process reference runner (the MR form reuses the standard engine
    with (side, id) keys; see tests).  Returns ``{(r_id, s_id): result}``.
    """
    if len(r_payloads) != scheme.vr or len(s_payloads) != scheme.vs:
        raise ValueError(
            f"payload sizes ({len(r_payloads)}, {len(s_payloads)}) do not "
            f"match scheme ({scheme.vr}, {scheme.vs})"
        )
    out: dict[CrossPair, object] = {}
    for subset_id in range(scheme.num_tasks):
        for r, s in scheme.get_pairs(subset_id):
            key = (r, s)
            if key in out:
                raise RuntimeError(f"pair {key} evaluated twice (scheme bug)")
            out[key] = comp(r_payloads[r - 1], s_payloads[s - 1])
    return out


def brute_force_bipartite(r_payloads: Sequence, s_payloads: Sequence, comp):
    """Oracle: the full rectangle, directly."""
    return {
        (r + 1, s + 1): comp(r_payloads[r], s_payloads[s])
        for r in range(len(r_payloads))
        for s in range(len(s_payloads))
    }
