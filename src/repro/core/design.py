"""The design distribution scheme (paper §5.3).

Working sets are the *lines of a projective plane*: a
``(q²+q+1, q+1, 1)``-design's defining property — every 2-element subset
lies in **exactly one** block — is precisely the exactly-once requirement
of §5's formal problem, with no index arithmetic needed at evaluation time.

Construction (paper Theorems 1–2):

1. pick the smallest prime ``q`` (optionally prime power) with
   ``q̂ = q² + q + 1 ≥ v``;
2. build the plane of order q — blocks of ``q+1`` points over ``1 … q̂``;
3. if ``v < q̂``, drop the non-existent points from every block and drop
   blocks left with < 2 points (the paper's "design-like" relaxation —
   a ≤1-point block induces no pairs).

Table-1 characteristics (using √v ≈ q+1): tasks ``q²+q+1 ≥ v`` (not
tunable — the scheme's weakness), communication ``≈ 2v√v`` records (capped
at ``2vn`` since a node needs each element at most once), replication
``≈ √v`` (its other weakness — see Fig. 8b), working set ``≈ √v`` elements
(its strength), ``≈ (v−1)/2`` evaluations per task.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..designs import plane_order_for, plane_size, projective_plane, truncate_design
from ..designs.difference_sets import singer_difference_set
from .scheme import DistributionScheme, Pair, SchemeMetrics


class DesignScheme(DistributionScheme):
    """Design scheme backed by a (possibly truncated) projective plane.

    Parameters
    ----------
    v:
        Dataset cardinality.
    allow_prime_powers:
        Search plane orders over prime *powers* instead of primes only.
        The paper restricts itself to primes (its Theorem-2 construction
        uses mod-q arithmetic); prime powers can reduce replication when v
        lands just above a prime-power plane (e.g. v = 21 → q = 4 vs 5)
        and are served by the GF(q) construction.
    prefer_lee:
        Use the paper's fast Lee-et-al construction when q is prime
        (otherwise the generic GF construction is used for primes too).
    num_nodes:
        Optional cluster size n; only used to cap the communication-cost
        metric at ``2vn`` as in Table 1 (a node stores each element once
        no matter how many of its tasks share it).
    """

    name = "design"

    def __init__(
        self,
        v: int,
        *,
        allow_prime_powers: bool = False,
        prefer_lee: bool = True,
        num_nodes: int | None = None,
    ):
        super().__init__(v)
        self.q = plane_order_for(v, allow_prime_powers=allow_prime_powers)
        self.plane_points = plane_size(self.q)
        self.num_nodes = num_nodes
        full_plane = projective_plane(self.q, prefer_lee=prefer_lee)
        self.blocks: list[list[int]] = [
            sorted(block) for block in truncate_design(full_plane, v, min_block=2)
        ]
        # point -> task-id index for get_subsets (O(v·(q+1)) memory).
        index: dict[int, list[int]] = {}
        for task_id, block in enumerate(self.blocks):
            for point in block:
                index.setdefault(point, []).append(task_id)
        self._subsets_of = index

    @property
    def num_tasks(self) -> int:
        return len(self.blocks)

    def get_subsets(self, element_id: int) -> list[int]:
        """Tasks whose plane line passes through the element's point."""
        self._check_element_id(element_id)
        # Every point of a projective plane lies on q+1 >= 3 lines; after
        # truncation some may have been dropped, but at least one survives
        # for v >= 2 ... unless the element pairs with nothing (v == 1,
        # excluded by the base class).
        return list(self._subsets_of.get(element_id, []))

    def get_pairs(self, subset_id: int, members: Sequence[int] | None = None) -> list[Pair]:
        """Full pair relation within the working set (paper §5.3's P_l).

        Uses the reducer-provided ``members`` when given (mirroring
        Algorithm 1's ``getPairs(D, [element])``), falling back to the
        scheme's own block definition; both must agree, and a mismatch
        raises rather than silently dropping pairs.
        """
        self._check_subset_id(subset_id)
        block = self.blocks[subset_id]
        if members is not None and len(members) > 0:
            if sorted(members) != block:
                raise ValueError(
                    f"task {subset_id} received members {sorted(members)} "
                    f"but the design block is {block}"
                )
        return [(block[a], block[b]) for a in range(len(block)) for b in range(a)]

    def subset_members(self, subset_id: int) -> list[int]:
        self._check_subset_id(subset_id)
        return list(self.blocks[subset_id])

    def task_profile(self, subset_id: int):
        from .scheme import TaskProfile

        self._check_subset_id(subset_id)
        k = len(self.blocks[subset_id])
        return TaskProfile(subset_id, k, k * (k - 1) // 2)

    def replication_of(self, element_id: int) -> int:
        """Exact number of working sets containing the element."""
        return len(self.get_subsets(element_id))

    def metrics(self) -> SchemeMetrics:
        """Exact Table-1 row measured on the constructed structure.

        The paper reports the √v approximations; we report the exact values
        of the concrete truncated plane (mean replication, max block size,
        mean pairs per task) so theory-vs-measured comparisons are sharp.
        The ``2vn`` cap on communication applies when ``num_nodes`` is set.
        """
        total_membership = sum(len(block) for block in self.blocks)
        total_pairs = sum(
            len(block) * (len(block) - 1) // 2 for block in self.blocks
        )
        comm = 2 * total_membership
        if self.num_nodes is not None:
            comm = min(comm, 2 * self.v * self.num_nodes)
        return SchemeMetrics(
            scheme=self.name,
            v=self.v,
            num_tasks=self.num_tasks,
            communication_records=comm,
            replication_factor=total_membership / self.v,
            working_set_elements=max(len(block) for block in self.blocks),
            evaluations_per_task=total_pairs / self.num_tasks,
        )

    @staticmethod
    def approx_metrics(v: int, num_nodes: int | None = None) -> SchemeMetrics:
        """The paper's √v-approximation Table-1 row (for comparison)."""
        sqrt_v = math.sqrt(v)
        comm = 2 * v * sqrt_v
        if num_nodes is not None:
            comm = min(comm, 2 * v * num_nodes)
        return SchemeMetrics(
            scheme="design(approx)",
            v=v,
            num_tasks=v,
            communication_records=int(comm),
            replication_factor=sqrt_v,
            working_set_elements=int(math.ceil(sqrt_v)),
            evaluations_per_task=(v - 1) / 2,
        )

    def describe(self) -> str:
        return (
            f"design(v={self.v}, q={self.q}, plane={self.plane_points}, "
            f"tasks={self.num_tasks})"
        )


class CyclicDesignScheme(DistributionScheme):
    """Design scheme from a Singer difference set — O(√v) memory.

    :class:`DesignScheme` stores every block: O(v·√v) driver memory, the
    very quantity the scheme's *replication* already makes expensive.
    The Singer-cycle representation needs only the q+1 residues of a
    perfect difference set D mod q̂ = q²+q+1:

    - block t's points are ``(t + d) mod q̂`` (0-indexed), d ∈ D;
    - point p's blocks are ``(p − d) mod q̂``, d ∈ D;

    both answered in O(q) with no stored incidence structure — the same
    closed-form flavour the broadcast/block schemes enjoy.  Truncation
    to v < q̂ filters points on the fly; blocks left with < 2 points
    keep their task id but become empty (no members, no pairs), so task
    addressing stays O(1).

    The Singer construction exists for every prime-power order, so this
    scheme defaults to ``allow_prime_powers=True`` (strictly smaller
    planes than the prime-only search whenever a prime power fits).
    """

    name = "design-cyclic"

    def __init__(self, v: int, *, allow_prime_powers: bool = True):
        super().__init__(v)
        self.q = plane_order_for(v, allow_prime_powers=allow_prime_powers)
        self.q_hat = plane_size(self.q)
        self.difference_set = singer_difference_set(self.q)

    @property
    def num_tasks(self) -> int:
        return self.q_hat

    # -- O(q) incidence answers ------------------------------------------------
    def _block_points(self, task: int) -> list[int]:
        """Surviving 1-indexed points of block ``task`` after truncation."""
        points = [
            (task + d) % self.q_hat + 1
            for d in self.difference_set
            if (task + d) % self.q_hat < self.v
        ]
        return sorted(points)

    def subset_members(self, subset_id: int) -> list[int]:
        self._check_subset_id(subset_id)
        points = self._block_points(subset_id)
        return points if len(points) >= 2 else []

    def get_subsets(self, element_id: int) -> list[int]:
        self._check_element_id(element_id)
        point = element_id - 1
        tasks = []
        for d in self.difference_set:
            task = (point - d) % self.q_hat
            # Only join blocks that survive truncation with >= 2 points —
            # a singleton block induces no pairs (paper §5.3's dropping).
            if len(self._block_points(task)) >= 2:
                tasks.append(task)
        return sorted(tasks)

    def get_pairs(self, subset_id: int, members: Sequence[int] | None = None) -> list[Pair]:
        self._check_subset_id(subset_id)
        block = self.subset_members(subset_id)
        if members is not None and len(members) > 0 and sorted(members) != block:
            raise ValueError(
                f"task {subset_id} received members {sorted(members)} "
                f"but the cyclic block is {block}"
            )
        return [(block[a], block[b]) for a in range(len(block)) for b in range(a)]

    def task_profile(self, subset_id: int):
        from .scheme import TaskProfile

        self._check_subset_id(subset_id)
        k = len(self.subset_members(subset_id))
        return TaskProfile(subset_id, k, k * (k - 1) // 2)

    def metrics(self) -> SchemeMetrics:
        """Exact Table-1 row, computed from the cyclic structure.

        O(q̂ · q) time, O(1) extra memory — no block list materialized.
        """
        total_membership = 0
        total_pairs = 0
        max_ws = 0
        active_tasks = 0
        for task in range(self.q_hat):
            k = len(self.subset_members(task))
            if k:
                active_tasks += 1
            total_membership += k
            total_pairs += k * (k - 1) // 2
            max_ws = max(max_ws, k)
        return SchemeMetrics(
            scheme=self.name,
            v=self.v,
            num_tasks=self.q_hat,
            communication_records=2 * total_membership,
            replication_factor=total_membership / self.v,
            working_set_elements=max_ws,
            evaluations_per_task=total_pairs / max(1, active_tasks),
        )

    def describe(self) -> str:
        return (
            f"design-cyclic(v={self.v}, q={self.q}, plane={self.q_hat}, "
            f"|D|={len(self.difference_set)})"
        )
