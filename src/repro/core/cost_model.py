"""Closed-form cost model: Table 1 and the feasibility analysis of Figs 8–9.

The paper's evaluation (§6) is driven by two environment limits:

- ``maxws`` — main memory available to one task (as little as 200 MB on the
  2010 AWS/Google-IBM clouds once VMs and mapper/reducer slots share a
  machine), which bounds the *working set*, and
- ``maxis`` — storage available for materialized intermediate data, which
  bounds ``replication × dataset size``.

This module encodes each scheme's Table-1 row symbolically and derives the
exact curves of:

- **Fig 8a** — max v before the *broadcast* working set (the full dataset)
  hits maxws:  ``v ≤ maxws / s``;
- **Fig 8b** — max v before the *design* scheme's intermediate data
  (``v·s·√v``) hits maxis:  ``v ≤ (maxis / s)^(2/3)``;
- **Fig 9a** — the valid range of the *block* factor h:
  ``2vs/maxws ≤ h ≤ maxis/(vs)``, non-empty iff
  ``vs ≤ sqrt(maxws · maxis / 2)``;
- **Fig 9b** — max v for all three schemes at maxws = 200 MB, maxis = 1 TB.
  Following the paper's chart, the design curve there uses the maxis limit
  only; :func:`max_v_design` can additionally apply the (stricter, but not
  plotted) ``√v·s ≤ maxws`` working-set limit.

All sizes are bytes (decimal units, matching the paper's arithmetic).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._util import GB, MB, TB, ceil_div, triangle_count
from .scheme import SchemeMetrics, replication_lower_bound

# re-exported here because the bound is part of the cost model's public
# surface (quorum_row and the replication meter both quote it), while the
# definition lives in scheme.py to avoid a scheme -> cost_model cycle.
_ = replication_lower_bound

#: the fixed limits of the paper's Fig 9b comparison
PAPER_MAXWS = 200 * MB
PAPER_MAXIS = 1 * TB


# ---------------------------------------------------------------------------
# Table 1: closed-form rows (element/record units, as printed in the paper)
# ---------------------------------------------------------------------------

def broadcast_row(v: int, p: int) -> SchemeMetrics:
    """Broadcast column of Table 1 for v elements and p tasks."""
    if v < 2 or p < 1:
        raise ValueError(f"need v >= 2 and p >= 1, got v={v}, p={p}")
    return SchemeMetrics(
        scheme="broadcast",
        v=v,
        num_tasks=p,
        communication_records=2 * v * p,
        replication_factor=float(p),
        working_set_elements=v,
        evaluations_per_task=triangle_count(v) / p,
    )


def block_row(v: int, h: int) -> SchemeMetrics:
    """Block column of Table 1 for v elements and blocking factor h."""
    if v < 2 or h < 1:
        raise ValueError(f"need v >= 2 and h >= 1, got v={v}, h={h}")
    e = ceil_div(v, h)
    return SchemeMetrics(
        scheme="block",
        v=v,
        num_tasks=h * (h + 1) // 2,
        communication_records=2 * v * h,
        replication_factor=float(h),
        working_set_elements=2 * e,
        evaluations_per_task=float(e * e),
    )


def design_row(
    v: int,
    num_nodes: int | None = None,
    *,
    padded: bool = True,
) -> SchemeMetrics:
    """Design column of Table 1.

    By default this reports the replication the implementation actually
    pays: v is padded up to the next prime plane ``q² + q + 1 ≥ v`` and
    every element is replicated ``q + 1`` times — e.g. v = 10 000 pads to
    q = 101, replication 102, not the unpadded ``√v = 100``.  Pass
    ``padded=False`` for the paper's symbolic ``√v`` approximations (used
    by the Table-1/Fig-9 reproductions, which plot the paper's formulas).

    ``num_nodes`` applies the ``2vn`` cap on communication the paper notes
    ("sending to all nodes" is the ceiling since √v > n is likely).
    """
    if v < 2:
        raise ValueError(f"need v >= 2, got v={v}")
    if padded:
        from ..designs.primes import plane_order_for, plane_size

        q = plane_order_for(v)
        replication: float = float(q + 1)
        working_set = q + 1
        num_tasks = plane_size(q)
    else:
        sqrt_v = math.sqrt(v)
        replication = sqrt_v
        working_set = int(math.ceil(sqrt_v))
        num_tasks = v  # ≈ q²+q+1 ≥ v
    comm = 2 * v * replication
    if num_nodes is not None:
        comm = min(comm, 2 * v * num_nodes)
    return SchemeMetrics(
        scheme="design",
        v=v,
        num_tasks=num_tasks,
        communication_records=int(round(comm)),
        replication_factor=replication,
        working_set_elements=working_set,
        evaluations_per_task=triangle_count(v) / num_tasks,
    )


def quorum_row(
    v: int,
    cover_size: int | None = None,
    num_nodes: int | None = None,
) -> SchemeMetrics:
    """Quorum row: v tasks, replication = |D| for the cached cover of Z_v.

    ``cover_size`` overrides the |D| lookup (for symbolic what-if rows
    without constructing a cover); ``num_nodes`` applies the same ``2vn``
    communication cap as :func:`design_row`.
    """
    if v < 2:
        raise ValueError(f"need v >= 2, got v={v}")
    if cover_size is None:
        from ..designs.difference_covers import difference_cover

        cover_size = difference_cover(v).size
    if cover_size < 2:
        raise ValueError(f"cover size must be >= 2, got {cover_size}")
    comm = 2 * v * cover_size
    if num_nodes is not None:
        comm = min(comm, 2 * v * num_nodes)
    return SchemeMetrics(
        scheme="quorum",
        v=v,
        num_tasks=v,
        communication_records=comm,
        replication_factor=float(cover_size),
        working_set_elements=cover_size,
        evaluations_per_task=(v - 1) / 2,
    )


def table1(v: int, p: int, h: int, num_nodes: int | None = None) -> list[SchemeMetrics]:
    """All three Table-1 rows side by side for one parameterization.

    Table 1 reproduces the paper's symbolic formulas, so the design row
    stays in its unpadded ``√v`` form here.
    """
    return [broadcast_row(v, p), block_row(v, h), design_row(v, num_nodes, padded=False)]


# ---------------------------------------------------------------------------
# Fig 8a / 8b: per-scheme dataset-size limits
# ---------------------------------------------------------------------------

def max_v_broadcast(element_size: int, maxws: int) -> int:
    """Fig 8a: largest v the broadcast scheme fits in ``maxws`` memory.

    The working set is the whole dataset: ``v · s ≤ maxws``.
    """
    _check_sizes(element_size, maxws)
    return maxws // element_size


def max_v_design_storage(element_size: int, maxis: int) -> int:
    """Fig 8b: largest v before design intermediate data exceeds ``maxis``.

    Intermediate data ≈ ``v · s · √v`` (replication √v), so
    ``v ≤ (maxis / s)^(2/3)`` — computed in exact integer arithmetic as
    ``v³ · s² ≤ maxis²`` to avoid float round-off at the decade boundaries.
    """
    from ..designs.primes import integer_nth_root

    _check_sizes(element_size, maxis)
    return integer_nth_root(maxis * maxis // (element_size * element_size), 3)


def max_v_design_memory(element_size: int, maxws: int) -> int:
    """Design working-set limit: ``√v · s ≤ maxws`` ⇒ ``v ≤ (maxws/s)²``.

    Not plotted in the paper's Fig 9b but implied by Table 1; exposed for
    the stricter comparison variant.  Exact integer arithmetic:
    ``v · s² ≤ maxws²``.
    """
    _check_sizes(element_size, maxws)
    return maxws * maxws // (element_size * element_size)


def max_v_design(
    element_size: int,
    maxis: int,
    maxws: int | None = None,
) -> int:
    """Design-scheme limit; applies the memory bound only when maxws given."""
    limit = max_v_design_storage(element_size, maxis)
    if maxws is not None:
        limit = min(limit, max_v_design_memory(element_size, maxws))
    return limit


# ---------------------------------------------------------------------------
# Fig 9a: block-scheme blocking-factor bounds
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BlockFactorRange:
    """Valid blocking-factor interval for one dataset size (Fig 9a)."""

    dataset_bytes: int
    h_min: int  #: lower bound from maxws: h ≥ 2·vs/maxws
    h_max: int  #: upper bound from maxis: h ≤ maxis/vs

    @property
    def feasible(self) -> bool:
        return self.h_min <= self.h_max


def block_h_bounds(dataset_bytes: int, maxws: int, maxis: int) -> BlockFactorRange:
    """Fig 9a: the interval ``2vs/maxws ≤ h ≤ maxis/vs``.

    ``dataset_bytes`` is the paper's ``vs`` (cardinality × element size).
    The working-set bound requires ``2vs/h ≤ maxws`` and the storage bound
    ``vs·h ≤ maxis``.  h must also be at least 1.
    """
    _check_sizes(dataset_bytes, maxws)
    _check_sizes(dataset_bytes, maxis)
    h_min = max(1, ceil_div(2 * dataset_bytes, maxws))
    h_max = maxis // dataset_bytes
    return BlockFactorRange(dataset_bytes=dataset_bytes, h_min=h_min, h_max=h_max)


def max_dataset_bytes_block(maxws: int, maxis: int) -> int:
    """Fig 9a's intersection: largest vs with a non-empty h range.

    A valid h exists iff ``vs ≤ sqrt(maxws · maxis / 2)``.
    """
    _check_sizes(maxws, maxis)
    return math.isqrt(maxws * maxis // 2)


def max_v_block(element_size: int, maxws: int, maxis: int) -> int:
    """Fig 9b's block curve: ``v ≤ sqrt(maxws·maxis/2) / s``."""
    _check_sizes(element_size, maxws)
    return max_dataset_bytes_block(maxws, maxis) // element_size


# ---------------------------------------------------------------------------
# Fig 9b: the three curves on one chart
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig9bPoint:
    """One x-position of Fig 9b: max v per scheme at one element size."""

    element_size: int
    broadcast: int
    block: int
    design: int
    #: design limit with the (unplotted) working-set bound also applied
    design_strict: int


def fig9b_curves(
    element_sizes: list[int],
    maxws: int = PAPER_MAXWS,
    maxis: int = PAPER_MAXIS,
) -> list[Fig9bPoint]:
    """Evaluate all Fig 9b curves at the given element sizes."""
    points = []
    for s in element_sizes:
        points.append(
            Fig9bPoint(
                element_size=s,
                broadcast=max_v_broadcast(s, maxws),
                block=max_v_block(s, maxws, maxis),
                design=max_v_design_storage(s, maxis),
                design_strict=max_v_design(s, maxis, maxws),
            )
        )
    return points


def design_block_crossover(
    maxws: int = PAPER_MAXWS,
    maxis: int = PAPER_MAXIS,
) -> float:
    """Element size where the design and block curves of Fig 9b cross.

    Setting ``sqrt(maxws·maxis/2)/s = (maxis/s)^(2/3)`` gives
    ``s = (maxws/2)^3 / maxis ** ... `` — solved directly below.  With the
    paper's limits (200 MB, 1 TB) this lands at 1 MB, matching its
    observation that "for large elements (> 1 MB) the design approach
    allows a few more elements".
    """
    c_block = math.sqrt(maxws * maxis / 2)
    # c_block / s = maxis^(2/3) / s^(2/3)  =>  s^(1/3) = c_block / maxis^(2/3)
    return (c_block / maxis ** (2.0 / 3.0)) ** 3


def log_spaced_sizes(lo: int, hi: int, per_decade: int = 4) -> list[int]:
    """Logarithmically spaced element sizes for the Fig 8/9 sweeps."""
    if lo <= 0 or hi < lo:
        raise ValueError(f"need 0 < lo <= hi, got lo={lo}, hi={hi}")
    decades = math.log10(hi / lo)
    count = max(2, int(round(decades * per_decade)) + 1)
    ratio = (hi / lo) ** (1.0 / (count - 1))
    sizes = sorted({int(round(lo * ratio**k)) for k in range(count)})
    return sizes


def _check_sizes(*values: int) -> None:
    for value in values:
        if value <= 0:
            raise ValueError(f"sizes must be positive, got {value}")
