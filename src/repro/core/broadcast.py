"""The broadcast distribution scheme (paper §5.1).

Intended for *moderate datasets with expensive functions*: every working
set is the whole dataset (``D_1 = … = D_p = S``), so each of the ``p``
tasks holds all ``v`` elements in memory.  Balance comes from the pair
relation: the strict upper triangle is enumerated (Fig. 5) and task ``l``
(1-indexed) evaluates the contiguous label chunk

    (l − 1)·h + 1  …  min(l·h, T),      h = ⌈T / p⌉,  T = v(v−1)/2.

Table-1 characteristics: tasks ``p`` (arbitrary — the scheme's strength),
communication ``2vp`` records, replication ``p``, working set ``v``
elements (its weakness — see Fig. 8a), ``≈ T/p`` evaluations per task.

Because the working sets are trivial, Hadoop's *distributed cache* can ship
the dataset instead of the shuffle, collapsing the two MR jobs into one
(see :mod:`repro.core.pairwise`'s broadcast fast path).
"""

from __future__ import annotations

from typing import Sequence

from .._util import ceil_div, triangle_count
from .scheme import DistributionScheme, Pair, SchemeMetrics
from .triangle import elements_in_labels, labels_for_task, pairs_in_labels


class BroadcastScheme(DistributionScheme):
    """Broadcast scheme: full replication, label-range pair partitioning.

    Parameters
    ----------
    v:
        Dataset cardinality.
    num_tasks:
        Degree of parallelism ``p``; any positive integer (typically the
        node count).  Tasks beyond the number of pairs receive empty ranges.
    """

    name = "broadcast"

    def __init__(self, v: int, num_tasks: int):
        super().__init__(v)
        if num_tasks < 1:
            raise ValueError(f"num_tasks must be >= 1, got {num_tasks}")
        self._num_tasks = num_tasks
        self._total_pairs = triangle_count(v)
        #: pairs per task, the paper's h = ⌈v(v−1)/2p⌉
        self.chunk = ceil_div(self._total_pairs, num_tasks) if v >= 2 else 0

    @property
    def num_tasks(self) -> int:
        return self._num_tasks

    def get_subsets(self, element_id: int) -> list[int]:
        """Every element joins every working set (D_l = S for all l)."""
        self._check_element_id(element_id)
        return list(range(self._num_tasks))

    def get_pairs(self, subset_id: int, members: Sequence[int] = ()) -> list[Pair]:
        """The label chunk of task ``subset_id``; ``members`` is ignored.

        The pair relation depends only on (v, p, subset_id) — the reducer
        holds the full dataset anyway, so there is nothing to look up in
        ``members``.
        """
        self._check_subset_id(subset_id)
        return list(pairs_in_labels(self.task_labels(subset_id)))

    def task_labels(self, subset_id: int) -> range:
        """Contiguous label range (Fig. 5 enumeration) of one task."""
        self._check_subset_id(subset_id)
        return labels_for_task(subset_id, self._num_tasks, self.v)

    def effective_working_set(self, subset_id: int) -> set[int]:
        """Element ids a task actually touches.

        The scheme *ships* all v elements to every task; this reports the
        subset the task's pair chunk really reads, quantifying the waste
        that motivates the block scheme.
        """
        return elements_in_labels(self.task_labels(subset_id))

    def subset_members(self, subset_id: int) -> list[int]:
        self._check_subset_id(subset_id)
        return list(range(1, self.v + 1))

    def task_profile(self, subset_id: int):
        from .scheme import TaskProfile

        return TaskProfile(
            subset_id=subset_id,
            num_members=self.v,
            num_evaluations=len(self.task_labels(subset_id)),
        )

    def metrics(self) -> SchemeMetrics:
        p = self._num_tasks
        return SchemeMetrics(
            scheme=self.name,
            v=self.v,
            num_tasks=p,
            communication_records=2 * self.v * p,
            replication_factor=float(p),
            working_set_elements=self.v,
            evaluations_per_task=self._total_pairs / p,
        )

    def describe(self) -> str:
        return (
            f"broadcast(v={self.v}, tasks={self._num_tasks}, "
            f"pairs/task<={self.chunk})"
        )
