"""Shared small utilities and unit constants.

The paper (Kiefer et al., HPDC 2010) does all of its capacity arithmetic in
decimal units ("a dataset of 10,000 elements, 500KB each ... 5GB"), so the
constants here are decimal (powers of ten), not binary.  Binary variants are
provided with the conventional ``i`` infix for callers that want them.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")

#: Decimal size units, as used throughout the paper's arithmetic.
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

#: Binary size units for callers that prefer them.
KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30
TIB = 1 << 40


def ceil_div(a: int, b: int) -> int:
    """Exact integer ceiling of ``a / b`` for non-negative ``a``, positive ``b``.

    Used pervasively for the paper's ``⌈·⌉`` expressions (e.g. the block edge
    length ``e = ⌈v/h⌉`` and the broadcast chunk ``h = ⌈T/p⌉``).
    """
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    if a < 0:
        raise ValueError(f"dividend must be non-negative, got {a}")
    return -(-a // b)


def triangle_count(v: int) -> int:
    """Number of unordered pairs over ``v`` elements: ``v(v-1)/2``."""
    if v < 0:
        raise ValueError(f"v must be non-negative, got {v}")
    return v * (v - 1) // 2


def isqrt_ceil(x: int) -> int:
    """Smallest integer ``r`` with ``r*r >= x`` (x non-negative)."""
    if x < 0:
        raise ValueError(f"x must be non-negative, got {x}")
    r = math.isqrt(x)
    return r if r * r == x else r + 1


def chunked(seq: Sequence[T], size: int) -> Iterator[Sequence[T]]:
    """Yield contiguous chunks of ``seq`` of length ``size`` (last may be short)."""
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    for start in range(0, len(seq), size):
        yield seq[start : start + size]


def format_bytes(n: float) -> str:
    """Human-readable decimal byte count (``1.5MB`` style), for reports."""
    if n < 0:
        return "-" + format_bytes(-n)
    for unit, name in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if n >= unit:
            return f"{n / unit:.4g}{name}"
    return f"{n:.4g}B"


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on an empty iterable."""
    vals = list(values)
    if not vals:
        raise ValueError("mean of empty sequence")
    return sum(vals) / len(vals)


def stdev(values: Iterable[float]) -> float:
    """Population standard deviation; 0.0 for singleton input."""
    vals = list(values)
    if not vals:
        raise ValueError("stdev of empty sequence")
    mu = sum(vals) / len(vals)
    return math.sqrt(sum((x - mu) ** 2 for x in vals) / len(vals))
