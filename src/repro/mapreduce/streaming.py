"""Hadoop-Streaming-style jobs: mappers/reducers as external commands.

Hadoop Streaming lets any executable act as a mapper or reducer via a
line protocol — ``key \\t value`` on stdin and stdout, the reduce side
receiving lines grouped (sorted) by key.  The paper's era made heavy use
of it for non-Java pairwise functions, so the substrate supports it:

- :class:`StreamingMapper` / :class:`StreamingReducer` wrap a command
  line and speak the tab-separated protocol through a subprocess;
- keys and values cross the boundary as strings (the streaming
  contract); helpers encode/decode JSON payloads where structure is
  needed;
- a non-zero exit status or malformed output line fails the task (and
  therefore triggers the engine's retry machinery).

The wrappers are ordinary :class:`~repro.mapreduce.job.Mapper` /
``Reducer`` subclasses, so streaming stages chain freely with native
Python stages in one pipeline.
"""

from __future__ import annotations

import subprocess
from typing import Any, Iterator, Sequence

from .job import Context, Mapper, Reducer


class StreamingProtocolError(RuntimeError):
    """The external command misbehaved (exit status or malformed line)."""


def _run_command(
    command: Sequence[str], lines: list[str], *, timeout: float
) -> list[str]:
    """Feed lines to a subprocess; return its stdout lines.

    A subprocess that outlives ``timeout`` is killed and surfaces as a
    :class:`StreamingProtocolError` — an ordinary task failure, so the
    engine's retry/backoff machinery treats a hung external command like
    any other failed attempt instead of leaking the raw
    ``subprocess.TimeoutExpired``.
    """
    try:
        process = subprocess.run(
            list(command),
            input="".join(line + "\n" for line in lines),
            capture_output=True,
            text=True,
            timeout=timeout,
        )
    except subprocess.TimeoutExpired as exc:
        raise StreamingProtocolError(
            f"command {command!r} exceeded its {timeout:g}s timeout"
        ) from exc
    if process.returncode != 0:
        raise StreamingProtocolError(
            f"command {command!r} exited {process.returncode}: "
            f"{process.stderr.strip()[:500]}"
        )
    return [line for line in process.stdout.splitlines() if line]


def _parse_line(line: str) -> tuple[str, str]:
    """Split one protocol line into (key, value); value may be empty."""
    if "\t" in line:
        key, value = line.split("\t", 1)
        return key, value
    return line, ""


def format_record(key: Any, value: Any) -> str:
    """Encode one record for the wire: ``str(key) \\t str(value)``."""
    key_text = str(key)
    value_text = str(value)
    if "\t" in key_text or "\n" in key_text:
        raise StreamingProtocolError(f"key {key_text!r} contains protocol characters")
    if "\n" in value_text:
        raise StreamingProtocolError(f"value {value_text!r} contains a newline")
    return f"{key_text}\t{value_text}"


class StreamingMapper(Mapper):
    """Run an external command over the task's records, emit its output.

    The command is read from ``config['stream.mapper']`` (a list of argv
    strings); all of a task's input records are fed in one subprocess
    invocation — the per-task granularity Hadoop Streaming uses.
    ``config['stream.timeout_seconds']`` overrides the class-level
    subprocess timeout per job.
    """

    #: seconds before the subprocess is killed
    timeout: float = 60.0

    def setup(self, context: Context) -> None:
        self._pending: list[str] = []

    def map(self, key: Any, value: Any, context: Context) -> None:
        self._pending.append(format_record(key, value))

    def cleanup(self, context: Context) -> None:
        command = context.config["stream.mapper"]
        timeout = context.config.get("stream.timeout_seconds", self.timeout)
        for line in _run_command(command, self._pending, timeout=timeout):
            out_key, out_value = _parse_line(line)
            context.emit(out_key, out_value)
        context.counters.increment("streaming", "mapper_lines_in", len(self._pending))


class StreamingReducer(Reducer):
    """Run an external command over the task's sorted, grouped records.

    Like Hadoop Streaming, the command sees one line per (key, value)
    with equal keys adjacent; it is responsible for detecting group
    boundaries itself.  Command from ``config['stream.reducer']``;
    ``config['stream.timeout_seconds']`` overrides the subprocess timeout.
    """

    timeout: float = 60.0

    def setup(self, context: Context) -> None:
        self._pending: list[str] = []

    def reduce(self, key: Any, values: Iterator[Any], context: Context) -> None:
        for value in values:
            self._pending.append(format_record(key, value))

    def cleanup(self, context: Context) -> None:
        command = context.config["stream.reducer"]
        timeout = context.config.get("stream.timeout_seconds", self.timeout)
        for line in _run_command(command, self._pending, timeout=timeout):
            out_key, out_value = _parse_line(line)
            context.emit(out_key, out_value)
        context.counters.increment("streaming", "reducer_lines_in", len(self._pending))


#: ready-made python one-liners usable as streaming commands in tests/demos
IDENTITY_COMMAND = ("cat",)


def python_command(code: str) -> tuple[str, ...]:
    """argv for a python one-liner streaming stage.

    The snippet sees ``sys.stdin`` and writes ``key\\tvalue`` lines to
    stdout; ``sys`` is pre-imported::

        python_command(
            "for line in sys.stdin:\\n"
            "    k, v = line.rstrip('\\\\n').split('\\\\t')\\n"
            "    print(f'{k}\\\\t{int(v) * 2}')"
        )
    """
    import sys

    return (sys.executable, "-c", "import sys\n" + code)
