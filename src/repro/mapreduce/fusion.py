"""Fused job chaining: the reduce→map short-circuit for direct shuffles.

When stage i's reduce feeds a stage i+1 whose map phase is
identity-shaped (:func:`fusable`), stage i's reduce tasks partition
their output with stage i+1's partitioner and write its spill files
directly — stage i+1 starts from disk, its identity map phase is elided,
and stage i's records never reach the driver (its
:class:`~repro.mapreduce.job.JobResult` has ``records_elided=True`` and
an empty record list).  The elided map's data-plane counters (map
input/output records and bytes, shuffle volume) are synthesized from the
manifest sums and equal the unfused values exactly; only attempt
bookkeeping (``task_attempts``) differs, since no map attempts run.

The driver-side half lives here; the worker-side half (partition + spill
at source, triggered by ``ReduceTaskSpec.next_stage``) is in
:mod:`repro.mapreduce.tasks`.  The entry point
:func:`run_fused_chain` is engine-parameterized — it drives the pooled
engine's phase machinery (``_map_phase``/``_reduce_phase``/job
broadcast hooks) without importing :mod:`repro.mapreduce.runtime`.
"""

from __future__ import annotations

import pickle
import time
from typing import Any, Sequence

from .controlplane import BytesMoved, SpillWritten
from .counters import (
    FRAMEWORK_GROUP,
    MAP_INPUT_RECORDS,
    MAP_OUTPUT_BYTES,
    MAP_OUTPUT_RECORDS,
    SHUFFLE_BYTES,
    SHUFFLE_RECORDS,
    Counters,
)
from .job import Job, JobResult, KeyValue, Mapper, TaskFailedError
from .stats import ShuffleState
from .tasks import JobRef, NextStage


def fusable(prev: Job, nxt: Job) -> bool:
    """True when ``nxt``'s map phase can be elided at ``prev``'s reducers.

    Safe exactly when the next job's map phase is a pure identity
    reshuffle: the default :class:`~repro.mapreduce.job.Mapper` map
    (no subclass override, no setup/cleanup hooks) and no combiner —
    then partitioning the upstream reduce output at source is
    observationally identical to running the map tasks.  Either job
    can opt out with ``config["pipeline_fusion"]=False``.  A fault
    plan that could target the next job's (elided) map attempts also
    blocks fusion, so injected-fault runs stay bit-identical.
    """
    if prev.reducer is None or nxt.reducer is None or nxt.num_reducers < 1:
        return False
    if nxt.combiner is not None:
        return False
    if not prev.config.get("pipeline_fusion", True):
        return False
    if not nxt.config.get("pipeline_fusion", True):
        return False
    mapper = nxt.mapper
    if not (
        isinstance(mapper, type)
        and issubclass(mapper, Mapper)
        and mapper.map is Mapper.map
        and mapper.setup is Mapper.setup
        and mapper.cleanup is Mapper.cleanup
    ):
        return False
    plan = nxt.config.get("fault_plan")
    if plan is not None:
        if any(
            getattr(plan, rate, 0.0)
            for rate in (
                "crash_rate",
                "slow_rate",
                "kill_rate",
                "corrupt_rate",
                "truncate_rate",
            )
        ):
            return False
        if any(
            fault.task_kind in (None, "map")
            for fault in getattr(plan, "faults", ())
        ):
            return False
    return True


def gather_fused(
    engine: Any,
    reduce_outputs: list[Any],
    num_partitions: int,
    counters: Counters,
) -> ShuffleState:
    """Fold fused reduce manifests into the next stage's shuffle state."""
    gathered: list[list] = [[] for _ in range(num_partitions)]
    part_records = [0] * num_partitions
    part_bytes = [0] * num_partitions
    observing = engine._observing
    for task, (fused, counter_dict, info) in enumerate(reduce_outputs):
        counters.merge(Counters.from_dict(counter_dict))
        engine._note_worker(info)
        manifest_bytes = len(
            pickle.dumps(fused.entries, protocol=pickle.HIGHEST_PROTOCOL)
        )
        engine.stats.driver_bytes += manifest_bytes
        if observing:
            engine._emit(
                BytesMoved(
                    time=time.monotonic(),
                    channel="fused_manifest",
                    num_bytes=manifest_bytes,
                )
            )
        for partition, entry in enumerate(fused.entries):
            if entry is not None:
                gathered[partition].append(entry)
                engine.stats.spill_files_written += 1
                engine.stats.spill_bytes_written += entry[1]
                if observing:
                    engine._emit(
                        SpillWritten(
                            time=time.monotonic(),
                            kind="fuse",
                            task_index=task,
                            partition=partition,
                            num_bytes=entry[1],
                        )
                    )
            part_records[partition] += fused.counts[partition]
            part_bytes[partition] += fused.sizes[partition]
    return ShuffleState(
        mode="direct",
        gathered=gathered,
        part_records=part_records,
        part_bytes=part_bytes,
    )


def run_fused_chain(
    engine: Any,
    jobs: Sequence[Job],
    input_records: Sequence[KeyValue],
    *,
    num_map_tasks: int | None = None,
) -> list[JobResult]:
    """Run a job chain on ``engine``, fusing adjacent stages where safe.

    The caller has already established the preconditions (direct shuffle
    plane, ≥ 2 jobs, fusion not disabled); each adjacent pair is still
    checked with :func:`fusable` and falls back to a plain staged run
    when the pair doesn't qualify.
    """
    jobs = list(jobs)
    results: list[JobResult] = []
    records: Sequence[KeyValue] = input_records
    handles: dict[int, JobRef] = {}

    def handle_for(index: int) -> JobRef:
        if index not in handles:
            handles[index] = engine._job_handle(jobs[index])
        return handles[index]

    pending: ShuffleState | None = None  # spilled at source by stage i-1
    try:
        for index, job in enumerate(jobs):
            try:
                handle = handle_for(index)
                num_partitions = job.num_reducers if job.reducer is not None else 0
                counters = Counters()
                num_splits = 0
                if pending is not None:
                    # Fused-in stage: its shuffle input is already on
                    # disk.  Synthesize the elided identity map's
                    # data-plane counters from the manifest sums so
                    # fused and unfused runs report identical volumes.
                    state = pending
                    pending = None
                    fed_records = sum(state.part_records)
                    fed_bytes = sum(state.part_bytes)
                    counters.increment(
                        FRAMEWORK_GROUP, MAP_INPUT_RECORDS, fed_records
                    )
                    counters.increment(
                        FRAMEWORK_GROUP, MAP_OUTPUT_RECORDS, fed_records
                    )
                    counters.increment(FRAMEWORK_GROUP, MAP_OUTPUT_BYTES, fed_bytes)
                else:
                    splits = engine._plan_splits(job, records, num_map_tasks)
                    num_splits = len(splits)
                    state = engine._map_phase(
                        job, handle, splits, num_partitions, counters
                    )
                if job.reducer is None:
                    records = [r for part in state.gathered for r in part]
                    results.append(JobResult(records, counters, num_splits, 0))
                    continue
                counters.increment(
                    FRAMEWORK_GROUP, SHUFFLE_RECORDS, sum(state.part_records)
                )
                counters.increment(
                    FRAMEWORK_GROUP, SHUFFLE_BYTES, sum(state.part_bytes)
                )
                next_stage = None
                if index + 1 < len(jobs) and fusable(job, jobs[index + 1]):
                    next_handle = handle_for(index + 1)
                    next_stage = NextStage(
                        job=next_handle,
                        num_partitions=jobs[index + 1].num_reducers,
                        spill_dir=engine._shuffle_dir(next_handle),
                    )
                reduce_outputs = engine._reduce_phase(
                    job, handle, state, next_stage=next_stage
                )
                if next_stage is not None:
                    pending = gather_fused(
                        engine, reduce_outputs, next_stage.num_partitions, counters
                    )
                    engine.stats.fused_stages += 1
                    results.append(
                        JobResult(
                            [],
                            counters,
                            num_splits,
                            num_partitions,
                            records_elided=True,
                        )
                    )
                else:
                    records = []
                    for output, counter_dict, info in reduce_outputs:
                        counters.merge(Counters.from_dict(counter_dict))
                        engine._note_worker(info)
                        records.extend(output)
                    results.append(
                        JobResult(records, counters, num_splits, num_partitions)
                    )
            except TaskFailedError as exc:
                exc.stage_index = index
                exc.job_name = job.name
                raise
        return results
    finally:
        for handle in handles.values():
            engine._release_job(handle)
