"""Worker-side task execution: specs, the job registry, map/reduce attempts.

This is the code that runs *inside* an executor — in-process for
:class:`~repro.mapreduce.runtime.SerialEngine`, in pool workers for
:class:`~repro.mapreduce.runtime.MultiprocessEngine`.  The driver builds
:class:`MapTaskSpec`/:class:`ReduceTaskSpec` objects, pickles them, and
ships them to :func:`run_pickled_spec`; everything orchestration-side
(dispatch, recovery, speculation) stays in the engines, everything
decision-side (attempt numbering, retry loop) in
:mod:`repro.mapreduce.controlplane`.

**One-shot job broadcast.**  A job's static parts — mapper/reducer
factories, config, and the distributed cache holding the dataset — are
pickled *once per job* to a broadcast file; each pool worker loads and
caches it on first touch (once per worker, like Hadoop's
DistributedCache localization).  Task specs carry a tiny :class:`JobRef`
instead of the job, which is what keeps per-task pickling proportional
to the records alone.

**Attempt semantics.**  Every execution runs under the control plane's
:func:`~repro.mapreduce.controlplane.attempts.run_attempt_loop` —
injected faults, the post-hoc wall-clock check, and deterministic retry
backoff all apply per attempt.  Workers touch an *attempt-began marker*
file at the start of every attempt so the driver can tell, after a pool
death, which tasks actually started (charged one lost attempt) and
which were still queued (re-dispatched free).
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable

from .controlplane.attempts import attempt_tag, run_attempt_loop
from .counters import (
    COMBINE_INPUT_RECORDS,
    COMBINE_OUTPUT_RECORDS,
    FRAMEWORK_GROUP,
    MAP_INPUT_RECORDS,
    MAP_OUTPUT_BYTES,
    MAP_OUTPUT_RECORDS,
    REDUCE_INPUT_GROUPS,
    REDUCE_INPUT_RECORDS,
    REDUCE_OUTPUT_RECORDS,
    Counters,
)
from .extsort import ExternalSorter, sorted_groups
from .faults import FaultPlan, PoisonedRecordError
from .job import Context, Job, KeyValue
from .serialization import (
    decode_records,
    encode_records,
    io_meter,
    record_size,
    set_spill_verification,
)
from .shm import attach_object
from .shuffle import iter_spill_records, partition_with_sizes, sort_and_group
from .spill import spill_partitions

#: Reduce partitions whose accounted byte size (per-partition sums
#: reported by map tasks) exceeds this threshold are sorted via the
#: external merge sort with the threshold as its memory budget, instead of
#: an in-memory ``sorted()``.  Override per job with
#: ``config["spill_threshold_bytes"]``.
DEFAULT_SPILL_THRESHOLD_BYTES = 64 * 1024 * 1024

#: Framework counters for the reduce-side spill path (deterministic across
#: engines: both decide from the same per-partition sums and threshold).
REDUCE_SPILLED_RECORDS = "reduce_spilled_records"
REDUCE_SPILL_RUNS = "reduce_spill_runs"


@dataclass(frozen=True)
class JobRef:
    """Driver-side handle to a broadcast job: workers load it lazily."""

    uid: str
    path: str
    #: shm data plane: the job's distributed cache lives in this shared
    #: segment (a :class:`~repro.mapreduce.shm.SegmentRef`) instead of the
    #: broadcast pickle; ``None`` on the default plane
    cache_ref: Any | None = None


@dataclass
class MapTaskSpec:
    """One map task: its record slice plus a handle to the shared job.

    ``job`` is either the :class:`Job` itself (serial engine) or a
    :class:`JobRef` pointing at the engine's broadcast file (pooled
    engine) — the spec no longer carries the job's cache/config, which is
    what keeps per-task pickling proportional to the records alone.
    """

    job: Any
    records: list[KeyValue]
    num_partitions: int
    #: pre-encode partition chunks worker-side (pooled engine only)
    encode: bool = False
    #: direct shuffle: write encoded partitions as spill files under this
    #: directory and return a manifest instead of the chunks
    spill_dir: str | None = None
    #: position of this task within its phase (fault plans key on it)
    task_index: int = 0
    #: 1-based global attempt this dispatch starts at (> 1 after the
    #: driver lost earlier attempts to a dead/hung worker)
    first_attempt: int = 1
    #: True for a speculative backup dispatch of a straggling task
    speculative: bool = False
    #: fsync spill files before publish (journaled engines: the journal
    #: must never promise a manifest the page cache hasn't flushed)
    durable_spill: bool = False


@dataclass(frozen=True)
class NextStage:
    """Fused chaining: where a reduce task spills its output for job i+1.

    ``job`` is the *next* job's broadcast ref (the worker resolves it to
    get the partitioner — and localizes its cache as a side effect);
    ``num_partitions``/``spill_dir`` describe the next job's shuffle.
    """

    job: Any
    num_partitions: int
    spill_dir: str


@dataclass
class ReduceTaskSpec:
    """One reduce task: its partition as records, chunks, or spill paths."""

    job: Any
    records: list[KeyValue] | None
    chunks: list[bytes] | None
    #: direct shuffle: this partition's spill files, in map-task order
    #: (order fixes the arrival-order tie-break — see iter_spill_records)
    spill_paths: list[str] | None = None
    #: map-reported record count of the partition (REDUCE_INPUT_RECORDS;
    #: with spill paths the records are never counted driver-side)
    num_records: int = 0
    #: accounted partition size (map-reported sums) driving the spill path
    partition_bytes: int = 0
    task_index: int = 0
    first_attempt: int = 1
    speculative: bool = False
    #: when set, partition + spill this task's output for the next job
    #: (the fused reduce→map short-circuit) instead of returning records
    next_stage: NextStage | None = None
    #: engine-owned directory for this task's external-sort runs; when
    #: None the sorter owns a system tempdir (serial engine).  Pooled
    #: engines point it at the job's shuffle directory so a worker killed
    #: mid-merge leaks nothing outside the job's scratch space.
    scratch_dir: str | None = None


@dataclass
class FusedOutput:
    """What a fused reduce task returns: the next job's shuffle manifest."""

    #: per-partition ``(path, file_bytes)`` entry, or None when empty
    entries: list[tuple[str, int] | None]
    #: per-partition record counts of this task's contribution
    counts: list[int]
    #: per-partition accounted byte sums (record_size, not file bytes)
    sizes: list[int]
    #: total records this reduce task emitted (the elided map's input)
    num_records: int


# -- worker-side job registry -------------------------------------------------
#: jobs this worker has loaded from broadcast files, keyed by JobRef.uid
_WORKER_JOBS: dict[str, Job] = {}
_WORKER_JOB_CAP = 8

#: True inside pool worker processes (set by the initializer).  Injected
#: worker-kill faults only take the process down when this is set; the
#: serial engine degrades them to ordinary task failures.
_IS_POOL_WORKER = False


def worker_init() -> None:
    """Pool initializer: start every worker with an empty job registry.

    With the ``fork`` start method workers would otherwise inherit
    whatever the driver process had resident; clearing keeps the
    load-once-per-worker accounting honest.
    """
    global _IS_POOL_WORKER
    _IS_POOL_WORKER = True
    _WORKER_JOBS.clear()


def resolve_job(handle: Any) -> tuple[Job, dict]:
    """Turn a spec's job handle into the actual Job (loading at most once).

    Returns ``(job, info)`` where ``info`` records the executing pid and
    whether this call localized the broadcast (i.e. the one-shot cache
    broadcast happened here).  The driver folds ``info`` into
    :class:`~repro.mapreduce.runtime.EngineStats`, never into job
    counters.

    On the shm data plane the ref carries a ``cache_ref`` and the
    broadcast pickle ships *without* the cache; the cache is attached
    from the shared segment here — its ndarray payloads come back as
    read-only views over the one per-machine copy, so only the (small)
    broadcast head counts as copied bytes.
    """
    if isinstance(handle, Job):
        return handle, {"pid": os.getpid(), "loaded": False}
    job = _WORKER_JOBS.get(handle.uid)
    if job is not None:
        return job, {"pid": os.getpid(), "loaded": False}
    with open(handle.path, "rb") as fh:
        data = fh.read()
    io_meter.bytes_copied += len(data)
    job = pickle.loads(data)
    if handle.cache_ref is not None:
        job.cache = attach_object(handle.cache_ref)
    _WORKER_JOBS[handle.uid] = job
    while len(_WORKER_JOBS) > _WORKER_JOB_CAP:
        _WORKER_JOBS.pop(next(iter(_WORKER_JOBS)))
    return job, {"pid": os.getpid(), "loaded": True}


def _with_io_delta(info: dict, mark: tuple[int, int]) -> dict:
    """Fold this task's io-meter delta into its worker info dict.

    The driver sums the deltas into :class:`EngineStats` (``mmap_reads``,
    ``bytes_copied``); per-task deltas rather than absolute meter values
    so retried/speculative dispatches and long-lived workers never
    double-count.
    """
    mmap_reads, bytes_copied = io_meter.since(mark)
    return {**info, "mmap_reads": mmap_reads, "bytes_copied": bytes_copied}


def marker_path(handle: JobRef, kind: str, task_index: int, attempt: int) -> Path:
    """Attempt-began marker: proves to the driver an attempt ran at all.

    Workers touch it at the start of every attempt (same directory as the
    job broadcast).  When the pool dies, the driver charges a lost attempt
    only to tasks whose current attempt's marker exists — queued tasks
    that never started are re-dispatched free, exactly like Hadoop
    re-queues (rather than fails) tasks from a lost TaskTracker.
    """
    base = Path(handle.path)
    return base.parent / f"{base.stem}.{kind}.{task_index}.{attempt}.began"


def attempt_marker(handle: Any, kind: str, task_index: int):
    """Worker-side marker writer for pooled specs (None for in-process)."""
    if not isinstance(handle, JobRef):
        return None

    def mark(attempt: int) -> None:
        try:
            marker_path(handle, kind, task_index, attempt).touch()
        except OSError:  # pragma: no cover - marker loss only skews charging
            pass

    return mark


def execute_map_task(spec: MapTaskSpec) -> tuple[tuple, dict, dict]:
    """Run one map task with retries.

    Returns ``((partitions, partition_records, partition_bytes),
    counters, info)`` where ``partitions`` holds manifest entries when
    ``spec.spill_dir`` is set (direct shuffle), encoded chunks when only
    ``spec.encode`` is set (relay), raw record lists otherwise.
    """
    mark = io_meter.snapshot()
    job, info = resolve_job(spec.job)
    set_spill_verification(job.config.get("verify_spill_integrity", True))
    (partitions, counts, sizes), counters = run_attempt_loop(
        "map",
        job,
        lambda attempt: _map_attempt(job, spec, attempt),
        task_index=spec.task_index,
        first_attempt=spec.first_attempt,
        speculative=spec.speculative,
        marker=attempt_marker(spec.job, "map", spec.task_index),
        in_worker=_IS_POOL_WORKER,
    )
    if spec.spill_dir is not None:
        partitions, damaged = spill_partitions(
            partitions,
            counts,
            spec.spill_dir,
            "map",
            spec.task_index,
            spec.first_attempt,
            spec.speculative,
            plan=job.config.get("fault_plan"),
            durable=spec.durable_spill,
        )
        if damaged:
            info = {**info, "spills_damaged": damaged}
    elif spec.encode:
        partitions = [encode_records(part) for part in partitions]
    return (partitions, counts, sizes), counters, _with_io_delta(info, mark)


def _map_attempt(job: Job, spec: MapTaskSpec, attempt: int) -> tuple[tuple, dict]:
    """One attempt of a map task (fresh mapper + context)."""
    plan: FaultPlan | None = job.config.get("fault_plan")
    counters = Counters()
    context = Context(counters, cache=job.cache, config=job.config)
    mapper = job.mapper()
    mapper.setup(context)
    for ordinal, (key, value) in enumerate(spec.records):
        if plan is not None and plan.poisons(
            "map", spec.task_index, attempt, ordinal, speculative=spec.speculative
        ):
            raise PoisonedRecordError(
                f"poisoned record {ordinal} in map task {spec.task_index} "
                f"(attempt {attempt})"
            )
        counters.increment(FRAMEWORK_GROUP, MAP_INPUT_RECORDS)
        mapper.map(key, value, context)
    mapper.cleanup(context)
    output = context.drain()
    counters.increment(FRAMEWORK_GROUP, MAP_OUTPUT_RECORDS, len(output))

    if job.combiner is not None:
        # Combined output differs from raw map output, so the raw bytes
        # must be measured before combining; the partition pass below
        # re-measures the (smaller) combined records for shuffle volume.
        counters.increment(
            FRAMEWORK_GROUP,
            MAP_OUTPUT_BYTES,
            sum(record_size(k, v) for k, v in output),
        )
        counters.increment(FRAMEWORK_GROUP, COMBINE_INPUT_RECORDS, len(output))
        combiner = job.combiner()
        combine_context = Context(counters, cache=job.cache, config=job.config)
        combiner.setup(combine_context)
        for key, values in sort_and_group(output, job.sort_key):
            combiner.reduce(key, values, combine_context)
        combiner.cleanup(combine_context)
        output = combine_context.drain()
        counters.increment(FRAMEWORK_GROUP, COMBINE_OUTPUT_RECORDS, len(output))

    if spec.num_partitions == 0:  # map-only job: single pseudo-partition
        total = sum(record_size(k, v) for k, v in output)
        if job.combiner is None:
            counters.increment(FRAMEWORK_GROUP, MAP_OUTPUT_BYTES, total)
        return ([output], [len(output)], [total]), counters.as_dict()

    partitions, sizes = partition_with_sizes(
        output, spec.num_partitions, job.partitioner
    )
    if job.combiner is None:
        # Without a combiner the partitioned records *are* the map output;
        # one record_size pass serves both counters.
        counters.increment(FRAMEWORK_GROUP, MAP_OUTPUT_BYTES, sum(sizes))
    counts = [len(part) for part in partitions]
    return (partitions, counts, sizes), counters.as_dict()


def execute_reduce_task(spec: ReduceTaskSpec) -> tuple[Any, dict, dict]:
    """Run one reduce task (with retries) over its (unsorted) partition.

    Input comes from spill files (direct shuffle), driver-relayed chunks,
    or raw records (serial).  The spill-file stream is rebuilt from disk
    for every attempt, so an attempt that died mid-merge retries against
    a fresh, complete read of its input.  With ``spec.next_stage`` set
    (fused chaining) the winning attempt's output is partitioned for the
    next job and spilled at source; a :class:`FusedOutput` manifest is
    returned instead of the records.
    """
    mark = io_meter.snapshot()
    job, info = resolve_job(spec.job)
    set_spill_verification(job.config.get("verify_spill_integrity", True))
    if spec.spill_paths is not None:
        paths = spec.spill_paths

        def load() -> Iterable[KeyValue]:
            return iter_spill_records(paths)

    else:
        if spec.chunks is not None:
            # Relayed chunks crossed the driver and arrived as private
            # bytes inside this spec's pickle — copied by definition.
            io_meter.bytes_copied += sum(len(chunk) for chunk in spec.chunks)
        records = (
            [record for chunk in spec.chunks for record in decode_records(chunk)]
            if spec.chunks is not None
            else spec.records or []
        )

        def load() -> Iterable[KeyValue]:
            return records

    output, counters = run_attempt_loop(
        "reduce",
        job,
        lambda attempt: _reduce_attempt(
            job,
            load(),
            spec.num_records,
            spec.partition_bytes,
            scratch=_attempt_scratch(spec, attempt),
        ),
        task_index=spec.task_index,
        first_attempt=spec.first_attempt,
        speculative=spec.speculative,
        marker=attempt_marker(spec.job, "reduce", spec.task_index),
        in_worker=_IS_POOL_WORKER,
    )
    if spec.next_stage is not None:
        stage = spec.next_stage
        next_job, next_info = resolve_job(stage.job)
        partitions, sizes = partition_with_sizes(
            output, stage.num_partitions, next_job.partitioner
        )
        counts = [len(part) for part in partitions]
        entries, _damaged = spill_partitions(
            partitions,
            counts,
            stage.spill_dir,
            "fuse",
            spec.task_index,
            spec.first_attempt,
            spec.speculative,
        )
        if next_info["loaded"]:
            info = {**info, "extra_loads": info.get("extra_loads", 0) + 1}
        output = FusedOutput(
            entries=entries, counts=counts, sizes=sizes, num_records=len(output)
        )
    return output, counters, _with_io_delta(info, mark)


def _attempt_scratch(spec: ReduceTaskSpec, attempt: int) -> str | None:
    """Per-attempt external-sort directory under the engine's scratch dir.

    Attempt-scoped (same tag discipline as spill files) so a retried
    merge never collides with a dead attempt's half-written runs.
    """
    if spec.scratch_dir is None:
        return None
    tag = attempt_tag(attempt, spec.speculative)
    return os.path.join(
        spec.scratch_dir, f"extsort-reduce-{spec.task_index:05d}-{tag}"
    )


def _reduce_attempt(
    job: Job,
    records: Iterable[KeyValue],
    num_records: int,
    partition_bytes: int,
    *,
    scratch: str | None = None,
) -> tuple[list[KeyValue], dict]:
    """One attempt of a reduce task.

    ``records`` may be a list (serial/relay) or a fresh spill-file stream
    (direct shuffle); ``num_records`` is the map-reported partition count,
    so the counter never requires materializing the stream.
    """
    counters = Counters()
    context = Context(counters, cache=job.cache, config=job.config)
    assert job.reducer is not None  # guarded by Job validation
    reducer = job.reducer()
    reducer.setup(context)
    counters.increment(FRAMEWORK_GROUP, REDUCE_INPUT_RECORDS, num_records)

    threshold = int(
        job.config.get("spill_threshold_bytes", DEFAULT_SPILL_THRESHOLD_BYTES)
    )
    sorter: ExternalSorter | None = None
    if partition_bytes > threshold:
        # Partition beyond the spill threshold: external merge sort with
        # the threshold as memory budget.  Deterministic and identical to
        # the in-memory path (same ordering + stable arrival-order ties).
        sorter = ExternalSorter(
            memory_budget=max(1, threshold), sort_key=job.sort_key, spill_dir=scratch
        )
        sorter.add_all(records)
        groups = sorted_groups(sorter)
    else:
        groups = sort_and_group(records, job.sort_key)

    try:
        for key, values in groups:
            counters.increment(FRAMEWORK_GROUP, REDUCE_INPUT_GROUPS)
            if job.value_sort_key is not None:
                values = iter(sorted(values, key=job.value_sort_key))
            reducer.reduce(key, values, context)
    finally:
        if sorter is not None:
            counters.increment(
                FRAMEWORK_GROUP, REDUCE_SPILLED_RECORDS, sorter.spilled_records
            )
            counters.increment(FRAMEWORK_GROUP, REDUCE_SPILL_RUNS, sorter.num_runs)
            sorter.close()
    reducer.cleanup(context)
    output = context.drain()
    counters.increment(FRAMEWORK_GROUP, REDUCE_OUTPUT_RECORDS, len(output))
    return output, counters.as_dict()


def replay_map_task(job: Job, spec: MapTaskSpec) -> tuple[list, list, list]:
    """Driver-side re-execution of one map attempt for corruption recovery.

    When a reducer trips over a corrupt spill file, the fix is Hadoop's
    fetch-failure move: re-run the *producing map*, not the reducer.  This
    runs a single clean attempt in the driver process, outside the retry
    budget (recovery work is not charged to the task) and outside fault
    injection (the replay models re-reading from a healthy replica), and
    republishes the spill files under ``spec.first_attempt`` — an attempt
    number past any the worker loop could have used, so the fresh files
    never collide with the quarantined ones.  The attempt's counters are
    discarded: the original successful attempt's were already merged, and
    recovery must leave job counters bit-identical.

    Returns ``(entries, counts, sizes)`` for the replayed task.
    """
    set_spill_verification(job.config.get("verify_spill_integrity", True))
    (partitions, counts, sizes), _counters = _map_attempt(job, spec, spec.first_attempt)
    assert spec.spill_dir is not None
    entries, _damaged = spill_partitions(
        partitions,
        counts,
        spec.spill_dir,
        "map",
        spec.task_index,
        spec.first_attempt,
        spec.speculative,
        durable=spec.durable_spill,
    )
    return entries, counts, sizes


def run_spec(spec: Any) -> Any:
    """Dispatch one spec to its executor (shared by serial and workers)."""
    if isinstance(spec, MapTaskSpec):
        return execute_map_task(spec)
    return execute_reduce_task(spec)


def run_pickled_spec(payload: bytes) -> Any:
    """Worker entry point: specs arrive pre-pickled by the driver.

    The driver pickles specs itself (instead of letting the executor do
    it) so :class:`~repro.mapreduce.runtime.EngineStats` can meter exactly
    what crossed the process boundary at zero extra cost.
    """
    return run_spec(pickle.loads(payload))
