"""Deterministic fault injection: seeded, reproducible failure scenarios.

The paper's premise is that MapReduce makes pairwise computation practical
on *commodity* clusters — machines that crash, stall, and lose tasks —
because the framework re-executes failed attempts and speculates around
stragglers (Hadoop 0.20's fault model).  To test and benchmark that
machinery the engines need failures that are **reproducible**: a
:class:`FaultPlan` describes exactly which task attempts crash, hang, or
die, either as an explicit fault list or as seeded per-task draws, and the
same plan produces the same failure schedule on every run and on both
engines.

A plan rides ``job.config["fault_plan"]`` (it is picklable, so it reaches
pool workers with the job broadcast) and the engines consult it at three
points:

- :meth:`FaultPlan.fire` — start of every task attempt: raise
  (:class:`CrashFault`), sleep (:class:`SlowFault`), or kill the hosting
  worker process (:class:`WorkerKillFault`);
- :meth:`FaultPlan.poisons` — per map record: raise mid-stream
  (:class:`PoisonFault`), modelling a corrupt input record;
- attempt numbering is **global** (driver re-dispatches after a lost
  worker count as attempts), so a fault pinned to ``attempts=(1,)`` fires
  exactly once even when the first attempt died with its process.

Rate-based plans draw per ``(kind, task_index)`` from a keyed blake2b
hash — no shared RNG state, so the draw is independent of execution order
and identical across serial and pooled engines.

Speculative backup attempts skip injected faults by default (a backup
lands on a "healthy node"); set ``affects_speculative=True`` on a fault to
hit backups too.
"""

from __future__ import annotations

import hashlib
import math
import os
import time
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "CrashFault",
    "FaultPlan",
    "InjectedCrash",
    "InjectedWorkerDeath",
    "PoisonFault",
    "PoisonedRecordError",
    "SlowFault",
    "WorkerKillFault",
]


class InjectedCrash(RuntimeError):
    """A :class:`CrashFault` fired (ordinary task failure, retryable)."""


class InjectedWorkerDeath(RuntimeError):
    """A :class:`WorkerKillFault` fired outside a pool worker.

    Inside a pool worker the process exits instead (the driver sees
    ``BrokenProcessPool``); the serial engine degrades the kill to this
    ordinary exception so the same plan runs on both engines.
    """


class PoisonedRecordError(RuntimeError):
    """A :class:`PoisonFault` fired on its record (retryable)."""


def _matches(selector: int | None, value: int) -> bool:
    return selector is None or selector == value


@dataclass(frozen=True)
class _Fault:
    """Common selector fields: which task attempts a fault applies to.

    ``task_kind`` is ``"map"``, ``"reduce"`` or ``None`` (both);
    ``task_index`` selects one task (``None`` = every task);
    ``attempts`` is a tuple of 1-based global attempt numbers (``None`` =
    every attempt — the fault is then *permanent* and no retry budget can
    absorb it).  ``affects_speculative`` opts the fault into firing on
    speculative backup attempts as well.
    """

    task_kind: str | None = None
    task_index: int | None = None
    attempts: tuple[int, ...] | None = (1,)
    affects_speculative: bool = False

    def applies(
        self, kind: str, task_index: int, attempt: int, speculative: bool
    ) -> bool:
        """True when this fault selects the given task attempt."""
        if speculative and not self.affects_speculative:
            return False
        if self.task_kind is not None and self.task_kind != kind:
            return False
        if not _matches(self.task_index, task_index):
            return False
        return self.attempts is None or attempt in self.attempts


@dataclass(frozen=True)
class CrashFault(_Fault):
    """Raise :class:`InjectedCrash` at the start of matching attempts."""


@dataclass(frozen=True)
class SlowFault(_Fault):
    """Sleep ``seconds`` at the start of matching attempts.

    Short sleeps model stragglers (speculation territory); sleeps well
    past the task timeout model hangs (timeout/kill territory).
    """

    seconds: float = 0.5


@dataclass(frozen=True)
class WorkerKillFault(_Fault):
    """Kill the hosting worker process at the start of matching attempts.

    In a pool worker: ``os._exit(1)`` — the driver observes a broken pool
    and must respawn it and re-run the lost tasks.  In-process (serial
    engine): raises :class:`InjectedWorkerDeath` instead.
    """


@dataclass(frozen=True)
class PoisonFault(_Fault):
    """Raise :class:`PoisonedRecordError` when a map task reaches
    ``record_index`` (its 0-based ordinal within the task's split)."""

    record_index: int = 0


def _draw(seed: int, kind: str, task_index: int, salt: str) -> float:
    """Deterministic uniform draw in [0, 1) keyed by task identity."""
    digest = hashlib.blake2b(
        f"{seed}:{kind}:{task_index}:{salt}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible failure schedule for one job.

    Two layers compose:

    - ``faults`` — explicit fault objects for targeted scenarios
      ("kill reduce task 3 on its first attempt");
    - seeded rates — ``crash_rate`` / ``slow_rate`` / ``kill_rate``
      draw per ``(kind, task_index)`` whether that task's *first* attempt
      crashes, stalls for ``slow_seconds``, or dies; retries (attempt ≥ 2)
      run clean, so any plan built from rates alone is absorbed by a
      ``max_attempts >= 2`` budget.  ``corrupt_rate`` / ``truncate_rate``
      draw per ``(kind, task_index, partition)`` whether a *published*
      spill file gets a payload byte flipped or is cut short after its
      atomic rename — modelling silent disk/network corruption under the
      writer's feet; the integrity layer must detect it
      (:class:`~repro.mapreduce.serialization.SpillCorruptionError`) and
      the driver must replay the producing map attempt.

    The plan holds no mutable state and is safe to share across tasks,
    attempts, and processes.
    """

    faults: Sequence[_Fault] = ()
    seed: int = 0
    crash_rate: float = 0.0
    slow_rate: float = 0.0
    slow_seconds: float = 0.5
    kill_rate: float = 0.0
    corrupt_rate: float = 0.0
    truncate_rate: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for name in ("crash_rate", "slow_rate", "kill_rate", "corrupt_rate", "truncate_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if math.isnan(self.slow_seconds) or self.slow_seconds < 0:
            raise ValueError(f"slow_seconds must be >= 0, got {self.slow_seconds}")

    # -- queries the engines make ------------------------------------------------
    def fire(
        self,
        kind: str,
        task_index: int,
        attempt: int,
        *,
        speculative: bool = False,
        in_worker: bool = False,
    ) -> None:
        """Apply attempt-level faults for one task attempt (or no-op).

        Slow faults sleep, then any kill fault takes the process down (or
        raises in-process), then any crash fault raises.  Called by the
        engines at the start of every attempt.
        """
        delay = 0.0
        kill = False
        crash: _Fault | None = None
        for fault in self.faults:
            if not fault.applies(kind, task_index, attempt, speculative):
                continue
            if isinstance(fault, SlowFault):
                delay = max(delay, fault.seconds)
            elif isinstance(fault, WorkerKillFault):
                kill = True
            elif isinstance(fault, CrashFault):
                crash = fault
        if attempt == 1 and not speculative:
            if self.slow_rate and _draw(self.seed, kind, task_index, "slow") < self.slow_rate:
                delay = max(delay, self.slow_seconds)
            if self.kill_rate and _draw(self.seed, kind, task_index, "kill") < self.kill_rate:
                kill = True
            if self.crash_rate and _draw(self.seed, kind, task_index, "crash") < self.crash_rate:
                crash = CrashFault(task_kind=kind, task_index=task_index)
        if delay > 0:
            time.sleep(delay)
        if kill:
            if in_worker:
                os._exit(1)
            raise InjectedWorkerDeath(
                f"injected worker death: {kind} task {task_index} attempt {attempt}"
            )
        if crash is not None:
            raise InjectedCrash(
                f"injected crash: {kind} task {task_index} attempt {attempt}"
            )

    def poisons(
        self,
        kind: str,
        task_index: int,
        attempt: int,
        record_index: int,
        *,
        speculative: bool = False,
    ) -> bool:
        """True when a :class:`PoisonFault` targets this record."""
        return any(
            isinstance(fault, PoisonFault)
            and fault.record_index == record_index
            and fault.applies(kind, task_index, attempt, speculative)
            for fault in self.faults
        )

    def spill_fault(
        self,
        kind: str,
        task_index: int,
        attempt: int,
        partition: int,
        *,
        speculative: bool = False,
    ) -> str | None:
        """Damage mode (``"corrupt"``/``"truncate"``) for one just-published
        spill file, or ``None``.

        Like the attempt-level rates, spill damage fires only on first,
        non-speculative attempts: retries and driver-side replays model
        re-reading from a healthy replica, so recovery always converges.
        Draws are keyed per partition, so each of a task's spill files is
        damaged (or spared) independently.
        """
        if attempt != 1 or speculative:
            return None
        if self.corrupt_rate and (
            _draw(self.seed, kind, task_index, f"corrupt:p{partition}") < self.corrupt_rate
        ):
            return "corrupt"
        if self.truncate_rate and (
            _draw(self.seed, kind, task_index, f"truncate:p{partition}") < self.truncate_rate
        ):
            return "truncate"
        return None

    def describe(self) -> str:
        """One-line summary for logs and bench reports."""
        rate_names = ("crash_rate", "slow_rate", "kill_rate", "corrupt_rate", "truncate_rate")
        parts = [f"{len(self.faults)} explicit fault(s)"]
        for name in rate_names:
            rate = getattr(self, name)
            if rate:
                parts.append(f"{name}={rate:g}")
        if any(getattr(self, name) for name in rate_names):
            parts.append(f"seed={self.seed}")
        return ", ".join(parts)
