"""Structured execution events and the JSONL trace sink.

The engines narrate what they do — attempt transitions, shuffle spills,
bytes moved between plan stages — as typed events on an
:class:`EventBus`.  Subscribers are plain callables, so observability is
opt-in and costs one ``if`` when nobody listens.

:class:`JsonlTraceSink` is the bundled subscriber: it streams every
event as one JSON object per line *and*, on close, appends the task
spans it reconstructed from the attempt transitions — using the exact
span schema of :meth:`repro.cluster.trace.Trace.to_json` (``task`` /
``node`` / ``slot`` / ``start`` / ``end``).  A real engine run's sink
file therefore loads straight into ``Trace.from_json`` and renders with
``Trace.gantt()``, giving real runs the same timeline artifact the
simulator produces — and a calibration target for its cost model.

Layering: this module must not import the engines or ``repro.cluster``
(the *schema* is shared, the code is not — see ``tests/test_layering.py``).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, IO


@dataclass(frozen=True)
class AttemptTransition:
    """A task attempt changed lifecycle state."""

    time: float
    kind: str  # "map" | "reduce"
    task_index: int
    attempt: int
    speculative: bool
    state: str  # TaskState value
    worker_pid: int | None = None


@dataclass(frozen=True)
class SpillWritten:
    """A shuffle spill file landed on disk."""

    time: float
    kind: str  # producing phase: "map" | "reduce"
    task_index: int
    partition: int
    num_bytes: int


@dataclass(frozen=True)
class SpillQuarantined:
    """A spill file failed its integrity check and was renamed aside.

    The driver emits this just before replaying the producing map
    attempt; ``kind``/``task_index``/``partition`` identify the producer
    (parsed from the file name), ``reason`` carries the integrity
    failure's description.
    """

    time: float
    path: str
    kind: str  # producing phase: "map" | "fuse"
    task_index: int
    partition: int
    reason: str


@dataclass(frozen=True)
class BytesMoved:
    """Payload bytes crossed a named channel (driver gather, fused chain)."""

    time: float
    channel: str  # e.g. "map_output", "reduce_output", "fused_chain"
    num_bytes: int


@dataclass(frozen=True)
class ReplicationMeasured:
    """A pairwise run's replication, measured against the theoretical floor.

    Emitted once per :class:`~repro.core.pairwise.PairwiseComputation`
    run, after the pipeline completes.  ``replication_achieved`` is
    replicas-emitted / v (falling back to the scheme's analytic factor on
    paths that emit no replica records); ``replication_lower_bound`` is
    the Afrati/Ullman floor ``(v−1)/(capacity−1)`` at the scheme's own
    working-set capacity; ``shuffle_bytes_vs_bound`` compares measured
    shuffle bytes to ``legs × bound × v × element_size`` (0.0 when no
    shuffle bytes were metered, e.g. the serial engine).
    """

    time: float
    scheme: str
    v: int
    capacity_elements: int
    replication_achieved: float
    replication_lower_bound: float
    optimality_ratio: float
    shuffle_bytes: int
    shuffle_bytes_floor: int
    shuffle_bytes_vs_bound: float


@dataclass(frozen=True)
class PhaseMarker:
    """A phase (one job's map or reduce wave) started or finished."""

    time: float
    job: str
    kind: str  # "map" | "reduce"
    num_tasks: int
    state: str  # "started" | "finished"


class EventBus:
    """Minimal synchronous pub/sub: emit calls every subscriber in order."""

    def __init__(self) -> None:
        self._subscribers: list[Callable[[Any], None]] = []

    def subscribe(self, callback: Callable[[Any], None]) -> None:
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Any], None]) -> None:
        self._subscribers.remove(callback)

    def emit(self, event: Any) -> None:
        for callback in self._subscribers:
            callback(event)

    def __len__(self) -> int:
        return len(self._subscribers)


class JsonlTraceSink:
    """Stream events to a JSONL file that ``Trace.from_json`` can load.

    Two kinds of lines are written:

    - every event, as it arrives: ``{"type": <event class>, ...fields}``
      with times rebased so the first event is t=0 (wall-clock epochs
      from ``time.monotonic`` are meaningless across runs);
    - on :meth:`close`, one span line per *succeeded* attempt:
      ``{"task", "node", "slot", "start", "end"}`` — the
      ``repro.cluster.trace`` span schema.  Worker pids are mapped to
      dense slot indices on node 0 in order of first appearance, and
      task ids are numbered globally in order of first dispatch, so a
      multi-job engine run still yields unique span ids.

    Use as a context manager, or pass to ``Engine(trace_sink=...)``
    which closes it at engine close.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh: IO[str] | None = self.path.open("w", encoding="utf-8")
        self._t0: float | None = None
        self._slot_of_pid: dict[int | None, int] = {}
        self._task_ids: dict[tuple[str, int], int] = {}
        #: (kind, task_index, attempt, speculative) -> begin time
        self._begun: dict[tuple[str, int, int, bool], float] = {}
        self._spans: list[dict[str, Any]] = []

    # -- event intake ----------------------------------------------------------
    def record(self, event: Any) -> None:
        """EventBus subscriber: serialize one event and track spans."""
        if self._fh is None:
            return
        payload = asdict(event)
        when = payload.get("time")
        if isinstance(when, (int, float)):
            if self._t0 is None:
                self._t0 = float(when)
            payload["time"] = float(when) - self._t0
        payload = {"type": type(event).__name__, **payload}
        self._fh.write(json.dumps(payload) + "\n")
        if isinstance(event, AttemptTransition):
            self._track(event)

    def _track(self, event: AttemptTransition) -> None:
        rebased = event.time - (self._t0 if self._t0 is not None else event.time)
        key = (event.kind, event.task_index, event.attempt, event.speculative)
        if event.state == "DISPATCHED":
            self._begun.setdefault(key, rebased)
            self._task_ids.setdefault(
                (event.kind, event.task_index), len(self._task_ids)
            )
        elif event.state == "RUNNING":
            self._begun[key] = rebased
        elif event.state == "SUCCEEDED" and key in self._begun:
            slot = self._slot_of_pid.setdefault(
                event.worker_pid, len(self._slot_of_pid)
            )
            self._spans.append(
                {
                    "task": self._task_ids[(event.kind, event.task_index)],
                    "node": 0,
                    "slot": slot,
                    "start": self._begun.pop(key),
                    "end": rebased,
                }
            )

    # -- finalization ----------------------------------------------------------
    def close(self) -> None:
        """Append the reconstructed span lines and close the file."""
        if self._fh is None:
            return
        for span in sorted(self._spans, key=lambda s: (s["slot"], s["start"])):
            self._fh.write(json.dumps(span) + "\n")
        self._fh.close()
        self._fh = None

    @property
    def closed(self) -> bool:
        return self._fh is None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
