"""Execution control plane shared by the real engines and the simulator.

Engine-agnostic pieces of task orchestration, split out of
:mod:`repro.mapreduce.runtime` so both the in-process executors and the
:class:`~repro.cluster.simulator.ClusterSimulator` drive the same
machinery:

- :mod:`.attempts` — the task-lifecycle state machine
  (``PENDING → DISPATCHED → RUNNING → {SUCCEEDED, FAILED, KILLED,
  TIMED_OUT}``), global attempt numbering, the worker-side retry loop
  with deterministic backoff, and the driver-side
  :class:`~repro.mapreduce.controlplane.attempts.AttemptTracker` that
  owns speculation and lost-attempt charging;
- :mod:`.policy` — the pluggable
  :class:`~repro.mapreduce.controlplane.policy.SchedulingPolicy`
  protocol (fifo, LPT-by-estimated-cost, round-robin) used for engine
  dispatch ordering *and* simulator slot placement
  (:mod:`repro.cluster.scheduler` delegates here);
- :mod:`.events` — the structured event bus (attempt transitions,
  shuffle spills, bytes moved) and the JSONL sink whose output
  :class:`repro.cluster.trace.Trace` loads directly.

Layering rule (enforced by ``tests/test_layering.py``): nothing in this
package imports the engines (:mod:`repro.mapreduce.runtime`,
:mod:`repro.mapreduce.tasks`, :mod:`repro.mapreduce.spill`) or the
cluster package — the control plane is the layer both sit on.
"""

from .attempts import (
    TASK_ATTEMPTS,
    TASK_FAILURES,
    TASK_RETRIES,
    TASKS_TIMED_OUT,
    AttemptTracker,
    TaskAttempt,
    TaskState,
    attempt_tag,
    backoff_seconds,
    run_attempt_loop,
)
from .events import (
    AttemptTransition,
    BytesMoved,
    EventBus,
    JsonlTraceSink,
    PhaseMarker,
    ReplicationMeasured,
    SpillQuarantined,
    SpillWritten,
)
from .policy import (
    Assignment,
    FifoPolicy,
    LptPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    Slot,
    TaskCost,
    resolve_policy,
)

__all__ = [
    "AttemptTracker",
    "AttemptTransition",
    "Assignment",
    "BytesMoved",
    "EventBus",
    "FifoPolicy",
    "JsonlTraceSink",
    "LptPolicy",
    "PhaseMarker",
    "ReplicationMeasured",
    "RoundRobinPolicy",
    "SchedulingPolicy",
    "Slot",
    "SpillQuarantined",
    "SpillWritten",
    "TASKS_TIMED_OUT",
    "TASK_ATTEMPTS",
    "TASK_FAILURES",
    "TASK_RETRIES",
    "TaskAttempt",
    "TaskCost",
    "TaskState",
    "attempt_tag",
    "backoff_seconds",
    "resolve_policy",
    "run_attempt_loop",
]
