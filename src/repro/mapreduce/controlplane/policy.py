"""Pluggable scheduling policies shared by engines and the simulator.

The paper's balance demand (§5 demand (a)) is about *task* sizes; how
well balanced the *nodes* end up also depends on placement.  Hadoop
assigns tasks to free slots as they come (FIFO), which for independent
tasks approximates Longest-Processing-Time-first list scheduling; LPT
itself carries the classical makespan ≤ 4/3 · OPT bound.  Ullman's
"Some Pairs Problems" and Afrati et al.'s bounds on MapReduce
computations both study the reducer-capacity vs. wave-count trade-off
that placement policy controls — so policy is a swappable component
here, not something each executor hard-codes.

One :class:`SchedulingPolicy` serves two consumers:

- the **real engines** ask for :meth:`SchedulingPolicy.dispatch_order` —
  the order a phase's tasks are handed to free worker slots.  Cost
  estimates come from the paper's working-set quantities (``|D_l|``
  record counts for map splits, ``|P_l|`` partition bytes for reduce
  partitions).  Task outputs are keyed by task index, so *results are
  bit-identical across policies*; only wall-clock changes.
- the **cluster simulator** asks for :meth:`SchedulingPolicy.assign` —
  full placement of estimated task costs onto modelled slots.  The
  former ``repro.cluster.scheduler`` algorithms live here now; that
  module keeps its ``schedule_*`` functions as thin wrappers.

This module is dependency-free within the repo (no engine, no cluster
imports) so both layers can sit on it — see ``tests/test_layering.py``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class TaskCost:
    """One schedulable task: an id and its estimated running time."""

    task_id: int
    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"task cost must be non-negative, got {self.seconds}")


@dataclass(frozen=True)
class Slot:
    """One execution slot: a (node, slot) pair with a relative speed.

    ``speed`` is the slot's throughput relative to the reference node
    (1.0 everywhere on homogeneous clusters); a task costing ``seconds``
    in reference time runs in ``seconds / speed`` wall seconds here.
    """

    node: int
    index: int
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError(f"slot speed must be positive, got {self.speed}")

    @property
    def key(self) -> tuple[int, int]:
        return (self.node, self.index)


@dataclass
class Assignment:
    """Result of scheduling: per-slot loads and task placements."""

    #: task_id -> (node index, slot index within node)
    placement: dict[int, tuple[int, int]]
    #: busy seconds per (node, slot)
    slot_loads: dict[tuple[int, int], float]

    @property
    def makespan(self) -> float:
        """Completion time of the last slot (0 when nothing was scheduled)."""
        return max(self.slot_loads.values(), default=0.0)

    def node_loads(self) -> dict[int, float]:
        """Max busy time over each node's slots."""
        loads: dict[int, float] = {}
        for (node, _slot), seconds in self.slot_loads.items():
            loads[node] = max(loads.get(node, 0.0), seconds)
        return loads

    @property
    def imbalance(self) -> float:
        """makespan / mean slot load — 1.0 is perfectly even."""
        if not self.slot_loads:
            return 1.0
        mean_load = sum(self.slot_loads.values()) / len(self.slot_loads)
        return self.makespan / mean_load if mean_load > 0 else 1.0


class SchedulingPolicy:
    """Protocol for task-placement policies (subclass and override).

    ``dispatch_order`` is what the real engines consume (which pending
    task next, slots being anonymous pool workers); ``assign`` is the
    simulator's full placement onto modelled slots.  The default
    ``assign`` greedily gives each task — taken in ``dispatch_order`` —
    the slot that finishes it earliest, which is exactly Hadoop's
    fill-free-slots-as-they-come behaviour parameterized by the order.
    """

    name = "policy"

    def dispatch_order(self, costs: Sequence[TaskCost]) -> list[int]:
        """Task ids in the order they should be handed to free slots."""
        raise NotImplementedError

    def assign(
        self, costs: Sequence[TaskCost], slots: Sequence[Slot]
    ) -> Assignment:
        if not slots:
            raise ValueError("cannot schedule onto zero slots")
        ordered = self._by_id(costs)
        order = self.dispatch_order(costs)
        loads: dict[tuple[int, int], float] = {slot.key: 0.0 for slot in slots}
        speed = {slot.key: slot.speed for slot in slots}
        placement: dict[int, tuple[int, int]] = {}
        for task_id in order:
            task = ordered[task_id]
            best = min(
                loads,
                key=lambda key: (loads[key] + task.seconds / speed[key], key),
            )
            placement[task_id] = best
            loads[best] += task.seconds / speed[best]
        return Assignment(placement=placement, slot_loads=loads)

    @staticmethod
    def _by_id(costs: Sequence[TaskCost]) -> dict[int, TaskCost]:
        by_id = {task.task_id: task for task in costs}
        if len(by_id) != len(costs):
            raise ValueError("task ids must be unique within a batch")
        return by_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class FifoPolicy(SchedulingPolicy):
    """Hadoop's default: tasks go to free slots in arrival (id) order."""

    name = "fifo"

    def dispatch_order(self, costs: Sequence[TaskCost]) -> list[int]:
        return [task.task_id for task in sorted(costs, key=lambda t: t.task_id)]


class LptPolicy(SchedulingPolicy):
    """Longest-Processing-Time-first list scheduling.

    Dispatch order is descending estimated cost (ties by id, so runs are
    deterministic).  ``assign`` on homogeneous slots reproduces the
    classic heap-based LPT exactly (the former
    ``repro.cluster.scheduler.schedule_lpt``); with mixed slot speeds it
    gives each task the slot that *finishes it earliest* — the MET/LPT
    heuristic for uniformly related machines (the former
    ``schedule_lpt_heterogeneous``).
    """

    name = "lpt"

    def dispatch_order(self, costs: Sequence[TaskCost]) -> list[int]:
        return [
            task.task_id
            for task in sorted(costs, key=lambda t: (-t.seconds, t.task_id))
        ]

    def assign(
        self, costs: Sequence[TaskCost], slots: Sequence[Slot]
    ) -> Assignment:
        if not slots:
            raise ValueError("cannot schedule onto zero slots")
        if any(slot.speed != slots[0].speed for slot in slots):
            return super().assign(costs, slots)  # earliest-finish-time path
        ordered = self._by_id(costs)
        # Heap of (load, tiebreak, slot key); tiebreak keeps determinism.
        heap: list[tuple[float, int, tuple[int, int]]] = [
            (0.0, i, slot.key) for i, slot in enumerate(slots)
        ]
        heapq.heapify(heap)
        placement: dict[int, tuple[int, int]] = {}
        for task_id in self.dispatch_order(costs):
            load, tiebreak, key = heapq.heappop(heap)
            placement[task_id] = key
            heapq.heappush(heap, (load + ordered[task_id].seconds, tiebreak, key))
        slot_loads = {slot.key: 0.0 for slot in slots}
        for task in costs:
            slot_loads[placement[task.task_id]] += task.seconds
        return Assignment(placement=placement, slot_loads=slot_loads)


class RoundRobinPolicy(SchedulingPolicy):
    """Naive cyclic placement — the baseline the others are compared to."""

    name = "round_robin"

    def dispatch_order(self, costs: Sequence[TaskCost]) -> list[int]:
        return [task.task_id for task in sorted(costs, key=lambda t: t.task_id)]

    def assign(
        self, costs: Sequence[TaskCost], slots: Sequence[Slot]
    ) -> Assignment:
        if not slots:
            raise ValueError("cannot schedule onto zero slots")
        ordered = self._by_id(costs)
        placement: dict[int, tuple[int, int]] = {}
        slot_loads = {slot.key: 0.0 for slot in slots}
        for position, task_id in enumerate(self.dispatch_order(costs)):
            slot = slots[position % len(slots)]
            placement[task_id] = slot.key
            slot_loads[slot.key] += ordered[task_id].seconds
        return Assignment(placement=placement, slot_loads=slot_loads)


#: Registry for the string spellings accepted by ``resolve_policy``.
POLICIES: dict[str, type[SchedulingPolicy]] = {
    FifoPolicy.name: FifoPolicy,
    LptPolicy.name: LptPolicy,
    RoundRobinPolicy.name: RoundRobinPolicy,
}


def resolve_policy(
    policy: "SchedulingPolicy | str | None", default: str = "fifo"
) -> SchedulingPolicy:
    """Accept a policy instance, a registry name, or None (the default)."""
    if policy is None:
        policy = default
    if isinstance(policy, SchedulingPolicy):
        return policy
    if isinstance(policy, str):
        cls = POLICIES.get(policy.replace("-", "_").lower())
        if cls is not None:
            return cls()
        raise ValueError(
            f"unknown scheduling policy {policy!r}; known: {sorted(POLICIES)}"
        )
    raise TypeError(
        f"scheduling_policy must be a SchedulingPolicy, name, or None, "
        f"got {type(policy).__name__}"
    )
