"""Task-lifecycle state machine and attempt bookkeeping.

Every dispatch of a task is a :class:`TaskAttempt` walking the Hadoop
attempt lifecycle::

    PENDING ──> DISPATCHED ──> RUNNING ──> SUCCEEDED
                    │             ├──────> FAILED
                    │             ├──────> KILLED      (pool torn down)
                    │             └──────> TIMED_OUT   (hang budget blown)
                    └──(pool died before start)──> KILLED

Attempt numbering is *global* per task: attempts lost driver-side (dead
worker, hang kill) advance the same 1-based counter the worker-side
retry loop uses, so ``max_attempts`` bounds the total effort per task
and attempt-pinned injected faults never re-fire on re-dispatch.

Two consumers share this module:

- workers run :func:`run_attempt_loop` — the in-attempt retry loop with
  deterministic exponential backoff and the post-hoc wall-clock check;
- drivers (both engines) hold an :class:`AttemptTracker` per phase — it
  owns attempt numbering, lost-attempt charging, straggler/speculation
  decisions, and emits every transition to the engine's event bus.

This module is engine-agnostic by design: it must not import
:mod:`repro.mapreduce.runtime` (see ``tests/test_layering.py``).
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, TYPE_CHECKING

from ..counters import FRAMEWORK_GROUP
from ..faults import FaultPlan, _draw
from ..job import Job, TaskFailedError, TaskLostError, TaskTimeoutError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .events import EventBus

#: Framework counter: failed attempts absorbed by retries (equals
#: ``task_retries`` per winning task, but named so retry storms are
#: legible in job counters).  Lost attempts (worker death, hang kill)
#: are charged too — the winning re-dispatch reports them, so a
#: recovered worker crash is visible in job counters even though no
#: exception ever reached the retry loop.
TASK_FAILURES = "task_failures"
TASK_RETRIES = "task_retries"
#: Framework counter: total attempts used by winning tasks (1 per task
#: on a clean run; retries and lost attempts raise it).
TASK_ATTEMPTS = "task_attempts"
#: Framework counter: attempts that failed the post-hoc wall-clock check
#: (attempt finished but over ``task_timeout_seconds``).  Driver-side
#: hang kills are metered in ``EngineStats.tasks_timed_out`` instead.
TASKS_TIMED_OUT = "tasks_timed_out"


def attempt_tag(attempt: int, speculative: bool = False) -> str:
    """Canonical tag naming one dispatch attempt: ``a<N>`` / ``a<N>s``.

    This string is baked into on-disk spill-file names (see
    :func:`repro.mapreduce.spill.spill_file_path`) so that re-dispatches
    and speculative backups can never collide with an earlier attempt's
    files.  The format is load-bearing: changing it orphans nothing at
    runtime (names only need to be unique within a job) but breaks any
    tooling that parses scratch directories, so it is locked by a test.
    """
    if attempt < 1:
        raise ValueError(f"attempt numbers are 1-based, got {attempt}")
    return f"a{attempt}s" if speculative else f"a{attempt}"


class TaskState(str, Enum):
    """Lifecycle states of one task attempt."""

    PENDING = "PENDING"
    DISPATCHED = "DISPATCHED"
    RUNNING = "RUNNING"
    SUCCEEDED = "SUCCEEDED"
    FAILED = "FAILED"
    KILLED = "KILLED"
    TIMED_OUT = "TIMED_OUT"

    @property
    def terminal(self) -> bool:
        return self in _TERMINAL


_TERMINAL = {
    TaskState.SUCCEEDED,
    TaskState.FAILED,
    TaskState.KILLED,
    TaskState.TIMED_OUT,
}

#: Legal state transitions.  DISPATCHED may die without ever being seen
#: RUNNING (queued task lost with its pool), and a running attempt can
#: reach any terminal state.
_TRANSITIONS: dict[TaskState, set[TaskState]] = {
    TaskState.PENDING: {TaskState.DISPATCHED},
    TaskState.DISPATCHED: {TaskState.RUNNING, *_TERMINAL},
    TaskState.RUNNING: set(_TERMINAL),
}


@dataclass
class TaskAttempt:
    """One dispatch of one task, walking the lifecycle state machine."""

    kind: str  # "map" | "reduce"
    task_index: int
    attempt: int  # 1-based global attempt number
    speculative: bool = False
    state: TaskState = TaskState.PENDING
    dispatched_at: float | None = None
    started_at: float | None = None
    finished_at: float | None = None
    worker_pid: int | None = None

    @property
    def tag(self) -> str:
        return attempt_tag(self.attempt, self.speculative)

    @property
    def duration(self) -> float | None:
        """Seconds from observed start (or dispatch) to finish, if done."""
        if self.finished_at is None:
            return None
        begun = self.started_at if self.started_at is not None else self.dispatched_at
        return None if begun is None else self.finished_at - begun

    def transition(self, state: TaskState, now: float) -> None:
        allowed = _TRANSITIONS.get(self.state, set())
        if state not in allowed:
            raise ValueError(
                f"illegal transition {self.state.value} -> {state.value} for "
                f"{self.kind} task {self.task_index} attempt {self.attempt}"
            )
        self.state = state
        if state is TaskState.DISPATCHED:
            self.dispatched_at = now
        elif state is TaskState.RUNNING:
            self.started_at = now
        elif state in _TERMINAL:
            self.finished_at = now


class AttemptTracker:
    """Driver-side attempt bookkeeping for one phase's task batch.

    Engine-agnostic: the engine owns futures/processes; the tracker owns
    *decisions* — attempt numbering, lost-attempt charging against the
    retry budget, straggler detection for speculative backups — and
    narrates every transition to the event bus.  Both
    :class:`~repro.mapreduce.runtime.SerialEngine` (trivially) and
    :class:`~repro.mapreduce.runtime.MultiprocessEngine` (fully) run
    their phases through one of these.
    """

    def __init__(
        self,
        kind: str,
        num_tasks: int,
        job: Job,
        *,
        bus: "EventBus | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.kind = kind
        self.num_tasks = num_tasks
        self.max_attempts = job.max_attempts
        self.speculative_enabled = bool(job.config.get("speculative_execution", False))
        self.speculative_multiplier = float(
            job.config.get("speculative_multiplier", 2.0)
        )
        self.speculative_fraction = float(job.config.get("speculative_fraction", 0.25))
        self._bus = bus
        self._clock = clock
        #: next 1-based attempt number to dispatch, per task index
        self.next_attempt: dict[int, int] = {i: 1 for i in range(num_tasks)}
        self.completed: set[int] = set()
        self.durations: list[float] = []
        self.history: list[TaskAttempt] = []

    # -- event plumbing --------------------------------------------------------
    def _emit(self, attempt: TaskAttempt, now: float) -> None:
        if self._bus is not None:
            from .events import AttemptTransition

            self._bus.emit(
                AttemptTransition(
                    time=now,
                    kind=attempt.kind,
                    task_index=attempt.task_index,
                    attempt=attempt.attempt,
                    speculative=attempt.speculative,
                    state=attempt.state.value,
                    worker_pid=attempt.worker_pid,
                )
            )

    # -- lifecycle -------------------------------------------------------------
    def begin_dispatch(
        self, index: int, *, speculative: bool = False, now: float | None = None
    ) -> TaskAttempt:
        """Create and dispatch the task's current attempt."""
        now = self._clock() if now is None else now
        attempt = TaskAttempt(
            kind=self.kind,
            task_index=index,
            attempt=self.next_attempt[index],
            speculative=speculative,
        )
        attempt.transition(TaskState.DISPATCHED, now)
        self.history.append(attempt)
        self._emit(attempt, now)
        return attempt

    def mark_running(self, attempt: TaskAttempt, now: float | None = None) -> None:
        now = self._clock() if now is None else now
        attempt.transition(TaskState.RUNNING, now)
        self._emit(attempt, now)

    def complete(
        self,
        attempt: TaskAttempt,
        *,
        now: float | None = None,
        worker_pid: int | None = None,
    ) -> float:
        """Record a winning attempt; returns its observed duration."""
        now = self._clock() if now is None else now
        attempt.worker_pid = worker_pid
        attempt.transition(TaskState.SUCCEEDED, now)
        self.completed.add(attempt.task_index)
        duration = attempt.duration or 0.0
        self.durations.append(duration)
        self._emit(attempt, now)
        return duration

    def fail(self, attempt: TaskAttempt, now: float | None = None) -> None:
        now = self._clock() if now is None else now
        attempt.transition(TaskState.FAILED, now)
        self._emit(attempt, now)

    def kill(
        self,
        attempt: TaskAttempt,
        *,
        timed_out: bool = False,
        now: float | None = None,
    ) -> None:
        now = self._clock() if now is None else now
        if not attempt.state.terminal:  # late losers may already be resolved
            attempt.transition(
                TaskState.TIMED_OUT if timed_out else TaskState.KILLED, now
            )
            self._emit(attempt, now)

    # -- attempt budget --------------------------------------------------------
    def charge_lost(self, index: int) -> None:
        """Charge one lost attempt (worker started it, pool died)."""
        self.next_attempt[index] += 1

    def exhausted(self, index: int) -> bool:
        """True when the task's retry budget is fully consumed."""
        return self.next_attempt[index] > self.max_attempts

    def lost_error(self, index: int, task_index: int) -> TaskFailedError:
        """The failure raised when lost attempts alone exhaust the budget."""
        lost = TaskLostError(self.kind, task_index, self.next_attempt[index] - 1)
        return TaskFailedError(self.kind, self.max_attempts, lost, causes=[lost])

    # -- speculation -----------------------------------------------------------
    def in_speculation_window(self) -> bool:
        """True once the phase's tail is small enough to back up stragglers."""
        if not (self.speculative_enabled and self.durations):
            return False
        remaining = self.num_tasks - len(self.completed)
        return remaining <= max(
            1, math.ceil(self.speculative_fraction * self.num_tasks)
        )

    def straggler_threshold(self) -> float:
        """Elapsed seconds past which a running attempt counts as straggling."""
        return self.speculative_multiplier * statistics.median(self.durations)


def backoff_seconds(base: float, kind: str, task_index: int, attempt: int) -> float:
    """Exponential backoff with deterministic full jitter before ``attempt``.

    The window doubles per retry (attempt 2 waits ~``base``, attempt 3
    ~``2·base``, ...); the actual delay is a uniform draw from the upper
    half of the window, keyed by task identity so reruns sleep the same.
    """
    window = base * (2 ** max(0, attempt - 2))
    return window * (0.5 + 0.5 * _draw(0, kind, task_index, f"backoff{attempt}"))


def run_attempt_loop(
    kind: str,
    job: Job,
    attempt_fn: Callable[[int], Any],
    *,
    task_index: int = 0,
    first_attempt: int = 1,
    speculative: bool = False,
    marker: Callable[[int], None] | None = None,
    in_worker: bool = False,
) -> Any:
    """Hadoop's attempt loop: re-run a failed task up to job.max_attempts.

    Each retry gets a completely fresh attempt (new task object, new
    context, new counters), so partial effects of a failed attempt never
    leak — the engine only ever keeps a *successful* attempt's output.
    Every failed attempt's exception is chained to the previous one via
    ``__cause__`` (the full retry history survives in the traceback) and
    counted: the winning attempt's counters carry ``task_retries``,
    ``task_failures`` and ``task_attempts`` so retry storms show up in job
    results — including attempts lost *before* this loop ran
    (``first_attempt > 1`` means the driver already lost that many to dead
    workers, and they are charged here on success).

    Per attempt, in order: optional injected faults fire
    (``config["fault_plan"]``), the attempt runs under the post-hoc
    wall-clock check (``config["task_timeout_seconds"]``), and failures
    sleep an exponentially growing, deterministically jittered backoff
    (``config["retry_backoff_seconds"]``) before the next attempt.
    """
    plan: FaultPlan | None = job.config.get("fault_plan")
    timeout = job.config.get("task_timeout_seconds")
    limit = float(timeout) if timeout is not None else None
    backoff = float(job.config.get("retry_backoff_seconds", 0.0))
    failures: list[BaseException] = []
    timeouts = 0
    attempt = first_attempt
    while attempt <= job.max_attempts:
        if failures and backoff > 0:
            time.sleep(backoff_seconds(backoff, kind, task_index, attempt))
        try:
            if marker is not None:
                marker(attempt)
            # The clock starts before injected faults so a SlowFault delay
            # counts as attempt time — injected stragglers trip the same
            # timeout a genuinely slow attempt would.
            started = time.monotonic()
            if plan is not None:
                plan.fire(
                    kind,
                    task_index,
                    attempt,
                    speculative=speculative,
                    in_worker=in_worker,
                )
            result, counters = attempt_fn(attempt)
            elapsed = time.monotonic() - started
            if limit is not None and elapsed > limit:
                raise TaskTimeoutError(kind, task_index, attempt, elapsed, limit)
        except Exception as exc:  # noqa: BLE001 - task code may raise anything
            if getattr(exc, "task_retryable", True) is False:
                # Not this task's fault and not curable by re-running it
                # (e.g. a corrupt *input* spill file): surface immediately
                # without burning retry budget — the driver owns the fix.
                raise
            if failures:
                exc.__cause__ = failures[-1]
            failures.append(exc)
            if isinstance(exc, TaskTimeoutError):
                timeouts += 1
            attempt += 1
            continue
        lost = first_attempt - 1
        fail_count = len(failures) + lost
        counters.setdefault(FRAMEWORK_GROUP, {})
        framework = counters[FRAMEWORK_GROUP]
        framework[TASK_ATTEMPTS] = framework.get(TASK_ATTEMPTS, 0) + attempt
        if fail_count:
            framework[TASK_RETRIES] = framework.get(TASK_RETRIES, 0) + fail_count
            framework[TASK_FAILURES] = framework.get(TASK_FAILURES, 0) + fail_count
        if timeouts:
            framework[TASKS_TIMED_OUT] = framework.get(TASKS_TIMED_OUT, 0) + timeouts
        return result, counters
    if not failures:  # budget consumed entirely by driver-side lost attempts
        lost_error = TaskLostError(kind, task_index, first_attempt - 1)
        raise TaskFailedError(kind, job.max_attempts, lost_error, causes=[lost_error])
    raise TaskFailedError(
        kind, job.max_attempts, failures[-1], causes=failures
    ) from failures[-1]
