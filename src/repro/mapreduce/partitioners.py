"""Partitioners beyond hashing: total-order (range) partitioning.

Hash partitioning balances load but scatters key ranges across reducers;
Hadoop's TotalOrderPartitioner instead samples the key space, picks
``n − 1`` split points, and routes keys by range — so concatenating the
reducer outputs yields a globally sorted dataset.  Useful here for
producing ordered element files between chained jobs (§3's "preceding
job may have written the dataset to files").
"""

from __future__ import annotations

import bisect
import random
from typing import Any, Callable, Sequence


class RangePartitioner:
    """Route keys to partitions by comparing against sorted split points.

    Built either directly from ``splits`` (length n−1, ascending) or by
    :meth:`from_sample`.  Keys equal to a split point go to the right
    partition (bisect_right), matching Hadoop's behaviour.
    """

    def __init__(self, splits: Sequence[Any], *, key: Callable[[Any], Any] | None = None):
        self.key = key or (lambda value: value)
        proxies = [self.key(split) for split in splits]
        if any(proxies[i] > proxies[i + 1] for i in range(len(proxies) - 1)):
            raise ValueError("split points must be ascending")
        self._splits = list(proxies)

    @property
    def num_partitions(self) -> int:
        return len(self._splits) + 1

    def __call__(self, record_key: Any, num_partitions: int) -> int:
        if num_partitions != self.num_partitions:
            raise ValueError(
                f"partitioner built for {self.num_partitions} partitions, "
                f"job asked for {num_partitions}"
            )
        return bisect.bisect_right(self._splits, self.key(record_key))

    @classmethod
    def from_sample(
        cls,
        keys: Sequence[Any],
        num_partitions: int,
        *,
        sample_size: int = 1000,
        seed: int = 0,
        key: Callable[[Any], Any] | None = None,
    ) -> "RangePartitioner":
        """Pick split points from a random sample of the key space.

        Samples ``min(sample_size, len(keys))`` keys, sorts them, and
        takes the n−1 evenly spaced quantiles — Hadoop's InputSampler.
        """
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        if not keys:
            raise ValueError("cannot sample an empty key set")
        extract = key or (lambda value: value)
        rng = random.Random(seed)
        population = list(keys)
        if len(population) > sample_size:
            sample = rng.sample(population, sample_size)
        else:
            sample = population
        ordered = sorted(sample, key=extract)
        splits = []
        for index in range(1, num_partitions):
            position = index * len(ordered) // num_partitions
            splits.append(ordered[min(position, len(ordered) - 1)])
        # Dedupe equal split points (skewed samples) while keeping order,
        # then pad back to n−1 by repeating the last split: the built
        # partitioner must answer for exactly ``num_partitions`` — a
        # shrunken one raises at call time when the job asks for the
        # count the caller requested.  Repeated splits are legal
        # (bisect_right routes past all equals), they just leave the
        # partitions between duplicates empty — the right outcome for a
        # sample too skewed to support n distinct ranges.
        unique = []
        for split in splits:
            if not unique or extract(split) > extract(unique[-1]):
                unique.append(split)
        if splits:
            unique.extend(unique[-1] for _ in range(len(splits) - len(unique)))
        partitioner = cls(unique, key=key)
        return partitioner


def is_globally_sorted(partitions: Sequence[Sequence[Any]], *, key=None) -> bool:
    """True iff concatenating per-partition sorted outputs is sorted.

    The property a range partitioner buys: every key in partition i
    precedes every key in partition i+1.
    """
    extract = key or (lambda value: value)
    previous_max = None
    for part in partitions:
        if not part:
            continue
        values = sorted(extract(item) for item in part)
        if previous_max is not None and values[0] < previous_max:
            return False
        previous_max = values[-1]
    return True
