"""A block-placement model of a distributed filesystem (HDFS-style).

The execution model (§3) stores the dataset "as files, distributed on the
participating nodes", and the paper's communication-cost metric assumes
"most of the input data can be read locally ... network costs are
dominated by the costs to communicate intermediate data".  The cluster
simulator needs exactly that distinction — which reads are local and which
cross the network — so this module models files as sequences of fixed-size
blocks placed (with replication) on nodes.

It is an accounting model, not a byte store: block contents are sizes, not
data.  (Real record movement happens in :mod:`repro.mapreduce.runtime`.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .._util import MB, ceil_div


@dataclass(frozen=True)
class BlockLocation:
    """One stored replica of one block."""

    file: str
    block_index: int
    node: int
    size_bytes: int


@dataclass
class FileEntry:
    """Metadata of one DFS file."""

    name: str
    size_bytes: int
    block_size: int
    #: replica node lists, one per block
    placements: list[list[int]] = field(default_factory=list)

    @property
    def num_blocks(self) -> int:
        return len(self.placements)


class DistributedFileSystem:
    """Block placement with round-robin-plus-random replication.

    Placement policy: the primary replica of block ``i`` of the j-th file
    rotates over nodes (spreading primaries), and the remaining replicas go
    to distinct other nodes chosen by a seeded RNG — deterministic for a
    given construction order and seed, like a freshly loaded HDFS cluster.
    """

    def __init__(
        self,
        num_nodes: int,
        *,
        block_size: int = 64 * MB,
        replication: int = 3,
        seed: int = 0,
    ):
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self.num_nodes = num_nodes
        self.block_size = block_size
        self.replication = min(replication, num_nodes)
        self._rng = random.Random(seed)
        self._files: dict[str, FileEntry] = {}
        self._next_primary = 0

    def create(self, name: str, size_bytes: int) -> FileEntry:
        """Create a file of the given size and place its blocks."""
        if name in self._files:
            raise FileExistsError(f"DFS file {name!r} already exists")
        if size_bytes < 0:
            raise ValueError(f"size must be non-negative, got {size_bytes}")
        num_blocks = max(1, ceil_div(size_bytes, self.block_size)) if size_bytes else 0
        entry = FileEntry(name=name, size_bytes=size_bytes, block_size=self.block_size)
        for _ in range(num_blocks):
            primary = self._next_primary % self.num_nodes
            self._next_primary += 1
            replicas = [primary]
            others = [n for n in range(self.num_nodes) if n != primary]
            self._rng.shuffle(others)
            replicas.extend(others[: self.replication - 1])
            entry.placements.append(replicas)
        self._files[name] = entry
        return entry

    def delete(self, name: str) -> None:
        """Remove a file (freeing its accounted storage)."""
        if name not in self._files:
            raise FileNotFoundError(f"DFS file {name!r} does not exist")
        del self._files[name]

    def exists(self, name: str) -> bool:
        return name in self._files

    def entry(self, name: str) -> FileEntry:
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundError(f"DFS file {name!r} does not exist") from None

    def block_size_of(self, name: str, block_index: int) -> int:
        """Actual byte size of one block (the last block may be short)."""
        entry = self.entry(name)
        if not 0 <= block_index < entry.num_blocks:
            raise IndexError(f"block {block_index} out of range for {name!r}")
        full_blocks = entry.size_bytes // self.block_size
        if block_index < full_blocks:
            return self.block_size
        return entry.size_bytes - full_blocks * self.block_size

    def locations(self, name: str) -> list[BlockLocation]:
        """All replica locations of a file's blocks."""
        entry = self.entry(name)
        out = []
        for index, nodes in enumerate(entry.placements):
            size = self.block_size_of(name, index)
            for node in nodes:
                out.append(BlockLocation(name, index, node, size))
        return out

    def read_cost(self, name: str, reader_node: int) -> tuple[int, int]:
        """(local_bytes, remote_bytes) for node ``reader_node`` reading a file.

        A block is read locally when the reader holds a replica — this is
        the quantity behind "most of the input data can be read locally".
        """
        entry = self.entry(name)
        local = remote = 0
        for index, nodes in enumerate(entry.placements):
            size = self.block_size_of(name, index)
            if reader_node in nodes:
                local += size
            else:
                remote += size
        return local, remote

    def used_bytes(self, node: int | None = None) -> int:
        """Total stored bytes (all replicas), optionally for one node."""
        total = 0
        for entry in self._files.values():
            for index, nodes in enumerate(entry.placements):
                size = self.block_size_of(entry.name, index)
                if node is None:
                    total += size * len(nodes)
                elif node in nodes:
                    total += size
        return total

    def files(self) -> list[str]:
        return sorted(self._files)
