"""File-based job input/output: JSONL record files, Hadoop-style parts.

The execution model (§3) assumes "the input dataset is stored as files
... each file contains multiple records", the preceding job having
written them.  This module gives the engine that file interface:

- :func:`write_records` / :func:`read_records` — JSONL record files,
  one ``[key, value]`` array per line;
- :func:`write_partitioned` — reducer outputs as ``part-r-00000.jsonl``
  … files in an output directory, like Hadoop's FileOutputFormat;
- :func:`run_job_on_files` — read input files (one split per file, as
  HDFS would hand one mapper per block), run a job, write parts;
- element payload codecs so :class:`~repro.core.element.Element` trees
  survive the JSON round trip (numpy arrays included).

JSON keeps the files greppable (the practical reason Hadoop streaming
used text); values that JSON cannot express raise immediately rather
than silently degrading.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from ..core.element import Element
from .job import Job, JobResult, KeyValue
from .runtime import Engine, SerialEngine
from .splits import Split


# ---------------------------------------------------------------------------
# JSON codecs for the payload types the apps use
# ---------------------------------------------------------------------------

def encode_value(value: Any) -> Any:
    """JSON-encodable form of a record value (Elements/ndarrays tagged)."""
    if isinstance(value, Element):
        return {
            "__element__": True,
            "eid": value.eid,
            "payload": encode_value(value.payload),
            "results": [[k, encode_value(v)] for k, v in sorted(value.results.items())],
        }
    if isinstance(value, np.ndarray):
        return {"__ndarray__": True, "data": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        return {str(k): encode_value(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"value of type {type(value).__name__} is not JSONL-serializable")


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        if value.get("__element__"):
            element = Element(value["eid"], decode_value(value["payload"]))
            for partner, result in value["results"]:
                element.results[int(partner)] = decode_value(result)
            return element
        if value.get("__ndarray__"):
            return np.array(value["data"], dtype=value["dtype"])
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


# ---------------------------------------------------------------------------
# Record files
# ---------------------------------------------------------------------------

def write_records(path: Path | str, records: Iterable[KeyValue]) -> int:
    """Write records as JSONL; returns the record count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for key, value in records:
            handle.write(
                json.dumps([encode_value(key), encode_value(value)]) + "\n"
            )
            count += 1
    return count


def read_records(path: Path | str) -> Iterator[KeyValue]:
    """Stream records back from a JSONL file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                key, value = json.loads(line)
            except (json.JSONDecodeError, ValueError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: malformed record: {exc}"
                ) from exc
            # JSON turns tuple keys into lists; restore hashability.
            if isinstance(key, list):
                key = tuple(key)
            yield key, decode_value(value)


def write_partitioned(
    output_dir: Path | str, partitions: Sequence[list[KeyValue]]
) -> list[Path]:
    """Write one ``part-r-NNNNN.jsonl`` per partition (Hadoop layout)."""
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    paths = []
    for index, records in enumerate(partitions):
        path = output_dir / f"part-r-{index:05d}.jsonl"
        write_records(path, records)
        paths.append(path)
    return paths


def read_output_dir(output_dir: Path | str) -> Iterator[KeyValue]:
    """Stream all records of an output directory's part files, in order."""
    output_dir = Path(output_dir)
    parts = sorted(output_dir.glob("part-r-*.jsonl"))
    if not parts:
        raise FileNotFoundError(f"no part files under {output_dir}")
    for part in parts:
        yield from read_records(part)


# ---------------------------------------------------------------------------
# File-driven job execution
# ---------------------------------------------------------------------------

def run_job_on_files(
    job: Job,
    input_paths: Sequence[Path | str],
    output_dir: Path | str,
    *,
    engine: Engine | None = None,
) -> JobResult:
    """Run ``job`` over record files, one map split per file.

    Mirrors the Hadoop deployment the paper used: a preceding job wrote
    the dataset as files; each file becomes one mapper's split; reducer
    outputs land as part files under ``output_dir``.  The in-memory
    JobResult is returned as well (with counters).
    """
    if not input_paths:
        raise ValueError("need at least one input file")
    engine = engine or SerialEngine()
    splits = [Split(records=list(read_records(path))) for path in input_paths]
    result = engine.run(job, splits=splits)
    # Re-partition outputs by reduce task for the part-file layout: the
    # engine returns a flat list, so split evenly by reducer count (or a
    # single part for map-only jobs).
    num_parts = max(1, result.num_reduce_tasks)
    buckets: list[list[KeyValue]] = [[] for _ in range(num_parts)]
    if num_parts == 1:
        buckets[0] = list(result.records)
    else:
        from .shuffle import hash_partition

        partitioner = job.partitioner or hash_partition
        for key, value in result.records:
            buckets[partitioner(key, num_parts)].append((key, value))
    write_partitioned(output_dir, buckets)
    return result
